//! Quickstart: build a small temporal dataset, index it with the paper's
//! best exact method (EXACT3) and one approximate method (APPX2), and run
//! an aggregate top-k query against both.
//!
//! Run with: `cargo run --release --example quickstart`

use chronorank::core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact3, IndexConfig, RankMethod,
};
use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A weather-station style dataset: 500 objects, ~120 segments each.
    let set = TempGenerator::new(TempConfig {
        objects: 500,
        avg_segments: 120,
        seed: 2024,
        dropout: 0.02,
    })
    .generate_set();
    println!(
        "dataset: m = {} objects, N = {} segments, domain [{:.1}, {:.1}]",
        set.num_objects(),
        set.num_segments(),
        set.t_min(),
        set.t_max()
    );

    // 2. Index with EXACT3 (one interval tree, two stabbing queries per
    //    query) and APPX2 (BREAKPOINTS2 + dyadic intervals).
    let exact3 = Exact3::build(&set, IndexConfig::default())?;
    let appx2 = ApproxIndex::build(
        &set,
        ApproxVariant::APPX2,
        ApproxConfig { r: 64, kmax: 32, ..Default::default() },
    )?;

    // 3. "Top-10 stations by average temperature over the middle fifth of
    //    the observation window."
    let (t1, t2) = (set.t_min() + 0.4 * set.span(), set.t_min() + 0.6 * set.span());
    let k = 10;

    exact3.drop_caches()?;
    exact3.reset_io();
    let exact_answer = exact3.top_k(t1, t2, k, AggKind::Avg)?;
    let exact_io = exact3.io_stats();

    appx2.drop_caches()?;
    appx2.reset_io();
    let approx_answer = appx2.top_k(t1, t2, k, AggKind::Avg)?;
    let approx_io = appx2.io_stats();

    println!("\ntop-{k}({t1:.1}, {t2:.1}, avg):");
    println!("{:<6} {:>12} {:>14} {:>14}", "rank", "object", "EXACT3 score", "APPX2 score");
    for j in 0..k {
        let (ide, se) = exact_answer.rank(j);
        let (ida, sa) = approx_answer.rank(j);
        println!("{:<6} {:>5} /{:>5} {:>14.3} {:>14.3}", j + 1, ide, ida, se, sa);
    }
    println!(
        "\nIO cost: EXACT3 = {} block reads, APPX2 = {} block reads",
        exact_io.reads, approx_io.reads
    );
    println!(
        "index size: EXACT3 = {} KiB, APPX2 = {} KiB",
        exact3.size_bytes() / 1024,
        appx2.size_bytes() / 1024
    );
    let pr = chronorank::core::metrics::precision(&exact_answer, &approx_answer);
    println!("precision/recall of APPX2 vs exact: {pr:.3}");
    Ok(())
}
