//! Stand up a chronorank network server on a real TCP socket.
//!
//! By default this serves a read-only sharded `ServeEngine` over a
//! Temp-style dataset; `--live` fronts a WAL-backed `IngestEngine`
//! instead, which additionally accepts `APPEND_BATCH` and `CHECKPOINT`
//! frames. The bound address is printed first — point
//! `examples/net_client.rs` at it from another terminal.
//!
//! ```text
//! cargo run --release --example net_server -- [--addr 127.0.0.1:7171]
//!     [--live] [--objects N] [--workers W] [--serve-secs S]
//! ```
//!
//! Without `--serve-secs` the server runs until killed (ctrl-C).

use chronorank::live::LiveConfig;
use chronorank::net::{NetConfig, NetServer};
use chronorank::serve::ServeConfig;
use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7171".to_string();
    let mut live = false;
    let mut objects = 2_000usize;
    let mut workers = 4usize;
    let mut serve_secs: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--live" => live = true,
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().ok_or("missing value for --addr")?;
            }
            "--objects" => {
                i += 1;
                objects = args.get(i).and_then(|v| v.parse().ok()).ok_or("bad --objects")?;
            }
            "--workers" => {
                i += 1;
                workers = args.get(i).and_then(|v| v.parse().ok()).ok_or("bad --workers")?;
            }
            "--serve-secs" => {
                i += 1;
                serve_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).ok_or("bad --serve-secs")?);
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }

    let set = TempGenerator::new(TempConfig { objects, avg_segments: 60, seed: 42, dropout: 0.02 })
        .generate_set();
    println!(
        "dataset: m = {} objects, N = {} segments, domain [{:.0}, {:.0}]",
        set.num_objects(),
        set.num_segments(),
        set.t_min(),
        set.t_max()
    );

    let net = NetConfig { addr, ..Default::default() };
    let server = if live {
        NetServer::start_live(set, LiveConfig { workers, ..Default::default() }, net)?
    } else {
        NetServer::start_serve(set, ServeConfig { workers, ..Default::default() }, net)?
    };
    println!(
        "chronorank-net: {} backend, {workers} shards, listening on {}",
        if live { "live (queries + durable appends)" } else { "serve (read-only)" },
        server.local_addr()
    );
    println!("drive it with: cargo run --release --example net_client -- {}", server.local_addr());

    match serve_secs {
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            println!("--serve-secs {secs} elapsed, shutting down");
            server.shutdown();
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}
