//! Serve a skewed query stream through the sharded engine and print the
//! `ServeReport`.
//!
//! A Meme-style dataset is sharded across 4 workers; traffic is a Zipf
//! stream (a few hot dashboards asked over and over, plus background
//! noise) mixing three client profiles: exact, approximate, and
//! approximate-with-tight-ranks. The report shows the planner's route mix,
//! the cache hit rate, and the aggregated per-shard IO.
//!
//! Run with: `cargo run --release --example serve_traffic`

use chronorank::serve::{ServeConfig, ServeEngine, ServeQuery};
use chronorank::workloads::{
    DatasetGenerator, IntervalPattern, MemeConfig, MemeGenerator, QueryWorkload,
    QueryWorkloadConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Memetracker-style dataset: bursty, heavy-tailed curves.
    let set = MemeGenerator::new(MemeConfig {
        objects: 2_000,
        avg_segments: 40,
        span: 10_000.0,
        seed: 42,
    })
    .generate_set();
    println!(
        "dataset: m = {} objects, N = {} segments, domain [{:.0}, {:.0}]",
        set.num_objects(),
        set.num_segments(),
        set.t_min(),
        set.t_max()
    );

    // 2. The engine: 4 shards, each with EXACT1 + EXACT3 + APPX2 + APPX2+
    //    and a shard-local result cache (the defaults).
    let engine = ServeEngine::new(&set, ServeConfig { workers: 4, ..Default::default() })?;

    // 3. A Zipf-skewed interval stream: 8 hot intervals, exponent 1,
    //    10% uniform background.
    let workload = QueryWorkload::new(
        QueryWorkloadConfig {
            count: 3_000,
            span_fraction: 0.2,
            k: 20,
            seed: 7,
            pattern: IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 },
        },
        set.t_min(),
        set.t_max(),
    );
    // Client mix: 20% exact dashboards, 70% approximate (ε = 1%), 10%
    // approximate with tight ranks (ε = 1%, α = 1-grade).
    let queries: Vec<ServeQuery> = workload
        .generate()
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 10 {
            0 | 1 => ServeQuery::exact(q.t1, q.t2, q.k),
            2 => ServeQuery::approx_tight(q.t1, q.t2, q.k, 0.01),
            _ => ServeQuery::approx(q.t1, q.t2, q.k, 0.01),
        })
        .collect();

    // 4. Serve the whole stream pipelined and report.
    let outcome = engine.run_stream(&queries)?;
    println!(
        "\nserved {} queries in {:.2}s — {:.0} queries/sec\n",
        outcome.answers.len(),
        outcome.elapsed_secs,
        outcome.qps()
    );
    print!("{}", engine.report());

    // 5. Spot-check one hot answer against brute force.
    let hot = workload.hotspots()[0];
    let truth = set.top_k_bruteforce(hot.t1, hot.t2, 5);
    let served = engine.query(ServeQuery::exact(hot.t1, hot.t2, 5))?;
    println!("\nhot interval [{:.0}, {:.0}] top-5 (exact route):", hot.t1, hot.t2);
    for j in 0..served.len() {
        let (id, s) = served.rank(j);
        println!("  #{} object {id:>5} score {s:>12.3}", j + 1);
        assert_eq!(id, truth.rank(j).0, "serving layer must agree with brute force");
    }
    Ok(())
}
