//! A live stock ticker on the full ingest stack: stream trading-volume
//! readings into a WAL-backed [`chronorank::live::IngestEngine`] while
//! top-k queries keep flowing — the paper's §4 scenario ("the stock
//! market keeps trading") as an end-to-end system instead of a single
//! index method.
//!
//! The run bootstraps the engine from the first half of a generated
//! stock-volume dataset, then replays the second half as a time-ordered
//! append trace with hot-spot queries interleaved after every durable
//! batch. Watch the report at the end: rebuilds happen *during* the run
//! (off-thread, swap pauses in microseconds) and the WAL accounts for
//! every accepted tick.
//!
//! Run with: `cargo run --release --example live_ticker`

use chronorank::live::{IngestEngine, LiveConfig, RebuildPolicy};
use chronorank::serve::ServeQuery;
use chronorank::workloads::{
    AppendStream, AppendStreamConfig, IntervalPattern, LiveOp, QueryWorkloadConfig, StockConfig,
    StockGenerator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 400 tickers × 30 trading days; the engine starts with the first ~15
    // days and the rest arrives live, 64 ticks per durable batch.
    let generator =
        StockGenerator::new(StockConfig { objects: 400, days: 30, readings_per_day: 8, seed: 11 });
    let stream = AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch: 64, skew: 0.0, seed: 7 },
    );
    let seed = stream.base_set();
    println!(
        "bootstrap: {} tickers, {} segments, {} ticks still to arrive",
        seed.num_objects(),
        seed.num_segments(),
        stream.records().len()
    );

    let mut engine = IngestEngine::new(
        &seed,
        LiveConfig {
            workers: 4,
            rebuild: RebuildPolicy { mass_factor: 1.5, max_tail_segments: 2048 },
            ..Default::default()
        },
    )?;

    // Mixed traffic: after every batch of ticks, two hot-spot queries
    // ("total volume over the busy window everyone keeps asking about").
    let ops = stream.hotspot(
        QueryWorkloadConfig {
            span_fraction: 0.15,
            k: 10,
            seed: 3,
            pattern: IntervalPattern::Zipf { hotspots: 6, exponent: 1.0, background: 0.1 },
            ..Default::default()
        },
        2,
    );
    let n_appends = ops.iter().filter(|op| matches!(op, LiveOp::Appends(_))).count();
    println!("replaying {} batches with {} interleaved queries…", n_appends, ops.len() - n_appends);
    let outcome = engine.run_ops(&ops)?;
    println!(
        "ingested {} ticks at {:.0} ticks/s while answering {} queries at {:.0} q/s",
        outcome.appends,
        outcome.ingest_rate(),
        outcome.answers.len(),
        outcome.qps()
    );

    // The market close: who traded the most over the freshly arrived days?
    let live = engine.live_set().clone();
    let (t1, t2) = (live.t_max() - 3.0, live.t_max());
    let top = engine.query(ServeQuery::exact(t1, t2, 10))?;
    println!("\ntop-10 tickers by volume over the last 3 (live-streamed) days:");
    for (rank, &(id, vol)) in top.entries().iter().enumerate() {
        println!("  #{:<2} ticker {:<4} volume {:.1}", rank + 1, id, vol);
    }
    // Cross-check against brute force over the engine's master copy.
    let oracle = live.top_k_bruteforce(t1, t2, 10);
    assert_eq!(oracle.ids(), top.ids(), "live answers must equal ground truth");

    println!("\n{}", engine.report());
    Ok(())
}
