//! Scrape the telemetry plane over the wire and inspect a slow query.
//!
//! Starts a serve-backend TCP server on loopback, drives a short mixed
//! exact/ε query stream through a client, then:
//!
//! 1. issues a `METRICS` frame and validates the returned Prometheus-style
//!    exposition (well-formed lines, expected metric families present);
//! 2. lowers the engine's slow-query threshold to zero and shows the
//!    flight recorder's end-to-end trace of the next query — route, time
//!    window, per-shard spans, cache outcome, and the IO delta it cost.
//!
//! Exits nonzero if the exposition is malformed or a family is missing,
//! so CI can use this binary as the loopback scrape gate.
//!
//! ```text
//! cargo run --release --example metrics_scrape
//! ```

use chronorank::core::TemporalSet;
use chronorank::curve::PiecewiseLinear;
use chronorank::net::{NetClient, NetConfig, NetServer};
use chronorank::obs::validate_exposition;
use chronorank::serve::{ServeConfig, ServeQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic set: 64 objects with crossing linear scores.
    let curves: Vec<_> = (0..64)
        .map(|i| {
            PiecewiseLinear::from_points(&[
                (0.0, i as f64),
                (50.0, (64 - i) as f64),
                (100.0, i as f64 + 1.0),
            ])
            .expect("valid curve")
        })
        .collect();
    let set = TemporalSet::from_curves(curves)?;

    let server = NetServer::start_serve(
        set,
        ServeConfig { workers: 2, ..Default::default() },
        NetConfig::default(),
    )?;
    println!("serve backend listening on {}", server.local_addr());

    let mut client = NetClient::connect(server.local_addr())?;
    for i in 0..32 {
        let (t1, t2) = (10.0 + (i % 8) as f64 * 5.0, 90.0);
        let q = if i % 2 == 0 {
            ServeQuery::exact(t1, t2, 8)
        } else {
            ServeQuery::approx(t1, t2, 8, 0.2)
        };
        client.topk(q)?;
    }

    // --- 1. the wire scrape ------------------------------------------------
    let text = client.metrics()?;
    let families = validate_exposition(&text).map_err(|e| format!("malformed exposition: {e}"))?;
    for family in [
        "chronorank_serve_route_latency_us",
        "chronorank_serve_route_total",
        "chronorank_serve_cache_hits_total",
        "chronorank_serve_queries",
        "chronorank_net_frames_in",
        "chronorank_net_frame_decode_us",
        "chronorank_net_frame_encode_us",
    ] {
        if !families.contains(family) {
            return Err(format!("exposition is missing the {family} family").into());
        }
    }
    println!(
        "METRICS scrape OK: {} bytes, {} metric families, all expected families present",
        text.len(),
        families.len()
    );
    for line in text.lines().filter(|l| l.starts_with("chronorank_serve_route_total")) {
        println!("  {line}");
    }

    // --- 2. the flight recorder -------------------------------------------
    // The server owns the engine, but the recorder hangs off the global
    // registry-backed serve instrumentation; an in-process engine shows the
    // same machinery directly.
    let curves: Vec<_> = (0..64)
        .map(|i| {
            PiecewiseLinear::from_points(&[(0.0, i as f64), (100.0, (64 - i) as f64)])
                .expect("valid curve")
        })
        .collect();
    let local = chronorank::serve::ServeEngine::new(
        &TemporalSet::from_curves(curves)?,
        ServeConfig { workers: 2, ..Default::default() },
    )?;
    // Threshold zero: every query qualifies as "slow" and is traced.
    local.set_slow_query_threshold_us(0);
    local.query(ServeQuery::exact(20.0, 80.0, 8))?;
    let traces = local.flight_recorder().snapshot();
    let trace = traces.first().ok_or("flight recorder captured no trace")?;
    println!(
        "\nflight-recorder trace: route={} window=[{}, {}] k={} total={}µs cache={} \
         shards={} io(reads={}, writes={})",
        trace.route,
        trace.t1,
        trace.t2,
        trace.k,
        trace.total_us,
        trace.cache.name(),
        trace.shards.len(),
        trace.io.reads,
        trace.io.writes,
    );
    for span in &trace.shards {
        println!(
            "  shard {}: {}µs, {} reads, cache_hit={}",
            span.shard, span.elapsed_us, span.reads, span.cache_hit
        );
    }

    server.shutdown();
    println!("\nmetrics_scrape finished cleanly");
    Ok(())
}
