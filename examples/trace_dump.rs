//! Print a cross-process span tree for one wire query.
//!
//! Starts a serve-backend TCP server on loopback, sends a handful of
//! traced TOPK queries (each request carries the 16-byte trace-context
//! tail), then retrieves the server's spans over the `TRACE` wire op and
//! prints one query's joined tree:
//!
//! ```text
//! trace 7c31…  client.topk (412 µs)
//!   └─ server.request (389 µs)  queue_us=12 op=topk
//!        └─ engine.query (351 µs)  route=exact3 cache=miss
//!             ├─ shard.probe (118 µs)  shard=0 reads=4
//!             └─ shard.probe (104 µs)  shard=1 reads=3
//! ```
//!
//! Exits nonzero if the dump is not valid JSON, the tree does not join
//! (the server span must parent to the client's span id), or the SLO
//! section is missing — so CI can run this binary as the trace smoke
//! gate.
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```

use chronorank::core::TemporalSet;
use chronorank::curve::PiecewiseLinear;
use chronorank::net::{NetClient, NetConfig, NetServer};
use chronorank::obs::{Span, SpanId, SpanSink, TraceId};
use chronorank::serve::{ServeConfig, ServeQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let curves: Vec<_> = (0..48)
        .map(|i| {
            PiecewiseLinear::from_points(&[
                (0.0, i as f64),
                (50.0, (48 - i) as f64),
                (100.0, i as f64 / 2.0),
            ])
            .expect("valid curve")
        })
        .collect();
    let set = TemporalSet::from_curves(curves)?;

    let server = NetServer::start_serve(
        set,
        ServeConfig { workers: 3, ..Default::default() },
        NetConfig::default(),
    )?;
    let mut client = NetClient::connect(server.local_addr())?;
    // A real (non-noop) sink turns every client call into a traced call.
    client.set_span_sink(SpanSink::new(64));

    let mut last_trace = TraceId(0);
    for i in 0..4 {
        let q = ServeQuery::exact(5.0 + i as f64 * 10.0, 95.0, 5);
        let (answer, trace) = client.topk_traced(q)?;
        println!(
            "query {i}: trace {} route {} top-1 object {:?}",
            trace.hex(),
            answer.route.name(),
            answer.topk.entries().first().map(|e| e.0),
        );
        last_trace = trace;
    }

    // The client half of each tree lives in the client's own sink…
    let client_spans = client.span_sink().drain();
    // …and the server half comes back over the TRACE wire op as JSON.
    let dump = client.trace_dump()?;
    let server_spans = parse_server_spans(&dump)?;
    if !dump.contains("\"slo\":") {
        return Err("TRACE dump is missing its SLO section".into());
    }

    let spans: Vec<PrintSpan> = client_spans
        .iter()
        .map(PrintSpan::from_span)
        .chain(server_spans.iter().cloned())
        .filter(|s| s.trace == last_trace.hex())
        .collect();
    let root = spans
        .iter()
        .find(|s| s.name == "client.topk")
        .ok_or("client root span missing from the tree")?;
    let joined = spans
        .iter()
        .any(|s| s.name == "server.request" && s.parent.as_deref() == Some(root.id.as_str()));
    if !joined {
        return Err("server span did not join the client's trace".into());
    }

    println!("\nspan tree for trace {}:", last_trace.hex());
    print_tree(&spans, None, 0);
    println!("\ntrace smoke OK: {} spans joined into one tree", spans.len());
    server.shutdown();
    Ok(())
}

/// The slice of a span this example prints (client- and server-side spans
/// arrive in different shapes: structs vs JSON).
#[derive(Clone)]
struct PrintSpan {
    trace: String,
    id: String,
    parent: Option<String>,
    name: String,
    duration_us: u64,
}

impl PrintSpan {
    fn from_span(s: &Span) -> Self {
        PrintSpan {
            trace: s.trace.hex(),
            id: s.id.hex(),
            parent: s.parent.map(SpanId::hex),
            name: s.name.to_string(),
            duration_us: s.duration_us,
        }
    }
}

fn print_tree(spans: &[PrintSpan], parent: Option<&str>, depth: usize) {
    for s in spans.iter().filter(|s| s.parent.as_deref() == parent) {
        println!("{:indent$}{} ({} µs)", "", s.name, s.duration_us, indent = depth * 4);
        print_tree(spans, Some(s.id.as_str()), depth + 1);
    }
}

/// Pull `trace`/`span`/`parent`/`name`/`duration_us` out of the TRACE
/// dump's `"spans"` array. A tiny field scanner, not a JSON parser — the
/// facade's integration tests parse the same dump with the bench
/// harness's full parser; an example stays dependency-light.
fn parse_server_spans(dump: &str) -> Result<Vec<PrintSpan>, Box<dyn std::error::Error>> {
    let spans_at = dump.find("\"spans\":[").ok_or("TRACE dump has no spans array")?;
    let mut out = Vec::new();
    for obj in dump[spans_at..].split("{\"trace\":\"").skip(1) {
        let field = |key: &str| -> Option<String> {
            let tagged = format!("\"{key}\":\"");
            let at = obj.find(&tagged)? + tagged.len();
            Some(obj[at..].split('"').next()?.to_string())
        };
        let num = |key: &str| -> Option<u64> {
            let tagged = format!("\"{key}\":");
            let at = obj.find(&tagged)? + tagged.len();
            obj[at..].split(|c: char| !c.is_ascii_digit()).next()?.parse().ok()
        };
        out.push(PrintSpan {
            trace: obj.split('"').next().unwrap_or_default().to_string(),
            id: field("span").ok_or("span id missing")?,
            parent: field("parent"),
            name: field("name").ok_or("span name missing")?,
            duration_us: num("duration_us").unwrap_or(0),
        });
    }
    Ok(out)
}
