//! The paper's second motivating example (§1): *"find the top-20 stocks
//! having the largest total transaction volumes from 02/05/2011 to
//! 02/07/2011"* — a `sum` aggregate over a short multi-day window, plus
//! the §4 update path: the market keeps trading, segments are appended at
//! the right edge, and the index answers fresh queries without a rebuild.
//!
//! Run with: `cargo run --release --example stock_volumes`

use chronorank::core::{AggKind, Exact3, IndexConfig, RankMethod};
use chronorank::curve::Segment;
use chronorank::workloads::{DatasetGenerator, StockConfig, StockGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1,000 tickers × 60 trading days, 8 intraday readings each.
    let gen =
        StockGenerator::new(StockConfig { objects: 1000, days: 60, readings_per_day: 8, seed: 11 });
    let mut set = gen.generate_set();
    let exact3 = Exact3::build(&set, IndexConfig::default())?;

    // "Total volume over days 40–42" (a 3-day window like 02/05–02/07).
    let (t1, t2) = (40.0, 43.0);
    let top = exact3.top_k(t1, t2, 20, AggKind::Sum)?;
    println!("top-20 tickers by total volume over days 40-42:");
    for (rank, &(id, vol)) in top.entries().iter().enumerate() {
        println!("  #{:<2} ticker {:<5} volume {:.1}", rank + 1, id, vol);
    }

    // The market trades on: append day 61 for every ticker (the paper's §4
    // right-edge update model, O(log_B N) per appended segment).
    println!("\nappending one more trading day for all {} tickers…", set.num_objects());
    for id in 0..set.num_objects() as u32 {
        let end = set.object(id)?.curve.end();
        let v_end = set.object(id)?.curve.eval(end).unwrap_or(0.0);
        // A flat half-day tick roughly continuing the last level.
        let seg = Segment::new(end, v_end, end + 0.5, v_end);
        set.append_segment(id, seg.t1, seg.v1)?;
        exact3.append_segment(id, seg)?;
    }

    // Query the freshly appended region.
    let fresh_start = set.t_max() - 0.6;
    let fresh = exact3.top_k(fresh_start, set.t_max(), 5, AggKind::Sum)?;
    println!("top-5 by volume in the just-appended half-day:");
    for (rank, &(id, vol)) in fresh.entries().iter().enumerate() {
        println!("  #{:<2} ticker {:<5} volume {:.1}", rank + 1, id, vol);
    }
    println!(
        "interval tree tail: {} appended entries; rebuild due: {}",
        set.num_objects(),
        exact3.needs_rebuild()
    );

    // Sanity: the index agrees with brute force after the updates.
    let want = set.top_k_bruteforce(fresh_start, set.t_max(), 5);
    assert_eq!(want.ids(), fresh.ids(), "index must agree with brute force");
    println!("verified against brute-force ground truth ✓");
    Ok(())
}
