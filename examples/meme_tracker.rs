//! Memetracker-style analysis (the paper's second dataset): *"how
//! different quotes and phrases compete for coverage every day and how some
//! quickly fade out of use while others persist"*. Demonstrates the
//! approximate methods where they shine — bursty data, large `m`, queries
//! that must not touch all `m` objects — and compares all five APPX
//! variants' quality against the exact answer (paper Figures 19–20).
//!
//! Run with: `cargo run --release --example meme_tracker`

use chronorank::core::metrics;
use chronorank::core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact3, IndexConfig, RankMethod,
};
use chronorank::workloads::{DatasetGenerator, MemeConfig, MemeGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = MemeGenerator::new(MemeConfig {
        objects: 10_000,
        avg_segments: 67,
        span: 10_000.0,
        seed: 5,
    })
    .generate_set();
    println!(
        "meme dataset: m = {}, N = {}, bursty and heavy-tailed",
        set.num_objects(),
        set.num_segments()
    );

    let exact3 = Exact3::build(&set, IndexConfig::default())?;
    let (t1, t2) = (3000.0, 5000.0);
    let k = 20;
    let exact = exact3.top_k(t1, t2, k, AggKind::Sum)?;
    println!("\nexact top-{k} phrases by total coverage on [{t1}, {t2}]:");
    for (rank, &(id, s)) in exact.entries().iter().take(5).enumerate() {
        println!("  #{:<2} phrase {:<6} coverage {:.1}", rank + 1, id, s);
    }
    println!("  … ({} more)", k - 5);

    println!(
        "\n{:<9} {:>10} {:>12} {:>11} {:>10} {:>10}",
        "method", "size KiB", "build ms", "query IOs", "prec", "ratio"
    );
    for variant in ApproxVariant::ALL {
        let t0 = std::time::Instant::now();
        let idx = ApproxIndex::build(
            &set,
            variant,
            ApproxConfig { r: 128, kmax: 64, ..Default::default() },
        )?;
        let build_ms = t0.elapsed().as_millis();
        idx.drop_caches()?;
        idx.reset_io();
        let answer = idx.top_k(t1, t2, k, AggKind::Sum)?;
        let ios = idx.io_stats().reads;
        let prec = metrics::precision(&exact, &answer);
        let ratio = metrics::approximation_ratio(&set, &answer, t1, t2);
        println!(
            "{:<9} {:>10} {:>12} {:>11} {:>10.3} {:>10.3}",
            idx.name(),
            idx.size_bytes() / 1024,
            build_ms,
            ios,
            prec,
            ratio.mean
        );
    }

    exact3.drop_caches()?;
    exact3.reset_io();
    let _ = exact3.top_k(t1, t2, k, AggKind::Sum)?;
    println!(
        "{:<9} {:>10} {:>12} {:>11} {:>10.3} {:>10.3}",
        "EXACT3",
        exact3.size_bytes() / 1024,
        "-",
        exact3.io_stats().reads,
        1.0,
        1.0
    );
    println!(
        "\nAPPX* answer from KiB-scale indexes in a handful of IOs; EXACT3 pays m/B per stab."
    );
    Ok(())
}
