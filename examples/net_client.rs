//! Drive a running `net_server` over its wire protocol.
//!
//! Connects, pings, then runs a pipelined Zipf query stream closed-loop
//! and prints throughput, latency percentiles, the server's route mix,
//! and its STATS counters. Against a `--live` server, `--append` streams
//! a batch of right-edge appends first and shows the answers' freshness
//! metadata (`appends_applied`) moving.
//!
//! ```text
//! cargo run --release --example net_client -- 127.0.0.1:7171
//!     [--queries N] [--depth D] [--append]
//! ```

use chronorank::core::AppendRecord;
use chronorank::net::NetClient;
use chronorank::serve::ServeQuery;
use chronorank::workloads::{
    ClosedLoopTraffic, IntervalPattern, QueryWorkloadConfig, TrafficConfig,
};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .first()
        .cloned()
        .ok_or("usage: net_client <addr> [--queries N] [--depth D] [--append]")?;
    let mut queries = 400usize;
    let mut depth = 8usize;
    let mut append = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--append" => append = true,
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).ok_or("bad --queries")?;
            }
            "--depth" => {
                i += 1;
                depth = args.get(i).and_then(|v| v.parse().ok()).ok_or("bad --depth")?;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    if queries == 0 || depth == 0 {
        return Err("--queries and --depth must be at least 1".into());
    }

    let mut client = NetClient::connect(&addr)?;
    let echo = client.ping(b"chronorank")?;
    println!("connected to {addr} (ping echoed {} bytes)", echo.len());

    // STATS reports the served time domain, so the traffic plan matches
    // whatever dataset the server is fronting.
    let stats = client.stats()?;
    println!(
        "server: {} backend, {} shards, domain [{:.1}, {:.1}], {} queries / {} appends so far",
        if stats.live_backend == 1 { "live" } else { "serve" },
        stats.workers,
        stats.t_min,
        stats.t_max,
        stats.queries,
        stats.appends
    );
    let (t_min, t_max) = (stats.t_min, stats.t_max);

    if append {
        if stats.live_backend != 1 {
            return Err("--append needs a --live server".into());
        }
        let before = client.topk(ServeQuery::exact(t_min, t_max, 3))?;
        let recs: Vec<AppendRecord> = (0..64)
            .map(|j| AppendRecord { object: j % 8, t: t_max + 1.0 + j as f64, v: 99.0 })
            .collect();
        let ok = client.append_batch(&recs)?;
        let after = client.topk(ServeQuery::exact(t_min, t_max + 65.0, 3))?;
        println!(
            "appended {} records (total {}); appends_applied moved {} -> {}",
            ok.accepted, ok.total_appends, before.appends_applied, after.appends_applied
        );
    }

    // A Zipf stream: a few hot intervals, mixed exact / ε-tolerant.
    let plan = ClosedLoopTraffic::new(
        TrafficConfig {
            clients: 1,
            queries_per_client: queries,
            workload: QueryWorkloadConfig {
                span_fraction: 0.2,
                k: 10,
                seed: 7,
                pattern: IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 },
                ..Default::default()
            },
        },
        t_min,
        t_max,
    );
    let stream: Vec<ServeQuery> = plan.streams()[0]
        .iter()
        .enumerate()
        .map(|(j, q)| {
            if j % 2 == 0 {
                ServeQuery::exact(q.t1, q.t2, q.k)
            } else {
                ServeQuery::approx(q.t1, q.t2, q.k, 0.2)
            }
        })
        .collect();

    let outcome = client.pipeline_topk(&stream, depth)?;
    let mut lat_us: Vec<u128> = outcome.latencies.iter().map(|d| d.as_micros()).collect();
    lat_us.sort_unstable();
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let mut routes: HashMap<&'static str, usize> = HashMap::new();
    for a in &outcome.answers {
        *routes.entry(a.route.name()).or_default() += 1;
    }
    let mut route_mix: Vec<_> = routes.into_iter().collect();
    route_mix.sort();
    println!(
        "pipelined {} queries at depth {depth}: {:.0} q/s, latency p50 {} µs / p95 {} µs / p99 {} µs, {} busy retries",
        stream.len(),
        stream.len() as f64 / outcome.elapsed.as_secs_f64(),
        pct(0.50),
        pct(0.95),
        pct(0.99),
        outcome.busy_retries
    );
    println!("route mix: {route_mix:?}");
    let top = &outcome.answers[0];
    println!(
        "sample answer: route {} (eps {:?}), top-3 ids {:?}",
        top.route.name(),
        top.eps_used,
        &top.topk.ids()[..top.topk.len().min(3)]
    );
    let stats = client.stats()?;
    println!(
        "server counters: frames in/out {}/{}, busy rejections {}, connections {}",
        stats.frames_in, stats.frames_out, stats.busy_rejections, stats.connections
    );
    Ok(())
}
