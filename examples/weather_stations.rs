//! The paper's first motivating example (§1): *"return the top-10 weather
//! stations having the highest average temperature from 10/01/2010 to
//! 10/07/2010"* — plus what makes aggregate ranking different from the
//! instant top-k of the prior work: a steady station can win the week while
//! never being the hottest at any single instant (Figure 2's point).
//!
//! Run with: `cargo run --release --example weather_stations`

use chronorank::core::{AggKind, Exact3, IndexConfig, RankMethod};
use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One object per station; the time unit is hours over a ~6-week window.
    let set = TempGenerator::new(TempConfig {
        objects: 2000,
        avg_segments: 1000,
        seed: 7,
        dropout: 0.02,
    })
    .generate_set();
    let exact3 = Exact3::build(&set, IndexConfig::default())?;

    // A one-week query window (168 hours) somewhere in the middle.
    let t1 = set.t_min() + 0.5 * set.span();
    let t2 = (t1 + 168.0).min(set.t_max());

    // Aggregate top-10 by average temperature.
    let weekly = exact3.top_k(t1, t2, 10, AggKind::Avg)?;
    println!("top-10 stations by average temperature over [{t1:.0}h, {t2:.0}h]:");
    for (rank, &(id, avg)) in weekly.entries().iter().enumerate() {
        println!("  #{:<2} station {:<5} avg {:.2} K", rank + 1, id, avg);
    }

    // Contrast with instant top-k at the window's midpoint (the prior
    // work's query): the instant winner is often not the weekly winner.
    let mid = 0.5 * (t1 + t2);
    let instant = exact3.instant_top_k(mid, 10)?;
    println!("\ninstant top-10 at t = {mid:.0}h (top-k(t) of [15]):");
    for (rank, &(id, v)) in instant.entries().iter().enumerate() {
        println!("  #{:<2} station {:<5} reading {:.2} K", rank + 1, id, v);
    }

    let weekly_ids: std::collections::HashSet<_> = weekly.ids().into_iter().collect();
    let overlap = instant.ids().iter().filter(|id| weekly_ids.contains(id)).count();
    println!(
        "\noverlap between the two answers: {overlap}/10 — the aggregate query \
         rewards sustained heat, the instant query rewards a momentary spike"
    );

    // The outlier-sensitivity argument (§1): a one-hour 400 K sensor glitch
    // would own the instant ranking at that moment, but shifts a weekly
    // aggregate of this magnitude by well under a percent.
    let weekly_mass = weekly.rank(9).1 * (t2 - t1);
    println!(
        "a one-hour 400 K sensor glitch shifts a weekly aggregate by only \
         {:.2} % — aggregate ranking is robust to outliers",
        100.0 * 400.0 / weekly_mass
    );
    Ok(())
}
