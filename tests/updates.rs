//! Integration tests for the paper's §4 update model: segments appended at
//! the right time edge, indexes staying correct through appends, amortized
//! rebuilds triggering at the documented thresholds.

use chronorank::core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact1, Exact2, Exact3, IndexConfig,
    RankMethod,
};
use chronorank::curve::Segment;
use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};

fn setup() -> chronorank::core::TemporalSet {
    TempGenerator::new(TempConfig { objects: 40, avg_segments: 30, seed: 13, dropout: 0.0 })
        .generate_set()
}

/// Apply one append to the set and all three exact indexes.
fn append_everywhere(
    set: &mut chronorank::core::TemporalSet,
    e1: &Exact1,
    e2: &Exact2,
    e3: &Exact3,
    id: u32,
    dt: f64,
    v: f64,
) {
    let end = set.object(id).unwrap().curve.end();
    let v_end = set.object(id).unwrap().curve.eval(end).unwrap();
    let seg = Segment::new(end, v_end, end + dt, v);
    set.append_segment(id, seg.t1, seg.v1).unwrap();
    e1.append_segment(id, seg).unwrap();
    e2.append_segment(id, seg).unwrap();
    e3.append_segment(id, seg).unwrap();
}

#[test]
fn all_exact_methods_stay_correct_through_appends() {
    let mut set = setup();
    let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
    let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    // A few hundred appends round-robin across objects, values varied.
    for step in 0..300u32 {
        let id = step % set.num_objects() as u32;
        let v = 1.0 + (step % 17) as f64;
        append_everywhere(&mut set, &e1, &e2, &e3, id, 0.5 + (step % 3) as f64, v);
        if step % 60 == 0 {
            // Check both an old window and the fresh edge.
            for (a, b) in [
                (set.t_min(), set.t_min() + 10.0),
                (set.t_max() - 8.0, set.t_max()),
                (set.t_min(), set.t_max()),
            ] {
                let want = set.top_k_bruteforce(a, b, 6);
                for (m, label) in [
                    (&e1 as &dyn RankMethod, "EXACT1"),
                    (&e2 as &dyn RankMethod, "EXACT2"),
                    (&e3 as &dyn RankMethod, "EXACT3"),
                ] {
                    let got = m.top_k(a, b, 6, AggKind::Sum).unwrap();
                    assert_eq!(want.len(), got.len());
                    for j in 0..want.len() {
                        let d = (want.rank(j).1 - got.rank(j).1).abs();
                        assert!(
                            d <= 1e-7 * (1.0 + want.rank(j).1.abs()),
                            "{label} step {step} rank {j}"
                        );
                    }
                }
            }
        }
    }
    assert_eq!(e1.num_segments(), set.num_segments());
    assert_eq!(e3.num_entries(), set.num_segments());
}

#[test]
fn exact3_tail_rebuild_preserves_answers() {
    let mut set = setup();
    let mut e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    for step in 0..400u32 {
        let id = step % set.num_objects() as u32;
        let end = set.object(id).unwrap().curve.end();
        let v_end = set.object(id).unwrap().curve.eval(end).unwrap();
        let seg = Segment::new(end, v_end, end + 1.0, 2.0);
        set.append_segment(id, seg.t1, seg.v1).unwrap();
        e3.append_segment(id, seg).unwrap();
    }
    assert!(e3.needs_rebuild(), "400 appends over ~1200 base segments must trip the threshold");
    let before = e3.top_k(set.t_min(), set.t_max(), 8, AggKind::Sum).unwrap();
    e3.rebuild(&set).unwrap();
    let after = e3.top_k(set.t_min(), set.t_max(), 8, AggKind::Sum).unwrap();
    assert_eq!(before.ids(), after.ids());
    for (b, a) in before.scores().iter().zip(after.scores()) {
        assert!((b - a).abs() <= 1e-7 * (1.0 + b.abs()));
    }
    assert!(!e3.needs_rebuild());
}

#[test]
fn approx_mass_doubling_policy() {
    let mut set = setup();
    let mut idx = ApproxIndex::build(
        &set,
        ApproxVariant::APPX1,
        ApproxConfig { r: 16, kmax: 8, ..Default::default() },
    )
    .unwrap();
    // Appends that do NOT double the mass must not rebuild.
    let id = 0u32;
    let end = set.object(id).unwrap().curve.end();
    set.append_segment(id, end + 1.0, 1.0).unwrap();
    assert!(!idx.maybe_rebuild(&set).unwrap());
    // Now double the mass with one huge segment.
    let need = 2.1 * set.total_mass();
    let end = set.object(id).unwrap().curve.end();
    let dt = 50.0;
    set.append_segment(id, end + dt, 2.0 * need / dt).unwrap();
    assert!(idx.maybe_rebuild(&set).unwrap(), "mass doubled → rebuild");
    // The rebuilt index sees the new data.
    let top = idx.top_k(end, set.t_max(), 1, AggKind::Sum).unwrap();
    assert_eq!(top.ids(), vec![0]);
}
