//! Columnar-tail and batch-execution agreement (ISSUE 10 acceptance):
//!
//! (a) property test (`PROPTEST_CASES`-scaled): a `ColumnarTail` fed an
//!     append stream is **bit-identical** to the row-wise
//!     `PiecewiseLinear` path — per-object integrals, batch integrals,
//!     and multi-window integrals agree to the last bit at *every* stream
//!     prefix, across mid-stream `freeze()` compactions;
//! (b) `query_batch` on both engines (serve and live) is bit-identical to
//!     issuing the same queries one at a time, for W ∈ {1, 4} (plus
//!     `$CHRONORANK_AGREEMENT_W`), on windows full of duplicates, snapped
//!     neighbours, and mixed exact/approx tolerances;
//! (c) probe-dedup regression: a batch window of probe-identical queries
//!     costs each shard's result cache exactly **one** lookup, where the
//!     same queries issued solo cost one lookup each.

use chronorank::core::{TemporalSet, TopK};
use chronorank::live::{IngestEngine, LiveConfig};
use chronorank::serve::{ServeConfig, ServeEngine, ServeQuery};
use chronorank::workloads::{
    AppendStream, AppendStreamConfig, DatasetGenerator, StockConfig, StockGenerator, TempConfig,
    TempGenerator,
};
use proptest::prelude::*;

/// {1, 4} plus `$CHRONORANK_AGREEMENT_W` when set (the CI wide sweep).
fn worker_widths() -> Vec<usize> {
    let mut widths = vec![1usize, 4];
    if let Ok(w) = std::env::var("CHRONORANK_AGREEMENT_W") {
        let w: usize = w.parse().expect("CHRONORANK_AGREEMENT_W must be a worker count");
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    widths
}

/// Bit-identical comparison: same ids, same score bits.
fn assert_bit_identical(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    assert_eq!(want.ids(), got.ids(), "{ctx}: ids");
    for (j, (ws, gs)) in want.scores().iter().zip(got.scores()).enumerate() {
        assert_eq!(ws.to_bits(), gs.to_bits(), "{ctx} rank {j}: {ws} vs {gs}");
    }
}

fn temp_set(objects: usize) -> TemporalSet {
    TempGenerator::new(TempConfig { objects, avg_segments: 30, seed: 47, dropout: 0.0 })
        .generate_set()
}

/// A mixed admission window over `set`: duplicated exact probes, distinct
/// exact probes, snapped-together approximate neighbours, and a stray k.
fn mixed_window(set: &TemporalSet) -> Vec<ServeQuery> {
    let (lo, span) = (set.t_min(), set.span());
    let (a, b) = (lo + 0.2 * span, lo + 0.7 * span);
    vec![
        ServeQuery::exact(a, b, 6),
        ServeQuery::exact(a, b, 6), // exact duplicate of [0]
        ServeQuery::exact(lo + 0.05 * span, lo + 0.3 * span, 6),
        ServeQuery::approx(a, b, 5, 0.5),
        ServeQuery::approx(a + 1e-9 * span, b - 1e-9 * span, 5, 0.5), // snaps with [3]
        ServeQuery::approx(a, b, 3, 0.5),                             // same interval, different k
        ServeQuery::exact(a, b, 9),                                   // same interval, different k
    ]
}

#[test]
fn serve_query_batch_is_bit_identical_to_solo_queries() {
    let set = temp_set(60);
    let window = mixed_window(&set);
    for w in worker_widths() {
        let batched =
            ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
        let solo =
            ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
        let got = batched.query_batch(&window).unwrap();
        assert_eq!(got.len(), window.len());
        for (i, q) in window.iter().enumerate() {
            let want = solo.query(*q).unwrap();
            assert_bit_identical(&want, &got[i], &format!("serve W={w} query {i}"));
        }
        // W ∈ {1, 4} again as batch size 1 and 4: degenerate windows too.
        for sub in [&window[..1], &window[..4]] {
            let got = batched.query_batch(sub).unwrap();
            for (i, q) in sub.iter().enumerate() {
                let want = solo.query(*q).unwrap();
                assert_bit_identical(&want, &got[i], &format!("serve W={w} sub {i}"));
            }
        }
        assert!(batched.query_batch(&[]).unwrap().is_empty());
    }
}

#[test]
fn live_query_batch_is_bit_identical_to_solo_queries() {
    let generator =
        TempGenerator::new(TempConfig { objects: 40, avg_segments: 24, seed: 29, dropout: 0.0 });
    let stream = AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch: 24, skew: 0.0, seed: 31 },
    );
    let seed = stream.base_set();
    for w in worker_widths() {
        let mut batched =
            IngestEngine::new(&seed, LiveConfig { workers: w, ..Default::default() }).unwrap();
        let mut solo =
            IngestEngine::new(&seed, LiveConfig { workers: w, ..Default::default() }).unwrap();
        for (i, batch) in stream.batches().enumerate() {
            batched.append_batch(batch).unwrap();
            solo.append_batch(batch).unwrap();
            if i % 4 != 0 {
                continue;
            }
            // Probe mid-stream so the windows hit mutable columnar tails,
            // not just frozen generations.
            let window = mixed_window(batched.live_set());
            let got = batched.query_batch(&window).unwrap();
            for (j, q) in window.iter().enumerate() {
                let want = solo.query(*q).unwrap();
                assert_bit_identical(&want, &got[j], &format!("live W={w} batch {i} query {j}"));
            }
        }
    }
}

#[test]
fn batch_window_of_identical_queries_costs_one_cache_lookup_per_shard() {
    let set = temp_set(60);
    let (lo, span) = (set.t_min(), set.span());
    let q = ServeQuery::approx(lo + 0.2 * span, lo + 0.7 * span, 5, 0.5);
    let w = 2;

    // Serve tier: the window's eight probe-identical queries form one
    // group, so each shard's result cache sees exactly one (cold) lookup…
    let batched = ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
    assert!(
        batched.route_for(&q).cacheable(),
        "the ε budget must admit a snap-keyed route for this regression to bite"
    );
    let window = vec![q; 8];
    let got = batched.query_batch(&window).unwrap();
    let r = batched.report();
    assert_eq!(r.cache_lookups, w as u64, "one lookup per shard for the whole window");
    assert_eq!(r.cache_hits, 0, "a deduped window never re-asks its own probe");
    // …where the same queries issued solo cost one lookup each.
    let solo = ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
    let mut want = Vec::new();
    for q in &window {
        want.push(solo.query(*q).unwrap());
    }
    let r = solo.report();
    assert_eq!(r.cache_lookups, 8 * w as u64);
    assert_eq!(r.cache_hits, 7 * w as u64, "solo repeats hit the cache after the first miss");
    for (i, w) in want.iter().enumerate() {
        assert_bit_identical(w, &got[i], &format!("dedup vs solo {i}"));
    }

    // Live tier: same contract through the ingest engine's shard caches.
    let live = IngestEngine::new(&set, LiveConfig { workers: w, ..Default::default() }).unwrap();
    assert!(live.route_for(&q).cacheable());
    live.query_batch(&window).unwrap();
    let r = live.report();
    assert_eq!(r.cache_lookups, w as u64, "live: one lookup per shard for the whole window");
    assert_eq!(r.cache_hits, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) The columnar tail is bit-identical to the row path at every
    /// append-stream prefix: per-object integrals, the batch kernel, and
    /// multi-window gathers all reproduce `PiecewiseLinear::integral` to
    /// the last bit, with `freeze()` compactions interleaved mid-stream.
    #[test]
    fn columnar_tail_matches_row_path_at_every_prefix(
        seed_sel in 0u64..1000,
        batch in 4usize..24,
        skew in 0.0f64..1.5,
    ) {
        let generator = StockGenerator::new(StockConfig {
            objects: 10,
            days: 5,
            readings_per_day: 6,
            seed: seed_sel,
        });
        let stream = AppendStream::from_generator(
            &generator,
            AppendStreamConfig { base_fraction: 0.4, batch, skew, seed: 31 },
        );
        let base = stream.base_set();
        let mut columns = base.to_columnar();
        let mut rows = base.objects().to_vec();
        let ids: Vec<u32> = (0..columns.num_objects()).map(|i| i as u32).collect();
        for (b, recs) in stream.batches().enumerate() {
            for rec in recs {
                let (pt, pv) = columns.append(rec.object as usize, rec.t, rec.v).unwrap();
                let o = &rows[rec.object as usize].curve;
                let last = o.segments().last().unwrap();
                prop_assert_eq!(pt.to_bits(), o.end().to_bits());
                prop_assert_eq!(pv.to_bits(), last.v1.to_bits());
                rows[rec.object as usize].curve.append(rec.t, rec.v).unwrap();
            }
            // Freeze (compact log → base) on some prefixes: integrals must
            // not move a bit across the epoch bump.
            if b % 3 == 2 {
                columns.freeze();
            }
            let hi = rows.iter().map(|o| o.curve.end()).fold(f64::NEG_INFINITY, f64::max);
            let lo = base.t_min();
            let windows =
                [(lo, hi), (lo, lo + 0.3 * (hi - lo)), (lo + 0.6 * (hi - lo), hi + 1.0)];
            for (a, z) in windows {
                for (i, o) in rows.iter().enumerate() {
                    prop_assert_eq!(
                        columns.integral(i, a, z).to_bits(),
                        o.curve.integral(a, z).to_bits(),
                        "object {} window [{}, {}] after batch {}", i, a, z, b
                    );
                }
                let mut batch_scores = Vec::new();
                columns.integral_batch(&ids, a, z, &mut batch_scores);
                for (i, s) in batch_scores.iter().enumerate() {
                    prop_assert_eq!(s.to_bits(), rows[i].curve.integral(a, z).to_bits());
                }
            }
            let mut multi = Vec::new();
            columns.integral_multi(&ids, &windows, &mut multi);
            for (wi, (a, z)) in windows.iter().enumerate() {
                for (i, o) in rows.iter().enumerate() {
                    prop_assert_eq!(
                        multi[wi * ids.len() + i].to_bits(),
                        o.curve.integral(*a, *z).to_bits()
                    );
                }
            }
        }
    }
}
