//! Disk persistence: the index substrates round-trip through real files
//! (the paper's structures are disk-resident; everything must survive a
//! flush + reopen through the file-backed environment).

use chronorank::index::{BPlusTree, BulkLoader, IntervalEntry, IntervalTree};
use chronorank::storage::{Env, FileDevice, PagedFile, StoreConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("chronorank-persist-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn btree_survives_reopen_from_disk() {
    let dir = tmpdir("btree");
    let cfg = StoreConfig { block_size: 512, pool_capacity: 16 };
    {
        let env = Env::dir(&dir, cfg).unwrap();
        let mut loader = BulkLoader::new(env.create_file("tree").unwrap(), 8).unwrap();
        for i in 0..5000u64 {
            loader.push(i as f64 * 0.5, &i.to_le_bytes()).unwrap();
        }
        let tree = loader.finish().unwrap();
        tree.insert(123.25, &999_999u64.to_le_bytes()).unwrap();
        tree.flush().unwrap();
    }
    // Reopen through a fresh device + pool.
    let device = FileDevice::open(&dir.join("tree"), 512).unwrap();
    let file = PagedFile::new(Box::new(device), cfg, Default::default());
    let tree = BPlusTree::open(file).unwrap();
    assert_eq!(tree.len(), 5001);
    let c = tree.seek(123.25).unwrap();
    assert!(c.valid());
    assert_eq!(c.key(), 123.25);
    // Scan a range across leaf boundaries.
    let mut c = tree.seek(1000.0).unwrap();
    let mut count = 0;
    while c.valid() && c.key() < 1010.0 {
        count += 1;
        c.advance().unwrap();
    }
    assert_eq!(count, 20, "20 half-step keys in [1000, 1010)");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interval_tree_survives_reopen_from_disk() {
    let dir = tmpdir("itree");
    let cfg = StoreConfig { block_size: 512, pool_capacity: 16 };
    {
        let env = Env::dir(&dir, cfg).unwrap();
        let entries: Vec<IntervalEntry> = (0..2000u32)
            .map(|i| IntervalEntry {
                lo: i as f64,
                hi: i as f64 + 10.0,
                payload: i.to_le_bytes().to_vec(),
            })
            .collect();
        let tree = IntervalTree::build(env.create_file("itree").unwrap(), 4, entries).unwrap();
        tree.append(2500.0, 2600.0, &7777u32.to_le_bytes()).unwrap();
        tree.flush().unwrap();
    }
    let device = FileDevice::open(&dir.join("itree"), 512).unwrap();
    let file = PagedFile::new(Box::new(device), cfg, Default::default());
    let tree = IntervalTree::open(file).unwrap();
    assert_eq!(tree.len(), 2001);
    let mut hits = Vec::new();
    tree.stab(1005.5, &mut |_, _, p| {
        hits.push(u32::from_le_bytes(p.try_into().unwrap()));
    })
    .unwrap();
    hits.sort();
    // Intervals [996,1006]..[1005,1015] contain 1005.5.
    assert_eq!(hits, (996..=1005).collect::<Vec<u32>>());
    let mut tail_hits = 0;
    tree.stab(2550.0, &mut |_, _, _| tail_hits += 1).unwrap();
    assert_eq!(tail_hits, 1, "appended tail entry visible after reopen");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backed_env_counts_ios_like_memory() {
    // IO accounting must be identical for MemDevice and FileDevice — the
    // benchmark numbers are device-independent.
    let dir = tmpdir("parity");
    let cfg = StoreConfig { block_size: 512, pool_capacity: 8 };
    let run = |env: Env| -> (u64, u64) {
        let f = env.create_file("data").unwrap();
        let first = f.allocate(64).unwrap();
        let buf = vec![0xAB; 512];
        for i in 0..64 {
            f.write(first + i, &buf).unwrap();
        }
        f.drop_cache().unwrap();
        let mut out = vec![0u8; 512];
        for i in (0..64).step_by(3) {
            f.read(first + i, &mut out).unwrap();
        }
        let s = env.io_stats();
        (s.reads, s.writes)
    };
    let mem = run(Env::mem(cfg));
    let file = run(Env::dir(&dir, cfg).unwrap());
    assert_eq!(mem, file, "identical workloads must count identical IOs");
    std::fs::remove_dir_all(&dir).ok();
}
