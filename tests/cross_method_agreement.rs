//! Cross-crate integration: every exact method must agree with brute force
//! (and hence with each other) on realistic generated datasets, and every
//! approximate method must satisfy its paper guarantee.

use chronorank::core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact1, Exact2, Exact3, IndexConfig,
    RankMethod, TemporalSet, TopK,
};
use chronorank::workloads::{
    DatasetGenerator, MemeConfig, MemeGenerator, QueryWorkload, QueryWorkloadConfig, TempConfig,
    TempGenerator,
};

fn assert_answers_match(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    for j in 0..want.len() {
        let (wid, ws) = want.rank(j);
        let (gid, gs) = got.rank(j);
        let scale = 1.0_f64.max(ws.abs());
        assert!((ws - gs).abs() <= 1e-7 * scale, "{ctx} rank {j}: {ws} vs {gs}");
        if wid != gid {
            // Ties may permute; the scores must then be equal.
            assert!(
                want.entries().iter().any(|&(id, s)| id == gid && (s - ws).abs() <= 1e-7 * scale),
                "{ctx} rank {j}: ids {wid}/{gid} differ without a tie"
            );
        }
    }
}

fn datasets() -> Vec<(&'static str, TemporalSet)> {
    vec![
        (
            "temp",
            TempGenerator::new(TempConfig {
                objects: 120,
                avg_segments: 60,
                seed: 31,
                dropout: 0.05,
            })
            .generate_set(),
        ),
        (
            "meme",
            MemeGenerator::new(MemeConfig {
                objects: 150,
                avg_segments: 30,
                span: 2000.0,
                seed: 32,
            })
            .generate_set(),
        ),
    ]
}

#[test]
fn exact_methods_agree_with_bruteforce_everywhere() {
    for (name, set) in datasets() {
        let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
        let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
        let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
        let queries = QueryWorkload::new(
            QueryWorkloadConfig {
                count: 12,
                span_fraction: 0.25,
                k: 10,
                seed: 5,
                ..Default::default()
            },
            set.t_min(),
            set.t_max(),
        )
        .generate();
        for q in queries {
            let want = set.top_k_bruteforce(q.t1, q.t2, q.k);
            for (m, label) in [
                (&e1 as &dyn RankMethod, "EXACT1"),
                (&e2 as &dyn RankMethod, "EXACT2"),
                (&e3 as &dyn RankMethod, "EXACT3"),
            ] {
                let got = m.top_k(q.t1, q.t2, q.k, AggKind::Sum).unwrap();
                assert_answers_match(&want, &got, &format!("{label} on {name}"));
            }
        }
    }
}

#[test]
fn approx_methods_satisfy_their_guarantees() {
    for (name, set) in datasets() {
        for variant in ApproxVariant::ALL {
            let idx = ApproxIndex::build(
                &set,
                variant,
                ApproxConfig { r: 24, kmax: 12, ..Default::default() },
            )
            .unwrap();
            let em = idx.breakpoints().eps() * idx.breakpoints().mass();
            let r = idx.breakpoints().len() as f64;
            let alpha = match variant.query {
                chronorank::core::QueryKind::Q1 => 1.0,
                chronorank::core::QueryKind::Q2 => 2.0 * r.log2().max(1.0),
            };
            let queries = QueryWorkload::new(
                QueryWorkloadConfig {
                    count: 8,
                    span_fraction: 0.3,
                    k: 8,
                    seed: 6,
                    ..Default::default()
                },
                set.t_min(),
                set.t_max(),
            )
            .generate();
            for q in queries {
                let exact = set.top_k_bruteforce(q.t1, q.t2, q.k);
                let approx = idx.top_k(q.t1, q.t2, q.k, AggKind::Sum).unwrap();
                // Definition 2: at every rank j, σ̃_Ã(j) is an
                // (ε, α)-approximation of σ_A(j).
                for j in 0..approx.len().min(exact.len()) {
                    let sa = approx.rank(j).1;
                    let se = exact.rank(j).1;
                    let slack = 1e-7 * (1.0 + se.abs()) + 1e-9;
                    assert!(
                        sa >= se / alpha - em - slack,
                        "{} on {name} [{}, {}] rank {j}: {sa} < {se}/{alpha} - {em}",
                        variant.name(),
                        q.t1,
                        q.t2
                    );
                    assert!(
                        sa <= se + em + slack,
                        "{} on {name} [{}, {}] rank {j}: {sa} > {se} + {em}",
                        variant.name(),
                        q.t1,
                        q.t2
                    );
                }
            }
        }
    }
}

#[test]
fn avg_aggregate_consistent_across_methods() {
    let (_, set) = datasets().remove(0);
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    let (t1, t2) = (set.t_min() + 5.0, set.t_min() + 25.0);
    let by_sum = e3.top_k(t1, t2, 5, AggKind::Sum).unwrap();
    let by_avg = e3.top_k(t1, t2, 5, AggKind::Avg).unwrap();
    assert_eq!(by_sum.ids(), by_avg.ids(), "fixed interval: identical ranking");
    for (s, a) in by_sum.scores().iter().zip(by_avg.scores()) {
        assert!((s / (t2 - t1) - a).abs() < 1e-9);
    }
}

#[test]
fn io_accounting_shows_the_paper_ordering() {
    // The headline result: EXACT3 ≪ EXACT1/EXACT2 in query IOs at large m,
    // and APPX* ≪ EXACT3.
    let set =
        TempGenerator::new(TempConfig { objects: 400, avg_segments: 120, seed: 9, dropout: 0.02 })
            .generate_set();
    let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
    let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    let appx = ApproxIndex::build(
        &set,
        ApproxVariant::APPX2,
        ApproxConfig { r: 32, kmax: 16, ..Default::default() },
    )
    .unwrap();
    let (t1, t2) = (set.t_min() + 0.3 * set.span(), set.t_min() + 0.5 * set.span());
    let mut ios = Vec::new();
    for m in [&e1 as &dyn RankMethod, &e2, &e3, &appx] {
        m.drop_caches().unwrap();
        m.reset_io();
        m.top_k(t1, t2, 10, AggKind::Sum).unwrap();
        ios.push(m.io_stats().reads);
    }
    let (i1, i2, i3, ia) = (ios[0], ios[1], ios[2], ios[3]);
    assert!(i3 < i1, "EXACT3 ({i3}) must beat EXACT1 ({i1})");
    assert!(i3 < i2, "EXACT3 ({i3}) must beat EXACT2 ({i2})");
    assert!(ia * 3 < i3, "APPX2 ({ia}) must be far below EXACT3 ({i3})");
}
