//! End-to-end distributed tracing + SLO burn-rate acceptance (ISSUE 8).
//!
//! One wire query must produce ONE joined span tree: the client's root
//! span (`client.topk`) parents the server's `server.request` span via
//! the 16-byte trace-context tail, which parents `engine.query`, which
//! parents every `shard.probe`. The tree is retrieved over the TRACE
//! wire op as structured JSON and parsed here with the bench crate's
//! JSON parser — ids cross as 16-hex-digit strings precisely so this
//! round-trip is lossless.
//!
//! The same file exercises the SLO burn-rate engine end to end: a
//! healthy loopback server reports compliant windows in METRICS; a
//! server with an injected-latency storage device and a microsecond-
//! scale p99 objective flips the burn-rate gauges past budget.
//!
//! Everything lives in ONE test fn: the span sink and the metric
//! registry the server publishes into are process-global, and parallel
//! test threads would otherwise race on drains and gauge overwrites.

use std::time::Duration;

use chronorank::core::TemporalSet;
use chronorank::curve::PiecewiseLinear;
use chronorank::net::{NetClient, NetConfig, NetServer};
use chronorank::obs::{SloObjective, SpanSink};
use chronorank::serve::{ServeConfig, ServeQuery};
use chronorank_bench::json::{self, Json};

fn tiny_set(objects: usize) -> TemporalSet {
    let curves: Vec<_> = (0..objects)
        .map(|i| {
            PiecewiseLinear::from_points(&[
                (0.0, i as f64),
                (50.0, (objects - i) as f64),
                (100.0, i as f64 / 2.0),
            ])
            .unwrap()
        })
        .collect();
    TemporalSet::from_curves(curves).unwrap()
}

fn get<'a>(v: &'a Json, key: &str) -> &'a Json {
    match v {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {key:?} in {v:?}")),
        other => panic!("expected object with {key:?}, got {other:?}"),
    }
}

fn as_str(v: &Json) -> &str {
    match v {
        Json::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_arr(v: &Json) -> &[Json] {
    match v {
        Json::Arr(a) => a,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn wire_query_yields_one_joined_tree_and_slo_gauges_flip() {
    // ----- Phase 1: one traced query, one joined tree over TRACE. -----
    let server = NetServer::start_serve(
        tiny_set(24),
        ServeConfig { workers: 3, ..Default::default() },
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_span_sink(SpanSink::new(64));

    let (answer, trace) = client.topk_traced(ServeQuery::exact(10.0, 90.0, 4)).unwrap();
    assert_eq!(answer.topk.len(), 4);

    // The client kept exactly one root span for the call.
    let client_spans = client.span_sink().drain();
    assert_eq!(client_spans.len(), 1, "one client span per traced call");
    let root = &client_spans[0];
    assert_eq!(root.name, "client.topk");
    assert_eq!(root.trace, trace);
    assert_eq!(root.parent, None);

    // The server's side of the tree comes back over the TRACE wire op.
    let dump = client.trace_dump().unwrap();
    let doc = json::parse(&dump).unwrap_or_else(|e| panic!("TRACE is not valid JSON: {e}\n{dump}"));
    assert!(matches!(get(&doc, "spans_dropped"), Json::Num(_)));
    assert!(matches!(get(get(&doc, "slo"), "healthy"), Json::Bool(_)));

    let ours: Vec<&Json> = as_arr(get(&doc, "spans"))
        .iter()
        .filter(|s| as_str(get(s, "trace")) == trace.hex())
        .collect();
    let by_name = |name: &str| -> Vec<&&Json> {
        ours.iter().filter(|s| as_str(get(s, "name")) == name).collect()
    };

    let server_spans = by_name("server.request");
    assert_eq!(server_spans.len(), 1, "one server span per request:\n{dump}");
    let server_span = server_spans[0];
    assert_eq!(
        as_str(get(server_span, "parent")),
        root.id.hex(),
        "server span must hang off the client's wire-propagated span id"
    );

    let engine_spans = by_name("engine.query");
    assert_eq!(engine_spans.len(), 1, "one engine span per request:\n{dump}");
    let engine_span = engine_spans[0];
    assert_eq!(as_str(get(engine_span, "parent")), as_str(get(server_span, "span")));

    let probes = by_name("shard.probe");
    assert!(!probes.is_empty(), "scatter must record shard probes:\n{dump}");
    for probe in &probes {
        assert_eq!(as_str(get(probe, "parent")), as_str(get(engine_span, "span")));
    }
    // Nothing else claims membership in this trace: the tree is closed.
    assert_eq!(ours.len(), 2 + probes.len(), "unexpected extra spans:\n{dump}");

    // A healthy loopback server is within its (generous default) SLO.
    let text = client.metrics().unwrap();
    chronorank::obs::validate_exposition(&text).unwrap();
    assert!(
        text.contains("chronorank_slo_compliant{window=\"1s\"} 1"),
        "healthy server must report compliance:\n{text}"
    );
    server.shutdown();

    // ----- Phase 2: injected latency violates a tight objective. -----
    let server = NetServer::start_serve(
        tiny_set(24),
        ServeConfig {
            workers: 2,
            simulated_read_latency: Some(Duration::from_millis(2)),
            // No result cache and a one-frame buffer pool over small
            // blocks: every query must actually read the slow device, so
            // all 10 burn budget (cache/pool hits answer in microseconds
            // and would dodge the emulated latency entirely).
            cache_capacity: 0,
            store: chronorank::storage::StoreConfig { block_size: 512, pool_capacity: 1 },
            ..Default::default()
        },
        NetConfig {
            // Microsecond-scale target: every 2 ms-per-block query burns.
            slo: SloObjective { p99_target_us: 50, error_budget: 0.01 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for _ in 0..10 {
        client.topk(ServeQuery::exact(10.0, 90.0, 4)).unwrap();
    }
    let text = client.metrics().unwrap();
    chronorank::obs::validate_exposition(&text).unwrap();
    assert!(
        text.contains("chronorank_slo_compliant{window=\"1s\"} 0"),
        "violated objective must flip the compliance gauge:\n{text}"
    );
    // 100% bad over a 1% budget is a burn rate of 100 (milli: 100000).
    assert!(
        text.contains("chronorank_slo_burn_rate_milli{window=\"1s\"} 100000"),
        "burn rate must report the full budget overrun:\n{text}"
    );
    // The TRACE op reports the same verdict in its structured dump.
    let doc = json::parse(&client.trace_dump().unwrap()).unwrap();
    assert_eq!(get(get(&doc, "slo"), "healthy"), &Json::Bool(false));
    server.shutdown();
}
