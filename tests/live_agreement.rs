//! Live-ingest agreement (ISSUE 3 acceptance):
//!
//! (a) after **any** prefix of an append trace, the live engine's exact
//!     answers are bit-identical to a fresh bulk build over that prefix,
//!     for W ∈ {1, 4} (plus `$CHRONORANK_AGREEMENT_W` — CI re-runs at
//!     W = 8 with `RUST_TEST_THREADS` unpinned);
//! (b) WAL replay after a simulated crash reproduces the pre-crash
//!     answers bit-for-bit, with and without an intervening checkpoint;
//! (c) property test (`PROPTEST_CASES`-scaled): approximate answers —
//!     including ones served from the staleness-audited cache — never
//!     violate the ε·M budget against the live ground truth, no matter
//!     how appends interleave with queries.

use chronorank::core::{TemporalSet, TopK};
use chronorank::live::{IngestEngine, LiveConfig, RebuildPolicy};
use chronorank::serve::ServeQuery;
use chronorank::workloads::{
    AppendStream, AppendStreamConfig, StockConfig, StockGenerator, TempConfig, TempGenerator,
};
use proptest::prelude::*;

/// {1, 4} plus `$CHRONORANK_AGREEMENT_W` when set (the CI wide sweep).
fn worker_widths() -> Vec<usize> {
    let mut widths = vec![1usize, 4];
    if let Ok(w) = std::env::var("CHRONORANK_AGREEMENT_W") {
        let w: usize = w.parse().expect("CHRONORANK_AGREEMENT_W must be a worker count");
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    widths
}

fn temp_stream(objects: usize, batch: usize, skew: f64) -> AppendStream {
    let generator =
        TempGenerator::new(TempConfig { objects, avg_segments: 24, seed: 29, dropout: 0.0 });
    AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.45, batch, skew, seed: 31 },
    )
}

/// Bit-identical comparison: same ids, same score bits.
fn assert_bit_identical(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    assert_eq!(want.ids(), got.ids(), "{ctx}: ids");
    for (j, (ws, gs)) in want.scores().iter().zip(got.scores()).enumerate() {
        assert_eq!(ws.to_bits(), gs.to_bits(), "{ctx} rank {j}: {ws} vs {gs}");
    }
}

/// The acceptance queries at one checkpoint: an old window, the fresh
/// right edge, and the full span.
fn probe_windows(set: &TemporalSet) -> [(f64, f64); 3] {
    [
        (set.t_min(), set.t_min() + 0.2 * set.span()),
        (set.t_max() - 0.15 * set.span(), set.t_max()),
        (set.t_min(), set.t_max()),
    ]
}

#[test]
fn streamed_ingest_equals_fresh_bulk_build_at_every_prefix() {
    let stream = temp_stream(40, 24, 0.0);
    let seed = stream.base_set();
    for w in worker_widths() {
        let mut engine =
            IngestEngine::new(&seed, LiveConfig { workers: w, ..Default::default() }).unwrap();
        let mut oracle_objects = seed.objects().to_vec();
        for (i, batch) in stream.batches().enumerate() {
            engine.append_batch(batch).unwrap();
            for rec in batch {
                let o = &mut oracle_objects[rec.object as usize];
                o.curve.append(rec.t, rec.v).unwrap();
            }
            if i % 3 != 0 {
                continue;
            }
            // A genuinely fresh bulk build over the same prefix.
            let bulk = TemporalSet::from_objects(oracle_objects.clone()).unwrap();
            for (t1, t2) in probe_windows(&bulk) {
                let got = engine.query(ServeQuery::exact(t1, t2, 7)).unwrap();
                let want = bulk.top_k_bruteforce(t1, t2, 7);
                assert_bit_identical(&want, &got, &format!("W={w} batch {i} [{t1},{t2}]"));
            }
        }
        // The final live state is segment-for-segment the generator's bulk
        // output.
        assert_eq!(engine.live_set().num_segments(), stream.full_set().num_segments());
    }
}

#[test]
fn skewed_arrival_changes_nothing_about_answers() {
    // The same dataset streamed with bursty per-object arrival must agree
    // with the time-ordered trace at the end state.
    let flat = temp_stream(24, 16, 0.0);
    let skewed = temp_stream(24, 16, 1.5);
    let seed = flat.base_set();
    let mut a = IngestEngine::new(&seed, LiveConfig::default()).unwrap();
    let mut b = IngestEngine::new(&seed, LiveConfig::default()).unwrap();
    for batch in flat.batches() {
        a.append_batch(batch).unwrap();
    }
    for batch in skewed.batches() {
        b.append_batch(batch).unwrap();
    }
    let full = flat.full_set();
    for (t1, t2) in probe_windows(&full) {
        let qa = a.query(ServeQuery::exact(t1, t2, 6)).unwrap();
        let qb = b.query(ServeQuery::exact(t1, t2, 6)).unwrap();
        assert_bit_identical(&qa, &qb, &format!("[{t1},{t2}]"));
    }
}

#[test]
fn wal_replay_after_crash_reproduces_pre_crash_answers() {
    let dir = std::env::temp_dir().join(format!("chronorank-live-agree-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let stream = temp_stream(30, 20, 0.0);
    let seed = stream.base_set();
    let config = LiveConfig { workers: 4, wal_dir: Some(dir.clone()), ..Default::default() };
    let batches: Vec<_> = stream.batches().collect();
    let mid = batches.len() / 2;

    let mut pre_crash: Vec<(f64, f64, TopK)> = Vec::new();
    {
        let mut engine = IngestEngine::new(&seed, config.clone()).unwrap();
        for batch in &batches[..mid] {
            engine.append_batch(batch).unwrap();
        }
        // Checkpoint: snapshot + WAL truncation. Recovery must cope with
        // both the snapshot and the records logged after it.
        engine.checkpoint().unwrap();
        for batch in &batches[mid..] {
            engine.append_batch(batch).unwrap();
        }
        let live = engine.live_set().clone();
        for (t1, t2) in probe_windows(&live) {
            let top = engine.query(ServeQuery::exact(t1, t2, 8)).unwrap();
            pre_crash.push((t1, t2, top));
        }
        // Simulated crash: drop without checkpoint or graceful teardown.
    }
    {
        let recovered = IngestEngine::new(&seed, config.clone()).unwrap();
        for (t1, t2, want) in &pre_crash {
            let got = recovered.query(ServeQuery::exact(*t1, *t2, 8)).unwrap();
            assert_bit_identical(want, &got, &format!("recovered [{t1},{t2}]"));
        }
        // Recovery is idempotent: a second recovery sees the same state.
        drop(recovered);
        let again = IngestEngine::new(&seed, config.clone()).unwrap();
        let (t1, t2, want) = &pre_crash[2];
        let got = again.query(ServeQuery::exact(*t1, *t2, 8)).unwrap();
        assert_bit_identical(want, &got, "second recovery");
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (c) No ε-invalidated cache entry ever serves a stale result: run a
    /// cached engine and a cache-disabled twin through the same
    /// append/query interleaving and bound how far a (possibly cached,
    /// possibly stale-but-within-budget) answer may drift from the freshly
    /// computed one — plus an absolute guardrail against live truth.
    #[test]
    fn stale_cache_never_violates_the_eps_budget(
        seed_sel in 0u64..1000,
        eps in 0.05f64..0.45,
        batch in 4usize..24,
        k in 1usize..6,
        aggressive_sel in 0u32..2,
    ) {
        let generator = StockGenerator::new(StockConfig {
            objects: 12,
            days: 6,
            readings_per_day: 5,
            seed: seed_sel,
        });
        let stream = AppendStream::from_generator(
            &generator,
            AppendStreamConfig { base_fraction: 0.5, batch, ..Default::default() },
        );
        let seed = stream.base_set();
        let rebuild = if aggressive_sel == 1 {
            RebuildPolicy { mass_factor: 1.1, max_tail_segments: 16 }
        } else {
            // Never rebuild: the generation goes maximally stale, the
            // cache's staleness account does all the work.
            RebuildPolicy { mass_factor: f64::INFINITY, max_tail_segments: usize::MAX }
        };
        let config = LiveConfig { workers: 2, rebuild, ..Default::default() };
        let uncached_config = LiveConfig { cache_capacity: 0, ..config.clone() };
        let mut cached = IngestEngine::new(&seed, config).unwrap();
        let mut uncached = IngestEngine::new(&seed, uncached_config).unwrap();
        let mut oracle = seed.clone();
        // Two fixed hot intervals, re-asked after every batch (maximal
        // cache reuse while appends keep landing).
        let full = stream.full_set();
        let hot = [
            (full.t_min() + 0.1 * full.span(), full.t_min() + 0.6 * full.span()),
            (full.t_min() + 0.4 * full.span(), full.t_min() + 0.9 * full.span()),
        ];
        for batch in stream.batches() {
            cached.append_batch(batch).unwrap();
            uncached.append_batch(batch).unwrap();
            for &rec in batch {
                oracle.apply(rec).unwrap();
            }
            for &(t1, t2) in &hot {
                let q = ServeQuery::approx(t1, t2, k, eps);
                // Snapshot the mass-growth headroom *before* querying: an
                // epoch swap completing mid-query only shrinks ΔM, so the
                // pre-query value upper-bounds the answer's actual slack.
                let report = cached.report();
                let delta_m = (report.live_mass - report.built_mass).max(0.0);
                let a = cached.query(q).unwrap();
                let b = uncached.query(q).unwrap();
                let m_live = oracle.total_mass();
                prop_assert_eq!(a.len(), b.len());
                // The cache may serve an entry computed before some of the
                // appends, but the staleness audit caps its drift from the
                // snapped truth at eps·M_live − ε_abs; both engines' fresh
                // candidate sets are ε_abs-grade, so rank-wise scores may
                // differ by at most 2·ε_abs + staleness ≤ 2·eps·M_live.
                // (Only assertable while both twins serve the same frozen
                // generation: with rebuilds enabled, asynchronous epoch
                // swaps can momentarily snap to different breakpoints.)
                if aggressive_sel == 0 {
                    let slack = 2.0 * eps * m_live + 1e-9 * (1.0 + m_live);
                    for j in 0..a.len() {
                        let (sa, sb) = (a.rank(j).1, b.rank(j).1);
                        prop_assert!(
                            (sa - sb).abs() <= slack,
                            "rank {}: cached {} vs uncached {} drifts past {} \
                             (seed={} eps={} batch={} k={} agg={})",
                            j, sa, sb, slack, seed_sel, eps, batch.len(), k, aggressive_sel
                        );
                    }
                }
                // Absolute guardrail against live truth: the snapped
                // endpoints can each miss the built per-gap mass (≤
                // eps·M_live after planner re-validation) *plus* whatever
                // mass appends parked inside a gap since the generation
                // was built (ΔM = M_live − M_built — this is exactly the
                // degradation §4's mass-doubling rebuild bounds).
                let guard = 3.0 * eps * m_live + 2.0 * delta_m + 1e-9 * (1.0 + m_live);
                for &(id, s) in a.entries() {
                    let truth = oracle.score(id, t1, t2).unwrap();
                    prop_assert!(
                        (s - truth).abs() <= guard,
                        "object {} score {} vs truth {} exceeds guardrail {}",
                        id, s, truth, guard
                    );
                }
            }
        }
        // The hot stream must actually have exercised the cache whenever
        // an approximate route was taken, and the twin never caches.
        let report = cached.report();
        if report.cache_lookups > 0 {
            prop_assert!(report.cache_hits + report.cache_invalidations > 0);
        }
        prop_assert_eq!(uncached.report().cache_lookups, 0);
    }
}
