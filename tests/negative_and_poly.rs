//! Integration tests for the paper's §4 extensions: negative scores and
//! piecewise-polynomial data.

use chronorank::core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact1, Exact2, Exact3, IndexConfig,
    RankMethod,
};
use chronorank::curve::{PiecewisePoly, PolySegment};
use chronorank::workloads::{DatasetGenerator, RandomWalkConfig, RandomWalkGenerator};

#[test]
fn negative_scores_exact_methods_agree() {
    let set = RandomWalkGenerator::new(RandomWalkConfig {
        objects: 60,
        segments: 80,
        volatility: 2.0,
        allow_negative: true,
        seed: 21,
    })
    .generate_set();
    assert!(set.has_negative(), "the fixture must actually cross zero");
    let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
    let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    for &(a, b) in &[(0.0, 80.0), (10.0, 30.0), (55.5, 71.25), (0.0, 5.0)] {
        let want = set.top_k_bruteforce(a, b, 8);
        for m in [&e1 as &dyn RankMethod, &e2, &e3] {
            let got = m.top_k(a, b, 8, AggKind::Sum).unwrap();
            for j in 0..want.len() {
                let (ws, gs) = (want.rank(j).1, got.rank(j).1);
                assert!(
                    (ws - gs).abs() <= 1e-7 * (1.0 + ws.abs()),
                    "{} [{a},{b}] rank {j}: {ws} vs {gs}",
                    m.name()
                );
            }
        }
    }
}

#[test]
fn negative_scores_approx_guarantee_uses_absolute_mass() {
    let set = RandomWalkGenerator::new(RandomWalkConfig {
        objects: 40,
        segments: 60,
        volatility: 1.5,
        allow_negative: true,
        seed: 22,
    })
    .generate_set();
    // §4: M and the thresholds switch to |g|; the (ε,1) bound still holds
    // with that M.
    let idx = ApproxIndex::build(
        &set,
        ApproxVariant::APPX1,
        ApproxConfig { r: 20, kmax: 10, ..Default::default() },
    )
    .unwrap();
    let em = idx.breakpoints().eps() * idx.breakpoints().mass();
    for &(a, b) in &[(5.0, 45.0), (0.0, 60.0), (20.0, 25.0)] {
        let exact = set.top_k_bruteforce(a, b, 6);
        let approx = idx.top_k(a, b, 6, AggKind::Sum).unwrap();
        for j in 0..approx.len().min(exact.len()) {
            let d = (approx.rank(j).1 - exact.rank(j).1).abs();
            assert!(d <= em + 1e-9, "[{a},{b}] rank {j}: |Δ| = {d} > εM = {em}");
        }
    }
}

/// §4 "General time series with arbitrary functions": the methods carry
/// over to piecewise polynomials because only σ_i(I) changes. We verify the
/// curve-level machinery: polynomial prefix sums reproduce direct
/// integration, and ranking by polynomial integrals matches ranking the
/// PWL approximation of the same curves as the segment budget grows.
#[test]
fn polynomial_prefix_sum_ranking() {
    // Three quadratic-ish objects on [0, 10].
    let mk = |coeffs: Vec<Vec<f64>>| {
        let segs: Vec<PolySegment> = coeffs
            .into_iter()
            .enumerate()
            .map(|(i, c)| PolySegment::new(i as f64 * 2.0, (i as f64 + 1.0) * 2.0, c).unwrap())
            .collect();
        PiecewisePoly::new(segs).unwrap()
    };
    let objs = vec![
        mk(vec![vec![1.0], vec![1.0, 1.0], vec![3.0], vec![3.0, -1.0], vec![1.0]]),
        mk(vec![vec![0.0, 0.0, 1.0], vec![4.0, -2.0], vec![0.0], vec![0.5], vec![5.0]]),
        mk(vec![vec![2.0], vec![2.0], vec![2.0], vec![2.0], vec![2.0]]),
    ];
    // Rank by σ over [1.5, 8.5] via prefix sums (Eq. (2) for polynomials).
    let score = |p: &PiecewisePoly, a: f64, b: f64| p.integral(a, b);
    let mut ranked: Vec<(usize, f64)> =
        objs.iter().enumerate().map(|(i, p)| (i, score(p, 1.5, 8.5))).collect();
    ranked.sort_by(|x, y| y.1.total_cmp(&x.1));
    // Direct check against hand-computed integrals: o2 is constant 2 →
    // σ = 14; o0: segments give piecewise areas...
    let direct: Vec<f64> = objs.iter().map(|p| score(p, 1.5, 8.5)).collect();
    assert!((direct[2] - 14.0).abs() < 1e-9);
    // Prefix-sum identity for every object.
    for p in &objs {
        let prefix = p.prefix_sums();
        let total: f64 = p.integral(p.start(), p.end());
        assert!((prefix.last().unwrap() - total).abs() < 1e-9);
    }
    // The PWL approximation of the polynomial data converges to the same
    // ranking as segments increase (the paper's "use more line segments"
    // remark).
    let mut errors = Vec::new();
    for &budget in &[8usize, 32, 128] {
        let as_pwl: Vec<chronorank::curve::PiecewiseLinear> = objs
            .iter()
            .map(|p| {
                let samples: Vec<(f64, f64)> = (0..=budget)
                    .map(|i| {
                        let t = p.start() + (p.end() - p.start()) * i as f64 / budget as f64;
                        (t, p.eval(t).unwrap())
                    })
                    .collect();
                chronorank::curve::PiecewiseLinear::from_points(&samples).unwrap()
            })
            .collect();
        let approx: Vec<f64> = as_pwl.iter().map(|c| c.integral(1.5, 8.5)).collect();
        let max_err = direct.iter().zip(&approx).map(|(d, a)| (d - a).abs()).fold(0.0, f64::max);
        errors.push(max_err);
        if budget >= 128 {
            assert!(max_err < 0.1, "128-segment PWL should track polynomials, err {max_err}");
            let mut approx_rank: Vec<usize> = (0..3).collect();
            approx_rank.sort_by(|&x, &y| approx[y].total_cmp(&approx[x]));
            let want_rank: Vec<usize> = ranked.iter().map(|&(i, _)| i).collect();
            assert_eq!(approx_rank, want_rank, "converged ranking must agree");
        }
    }
    assert!(errors[2] < errors[0], "error must shrink as the segment budget grows: {errors:?}");
}

#[test]
fn instant_topk_is_the_degenerate_case() {
    // §1: the instant top-k query is the special case t1 = t2 of the
    // aggregate query (under avg semantics).
    let set = RandomWalkGenerator::new(RandomWalkConfig {
        objects: 30,
        segments: 50,
        volatility: 1.0,
        allow_negative: false,
        seed: 23,
    })
    .generate_set();
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    let t = set.t_min() + 0.5 * set.span();
    let inst = e3.instant_top_k(t, 5).unwrap();
    // As the window shrinks, the avg aggregate ranking converges to the
    // instant ranking.
    let tiny = e3.top_k(t, t + 1e-7, 5, AggKind::Avg).unwrap();
    assert_eq!(inst.ids(), tiny.ids(), "shrinking window → instant ranking");
    for (a, b) in inst.scores().iter().zip(tiny.scores()) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}
