//! Serving-layer agreement (ISSUE 2 acceptance): sharding and caching must
//! not change answers.
//!
//! * Exact-routed answers from the sharded engine equal single-threaded
//!   EXACT3 on the same workload, for W ∈ {1, 4} (workers query *shared*
//!   `Arc` snapshots — no per-worker index duplication; ISSUE 5).
//! * Cached answers are byte-identical to uncached ones (same engine
//!   re-asked, and a cache-disabled twin engine).
//!
//! CI additionally re-runs this suite with `CHRONORANK_AGREEMENT_W=8`
//! (and `RUST_TEST_THREADS` unpinned), which appends that width to every
//! W sweep below.

use chronorank::core::{AggKind, Exact3, IndexConfig, RankMethod, TemporalSet, TopK};
use chronorank::serve::{ServeConfig, ServeEngine, ServeQuery};
use chronorank::workloads::{
    DatasetGenerator, IntervalPattern, MemeConfig, MemeGenerator, QueryWorkload,
    QueryWorkloadConfig, TempConfig, TempGenerator,
};

/// The worker widths under test: {1, 4}, plus `$CHRONORANK_AGREEMENT_W`
/// when set (the CI wide-sweep hook).
fn worker_widths() -> Vec<usize> {
    let mut widths = vec![1usize, 4];
    if let Ok(w) = std::env::var("CHRONORANK_AGREEMENT_W") {
        let w: usize = w.parse().expect("CHRONORANK_AGREEMENT_W must be a worker count");
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    widths
}

fn datasets() -> Vec<(&'static str, TemporalSet)> {
    vec![
        (
            "temp",
            TempGenerator::new(TempConfig {
                objects: 90,
                avg_segments: 50,
                seed: 21,
                dropout: 0.05,
            })
            .generate_set(),
        ),
        (
            "meme",
            MemeGenerator::new(MemeConfig {
                objects: 120,
                avg_segments: 25,
                span: 2000.0,
                seed: 22,
            })
            .generate_set(),
        ),
    ]
}

fn uniform_queries(set: &TemporalSet, count: usize, k: usize) -> Vec<ServeQuery> {
    QueryWorkload::new(
        QueryWorkloadConfig { count, span_fraction: 0.25, k, seed: 5, ..Default::default() },
        set.t_min(),
        set.t_max(),
    )
    .generate()
    .iter()
    .map(|q| ServeQuery::exact(q.t1, q.t2, q.k))
    .collect()
}

fn assert_answers_match(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    for j in 0..want.len() {
        let (wid, ws) = want.rank(j);
        let (gid, gs) = got.rank(j);
        let scale = 1.0_f64.max(ws.abs());
        assert!((ws - gs).abs() <= 1e-7 * scale, "{ctx} rank {j}: {ws} vs {gs}");
        if wid != gid {
            // Ties may permute; the scores must then be equal.
            assert!(
                want.entries().iter().any(|&(id, s)| id == gid && (s - ws).abs() <= 1e-7 * scale),
                "{ctx} rank {j}: ids {wid}/{gid} differ without a tie"
            );
        }
    }
}

#[test]
fn sharded_exact_equals_single_threaded_exact3() {
    for (name, set) in datasets() {
        let exact3 = Exact3::build(&set, IndexConfig::default()).unwrap();
        let queries = uniform_queries(&set, 10, 8);
        for w in worker_widths() {
            let engine =
                ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
            assert_eq!(engine.workers(), w);
            for (i, q) in queries.iter().enumerate() {
                assert!(engine.route_for(q).is_exact());
                let got = engine.query(*q).unwrap();
                let want = exact3.top_k(q.t1, q.t2, q.k, AggKind::Sum).unwrap();
                assert_answers_match(&want, &got, &format!("{name} W={w} q{i}"));
            }
        }
    }
}

#[test]
fn cached_answers_are_byte_identical_to_uncached() {
    for (name, set) in datasets() {
        let zipf: Vec<ServeQuery> = QueryWorkload::new(
            QueryWorkloadConfig {
                count: 60,
                span_fraction: 0.2,
                k: 6,
                seed: 8,
                pattern: IntervalPattern::Zipf { hotspots: 4, exponent: 1.0, background: 0.1 },
            },
            set.t_min(),
            set.t_max(),
        )
        .generate()
        .iter()
        .map(|q| ServeQuery::approx(q.t1, q.t2, q.k, 0.4))
        .collect();
        for w in worker_widths() {
            let cached_cfg = ServeConfig { workers: w, ..Default::default() };
            let uncached_cfg = ServeConfig { workers: w, cache_capacity: 0, ..Default::default() };
            let cached = ServeEngine::new(&set, cached_cfg).unwrap();
            let uncached = ServeEngine::new(&set, uncached_cfg).unwrap();
            for (i, q) in zipf.iter().enumerate() {
                let a = cached.query(*q).unwrap();
                let b = uncached.query(*q).unwrap();
                // Byte-identical: same ids AND bitwise-equal scores.
                assert_eq!(a.ids(), b.ids(), "{name} W={w} q{i}");
                for (sa, sb) in a.scores().iter().zip(b.scores()) {
                    assert_eq!(sa.to_bits(), sb.to_bits(), "{name} W={w} q{i}");
                }
            }
            let report = cached.report();
            assert!(
                report.cache_hits > 0,
                "{name} W={w}: the hot stream must actually exercise the cache"
            );
            assert_eq!(uncached.report().cache_lookups, 0);
        }
    }
}

#[test]
fn streamed_exact_equals_single_threaded_exact3() {
    let (_, set) = datasets().remove(0);
    let exact3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    let queries = uniform_queries(&set, 12, 5);
    for w in worker_widths() {
        let engine =
            ServeEngine::new(&set, ServeConfig { workers: w, ..Default::default() }).unwrap();
        let outcome = engine.run_stream(&queries).unwrap();
        for (i, (q, got)) in queries.iter().zip(&outcome.answers).enumerate() {
            let want = exact3.top_k(q.t1, q.t2, q.k, AggKind::Sum).unwrap();
            assert_answers_match(&want, got, &format!("stream W={w} q{i}"));
        }
    }
}
