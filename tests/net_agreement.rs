//! Network-layer agreement (ISSUE 4 acceptance): putting a TCP socket and
//! the frame protocol between client and engine must not change a single
//! bit of any answer.
//!
//! * TOPK answers fetched over a real socket are **bit-identical** to
//!   in-process [`ServeEngine`] answers on the same workload, for
//!   W ∈ {1, 4}, across exact and approximate routes — pipelined too.
//! * Over the live path, a wire trace of interleaved APPEND_BATCH / TOPK
//!   ops agrees bit-for-bit with the same trace driven in process.
//! * Under genuinely **concurrent** append traffic from a second
//!   connection, every answer is bit-identical to a fresh bulk build
//!   over exactly the append prefix the response reports
//!   (`appends_applied`) — the wire tier inherits the live engine's
//!   prefix-consistency guarantee.

use chronorank::core::{AppendRecord, TemporalSet, TopK};
use chronorank::live::{IngestEngine, LiveConfig};
use chronorank::net::{NetClient, NetConfig, NetServer};
use chronorank::serve::{ServeConfig, ServeEngine, ServeQuery};
use chronorank::workloads::{
    AppendStream, AppendStreamConfig, ClosedLoopTraffic, DatasetGenerator, IntervalPattern,
    QueryWorkloadConfig, TempConfig, TempGenerator, TrafficConfig,
};

fn temp_set(objects: usize) -> TemporalSet {
    TempGenerator::new(TempConfig { objects, avg_segments: 40, seed: 33, dropout: 0.02 })
        .generate_set()
}

/// Bit-identical: same ids, same score bits.
fn assert_bit_identical(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    assert_eq!(want.ids(), got.ids(), "{ctx}: ids");
    for (j, (ws, gs)) in want.scores().iter().zip(got.scores()).enumerate() {
        assert_eq!(ws.to_bits(), gs.to_bits(), "{ctx} rank {j}: {ws} vs {gs}");
    }
}

/// A mixed-route query stream: exact, loose-ε, and tight-ranks queries.
fn mixed_queries(set: &TemporalSet, count: usize) -> Vec<ServeQuery> {
    let plan = ClosedLoopTraffic::new(
        TrafficConfig {
            clients: 1,
            queries_per_client: count,
            workload: QueryWorkloadConfig {
                span_fraction: 0.25,
                k: 7,
                seed: 17,
                pattern: IntervalPattern::Zipf { hotspots: 5, exponent: 1.0, background: 0.2 },
                ..Default::default()
            },
        },
        set.t_min(),
        set.t_max(),
    );
    plan.streams()[0]
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 3 {
            0 => ServeQuery::exact(q.t1, q.t2, q.k),
            1 => ServeQuery::approx(q.t1, q.t2, q.k, 0.3),
            _ => ServeQuery::approx_tight(q.t1, q.t2, q.k, 0.3),
        })
        .collect()
}

#[test]
fn wire_topk_is_bit_identical_to_in_process_serve() {
    let set = temp_set(80);
    let queries = mixed_queries(&set, 24);
    for w in [1usize, 4] {
        let cfg = ServeConfig { workers: w, ..Default::default() };
        let oracle = ServeEngine::new(&set, cfg).unwrap();
        let server = NetServer::start_serve(set.clone(), cfg, NetConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let want_route = oracle.route_for(q);
            let want = oracle.query(*q).unwrap();
            let got = client.topk(*q).unwrap();
            assert_eq!(got.route, want_route, "W={w} q{i}: route");
            assert_eq!(got.route.is_exact(), got.eps_used.is_none(), "W={w} q{i}: eps class");
            assert_bit_identical(&want, &got.topk, &format!("W={w} q{i}"));
        }
        server.shutdown();
    }
}

#[test]
fn pipelined_wire_answers_match_in_process_in_order() {
    let set = temp_set(60);
    let queries = mixed_queries(&set, 40);
    for w in [1usize, 4] {
        let cfg = ServeConfig { workers: w, ..Default::default() };
        let oracle = ServeEngine::new(&set, cfg).unwrap();
        let server = NetServer::start_serve(set.clone(), cfg, NetConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let outcome = client.pipeline_topk(&queries, 8).unwrap();
        assert_eq!(outcome.answers.len(), queries.len());
        assert_eq!(outcome.busy_retries, 0, "default limits must not push back here");
        for (i, (q, got)) in queries.iter().zip(&outcome.answers).enumerate() {
            let want = oracle.query(*q).unwrap();
            assert_bit_identical(&want, &got.topk, &format!("W={w} pipelined q{i}"));
        }
        server.shutdown();
    }
}

fn temp_stream(objects: usize) -> AppendStream {
    let generator =
        TempGenerator::new(TempConfig { objects, avg_segments: 24, seed: 29, dropout: 0.0 });
    AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch: 24, skew: 0.0, seed: 31 },
    )
}

/// The probe windows live_agreement uses: old, fresh edge, full span.
fn probe_windows(set: &TemporalSet) -> [(f64, f64); 3] {
    [
        (set.t_min(), set.t_min() + 0.2 * set.span()),
        (set.t_max() - 0.15 * set.span(), set.t_max()),
        (set.t_min(), set.t_max()),
    ]
}

#[test]
fn wire_live_trace_agrees_with_in_process_engine() {
    let stream = temp_stream(36);
    let seed = stream.base_set();
    let full = stream.full_set();
    for w in [1usize, 4] {
        let cfg = LiveConfig { workers: w, ..Default::default() };
        let mut oracle = IngestEngine::new(&seed, cfg.clone()).unwrap();
        let server = NetServer::start_live(seed.clone(), cfg, NetConfig::default()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        for (i, batch) in stream.batches().enumerate() {
            let ok = client.append_batch(batch).unwrap();
            assert_eq!(ok.accepted as usize, batch.len(), "W={w} batch {i}");
            oracle.append_batch(batch).unwrap();
            if i % 3 != 0 {
                continue;
            }
            for (t1, t2) in probe_windows(&full) {
                let q = ServeQuery::exact(t1, t2, 6);
                let want = oracle.query(q).unwrap();
                let got = client.topk(q).unwrap();
                assert_eq!(got.appends_applied, oracle.appends(), "W={w} batch {i}");
                assert_bit_identical(&want, &got.topk, &format!("W={w} batch {i} [{t1},{t2}]"));
            }
        }
        server.shutdown();
    }
}

#[test]
fn wire_topk_agrees_under_concurrent_append_traffic() {
    let stream = temp_stream(32);
    let seed = stream.base_set();
    let full = stream.full_set();
    let records = stream.records().to_vec();
    for w in [1usize, 4] {
        let cfg = LiveConfig { workers: w, ..Default::default() };
        let server = NetServer::start_live(seed.clone(), cfg, NetConfig::default()).unwrap();
        let addr = server.local_addr();

        // A second connection floods appends while the main connection
        // queries. The server applies batches in the appender's send
        // order, so `appends_applied = P` in a response pins the exact
        // live state that answered it: base + records[..P].
        let appender_records = records.clone();
        let appender = std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("appender connects");
            for batch in appender_records.chunks(16) {
                client.append_batch(batch).expect("append over the wire");
            }
        });

        let mut client = NetClient::connect(addr).unwrap();
        let mut prefixes_seen = Vec::new();
        for round in 0..30 {
            let (t1, t2) = probe_windows(&full)[round % 3];
            let got = client.topk(ServeQuery::exact(t1, t2, 5)).unwrap();
            let p = got.appends_applied as usize;
            assert!(p <= records.len(), "prefix within the trace");
            assert!(p.is_multiple_of(16) || p == records.len(), "whole batches only (got {p})");
            // Oracle: a fresh bulk build over exactly that prefix.
            let mut objects = seed.objects().to_vec();
            for rec in &records[..p] {
                objects[rec.object as usize].curve.append(rec.t, rec.v).unwrap();
            }
            let bulk = TemporalSet::from_objects(objects).unwrap();
            let want = bulk.top_k_bruteforce(t1, t2, 5);
            assert_bit_identical(&want, &got.topk, &format!("W={w} round {round} at prefix {p}"));
            prefixes_seen.push(p);
        }
        appender.join().unwrap();
        // The run must actually have raced: some queries answered before
        // all appends landed, and the prefix only ever grows.
        assert!(prefixes_seen.windows(2).all(|ab| ab[0] <= ab[1]), "monotone prefixes");
        let final_ok = client.topk(ServeQuery::exact(full.t_min(), full.t_max(), 5)).unwrap();
        assert_eq!(final_ok.appends_applied as usize, records.len(), "W={w}: all appends applied");
        server.shutdown();
    }
}

#[test]
fn wire_append_records_survive_the_codec_bit_for_bit() {
    // Appends carry f64 time/value bits; a lossy codec would silently
    // desynchronize wire state from in-process state. Spot-check with
    // adversarial bit patterns (negative zero, ulp-separated times,
    // full-mantissa values). Magnitudes stay moderate: the §4 rebuild
    // arithmetic is not built for ±1e300 masses, and that is an engine
    // property, not a codec one.
    let set = temp_set(8);
    let cfg = LiveConfig { workers: 2, ..Default::default() };
    let mut oracle = IngestEngine::new(&set, cfg.clone()).unwrap();
    let server = NetServer::start_live(set.clone(), cfg, NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let t0 = set.t_max();
    let recs: Vec<AppendRecord> = (0..8)
        .map(|i| AppendRecord {
            object: i,
            t: t0 + 1.0 + (i as f64) * f64::EPSILON * 4.0,
            v: match i % 4 {
                0 => -0.0,
                1 => 1.0e-12,
                2 => -1.5e3 - 1.0 / 3.0,
                _ => 1.0 + f64::EPSILON,
            },
        })
        .collect();
    client.append_batch(&recs).unwrap();
    oracle.append_batch(&recs).unwrap();
    let q = ServeQuery::exact(t0, t0 + 1.0 + 64.0 * f64::EPSILON, 8);
    let want = oracle.query(q).unwrap();
    let got = client.topk(q).unwrap();
    assert_bit_identical(&want, &got.topk, "adversarial f64 appends");
    server.shutdown();
}
