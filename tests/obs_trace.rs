//! Acceptance test for the telemetry plane (ISSUE 7): an injected slow
//! query must land in the flight recorder as a *correct* end-to-end
//! trace — the planner route actually taken, every shard the scatter
//! touched, the folded cache outcome, and an IO delta that agrees with
//! the engine's own `IoStats` accounting.

use chronorank::obs::CacheOutcome;
use chronorank::serve::{ServeConfig, ServeEngine, ServeQuery};
use chronorank::storage::StoreConfig;
use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};
use std::time::Duration;

const WORKERS: usize = 3;

/// A dataset big enough that exact probes must read blocks through the
/// deliberately tiny pool below — which is what makes the emulated
/// device latency (the "injected slowness") actually bite.
fn engine() -> ServeEngine {
    let set = TempGenerator::new(TempConfig {
        objects: 120,
        avg_segments: 60,
        seed: 7,
        ..Default::default()
    })
    .generate_set();
    let cfg = ServeConfig {
        workers: WORKERS,
        store: StoreConfig { block_size: 4096, pool_capacity: 8 },
        simulated_read_latency: Some(Duration::from_micros(500)),
        ..Default::default()
    };
    ServeEngine::new(&set, cfg).expect("build engine")
}

#[test]
fn injected_slow_query_produces_a_correct_trace() {
    let engine = engine();
    let (t1, t2) = (20.0, 80.0);
    let q = ServeQuery::exact(t1, t2, 8);
    let expected_route = engine.route_for(&q).name();

    // Qualify everything: the injected 500µs/block device makes the query
    // genuinely slow, the zero threshold keeps the test deterministic.
    engine.set_slow_query_threshold_us(0);
    let io_before = engine.report().io;
    engine.query(q).expect("slow query");
    let io_delta = engine.report().io.since(io_before);

    let traces = engine.flight_recorder().snapshot();
    assert_eq!(traces.len(), 1, "exactly the one query traced");
    let trace = &traces[0];

    // Route and query identity.
    assert_eq!(trace.route, expected_route);
    assert_eq!((trace.t1, trace.t2, trace.k), (t1, t2, 8));

    // Every shard of the fan-out shows up, in shard order.
    let shards: Vec<usize> = trace.shards.iter().map(|s| s.shard).collect();
    assert_eq!(shards, (0..WORKERS).collect::<Vec<_>>(), "all shards touched, sorted");

    // Exact routes bypass the result cache.
    assert_eq!(trace.cache, CacheOutcome::Bypass);
    assert!(trace.shards.iter().all(|s| !s.cache_hit));

    // The IO delta is real and consistent: the per-shard reads sum to the
    // trace total, and that total is exactly what the engine's own IoStats
    // counters moved by.
    assert!(trace.io.reads >= 1, "cold 8-frame pool must read blocks");
    let span_reads: u64 = trace.shards.iter().map(|s| s.reads).sum();
    assert_eq!(trace.io.reads, span_reads);
    assert_eq!(trace.io.reads, io_delta.reads, "trace disagrees with engine IoStats");

    // The injected device latency is visible end to end: the slowest
    // shard span read >= 1 block at 500µs each, and total latency is the
    // slowest span or more.
    let max_span = trace.shards.iter().map(|s| s.elapsed_us).max().unwrap();
    assert!(
        trace.total_us >= max_span,
        "end-to-end {}us must cover the slowest shard span {}us",
        trace.total_us,
        max_span
    );
    assert!(trace.total_us >= 500, "injected 500us/block latency not visible in {trace:?}");
}

#[test]
fn threshold_gates_recording() {
    let engine = engine();
    // Unreachable threshold: even the injected-latency query must NOT
    // qualify.
    engine.set_slow_query_threshold_us(u64::MAX);
    engine.query(ServeQuery::exact(20.0, 80.0, 8)).expect("query");
    assert!(engine.flight_recorder().is_empty(), "nothing qualifies at u64::MAX");

    engine.set_slow_query_threshold_us(0);
    engine.query(ServeQuery::exact(20.0, 80.0, 8)).expect("query");
    assert_eq!(engine.flight_recorder().len(), 1, "everything qualifies at 0");
}

#[test]
fn cache_outcome_is_folded_into_the_trace() {
    let engine = engine();
    engine.set_slow_query_threshold_us(0);
    // An ε-tolerant query goes through the shard result caches: the first
    // execution misses everywhere, the identical repeat hits everywhere.
    let q = ServeQuery::approx(20.0, 80.0, 8, 0.2);
    engine.query(q).expect("first approx query");
    engine.query(q).expect("repeat approx query");
    let traces = engine.flight_recorder().snapshot();
    assert_eq!(traces.len(), 2);
    assert_eq!(traces[0].cache, CacheOutcome::Miss, "cold caches: {:?}", traces[0]);
    assert_eq!(traces[1].cache, CacheOutcome::Hit, "identical repeat: {:?}", traces[1]);
    assert!(traces[1].shards.iter().all(|s| s.cache_hit));
}
