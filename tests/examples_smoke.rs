//! Smoke coverage for the `examples/` directory: every example target must
//! compile, and `quickstart` must run to completion and print its report.
//!
//! The child `cargo` processes use a dedicated target directory
//! (`target/examples-smoke`): the parent `cargo test` invocation may hold
//! the main build-directory lock for as long as it runs, and sharing it
//! would deadlock.

use std::process::Command;

fn cargo() -> Command {
    let mut c = Command::new(env!("CARGO"));
    c.current_dir(env!("CARGO_MANIFEST_DIR"));
    c.env("CARGO_TARGET_DIR", concat!(env!("CARGO_MANIFEST_DIR"), "/target/examples-smoke"));
    c
}

#[test]
fn all_examples_build() {
    let out = cargo().args(["build", "--examples"]).output().expect("spawn cargo");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn live_ticker_runs_to_completion() {
    let out = cargo().args(["run", "--example", "live_ticker"]).output().expect("spawn cargo");
    assert!(
        out.status.success(),
        "live_ticker exited nonzero:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["ticks/s", "top-10 tickers", "live report"] {
        assert!(stdout.contains(needle), "live_ticker output missing {needle:?}:\n{stdout}");
    }
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo().args(["run", "--example", "quickstart"]).output().expect("spawn cargo");
    assert!(
        out.status.success(),
        "quickstart exited nonzero:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["dataset: m = ", "IO cost", "precision/recall"] {
        assert!(stdout.contains(needle), "quickstart output missing {needle:?}:\n{stdout}");
    }
}
