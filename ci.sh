#!/usr/bin/env bash
# CI gate for the chronorank workspace. Usage: ./ci.sh
#
# Stages:
#   fmt               cargo fmt --check               (style per rustfmt.toml)
#   clippy            cargo clippy -D warnings        (whole workspace, all targets)
#   doc               cargo doc --no-deps             (RUSTDOCFLAGS="-D warnings")
#   tier1             cargo build --release && cargo test -q
#   agreement-w8      serve/live agreement suites re-run at W=8 with
#                     RUST_TEST_THREADS deliberately unpinned, so the
#                     shared-snapshot engines race for real cores
#   serve-smoke       paper-bench serve --quick       (JSON under target/)
#   live-smoke        paper-bench live --quick        (JSON under target/)
#   net-smoke         paper-bench net --quick         (JSON under target/)
#   coldstart-smoke   paper-bench coldstart --quick   (bulk load vs insert
#                     build, image cold start vs WAL replay; the bench
#                     asserts bit-identical answers across every restart)
#   obs-smoke         paper-bench obs --quick         (exits nonzero if the
#                     telemetry plane costs >3% read-path throughput,
#                     untraced AND fully traced) plus a loopback METRICS
#                     scrape (examples/metrics_scrape fails on malformed
#                     exposition or missing families)
#   trace-smoke       examples/trace_dump against a loopback server
#                     (exits nonzero unless one wire query yields one
#                     joined cross-process span tree over the TRACE op)
#   paperscale-smoke  paper-bench paperscale --quick  (one scaled-down rung
#                     through the streaming out-of-core build pipeline; the
#                     bench itself exits nonzero unless EXACT3 beats EXACT1
#                     in per-query cold IO)
#   rescore-smoke     paper-bench rescore --quick     (columnar batch
#                     rescoring vs the scalar row walk, and query_batch
#                     windows vs solo queries; the bench asserts bit-
#                     identical checksums and exits nonzero unless
#                     columnar >= scalar and batched W=64 >= solo)
#   bench-regression  paper-bench check-regression    (smoke JSONs vs the
#                     committed BENCH_SERVE/LIVE/NET/COLDSTART/OBS/
#                     PAPERSCALE/RESCORE.json: same key shape, sane rates,
#                     no >10x throughput collapse)
#
# Every smoke artifact goes under target/ so the committed full-scale
# BENCH_*.json and results/ CSVs are never clobbered by quick numbers.
#
# A per-stage wall-clock summary is printed at the end; on failure the
# offending stage is named. The property suites honour PROPTEST_CASES;
# the fixed default below keeps the whole script comfortably inside the
# CI budget while still running every property at a meaningful case
# count. Raise it locally (e.g. PROPTEST_CASES=1000 ./ci.sh) for a
# deeper soak.
# -E (errtrace): the ERR trap below must fire inside stage functions too.
set -Eeuo pipefail
cd "$(dirname "$0")"

export PROPTEST_CASES="${PROPTEST_CASES:-64}"

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE="(startup)"
CI_T0=$SECONDS

print_timings() {
    echo
    echo "== stage timings"
    local i
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-18s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    done
    printf '  %-18s %4ds\n' "total" "$((SECONDS - CI_T0))"
}

on_failure() {
    echo
    echo "CI FAILED in stage: $CURRENT_STAGE" >&2
    print_timings
}
trap on_failure ERR

stage() {
    CURRENT_STAGE="$1"
    shift
    echo "== [$CURRENT_STAGE] $*"
    local t0=$SECONDS
    "$@"
    STAGE_NAMES+=("$CURRENT_STAGE")
    STAGE_SECS+=("$((SECONDS - t0))")
}

doc_stage() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
}

tier1_stage() {
    cargo build --release
    cargo test -q --workspace
}

# The agreement suites prove bit-identical answers with workers querying
# shared snapshots; this stage widens the sweep to W=8 and leaves
# RUST_TEST_THREADS unpinned so test-level and engine-level parallelism
# collide as hard as the host allows.
agreement_w8() {
    CHRONORANK_AGREEMENT_W=8 \
        cargo test --release -q --test serve_agreement --test live_agreement
}

serve_smoke() {
    CHRONORANK_SERVE_JSON=target/BENCH_SERVE_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- serve --quick \
        --out target/paper-bench-smoke
}

live_smoke() {
    CHRONORANK_LIVE_JSON=target/BENCH_LIVE_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- live --quick \
        --out target/paper-bench-smoke
}

net_smoke() {
    CHRONORANK_NET_JSON=target/BENCH_NET_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- net --quick \
        --out target/paper-bench-smoke
}

# The coldstart smoke doubles as the recovery gate: the bench itself
# asserts that an image boot preloads every shard, a replay boot none,
# and that both restarts answer the pre-restart probe bit-identically.
coldstart_smoke() {
    CHRONORANK_COLDSTART_JSON=target/BENCH_COLDSTART_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- coldstart --quick \
        --out target/paper-bench-smoke
}

# The obs bench enforces its own <3% overhead gate by exit code; the
# scrape example fails on malformed exposition or a missing family.
obs_smoke() {
    CHRONORANK_OBS_JSON=target/BENCH_OBS_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- obs --quick \
        --out target/paper-bench-smoke
    cargo run --release -q --example metrics_scrape
}

# One traced wire query must come back over TRACE as a single joined
# span tree (client.topk -> server.request -> engine.query -> probes);
# the example exits nonzero otherwise.
trace_smoke() {
    cargo run --release -q --example trace_dump
}

# One scaled-down ladder rung through the same streaming generators,
# external sorts and budget-sized pools as the committed ladder; the
# bench self-gates the paper's EXACT3 < EXACT1 cold-IO ordering.
paperscale_smoke() {
    CHRONORANK_PAPERSCALE_JSON=target/BENCH_PAPERSCALE_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- paperscale --quick \
        --out target/paper-bench-smoke
}

# The rescore bench enforces its own gates by exit code: the columnar
# kernel must not lose to the scalar row walk, and batched execution at
# W=64 must not lose to solo queries (both after asserting bit-identical
# answers/checksums).
rescore_smoke() {
    CHRONORANK_RESCORE_JSON=target/BENCH_RESCORE_ci.json \
        cargo run --release -q -p chronorank-bench --bin paper_bench -- rescore --quick \
        --out target/paper-bench-smoke
}

bench_regression() {
    cargo run --release -q -p chronorank-bench --bin paper_bench -- check-regression \
        --pair BENCH_SERVE.json=target/BENCH_SERVE_ci.json \
        --pair BENCH_LIVE.json=target/BENCH_LIVE_ci.json \
        --pair BENCH_NET.json=target/BENCH_NET_ci.json \
        --pair BENCH_COLDSTART.json=target/BENCH_COLDSTART_ci.json \
        --pair BENCH_OBS.json=target/BENCH_OBS_ci.json \
        --pair BENCH_PAPERSCALE.json=target/BENCH_PAPERSCALE_ci.json \
        --pair BENCH_RESCORE.json=target/BENCH_RESCORE_ci.json \
        --tolerance 10
}

stage fmt              cargo fmt --check
stage clippy           cargo clippy --workspace --all-targets -- -D warnings
stage doc              doc_stage
stage tier1            tier1_stage
stage agreement-w8     agreement_w8
stage serve-smoke      serve_smoke
stage live-smoke       live_smoke
stage net-smoke        net_smoke
stage coldstart-smoke  coldstart_smoke
stage obs-smoke        obs_smoke
stage trace-smoke      trace_smoke
stage paperscale-smoke paperscale_smoke
stage rescore-smoke    rescore_smoke
stage bench-regression bench_regression

print_timings
echo "CI OK"
