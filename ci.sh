#!/usr/bin/env bash
# CI gate for the chronorank workspace. Usage: ./ci.sh
#
# Stages:
#   1. cargo fmt --check          (style per rustfmt.toml)
#   2. cargo clippy -D warnings   (whole workspace, all targets)
#   3. tier-1 gate                (cargo build --release && cargo test -q)
#   4. serve scenario smoke       (paper-bench serve --quick; the committed
#                                  BENCH_SERVE.json is the full-scale run,
#                                  so the smoke writes under target/)
#   5. live scenario smoke        (paper-bench live --quick; same deal for
#                                  the committed BENCH_LIVE.json)
#
# The property suites honour PROPTEST_CASES; the fixed default below keeps
# the whole script comfortably under the ~2 minute tier-1 budget while still
# running every property at a meaningful case count. Raise it locally
# (e.g. PROPTEST_CASES=1000 ./ci.sh) for a deeper soak.
set -euo pipefail
cd "$(dirname "$0")"

export PROPTEST_CASES="${PROPTEST_CASES:-64}"

echo "== [1/5] cargo fmt --check"
cargo fmt --check

echo "== [2/5] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== [3/5] tier-1: cargo build --release && cargo test -q (PROPTEST_CASES=$PROPTEST_CASES)"
cargo build --release
cargo test -q --workspace

echo "== [4/5] serve scenario smoke (paper-bench serve --quick)"
# Smoke artifacts go under target/ so the committed full-scale
# BENCH_SERVE.json and results/ CSVs are never clobbered by quick numbers.
CHRONORANK_SERVE_JSON=target/BENCH_SERVE_ci.json \
  cargo run --release -q -p chronorank-bench --bin paper_bench -- serve --quick \
  --out target/paper-bench-smoke

echo "== [5/5] live scenario smoke (paper-bench live --quick)"
CHRONORANK_LIVE_JSON=target/BENCH_LIVE_ci.json \
  cargo run --release -q -p chronorank-bench --bin paper_bench -- live --quick \
  --out target/paper-bench-smoke

echo "CI OK"
