#!/usr/bin/env bash
# CI gate for the chronorank workspace. Usage: ./ci.sh
#
# Stages:
#   1. cargo fmt --check          (style per rustfmt.toml)
#   2. cargo clippy -D warnings   (whole workspace, all targets)
#   3. tier-1 gate                (cargo build --release && cargo test -q)
#
# The property suites honour PROPTEST_CASES; the fixed default below keeps
# the whole script comfortably under the ~2 minute tier-1 budget while still
# running every property at a meaningful case count. Raise it locally
# (e.g. PROPTEST_CASES=1000 ./ci.sh) for a deeper soak.
set -euo pipefail
cd "$(dirname "$0")"

export PROPTEST_CASES="${PROPTEST_CASES:-64}"

echo "== [1/3] cargo fmt --check"
cargo fmt --check

echo "== [2/3] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== [3/3] tier-1: cargo build --release && cargo test -q (PROPTEST_CASES=$PROPTEST_CASES)"
cargo build --release
cargo test -q --workspace

echo "CI OK"
