//! Property-based tests for the curve model: the integral identities every
//! method in the paper relies on must hold for arbitrary curves.

use chronorank_curve::numeric::approx_eq;
use chronorank_curve::{PiecewiseLinear, PiecewisePoly};
use proptest::prelude::*;

/// Strategy: a valid piecewise-linear curve with 1..=40 segments, times in
/// [0, 1000], values in [-50, 50].
fn arb_pwl() -> impl Strategy<Value = PiecewiseLinear> {
    (2usize..=41).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.01f64..50.0, n - 1),
            proptest::collection::vec(-50.0f64..50.0, n),
            0.0f64..100.0,
        )
            .prop_map(|(gaps, values, t0)| {
                let mut times = Vec::with_capacity(values.len());
                let mut t = t0;
                times.push(t);
                for g in gaps {
                    t += g;
                    times.push(t);
                }
                PiecewiseLinear::from_times_values(times, values).expect("constructed valid")
            })
    })
}

/// A query interval loosely around a curve's domain.
fn arb_interval() -> impl Strategy<Value = (f64, f64)> {
    (-100.0f64..1200.0, 0.0f64..500.0).prop_map(|(a, len)| (a, a + len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Additivity: σ(a,c) = σ(a,b) + σ(b,c).
    #[test]
    fn integral_is_additive(c in arb_pwl(), (a, len) in arb_interval(), frac in 0.0f64..1.0) {
        let b = a + len * frac;
        let cc = a + len;
        let whole = c.integral(a, cc);
        let parts = c.integral(a, b) + c.integral(b, cc);
        prop_assert!(approx_eq(whole, parts, 1e-9), "whole={whole} parts={parts}");
    }

    /// The O(log n) prefix-sum path (Eq. (2)) agrees with direct summation.
    #[test]
    fn prefix_integral_matches_direct(c in arb_pwl(), (a, b) in arb_interval()) {
        let p = c.prefix_sums();
        let direct = c.integral(a, b);
        let via = c.integral_prefix(&p, a, b);
        prop_assert!(approx_eq(direct, via, 1e-9), "direct={direct} via={via}");
    }

    /// |∫ g| ≤ ∫ |g| with equality for sign-constant curves.
    #[test]
    fn abs_integral_dominates(c in arb_pwl(), (a, b) in arb_interval()) {
        let signed = c.integral(a, b).abs();
        let abs = c.abs_integral(a, b);
        prop_assert!(signed <= abs + 1e-9 * (1.0 + abs), "signed={signed} abs={abs}");
    }

    /// Locate is consistent with segment spans and eval interpolates within
    /// vertex bounds.
    #[test]
    fn locate_and_eval_consistent(c in arb_pwl(), frac in 0.0f64..=1.0) {
        let (s, e) = c.domain();
        let t = s + (e - s) * frac;
        let j = c.locate(t).expect("inside domain");
        let seg = c.segment(j);
        prop_assert!(seg.t0 <= t && t <= seg.t1);
        let v = c.eval(t).unwrap();
        let lo = seg.v0.min(seg.v1) - 1e-9;
        let hi = seg.v0.max(seg.v1) + 1e-9;
        prop_assert!(v >= lo && v <= hi, "eval {v} outside [{lo}, {hi}]");
    }

    /// Degree-1 piecewise polynomials are numerically identical to PWL.
    #[test]
    fn poly_bridge_is_exact(c in arb_pwl(), (a, b) in arb_interval()) {
        let poly = PiecewisePoly::from_pwl(&c);
        prop_assert!(approx_eq(poly.integral(a, b), c.integral(a, b), 1e-9));
    }

    /// Prefix sums are consistent with total and are nondecreasing for
    /// non-negative curves.
    #[test]
    fn prefix_sums_structure(c in arb_pwl()) {
        let p = c.prefix_sums();
        prop_assert_eq!(p.len(), c.num_points());
        prop_assert!(approx_eq(*p.last().unwrap(), c.total(), 1e-9));
        if c.min_value() >= 0.0 {
            for w in p.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
        }
    }

    /// Appending a point extends the integral by exactly the new trapezoid.
    #[test]
    fn append_adds_one_trapezoid(mut c in arb_pwl(), dt in 0.01f64..10.0, v in -50.0f64..50.0) {
        let before = c.total();
        let (t_end, v_end) = c.point(c.num_points() - 1);
        c.append(t_end + dt, v).unwrap();
        let expect = before + 0.5 * (v_end + v) * dt;
        prop_assert!(approx_eq(c.total(), expect, 1e-9));
    }

    /// time_to_accumulate inverts integral on non-negative segments.
    #[test]
    fn accumulate_inverts_integral(
        t0 in 0.0f64..100.0,
        dur in 0.1f64..50.0,
        v0 in 0.0f64..20.0,
        v1 in 0.0f64..20.0,
        frac in 0.05f64..0.95,
    ) {
        let seg = chronorank_curve::Segment::new(t0, v0, t0 + dur, v1);
        let full = seg.integral_full();
        prop_assume!(full > 1e-6);
        let target = full * frac;
        if let Some(t) = seg.time_to_accumulate(t0, target) {
            let got = seg.integral_clipped(t0, t);
            prop_assert!(approx_eq(got, target, 1e-6), "got={got} target={target}");
        } else {
            // Only permissible if the accumulation genuinely stalls (zero
            // values at the start).
            prop_assert!(v0 == 0.0 && v1 == 0.0);
        }
    }
}
