//! Time-series segmentation: producing piecewise-linear representations.
//!
//! The paper assumes "the data has already been converted to a piecewise
//! linear representation by any segmentation method" (§1) and cites the
//! standard observations: more segments → better fidelity; adaptive methods
//! beat fixed-interval ones. This module supplies three such methods so the
//! workspace is self-contained:
//!
//! * [`connect_samples`] — exactly what the paper does to the MesoWest and
//!   Meme datasets: "we connect all consecutive readings";
//! * [`uniform_segmentation`] — non-adaptive thinning to a target segment
//!   count (keeps every `⌈n/target⌉`-th sample);
//! * [`bottom_up_segmentation`] — the classic adaptive bottom-up merge
//!   (Keogh et al.), merging the cheapest adjacent pair until the target
//!   count is reached.

use crate::error::{CurveError, Result};
use crate::pwl::PiecewiseLinear;

/// Connect consecutive `(time, value)` samples into a PWL curve (no
/// approximation; `n-1` segments from `n` samples).
pub fn connect_samples(samples: &[(f64, f64)]) -> Result<PiecewiseLinear> {
    PiecewiseLinear::from_points(samples)
}

/// Non-adaptive segmentation: keep every `k`-th sample so that roughly
/// `target_segments` remain; the first and last samples are always kept.
pub fn uniform_segmentation(
    samples: &[(f64, f64)],
    target_segments: usize,
) -> Result<PiecewiseLinear> {
    if samples.len() < 2 {
        return Err(CurveError::TooFewPoints(samples.len()));
    }
    let target_points = target_segments.max(1) + 1;
    if target_points >= samples.len() {
        return connect_samples(samples);
    }
    let n = samples.len();
    let mut points = Vec::with_capacity(target_points);
    // Evenly spaced indices including both endpoints.
    for i in 0..target_points {
        let idx = (i as f64 * (n - 1) as f64 / (target_points - 1) as f64).round() as usize;
        points.push(samples[idx]);
    }
    points.dedup_by(|a, b| a.0 == b.0);
    PiecewiseLinear::from_points(&points)
}

/// Maximum vertical deviation of the interior samples of
/// `samples[lo..=hi]` from the chord connecting `samples[lo]` to
/// `samples[hi]`.
fn chord_error(samples: &[(f64, f64)], lo: usize, hi: usize) -> f64 {
    let (t0, v0) = samples[lo];
    let (t1, v1) = samples[hi];
    let w = (v1 - v0) / (t1 - t0);
    samples[lo + 1..hi].iter().map(|&(t, v)| (v - (v0 + w * (t - t0))).abs()).fold(0.0, f64::max)
}

/// Adaptive bottom-up segmentation: start from connect-the-dots and merge
/// the adjacent segment pair with the smallest chord error until only
/// `target_segments` remain (or no merge stays below `max_error`, if given).
///
/// Returns the kept sample points as a PWL curve. `O(n²)` in the worst case
/// with small constants — intended for preprocessing, not the query path.
pub fn bottom_up_segmentation(
    samples: &[(f64, f64)],
    target_segments: usize,
    max_error: Option<f64>,
) -> Result<PiecewiseLinear> {
    if samples.len() < 2 {
        return Err(CurveError::TooFewPoints(samples.len()));
    }
    let target_segments = target_segments.max(1);
    // Indices of currently-kept samples.
    let mut kept: Vec<usize> = (0..samples.len()).collect();
    while kept.len() - 1 > target_segments {
        // Find the interior kept point whose removal has the least cost.
        let mut best: Option<(usize, f64)> = None;
        for k in 1..kept.len() - 1 {
            let err = chord_error(samples, kept[k - 1], kept[k + 1]);
            if best.is_none_or(|(_, e)| err < e) {
                best = Some((k, err));
            }
        }
        let (k, err) = best.expect("at least one interior point");
        if let Some(bound) = max_error {
            if err > bound {
                break; // no merge is admissible any more
            }
        }
        kept.remove(k);
    }
    let points: Vec<(f64, f64)> = kept.into_iter().map(|i| samples[i]).collect();
    PiecewiseLinear::from_points(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn ramp(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64, 2.0 * i as f64)).collect()
    }

    #[test]
    fn connect_keeps_every_sample() {
        let s = ramp(10);
        let c = connect_samples(&s).unwrap();
        assert_eq!(c.num_segments(), 9);
        assert_eq!(c.eval(4.5), Some(9.0));
    }

    #[test]
    fn uniform_hits_target_count() {
        let s = ramp(101);
        let c = uniform_segmentation(&s, 10).unwrap();
        assert_eq!(c.num_segments(), 10);
        assert_eq!(c.domain(), (0.0, 100.0));
        // A straight line survives thinning exactly.
        assert!(approx_eq(c.integral(0.0, 100.0), 100.0 * 200.0 / 2.0, 1e-9));
    }

    #[test]
    fn uniform_with_generous_target_is_lossless() {
        let s = ramp(5);
        let c = uniform_segmentation(&s, 100).unwrap();
        assert_eq!(c.num_segments(), 4);
    }

    #[test]
    fn bottom_up_removes_collinear_points_first() {
        // A spike at t=5 inside an otherwise straight line: adaptive
        // segmentation must keep the spike.
        let mut s = ramp(11);
        s[5].1 = 50.0;
        let c = bottom_up_segmentation(&s, 4, None).unwrap();
        assert_eq!(c.num_segments(), 4);
        assert!(
            c.times().contains(&5.0),
            "spike sample must survive adaptive merging, kept: {:?}",
            c.times()
        );
    }

    #[test]
    fn bottom_up_respects_error_bound() {
        let mut s = ramp(11);
        s[5].1 = 50.0;
        // With a tight error bound nothing near the spike merges; the flat
        // collinear points (error 0) still can.
        let c = bottom_up_segmentation(&s, 1, Some(0.0)).unwrap();
        assert!(c.times().contains(&5.0));
        assert!(c.num_segments() >= 2);
    }

    #[test]
    fn bottom_up_exact_on_line() {
        let s = ramp(50);
        let c = bottom_up_segmentation(&s, 1, None).unwrap();
        assert_eq!(c.num_segments(), 1);
        assert!(approx_eq(c.integral(0.0, 49.0), 49.0 * 98.0 / 2.0, 1e-9));
    }

    #[test]
    fn too_few_samples_is_an_error() {
        assert!(connect_samples(&[(0.0, 1.0)]).is_err());
        assert!(uniform_segmentation(&[(0.0, 1.0)], 3).is_err());
        assert!(bottom_up_segmentation(&[], 3, None).is_err());
    }

    #[test]
    fn adaptive_beats_uniform_on_bursty_data() {
        // Paper §1 observation 2: adaptive segmentation allocates segments
        // to volatile regions and wins at equal budgets.
        let mut s: Vec<(f64, f64)> = Vec::new();
        for i in 0..200 {
            let t = i as f64;
            // Flat until t=150, then a sharp triangle wave.
            let v = if i < 150 {
                1.0
            } else {
                if i % 2 == 0 {
                    10.0
                } else {
                    0.0
                }
            };
            s.push((t, v));
        }
        let budget = 30;
        let uni = uniform_segmentation(&s, budget).unwrap();
        let ada = bottom_up_segmentation(&s, budget, None).unwrap();
        let err = |c: &crate::PiecewiseLinear| -> f64 {
            s.iter().map(|&(t, v)| (c.eval(t).unwrap_or(0.0) - v).abs()).fold(0.0, f64::max)
        };
        assert!(err(&ada) <= err(&uni), "adaptive {} should beat uniform {}", err(&ada), err(&uni));
    }
}
