//! Validation errors for curve construction.

use std::fmt;

/// Curve-layer result alias.
pub type Result<T> = std::result::Result<T, CurveError>;

/// Why a curve could not be constructed or extended.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveError {
    /// Fewer than two points / one segment supplied.
    TooFewPoints(usize),
    /// Time stamps must be strictly increasing; `index` is the first
    /// offending position.
    NotIncreasing {
        /// Index of the first point whose time is not after its predecessor.
        index: usize,
        /// The offending time.
        time: f64,
        /// The preceding time.
        prev: f64,
    },
    /// A time or value was NaN/infinite.
    NonFinite {
        /// Index of the offending point.
        index: usize,
    },
    /// An appended point must extend the curve strictly to the right.
    AppendNotAfterEnd {
        /// The curve's current right endpoint.
        end: f64,
        /// The time that was appended.
        time: f64,
    },
    /// A polynomial segment had an empty coefficient vector or a
    /// non-positive duration.
    BadPolySegment(String),
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::TooFewPoints(n) => {
                write!(f, "a curve needs at least 2 points, got {n}")
            }
            CurveError::NotIncreasing { index, time, prev } => write!(
                f,
                "time stamps must be strictly increasing: point {index} has t={time} after t={prev}"
            ),
            CurveError::NonFinite { index } => {
                write!(f, "point {index} has a NaN or infinite coordinate")
            }
            CurveError::AppendNotAfterEnd { end, time } => {
                write!(f, "appended point t={time} is not after the curve end t={end}")
            }
            CurveError::BadPolySegment(msg) => write!(f, "bad polynomial segment: {msg}"),
        }
    }
}

impl std::error::Error for CurveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_data() {
        assert!(CurveError::TooFewPoints(1).to_string().contains('1'));
        let e = CurveError::NotIncreasing { index: 3, time: 1.0, prev: 2.0 };
        assert!(e.to_string().contains("point 3"));
        assert!(CurveError::NonFinite { index: 5 }.to_string().contains('5'));
        let e = CurveError::AppendNotAfterEnd { end: 9.0, time: 4.0 };
        assert!(e.to_string().contains('9'));
        assert!(CurveError::BadPolySegment("x".into()).to_string().contains('x'));
    }
}
