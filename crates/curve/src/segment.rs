//! A single linear segment and the paper's Eq. (1) trapezoid integral.

use crate::numeric::accumulation_crossing;
use crate::{Time, Value};

/// One linear piece `ℓ` of a temporal curve, spanning `[t0, t1]` with values
/// `v0 = ℓ(t0)` and `v1 = ℓ(t1)`.
///
/// The paper writes segments as `g_{i,j}` defined by end-points
/// `((t_{i,j-1}, v_{i,j-1}), (t_{i,j}, v_{i,j}))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Left time.
    pub t0: Time,
    /// Value at `t0`.
    pub v0: Value,
    /// Right time (strictly greater than `t0`).
    pub t1: Time,
    /// Value at `t1`.
    pub v1: Value,
}

impl Segment {
    /// Construct a segment; panics in debug builds on a non-positive span.
    pub fn new(t0: Time, v0: Value, t1: Time, v1: Value) -> Self {
        debug_assert!(t1 > t0, "segment must have positive duration");
        Self { t0, v0, t1, v1 }
    }

    /// Segment duration `t1 - t0`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Slope `w = (v1 - v0) / (t1 - t0)`.
    #[inline]
    pub fn slope(&self) -> f64 {
        (self.v1 - self.v0) / (self.t1 - self.t0)
    }

    /// Value `ℓ(t)` by linear interpolation; `t` is expected inside
    /// `[t0, t1]` but extrapolation is well-defined and used by clipping.
    #[inline]
    pub fn eval(&self, t: Time) -> Value {
        self.v0 + self.slope() * (t - self.t0)
    }

    /// Integral over the whole segment (trapezoid area, signed).
    #[inline]
    pub fn integral_full(&self) -> f64 {
        0.5 * (self.v0 + self.v1) * self.duration()
    }

    /// The paper's Eq. (1): the integral of `ℓ` over `[a, b] ∩ [t0, t1]`,
    /// i.e. the signed trapezoid on `[tL, tR]` with
    /// `tL = max(a, t0)`, `tR = min(b, t1)`; zero when they do not overlap.
    pub fn integral_clipped(&self, a: Time, b: Time) -> f64 {
        // Select-form clipping, shared operation-for-operation with the
        // columnar kernels (`sel_max`/`sel_min`) so the two paths stay
        // bit-identical by construction.
        let tl = crate::sel_max(a, self.t0);
        let tr = crate::sel_min(b, self.t1);
        if tr <= tl {
            return 0.0;
        }
        0.5 * (tr - tl) * (self.eval(tl) + self.eval(tr))
    }

    /// Integral of `|ℓ|` over `[a, b] ∩ [t0, t1]` (Section 4: negative
    /// scores). Splits at the zero crossing when the segment changes sign.
    pub fn abs_integral_clipped(&self, a: Time, b: Time) -> f64 {
        let tl = a.max(self.t0);
        let tr = b.min(self.t1);
        if tr <= tl {
            return 0.0;
        }
        let vl = self.eval(tl);
        let vr = self.eval(tr);
        if vl >= 0.0 && vr >= 0.0 {
            return 0.5 * (tr - tl) * (vl + vr);
        }
        if vl <= 0.0 && vr <= 0.0 {
            return -0.5 * (tr - tl) * (vl + vr);
        }
        // Sign change: split at the root t* = tl + |vl| / |slope-ish|.
        let tstar = tl + (tr - tl) * vl.abs() / (vl.abs() + vr.abs());
        0.5 * ((tstar - tl) * vl.abs() + (tr - tstar) * vr.abs())
    }

    /// Smallest `t ≥ from` within this segment at which
    /// `∫_from^t ℓ = target` (for `target > 0`), or `None` when the target
    /// is not reached by `t1`. Used when a breakpoint lands inside a
    /// segment (paper §3.1, BREAKPOINTS2).
    pub fn time_to_accumulate(&self, from: Time, target: f64) -> Option<Time> {
        let from = from.max(self.t0);
        if from >= self.t1 {
            return None;
        }
        let v_at = self.eval(from);
        let w = self.slope();
        let delta = accumulation_crossing(v_at, w, target)?;
        let t = from + delta;
        // Guard against float drift just past the right endpoint.
        if t <= self.t1 * (1.0 + 1e-15) + 1e-15 && t - from <= self.t1 - from + 1e-9 {
            Some(t.min(self.t1))
        } else {
            None
        }
    }

    /// True when `[a, b]` overlaps `[t0, t1)` with positive measure.
    #[inline]
    pub fn overlaps(&self, a: Time, b: Time) -> bool {
        a.max(self.t0) < b.min(self.t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn seg() -> Segment {
        // From (0, 2) to (4, 6): slope 1, integral 16.
        Segment::new(0.0, 2.0, 4.0, 6.0)
    }

    #[test]
    fn eval_and_slope() {
        let s = seg();
        assert_eq!(s.slope(), 1.0);
        assert_eq!(s.eval(0.0), 2.0);
        assert_eq!(s.eval(2.0), 4.0);
        assert_eq!(s.eval(4.0), 6.0);
        assert_eq!(s.duration(), 4.0);
    }

    #[test]
    fn full_integral_is_trapezoid_area() {
        assert_eq!(seg().integral_full(), 16.0);
    }

    #[test]
    fn clipped_integral_inside() {
        // ∫_1^3 (2+t) dt = [2t + t²/2] = (6+4.5)-(2+0.5) = 8.
        assert!(approx_eq(seg().integral_clipped(1.0, 3.0), 8.0, 1e-12));
    }

    #[test]
    fn clipped_integral_partial_overlap() {
        // Clip to [3,4]: ∫_3^4 (2+t) dt = 5.5.
        assert!(approx_eq(seg().integral_clipped(3.0, 10.0), 5.5, 1e-12));
        // Clip to [0,1]: 2.5.
        assert!(approx_eq(seg().integral_clipped(-5.0, 1.0), 2.5, 1e-12));
    }

    #[test]
    fn clipped_integral_disjoint_is_zero() {
        assert_eq!(seg().integral_clipped(5.0, 9.0), 0.0);
        assert_eq!(seg().integral_clipped(-3.0, -1.0), 0.0);
        assert_eq!(seg().integral_clipped(2.0, 2.0), 0.0); // empty interval
    }

    #[test]
    fn eq1_matches_paper_formula() {
        // Eq (1): ½ (tR − tL)(ℓ(tR) + ℓ(tL)) with tL = max(t1, ti,j) etc.
        let s = Segment::new(2.0, 1.0, 8.0, 4.0);
        let (a, b): (f64, f64) = (3.0, 11.0);
        let tl = a.max(s.t0);
        let tr = b.min(s.t1);
        let expect = 0.5 * (tr - tl) * (s.eval(tr) + s.eval(tl));
        assert!(approx_eq(s.integral_clipped(a, b), expect, 1e-12));
    }

    #[test]
    fn abs_integral_positive_segment_equals_signed() {
        let s = seg();
        assert!(approx_eq(s.abs_integral_clipped(1.0, 3.0), s.integral_clipped(1.0, 3.0), 1e-12));
    }

    #[test]
    fn abs_integral_negative_segment_flips_sign() {
        let s = Segment::new(0.0, -2.0, 4.0, -6.0);
        assert!(approx_eq(s.abs_integral_clipped(0.0, 4.0), 16.0, 1e-12));
        assert!(approx_eq(s.integral_clipped(0.0, 4.0), -16.0, 1e-12));
    }

    #[test]
    fn abs_integral_sign_change_splits_at_root() {
        // From (0,-2) to (4,2): crosses zero at t=2.
        let s = Segment::new(0.0, -2.0, 4.0, 2.0);
        assert!(approx_eq(s.integral_clipped(0.0, 4.0), 0.0, 1e-12));
        // |area| = 2 triangles of area 2 each.
        assert!(approx_eq(s.abs_integral_clipped(0.0, 4.0), 4.0, 1e-12));
        // Clipped across the root.
        assert!(approx_eq(s.abs_integral_clipped(1.0, 3.0), 1.0, 1e-12));
    }

    #[test]
    fn time_to_accumulate_flat() {
        let s = Segment::new(0.0, 2.0, 10.0, 2.0);
        let t = s.time_to_accumulate(0.0, 6.0).unwrap();
        assert!(approx_eq(t, 3.0, 1e-12));
        // From an interior start.
        let t = s.time_to_accumulate(4.0, 6.0).unwrap();
        assert!(approx_eq(t, 7.0, 1e-12));
    }

    #[test]
    fn time_to_accumulate_not_reached() {
        let s = Segment::new(0.0, 1.0, 2.0, 1.0); // total area 2
        assert!(s.time_to_accumulate(0.0, 5.0).is_none());
        assert!(s.time_to_accumulate(2.0, 0.1).is_none()); // starts at end
    }

    #[test]
    fn time_to_accumulate_sloped_matches_integral() {
        let s = Segment::new(1.0, 0.5, 5.0, 4.5); // slope 1
        let target = 3.7;
        let t = s.time_to_accumulate(1.5, target).unwrap();
        assert!(approx_eq(s.integral_clipped(1.5, t), target, 1e-9), "t={t}");
    }

    #[test]
    fn overlaps_checks_positive_measure() {
        let s = seg();
        assert!(s.overlaps(3.0, 5.0));
        assert!(!s.overlaps(4.0, 5.0));
        assert!(!s.overlaps(-2.0, 0.0));
    }
}
