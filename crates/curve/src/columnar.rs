//! Columnar (PAX-ish, structure-of-arrays) storage for mutable curve tails.
//!
//! The live tier rescores tail-touched objects on every exact query; doing
//! that by walking per-object `Vec<Segment>` curves is pure pointer-chasing.
//! [`ColumnarTail`] instead keeps all curve points in two shared column
//! arrays (`t`, `v`) with per-object offsets, split into an **epoch-frozen
//! base** (contiguous per object, built at construction or by
//! [`ColumnarTail::freeze`]) and an **append log** (shared columns plus
//! per-object index lists, since live appends from different objects
//! interleave). Freezing compacts the log back into the contiguous base,
//! exactly like a generation swap retires a tail.
//!
//! The integral kernels ([`ColumnarTail::integral`],
//! [`ColumnarTail::integral_batch`], [`ColumnarTail::integral_multi`])
//! evaluate the paper's §2 score `σ_i(t1,t2) = ∫ g_i` with a branch-light
//! inner loop: per-segment trapezoid contributions are computed into fixed
//! f64 lanes with a select instead of a branch, then reduced sequentially
//! left-to-right. The lane computation is independent per segment (LLVM
//! auto-vectorizes it); the sequential reduction preserves the scalar
//! path's association, so results are **bit-identical** to
//! [`PiecewiseLinear::integral`](crate::PiecewiseLinear::integral):
//!
//! * a non-overlapping segment's selected contribution is exactly `+0.0`,
//!   and the accumulator can never be `-0.0` (it starts at `+0.0`, and
//!   IEEE-754 `x + (+0.0) == x` and `(+0.0) + (-0.0) == +0.0`), so
//!   iterating a *superset* of the scalar loop's segment range never
//!   perturbs the sum;
//! * an overlapping segment's contribution repeats the scalar arithmetic
//!   operation-for-operation (select-form clipping via the shared
//!   `sel_max`/`sel_min` helpers, `slope = (v1-v0)/(t1-t0)`, trapezoid
//!   `0.5*(tr-tl)*(e(tl)+e(tr))`).
//!
//! The select (rather than clamping `tr-tl` to zero) matters: a
//! far-non-overlapping segment's extrapolated endpoint values can overflow
//! to infinity, and `0.0 * inf` would be NaN.

use crate::error::{CurveError, Result};
use crate::{Time, Value};

/// Lane width of the chunked contribution buffer. Eight f64 lanes cover one
/// AVX-512 register or two AVX2 registers; the exact value only affects
/// speed, never results (lanes are reduced sequentially either way).
const LANES: usize = 8;

/// Signed trapezoid contribution of the segment `(t0,v0)→(t1,v1)` clipped to
/// `[lo, hi]` — the paper's Eq. (1), written branch-light. Bit-identical to
/// [`Segment::integral_clipped`](crate::Segment::integral_clipped) when the
/// segment overlaps, exactly `+0.0` when it does not.
#[inline(always)]
fn seg_contrib(t0: f64, v0: f64, t1: f64, v1: f64, lo: f64, hi: f64) -> f64 {
    let tl = crate::sel_max(lo, t0);
    let tr = crate::sel_min(hi, t1);
    let slope = (v1 - v0) / (t1 - t0);
    let el = v0 + slope * (tl - t0);
    let er = v0 + slope * (tr - t0);
    let c = 0.5 * (tr - tl) * (el + er);
    // Select, not clamp: for a far-away segment `el`/`er` may be infinite
    // and `0.0 * inf` would poison the accumulator with NaN.
    if tr > tl {
        c
    } else {
        0.0
    }
}

/// Accumulate contributions of the contiguous point run `ts`/`vs` (segments
/// `j → j+1`), starting at segment `first` and clipped to `[lo, hi]`, into
/// `acc` — chunked into [`LANES`] independent lanes and reduced strictly
/// left-to-right.
///
/// One binary search (for `first`) is all a call ever pays: the chunked
/// loop takes a full chunk only while the chunk's *last* segment still
/// starts before `hi` (so no lane's division is wasted past the window
/// edge), and the scalar tail loop walks the straddling remainder with the
/// same early break the row path uses. The segments evaluated — and the
/// left-to-right add order — therefore match the scalar walk exactly.
#[inline]
fn accumulate_run(ts: &[f64], vs: &[f64], first: usize, lo: f64, hi: f64, acc: &mut f64) {
    debug_assert_eq!(ts.len(), vs.len());
    let n = ts.len().saturating_sub(1);
    let mut j = first;
    let mut buf = [0.0f64; LANES];
    while j + LANES <= n && ts[j + LANES - 1] < hi {
        // Fixed-size chunk views let the bounds checks hoist out of the
        // lane loop; per-lane computation is independent (no loop-carried
        // dependency), so the compiler is free to vectorize.
        let tc: &[f64; LANES + 1] = ts[j..j + LANES + 1].try_into().expect("chunk");
        let vc: &[f64; LANES + 1] = vs[j..j + LANES + 1].try_into().expect("chunk");
        for l in 0..LANES {
            buf[l] = seg_contrib(tc[l], vc[l], tc[l + 1], vc[l + 1], lo, hi);
        }
        // Sequential reduction preserves the scalar association.
        for &c in &buf {
            *acc += c;
        }
        j += LANES;
    }
    while j < n && ts[j] < hi {
        *acc += seg_contrib(ts[j], vs[j], ts[j + 1], vs[j + 1], lo, hi);
        j += 1;
    }
}

/// Structure-of-arrays storage for a set of piecewise-linear curves with
/// append-only mutable tails. See the module docs for layout and
/// bit-identity guarantees.
#[derive(Debug, Clone, Default)]
pub struct ColumnarTail {
    /// Per-object offsets into the base columns, length `m + 1`.
    start: Vec<u32>,
    /// Frozen time column (contiguous per object).
    base_t: Vec<f64>,
    /// Frozen value column (contiguous per object).
    base_v: Vec<f64>,
    /// Append-log time column, shared across objects in arrival order.
    log_t: Vec<f64>,
    /// Append-log value column, parallel to `log_t`.
    log_v: Vec<f64>,
    /// Per-object ascending index lists into the log columns.
    log_of: Vec<Vec<u32>>,
    /// Number of objects with a non-empty append log.
    touched: usize,
    /// Bumped by every [`ColumnarTail::freeze`].
    epoch: u64,
}

impl ColumnarTail {
    /// An empty store with no objects.
    pub fn new() -> Self {
        Self { start: vec![0], ..Self::default() }
    }

    /// Append a new object from parallel `times` / `values` slices, frozen
    /// into the base columns. Validation mirrors
    /// [`PiecewiseLinear::from_times_values`](crate::PiecewiseLinear::from_times_values).
    /// Returns the new object's id.
    pub fn push_object(&mut self, times: &[f64], values: &[f64]) -> Result<u32> {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        if times.len() < 2 {
            return Err(CurveError::TooFewPoints(times.len()));
        }
        for (i, (&t, &v)) in times.iter().zip(values.iter()).enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(CurveError::NonFinite { index: i });
            }
            if i > 0 && t <= times[i - 1] {
                return Err(CurveError::NotIncreasing { index: i, time: t, prev: times[i - 1] });
            }
        }
        self.base_t.extend_from_slice(times);
        self.base_v.extend_from_slice(values);
        self.start.push(self.base_t.len() as u32);
        self.log_of.push(Vec::new());
        Ok((self.num_objects() - 1) as u32)
    }

    /// Number of objects `m`.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.start.len() - 1
    }

    /// True when the store holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_objects() == 0
    }

    /// Number of points of object `i` (base + log).
    #[inline]
    pub fn num_points(&self, i: usize) -> usize {
        (self.start[i + 1] - self.start[i]) as usize + self.log_of[i].len()
    }

    /// Total number of points across all objects.
    #[inline]
    pub fn total_points(&self) -> usize {
        self.base_t.len() + self.log_t.len()
    }

    /// The `j`-th point of object `i`, in time order across base then log.
    pub fn point(&self, i: usize, j: usize) -> (Time, Value) {
        let base_len = (self.start[i + 1] - self.start[i]) as usize;
        if j < base_len {
            let p = self.start[i] as usize + j;
            (self.base_t[p], self.base_v[p])
        } else {
            let idx = self.log_of[i][j - base_len] as usize;
            (self.log_t[idx], self.log_v[idx])
        }
    }

    /// Left end of object `i`'s domain.
    #[inline]
    pub fn start_time(&self, i: usize) -> Time {
        self.base_t[self.start[i] as usize]
    }

    /// Right end of object `i`'s domain (last base point or last log entry).
    #[inline]
    pub fn end_time(&self, i: usize) -> Time {
        match self.log_of[i].last() {
            Some(&idx) => self.log_t[idx as usize],
            None => self.base_t[self.start[i + 1] as usize - 1],
        }
    }

    /// Copy object `i`'s points (time order) into the supplied vectors,
    /// clearing them first. Used to materialize row-form snapshots.
    pub fn copy_points(&self, i: usize, out_t: &mut Vec<f64>, out_v: &mut Vec<f64>) {
        out_t.clear();
        out_v.clear();
        let (s, e) = (self.start[i] as usize, self.start[i + 1] as usize);
        out_t.extend_from_slice(&self.base_t[s..e]);
        out_v.extend_from_slice(&self.base_v[s..e]);
        for &idx in &self.log_of[i] {
            out_t.push(self.log_t[idx as usize]);
            out_v.push(self.log_v[idx as usize]);
        }
    }

    /// Append a point to object `i`'s tail. Validation mirrors
    /// [`PiecewiseLinear::append`](crate::PiecewiseLinear::append); returns
    /// the previous right endpoint `(t, v)` so the caller can account the
    /// new segment's mass without re-reading columns.
    pub fn append(&mut self, i: usize, t: Time, v: Value) -> Result<(Time, Value)> {
        if !t.is_finite() || !v.is_finite() {
            return Err(CurveError::NonFinite { index: self.num_points(i) });
        }
        let end = self.end_time(i);
        if t <= end {
            return Err(CurveError::AppendNotAfterEnd { end, time: t });
        }
        let prev = match self.log_of[i].last() {
            Some(&idx) => (self.log_t[idx as usize], self.log_v[idx as usize]),
            None => {
                let p = self.start[i + 1] as usize - 1;
                (self.base_t[p], self.base_v[p])
            }
        };
        if self.log_of[i].is_empty() {
            self.touched += 1;
        }
        self.log_of[i].push(self.log_t.len() as u32);
        self.log_t.push(t);
        self.log_v.push(v);
        Ok(prev)
    }

    /// Number of log points of object `i` (equals its tail segment count).
    #[inline]
    pub fn tail_points(&self, i: usize) -> usize {
        self.log_of[i].len()
    }

    /// Total log points across all objects — each one is a tail segment.
    #[inline]
    pub fn tail_segments(&self) -> usize {
        self.log_t.len()
    }

    /// Number of objects with a non-empty append log.
    #[inline]
    pub fn tail_objects(&self) -> usize {
        self.touched
    }

    /// Heap bytes held by the append log (shared columns + index lists).
    pub fn tail_bytes(&self) -> usize {
        (self.log_t.len() + self.log_v.len()) * 8
            + self.log_of.iter().map(|l| l.len() * 4).sum::<usize>()
    }

    /// Heap bytes held by the whole store (base columns + offsets + log).
    pub fn bytes(&self) -> usize {
        (self.base_t.len() + self.base_v.len()) * 8 + self.start.len() * 4 + self.tail_bytes()
    }

    /// Current freeze epoch (bumped by every [`ColumnarTail::freeze`]).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compact the append log into the contiguous base columns and bump the
    /// epoch — the columnar analogue of a generation swap retiring a tail.
    /// Integrals are unchanged bit-for-bit: the merged point sequence per
    /// object is identical, only its storage moves.
    pub fn freeze(&mut self) {
        self.epoch += 1;
        if self.log_t.is_empty() {
            return;
        }
        let m = self.num_objects();
        let total = self.base_t.len() + self.log_t.len();
        let mut nt = Vec::with_capacity(total);
        let mut nv = Vec::with_capacity(total);
        let mut nstart = Vec::with_capacity(m + 1);
        nstart.push(0u32);
        for i in 0..m {
            let (s, e) = (self.start[i] as usize, self.start[i + 1] as usize);
            nt.extend_from_slice(&self.base_t[s..e]);
            nv.extend_from_slice(&self.base_v[s..e]);
            for &idx in &self.log_of[i] {
                nt.push(self.log_t[idx as usize]);
                nv.push(self.log_v[idx as usize]);
            }
            nstart.push(nt.len() as u32);
            self.log_of[i].clear();
        }
        self.base_t = nt;
        self.base_v = nv;
        self.start = nstart;
        self.log_t.clear();
        self.log_v.clear();
        self.touched = 0;
    }

    /// `σ_i(a, b)` for object `i`, bit-identical to
    /// [`PiecewiseLinear::integral`](crate::PiecewiseLinear::integral) on the
    /// same point sequence.
    pub fn integral(&self, i: usize, a: Time, b: Time) -> f64 {
        if b <= a {
            return 0.0;
        }
        let lo = a.max(self.start_time(i));
        let hi = b.min(self.end_time(i));
        if hi <= lo {
            return 0.0;
        }
        let mut acc = 0.0f64;
        let (s, e) = (self.start[i] as usize, self.start[i + 1] as usize);
        let ts = &self.base_t[s..e];
        let vs = &self.base_v[s..e];
        let nseg = ts.len() - 1;
        // One binary search finds the first candidate segment (every
        // overlapping segment j satisfies ts[j] < hi and ts[j+1] > lo);
        // the run itself stops chunk-by-chunk at the window's right edge.
        let first = ts.partition_point(|&x| x <= lo).saturating_sub(1);
        accumulate_run(ts, vs, first, lo, hi, &mut acc);
        // Tail: bridge segment (last base point → first log point) then the
        // gathered log run, all through the same accumulator so the add
        // sequence matches the whole-curve scalar walk.
        let log = &self.log_of[i];
        if !log.is_empty() {
            let (mut pt, mut pv) = (ts[nseg], vs[nseg]);
            for &idx in log {
                let (nt, nv) = (self.log_t[idx as usize], self.log_v[idx as usize]);
                acc += seg_contrib(pt, pv, nt, nv, lo, hi);
                pt = nt;
                pv = nv;
            }
        }
        acc
    }

    /// Batch rescore: `σ_i(a, b)` for every id in `ids`, appended to `out`.
    /// One columnar pass; each object's accumulator is independent, so the
    /// whole batch vectorizes without changing any per-object bits.
    pub fn integral_batch(&self, ids: &[u32], a: Time, b: Time, out: &mut Vec<f64>) {
        out.reserve(ids.len());
        for &id in ids {
            out.push(self.integral(id as usize, a, b));
        }
    }

    /// Candidates × intervals rescore: for each `(a, b)` in `windows` (the
    /// outer, row, dimension) score every id in `ids` (the inner, column,
    /// dimension), appending row-major to `out`
    /// (`out[w * ids.len() + c] = σ_{ids[c]}(windows[w])`).
    ///
    /// The traversal is object-major (every `(w, c)` cell is independent, so
    /// schedule is free): each candidate's column run is loaded **once** and
    /// stays cache-hot while all windows are scored against it, where a
    /// row-path engine answering one query at a time re-streams every curve
    /// per window. This schedule freedom — not different arithmetic — is
    /// the batch-rescoring win; every cell still carries the scalar path's
    /// exact bits.
    pub fn integral_multi(&self, ids: &[u32], windows: &[(Time, Time)], out: &mut Vec<f64>) {
        let base = out.len();
        out.resize(base + ids.len() * windows.len(), 0.0);
        for (c, &id) in ids.iter().enumerate() {
            for (w, &(a, b)) in windows.iter().enumerate() {
                out[base + w * ids.len() + c] = self.integral(id as usize, a, b);
            }
        }
    }

    /// Serialize the compacted (frozen-equivalent) form: object count,
    /// offsets, then the full `t` and `v` columns — the checkpoint image's
    /// columnar section format. Exact f64 bits are preserved.
    pub fn to_bytes(&self) -> Vec<u8> {
        let m = self.num_objects();
        let total = self.total_points();
        let mut out = Vec::with_capacity(4 + (m + 1) * 4 + total * 16);
        out.extend_from_slice(&(m as u32).to_le_bytes());
        let mut off = 0u32;
        out.extend_from_slice(&off.to_le_bytes());
        for i in 0..m {
            off += self.num_points(i) as u32;
            out.extend_from_slice(&off.to_le_bytes());
        }
        for i in 0..m {
            let (s, e) = (self.start[i] as usize, self.start[i + 1] as usize);
            for &t in &self.base_t[s..e] {
                out.extend_from_slice(&t.to_le_bytes());
            }
            for &idx in &self.log_of[i] {
                out.extend_from_slice(&self.log_t[idx as usize].to_le_bytes());
            }
        }
        for i in 0..m {
            let (s, e) = (self.start[i] as usize, self.start[i + 1] as usize);
            for &v in &self.base_v[s..e] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &idx in &self.log_of[i] {
                out.extend_from_slice(&self.log_v[idx as usize].to_le_bytes());
            }
        }
        out
    }

    /// Parse [`ColumnarTail::to_bytes`] output; `None` on truncation or
    /// malformed curves (offsets not monotone, <2 points, non-finite or
    /// non-increasing times).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let m = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let mut start = Vec::with_capacity(m + 1);
        for _ in 0..=m {
            start.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?));
        }
        let total = *start.last()? as usize;
        for w in start.windows(2) {
            if w[1] < w[0] + 2 {
                return None; // every object needs ≥ 2 points
            }
        }
        if start[0] != 0 {
            return None;
        }
        let read_col = |pos: &mut usize| -> Option<Vec<f64>> {
            let mut col = Vec::with_capacity(total);
            for _ in 0..total {
                col.push(f64::from_le_bytes(take(pos, 8)?.try_into().ok()?));
            }
            Some(col)
        };
        let base_t = read_col(&mut pos)?;
        let base_v = read_col(&mut pos)?;
        if pos != bytes.len() {
            return None;
        }
        for w in start.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            for j in s..e {
                if !base_t[j].is_finite() || !base_v[j].is_finite() {
                    return None;
                }
                if j > s && base_t[j] <= base_t[j - 1] {
                    return None;
                }
            }
        }
        Some(Self {
            start,
            base_t,
            base_v,
            log_t: Vec::new(),
            log_v: Vec::new(),
            log_of: vec![Vec::new(); m],
            touched: 0,
            epoch: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PiecewiseLinear;

    fn curves() -> Vec<PiecewiseLinear> {
        vec![
            PiecewiseLinear::from_points(&[(0.0, 0.0), (2.0, 4.0), (5.0, 1.0), (6.0, 1.0)])
                .unwrap(),
            PiecewiseLinear::from_points(&[(10.0, 2.0), (20.0, 2.0)]).unwrap(),
            PiecewiseLinear::from_points(&[(0.0, -1.0), (2.0, 1.0), (3.0, -5.0)]).unwrap(),
            PiecewiseLinear::from_points(&[
                (0.5, 3.0),
                (0.6, 2.9),
                (1.7, 0.1),
                (2.9, 7.5),
                (4.0, 7.5),
                (4.1, 0.0),
                (8.0, 2.25),
                (9.5, 1.0),
                (11.0, 4.0),
                (12.5, 0.5),
            ])
            .unwrap(),
        ]
    }

    fn build(curves: &[PiecewiseLinear]) -> ColumnarTail {
        let mut ct = ColumnarTail::new();
        for c in curves {
            ct.push_object(c.times(), c.values()).unwrap();
        }
        ct
    }

    fn windows() -> Vec<(f64, f64)> {
        vec![
            (0.0, 6.0),
            (-100.0, 100.0),
            (1.0, 3.0),
            (2.0, 2.5),
            (5.9, 8.0),
            (3.0, 3.0),
            (4.0, 1.0),
            (10.5, 19.0),
            (0.25, 12.75),
            (11.2, 11.3),
        ]
    }

    fn assert_bits(ct: &ColumnarTail, curves: &[PiecewiseLinear]) {
        for (i, c) in curves.iter().enumerate() {
            for &(a, b) in &windows() {
                let want = c.integral(a, b);
                let got = ct.integral(i, a, b);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "object {i} window [{a}, {b}]: scalar {want} vs columnar {got}"
                );
            }
        }
    }

    #[test]
    fn integral_bit_identical_to_scalar() {
        let cs = curves();
        assert_bits(&build(&cs), &cs);
    }

    #[test]
    fn integral_bit_identical_with_tails() {
        let mut cs = curves();
        let mut ct = build(&cs);
        // Interleaved appends land in the shared log columns out of
        // per-object order.
        let appends = [(0usize, 7.0, 2.0), (2, 4.5, 1.5), (0, 9.0, -1.0), (3, 13.0, 8.0)];
        for &(i, t, v) in &appends {
            cs[i].append(t, v).unwrap();
            let prev = ct.append(i, t, v).unwrap();
            assert_eq!(prev.0, cs[i].point(cs[i].num_points() - 2).0);
        }
        assert_bits(&ct, &cs);
        assert_eq!(ct.tail_segments(), 4);
        assert_eq!(ct.tail_objects(), 3);
        assert!(ct.tail_bytes() > 0);
        // Freezing compacts the log without changing any result bits.
        ct.freeze();
        assert_eq!(ct.epoch(), 1);
        assert_eq!(ct.tail_segments(), 0);
        assert_eq!(ct.tail_objects(), 0);
        assert_eq!(ct.tail_bytes(), 0);
        assert_bits(&ct, &cs);
    }

    #[test]
    fn accessors_match_row_form() {
        let cs = curves();
        let mut ct = build(&cs);
        ct.append(1, 30.0, 5.0).unwrap();
        assert_eq!(ct.num_objects(), 4);
        assert_eq!(ct.num_points(1), 3);
        assert_eq!(ct.point(1, 2), (30.0, 5.0));
        assert_eq!(ct.start_time(1), 10.0);
        assert_eq!(ct.end_time(1), 30.0);
        assert_eq!(ct.tail_points(1), 1);
        let (mut t, mut v) = (Vec::new(), Vec::new());
        ct.copy_points(1, &mut t, &mut v);
        assert_eq!(t, vec![10.0, 20.0, 30.0]);
        assert_eq!(v, vec![2.0, 2.0, 5.0]);
    }

    #[test]
    fn append_validates_like_pwl() {
        let mut ct = build(&curves());
        assert!(matches!(ct.append(0, 6.0, 0.0), Err(CurveError::AppendNotAfterEnd { .. })));
        assert!(matches!(ct.append(0, 7.0, f64::NAN), Err(CurveError::NonFinite { .. })));
        ct.append(0, 7.0, 1.0).unwrap();
        assert!(matches!(ct.append(0, 6.5, 1.0), Err(CurveError::AppendNotAfterEnd { .. })));
    }

    #[test]
    fn push_object_validates() {
        let mut ct = ColumnarTail::new();
        assert!(matches!(ct.push_object(&[1.0], &[2.0]), Err(CurveError::TooFewPoints(1))));
        assert!(matches!(
            ct.push_object(&[0.0, 0.0], &[1.0, 2.0]),
            Err(CurveError::NotIncreasing { index: 1, .. })
        ));
        assert!(matches!(
            ct.push_object(&[0.0, f64::INFINITY], &[1.0, 2.0]),
            Err(CurveError::NonFinite { index: 1 })
        ));
        assert!(ct.is_empty());
    }

    #[test]
    fn batch_and_multi_agree_with_single() {
        let cs = curves();
        let mut ct = build(&cs);
        ct.append(0, 7.25, 3.0).unwrap();
        let ids: Vec<u32> = (0..cs.len() as u32).collect();
        let ws = windows();
        let mut multi = Vec::new();
        ct.integral_multi(&ids, &ws, &mut multi);
        assert_eq!(multi.len(), ids.len() * ws.len());
        for (w, &(a, b)) in ws.iter().enumerate() {
            let mut batch = Vec::new();
            ct.integral_batch(&ids, a, b, &mut batch);
            for (c, &id) in ids.iter().enumerate() {
                let single = ct.integral(id as usize, a, b);
                assert_eq!(batch[c].to_bits(), single.to_bits());
                assert_eq!(multi[w * ids.len() + c].to_bits(), single.to_bits());
            }
        }
    }

    #[test]
    fn bytes_roundtrip_preserves_bits() {
        let cs = curves();
        let mut ct = build(&cs);
        ct.append(2, 5.5, -0.25).unwrap();
        let blob = ct.to_bytes();
        let back = ColumnarTail::from_bytes(&blob).expect("roundtrip");
        assert_eq!(back.num_objects(), ct.num_objects());
        for i in 0..ct.num_objects() {
            assert_eq!(back.num_points(i), ct.num_points(i));
            for j in 0..ct.num_points(i) {
                let (at, av) = ct.point(i, j);
                let (bt, bv) = back.point(i, j);
                assert_eq!(at.to_bits(), bt.to_bits());
                assert_eq!(av.to_bits(), bv.to_bits());
            }
        }
        // The reloaded store is fully frozen.
        assert_eq!(back.tail_segments(), 0);
    }

    #[test]
    fn from_bytes_rejects_malformed() {
        let ct = build(&curves());
        let blob = ct.to_bytes();
        assert!(ColumnarTail::from_bytes(&blob[..blob.len() - 1]).is_none());
        assert!(ColumnarTail::from_bytes(&blob[..4]).is_none());
        let mut extra = blob.clone();
        extra.push(0);
        assert!(ColumnarTail::from_bytes(&extra).is_none());
        // Break time monotonicity of the first object.
        let mut bad = blob;
        let m = ct.num_objects();
        let col_at = 4 + (m + 1) * 4;
        bad[col_at..col_at + 8].copy_from_slice(&f64::MAX.to_le_bytes());
        assert!(ColumnarTail::from_bytes(&bad).is_none());
    }

    #[test]
    fn empty_store_roundtrips() {
        let ct = ColumnarTail::new();
        let back = ColumnarTail::from_bytes(&ct.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.total_points(), 0);
    }
}
