//! # chronorank-curve — the temporal function model
//!
//! The paper represents every temporal object `o_i` as a piecewise-linear
//! function `g_i : [0,T] → ℝ` with `n_i` segments; the aggregate score of an
//! object over a query interval is the integral `σ_i(t1,t2) = ∫ g_i`.
//! This crate implements that model and the numeric kernels every method in
//! the paper is built from:
//!
//! * [`Segment`] — one linear piece; trapezoid integral over a clipped
//!   sub-interval (the paper's Eq. (1)), absolute-value integrals (for the
//!   Section 4 negative-score extension), and accumulation-crossing solves
//!   (used by breakpoint construction);
//! * [`PiecewiseLinear`] — a validated sequence of segments with binary
//!   search evaluation, interval integrals, prefix sums
//!   `σ_i(I_{i,ℓ})` (the quantity EXACT2/EXACT3 store), and right-edge
//!   appends (the paper's update model);
//! * [`PiecewisePoly`] — the Section 4 extension to piecewise *polynomial*
//!   curves with exact antiderivative integrals;
//! * [`ColumnarTail`] — PAX-style structure-of-arrays storage for curves
//!   with append-only mutable tails, plus branch-light batch integral
//!   kernels bit-identical to the scalar path (the live tier's columnar
//!   rescoring engine);
//! * [`segmentation`] — algorithms that turn raw time-series samples into a
//!   piecewise-linear representation (connect-the-dots, uniform thinning,
//!   and adaptive bottom-up segmentation), since the paper assumes data
//!   arrives already segmented by any such method;
//! * [`numeric`] — shared robust solvers (quadratic accumulation
//!   crossings).
//!
//! Everything is plain `f64` math with no storage dependencies.

mod columnar;
mod error;
pub mod numeric;
mod poly;
mod pwl;
mod segment;
pub mod segmentation;

pub use columnar::ColumnarTail;
pub use error::{CurveError, Result};
pub use poly::{PiecewisePoly, PolySegment};
pub use pwl::PiecewiseLinear;
pub use segment::Segment;

/// Objects' times are `f64` seconds (or any consistent unit) throughout.
pub type Time = f64;

/// Score values.
pub type Value = f64;

/// `max(a, b)` as a straight select (`b > a ? b : a`). Identical to
/// `f64::max` on the finite inputs curves validate; unlike `f64::max` it
/// carries no NaN bookkeeping, so the backend turns it into one
/// `maxsd`/`maxpd` and the SLP vectorizer accepts clipping loops built on
/// it. **Both** the scalar clipping path ([`Segment::integral_clipped`])
/// and the columnar kernels use this helper, so their bits can never
/// drift apart.
#[inline(always)]
pub(crate) fn sel_max(a: f64, b: f64) -> f64 {
    if b > a {
        b
    } else {
        a
    }
}

/// `min(a, b)` as a straight select — see [`sel_max`].
#[inline(always)]
pub(crate) fn sel_min(a: f64, b: f64) -> f64 {
    if b < a {
        b
    } else {
        a
    }
}
