//! # chronorank-curve — the temporal function model
//!
//! The paper represents every temporal object `o_i` as a piecewise-linear
//! function `g_i : [0,T] → ℝ` with `n_i` segments; the aggregate score of an
//! object over a query interval is the integral `σ_i(t1,t2) = ∫ g_i`.
//! This crate implements that model and the numeric kernels every method in
//! the paper is built from:
//!
//! * [`Segment`] — one linear piece; trapezoid integral over a clipped
//!   sub-interval (the paper's Eq. (1)), absolute-value integrals (for the
//!   Section 4 negative-score extension), and accumulation-crossing solves
//!   (used by breakpoint construction);
//! * [`PiecewiseLinear`] — a validated sequence of segments with binary
//!   search evaluation, interval integrals, prefix sums
//!   `σ_i(I_{i,ℓ})` (the quantity EXACT2/EXACT3 store), and right-edge
//!   appends (the paper's update model);
//! * [`PiecewisePoly`] — the Section 4 extension to piecewise *polynomial*
//!   curves with exact antiderivative integrals;
//! * [`segmentation`] — algorithms that turn raw time-series samples into a
//!   piecewise-linear representation (connect-the-dots, uniform thinning,
//!   and adaptive bottom-up segmentation), since the paper assumes data
//!   arrives already segmented by any such method;
//! * [`numeric`] — shared robust solvers (quadratic accumulation
//!   crossings).
//!
//! Everything is plain `f64` math with no storage dependencies.

mod error;
pub mod numeric;
mod poly;
mod pwl;
mod segment;
pub mod segmentation;

pub use error::{CurveError, Result};
pub use poly::{PiecewisePoly, PolySegment};
pub use pwl::PiecewiseLinear;
pub use segment::Segment;

/// Objects' times are `f64` seconds (or any consistent unit) throughout.
pub type Time = f64;

/// Score values.
pub type Value = f64;
