//! Piecewise-linear curves: the paper's `g_i`.

use crate::error::{CurveError, Result};
use crate::segment::Segment;
use crate::{Time, Value};

/// A validated piecewise-linear function: `n+1` points with strictly
/// increasing, finite time stamps define `n` segments. The curve is defined
/// on its own domain `[start, end] ⊆ [0, T]`; everything outside contributes
/// nothing to integrals (the paper's objects need not span the whole time
/// domain, nor align with each other).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    times: Vec<Time>,
    values: Vec<Value>,
}

impl PiecewiseLinear {
    /// Build from `(time, value)` points. At least two points; times must be
    /// strictly increasing; everything must be finite.
    pub fn from_points(points: &[(Time, Value)]) -> Result<Self> {
        let times: Vec<f64> = points.iter().map(|p| p.0).collect();
        let values: Vec<f64> = points.iter().map(|p| p.1).collect();
        Self::from_times_values(times, values)
    }

    /// Build from parallel `times` / `values` vectors (zero-copy variant).
    pub fn from_times_values(times: Vec<Time>, values: Vec<Value>) -> Result<Self> {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        if times.len() < 2 {
            return Err(CurveError::TooFewPoints(times.len()));
        }
        for (i, (&t, &v)) in times.iter().zip(values.iter()).enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(CurveError::NonFinite { index: i });
            }
            if i > 0 && t <= times[i - 1] {
                return Err(CurveError::NotIncreasing { index: i, time: t, prev: times[i - 1] });
            }
        }
        Ok(Self { times, values })
    }

    /// Number of segments `n_i`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.times.len() - 1
    }

    /// Number of points (`n_i + 1`).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    /// Left end of the domain (`t_{i,0}`).
    #[inline]
    pub fn start(&self) -> Time {
        self.times[0]
    }

    /// Right end of the domain (`t_{i,n_i}`).
    #[inline]
    pub fn end(&self) -> Time {
        *self.times.last().expect("non-empty")
    }

    /// `(start, end)`.
    #[inline]
    pub fn domain(&self) -> (Time, Time) {
        (self.start(), self.end())
    }

    /// The `j`-th point `(t_{i,j}, v_{i,j})`, `j ∈ [0, n_i]`.
    #[inline]
    pub fn point(&self, j: usize) -> (Time, Value) {
        (self.times[j], self.values[j])
    }

    /// Raw time stamps.
    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The `j`-th segment `g_{i,j+1}` (0-based here), `j ∈ [0, n_i)`.
    #[inline]
    pub fn segment(&self, j: usize) -> Segment {
        Segment {
            t0: self.times[j],
            v0: self.values[j],
            t1: self.times[j + 1],
            v1: self.values[j + 1],
        }
    }

    /// Iterate all segments left to right.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.num_segments()).map(|j| self.segment(j))
    }

    /// Index of the segment whose half-open span `[t_j, t_{j+1})` contains
    /// `t` (the final segment is closed on the right). `None` outside the
    /// domain. These half-open semantics guarantee a stabbing query returns
    /// exactly one segment per object, as EXACT3 requires.
    pub fn locate(&self, t: Time) -> Option<usize> {
        if t < self.start() || t > self.end() {
            return None;
        }
        if t == self.end() {
            return Some(self.num_segments() - 1);
        }
        // partition_point: count of times <= t; segment index is count-1.
        let idx = self.times.partition_point(|&x| x <= t);
        Some(idx - 1)
    }

    /// Evaluate `g_i(t)`, `None` outside the domain.
    pub fn eval(&self, t: Time) -> Option<Value> {
        let j = self.locate(t)?;
        Some(self.segment(j).eval(t))
    }

    /// `σ_i(a, b) = ∫_a^b g_i(t) dt`, clipped to the curve's domain.
    /// Cost is `O(log n + q)` where `q` is the number of overlapping
    /// segments (this is what EXACT1 pays per object).
    pub fn integral(&self, a: Time, b: Time) -> f64 {
        if b <= a {
            return 0.0;
        }
        let lo = a.max(self.start());
        let hi = b.min(self.end());
        if hi <= lo {
            return 0.0;
        }
        let first = self.locate(lo).expect("clamped inside domain");
        let mut acc = 0.0;
        for j in first..self.num_segments() {
            let seg = self.segment(j);
            if seg.t0 >= hi {
                break;
            }
            acc += seg.integral_clipped(lo, hi);
        }
        acc
    }

    /// `∫_a^b |g_i(t)| dt` (Section 4 negative-score extension).
    pub fn abs_integral(&self, a: Time, b: Time) -> f64 {
        if b <= a {
            return 0.0;
        }
        let lo = a.max(self.start());
        let hi = b.min(self.end());
        if hi <= lo {
            return 0.0;
        }
        let first = self.locate(lo).expect("clamped inside domain");
        let mut acc = 0.0;
        for j in first..self.num_segments() {
            let seg = self.segment(j);
            if seg.t0 >= hi {
                break;
            }
            acc += seg.abs_integral_clipped(lo, hi);
        }
        acc
    }

    /// Total integral over the whole domain, `σ_i(0, T)`.
    pub fn total(&self) -> f64 {
        self.segments().map(|s| s.integral_full()).sum()
    }

    /// Total absolute integral.
    pub fn total_abs(&self) -> f64 {
        let (a, b) = self.domain();
        self.abs_integral(a, b)
    }

    /// Prefix sums `P[ℓ] = σ_i(t_{i,0}, t_{i,ℓ})` for `ℓ ∈ [0, n_i]`
    /// (`P[0] = 0`). This is exactly the quantity EXACT2/EXACT3 store in
    /// their data entries (`σ_i(I_{i,ℓ})`), computed in one sweep.
    pub fn prefix_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_points());
        out.push(0.0);
        let mut acc = 0.0;
        for seg in self.segments() {
            acc += seg.integral_full();
            out.push(acc);
        }
        out
    }

    /// Cumulative integral from the domain start to `t` (clamped), given
    /// precomputed [`PiecewiseLinear::prefix_sums`]. `O(log n)` — the Eq. (2)
    /// building block.
    pub fn cumulative_at(&self, prefix: &[f64], t: Time) -> f64 {
        debug_assert_eq!(prefix.len(), self.num_points());
        if t <= self.start() {
            return 0.0;
        }
        if t >= self.end() {
            return prefix[self.num_segments()];
        }
        let j = self.locate(t).expect("inside domain");
        prefix[j] + self.segment(j).integral_clipped(self.times[j], t)
    }

    /// `σ_i(a, b)` in `O(log n)` via prefix sums (Eq. (2) identity).
    pub fn integral_prefix(&self, prefix: &[f64], a: Time, b: Time) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.cumulative_at(prefix, b) - self.cumulative_at(prefix, a)
    }

    /// Smallest `t ≥ from` with `∫_from^t g_i = target` (`target > 0`),
    /// walking segments from `from` and solving the final crossing inside a
    /// segment. `None` when the curve's remaining mass is below `target`.
    /// This is the whole-curve version of
    /// [`Segment::time_to_accumulate`](crate::Segment::time_to_accumulate),
    /// used when BREAKPOINTS2 re-bases a dangerous object after a commit.
    pub fn time_to_accumulate(&self, from: Time, target: f64) -> Option<Time> {
        debug_assert!(target > 0.0);
        let from = from.max(self.start());
        if from >= self.end() {
            return None;
        }
        let first = self.locate(from).expect("clamped inside domain");
        let mut need = target;
        for j in first..self.num_segments() {
            let seg = self.segment(j);
            let lo = from.max(seg.t0);
            let available = seg.integral_clipped(lo, seg.t1);
            if available >= need {
                return seg.time_to_accumulate(lo, need);
            }
            need -= available;
        }
        None
    }

    /// Longest segment duration (EXACT1 needs this to bound its scan-back).
    pub fn max_segment_duration(&self) -> f64 {
        self.segments().map(|s| s.duration()).fold(0.0, f64::max)
    }

    /// Append a point, extending the curve to the right (the paper's update
    /// model: "updates only at the current time instance").
    pub fn append(&mut self, t: Time, v: Value) -> Result<()> {
        if !t.is_finite() || !v.is_finite() {
            return Err(CurveError::NonFinite { index: self.num_points() });
        }
        if t <= self.end() {
            return Err(CurveError::AppendNotAfterEnd { end: self.end(), time: t });
        }
        self.times.push(t);
        self.values.push(v);
        Ok(())
    }

    /// Minimum value over the domain (attained at a vertex).
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over the domain (attained at a vertex).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn curve() -> PiecewiseLinear {
        // (0,0) -> (2,4) -> (5,1) -> (6,1)
        PiecewiseLinear::from_points(&[(0.0, 0.0), (2.0, 4.0), (5.0, 1.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            PiecewiseLinear::from_points(&[(0.0, 1.0)]),
            Err(CurveError::TooFewPoints(1))
        ));
        assert!(matches!(
            PiecewiseLinear::from_points(&[(0.0, 1.0), (0.0, 2.0)]),
            Err(CurveError::NotIncreasing { index: 1, .. })
        ));
        assert!(matches!(
            PiecewiseLinear::from_points(&[(0.0, 1.0), (3.0, 2.0), (2.0, 0.0)]),
            Err(CurveError::NotIncreasing { index: 2, .. })
        ));
        assert!(matches!(
            PiecewiseLinear::from_points(&[(0.0, f64::NAN), (1.0, 2.0)]),
            Err(CurveError::NonFinite { index: 0 })
        ));
    }

    #[test]
    fn basic_accessors() {
        let c = curve();
        assert_eq!(c.num_segments(), 3);
        assert_eq!(c.num_points(), 4);
        assert_eq!(c.domain(), (0.0, 6.0));
        assert_eq!(c.point(1), (2.0, 4.0));
        assert_eq!(c.segment(1), Segment::new(2.0, 4.0, 5.0, 1.0));
        assert_eq!(c.segments().count(), 3);
    }

    #[test]
    fn locate_half_open_semantics() {
        let c = curve();
        assert_eq!(c.locate(0.0), Some(0));
        assert_eq!(c.locate(1.99), Some(0));
        assert_eq!(c.locate(2.0), Some(1)); // boundary belongs to the right
        assert_eq!(c.locate(5.0), Some(2));
        assert_eq!(c.locate(6.0), Some(2)); // curve end closes the last
        assert_eq!(c.locate(-0.1), None);
        assert_eq!(c.locate(6.1), None);
    }

    #[test]
    fn eval_interpolates() {
        let c = curve();
        assert_eq!(c.eval(1.0), Some(2.0));
        assert_eq!(c.eval(3.5), Some(2.5));
        assert_eq!(c.eval(5.5), Some(1.0));
        assert_eq!(c.eval(9.0), None);
    }

    #[test]
    fn integral_whole_domain_matches_total() {
        let c = curve();
        // areas: seg0 = 4, seg1 = 7.5, seg2 = 1 → 12.5
        assert!(approx_eq(c.total(), 12.5, 1e-12));
        assert!(approx_eq(c.integral(0.0, 6.0), 12.5, 1e-12));
        assert!(approx_eq(c.integral(-100.0, 100.0), 12.5, 1e-12));
    }

    #[test]
    fn integral_subinterval() {
        let c = curve();
        // [1, 3]: seg0 part ∫_1^2 2t dt = 3; seg1 part ∫_2^3 (4-(t-2)) dt = 3.5
        assert!(approx_eq(c.integral(1.0, 3.0), 6.5, 1e-12));
        // empty and inverted intervals
        assert_eq!(c.integral(3.0, 3.0), 0.0);
        assert_eq!(c.integral(4.0, 3.0), 0.0);
    }

    #[test]
    fn prefix_sums_match_segment_areas() {
        let c = curve();
        let p = c.prefix_sums();
        assert_eq!(p.len(), 4);
        assert!(approx_eq(p[0], 0.0, 1e-12));
        assert!(approx_eq(p[1], 4.0, 1e-12));
        assert!(approx_eq(p[2], 11.5, 1e-12));
        assert!(approx_eq(p[3], 12.5, 1e-12));
    }

    #[test]
    fn integral_prefix_agrees_with_direct_integral() {
        let c = curve();
        let p = c.prefix_sums();
        for &(a, b) in
            &[(0.0, 6.0), (1.0, 3.0), (2.0, 2.5), (-1.0, 4.0), (5.9, 8.0), (0.0, 0.0), (3.0, 1.0)]
        {
            assert!(
                approx_eq(c.integral_prefix(&p, a, b), c.integral(a, b), 1e-12),
                "interval [{a}, {b}]"
            );
        }
    }

    #[test]
    fn abs_integral_on_mixed_sign_curve() {
        // (0,-1) -> (2,1): crosses zero at t=1; two triangles of area 0.5.
        let c = PiecewiseLinear::from_points(&[(0.0, -1.0), (2.0, 1.0)]).unwrap();
        assert!(approx_eq(c.integral(0.0, 2.0), 0.0, 1e-12));
        assert!(approx_eq(c.abs_integral(0.0, 2.0), 1.0, 1e-12));
        assert!(approx_eq(c.total_abs(), 1.0, 1e-12));
    }

    #[test]
    fn append_extends_and_validates() {
        let mut c = curve();
        assert!(matches!(c.append(6.0, 0.0), Err(CurveError::AppendNotAfterEnd { .. })));
        assert!(matches!(c.append(7.0, f64::INFINITY), Err(CurveError::NonFinite { .. })));
        c.append(8.0, 3.0).unwrap();
        assert_eq!(c.num_segments(), 4);
        assert_eq!(c.end(), 8.0);
        // new trapezoid from (6,1) to (8,3): area 4
        assert!(approx_eq(c.total(), 16.5, 1e-12));
    }

    #[test]
    fn max_segment_duration_and_extrema() {
        let c = curve();
        assert_eq!(c.max_segment_duration(), 3.0);
        assert_eq!(c.min_value(), 0.0);
        assert_eq!(c.max_value(), 4.0);
    }

    #[test]
    fn time_to_accumulate_walks_segments() {
        let c = curve(); // total 12.5, prefix [0, 4, 11.5, 12.5]
                         // target 4 from 0 → exactly the first vertex t=2.
        let t = c.time_to_accumulate(0.0, 4.0).unwrap();
        assert!(approx_eq(c.integral(0.0, t), 4.0, 1e-9), "t={t}");
        // target inside second segment.
        let t = c.time_to_accumulate(0.0, 8.0).unwrap();
        assert!(approx_eq(c.integral(0.0, t), 8.0, 1e-9), "t={t}");
        assert!(t > 2.0 && t < 5.0);
        // from an interior start.
        let t = c.time_to_accumulate(3.0, 2.0).unwrap();
        assert!(approx_eq(c.integral(3.0, t), 2.0, 1e-9), "t={t}");
        // more than the remaining mass.
        assert!(c.time_to_accumulate(0.0, 13.0).is_none());
        assert!(c.time_to_accumulate(5.9, 1.0).is_none());
        assert!(c.time_to_accumulate(6.0, 0.5).is_none());
    }

    #[test]
    fn integral_clipped_to_partial_domain_overlap() {
        let c = PiecewiseLinear::from_points(&[(10.0, 2.0), (20.0, 2.0)]).unwrap();
        assert!(approx_eq(c.integral(0.0, 15.0), 10.0, 1e-12));
        assert!(approx_eq(c.integral(15.0, 100.0), 10.0, 1e-12));
        assert_eq!(c.integral(0.0, 10.0), 0.0);
        assert_eq!(c.integral(20.0, 30.0), 0.0);
    }
}
