//! Piecewise *polynomial* curves — the Section 4 extension.
//!
//! "all of our methods also naturally work with any piecewise polynomial
//! functions p: the only change is [...] how to compute σ_i(I) [...] we
//! simply compute it using the integral over p_{i,j}". Coefficients are
//! stored relative to each segment's left endpoint for numerical stability,
//! and integrals use exact antiderivatives.

use crate::error::{CurveError, Result};
use crate::numeric::monotone_bisect;
use crate::{Time, Value};

/// One polynomial piece: `p(t) = Σ_k coeffs[k] · (t - t0)^k` on `[t0, t1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolySegment {
    /// Left time.
    pub t0: Time,
    /// Right time (strictly greater).
    pub t1: Time,
    /// Polynomial coefficients in the local variable `x = t - t0`.
    pub coeffs: Vec<f64>,
}

impl PolySegment {
    /// Construct and validate a polynomial segment.
    pub fn new(t0: Time, t1: Time, coeffs: Vec<f64>) -> Result<Self> {
        if coeffs.is_empty() {
            return Err(CurveError::BadPolySegment("empty coefficient vector".into()));
        }
        if t1 <= t0 || !t0.is_finite() || !t1.is_finite() {
            return Err(CurveError::BadPolySegment(format!(
                "non-positive or non-finite span [{t0}, {t1}]"
            )));
        }
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(CurveError::BadPolySegment("non-finite coefficient".into()));
        }
        Ok(Self { t0, t1, coeffs })
    }

    /// A linear segment as a degree-1 polynomial (bridges from PWL).
    pub fn from_linear(t0: Time, v0: Value, t1: Time, v1: Value) -> Result<Self> {
        let w = (v1 - v0) / (t1 - t0);
        Self::new(t0, t1, vec![v0, w])
    }

    /// Evaluate `p(t)` by Horner's rule (extrapolates outside the span).
    pub fn eval(&self, t: Time) -> Value {
        let x = t - self.t0;
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Antiderivative `P(x) = Σ_k coeffs[k]/(k+1) · x^{k+1}` evaluated at
    /// `x = t - t0` (so `P(0) = 0`).
    fn antiderivative_at(&self, t: Time) -> f64 {
        let x = t - self.t0;
        let mut acc = 0.0;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            acc = acc * x + c / (k as f64 + 1.0);
        }
        acc * x
    }

    /// Exact integral of `p` over `[a, b] ∩ [t0, t1]` (the polynomial
    /// replacement for the trapezoid formula Eq. (1)).
    pub fn integral_clipped(&self, a: Time, b: Time) -> f64 {
        let tl = a.max(self.t0);
        let tr = b.min(self.t1);
        if tr <= tl {
            return 0.0;
        }
        self.antiderivative_at(tr) - self.antiderivative_at(tl)
    }

    /// Full-span integral.
    pub fn integral_full(&self) -> f64 {
        self.integral_clipped(self.t0, self.t1)
    }

    /// Smallest `t ≥ from` in the span at which `∫_from^t p = target`
    /// (`target > 0`), found by monotone bisection (valid for non-negative
    /// `p`, which is what breakpoint construction assumes). `None` when the
    /// target is not reached by `t1`.
    pub fn time_to_accumulate(&self, from: Time, target: f64) -> Option<Time> {
        let from = from.max(self.t0);
        if from >= self.t1 {
            return None;
        }
        let total = self.integral_clipped(from, self.t1);
        if total < target {
            return None;
        }
        let t = monotone_bisect(from, self.t1, target, |x| self.integral_clipped(from, x));
        Some(t)
    }
}

/// A piecewise polynomial curve: contiguous [`PolySegment`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewisePoly {
    segments: Vec<PolySegment>,
}

impl PiecewisePoly {
    /// Build from contiguous segments (each must start where the previous
    /// ended).
    pub fn new(segments: Vec<PolySegment>) -> Result<Self> {
        if segments.is_empty() {
            return Err(CurveError::TooFewPoints(0));
        }
        for i in 1..segments.len() {
            if (segments[i].t0 - segments[i - 1].t1).abs() > 1e-9 {
                return Err(CurveError::BadPolySegment(format!(
                    "segment {i} starts at {} but previous ends at {}",
                    segments[i].t0,
                    segments[i - 1].t1
                )));
            }
        }
        Ok(Self { segments })
    }

    /// Convert a piecewise-linear curve into degree-1 polynomial pieces.
    pub fn from_pwl(pwl: &crate::PiecewiseLinear) -> Self {
        let segments = pwl
            .segments()
            .map(|s| PolySegment::from_linear(s.t0, s.v0, s.t1, s.v1).expect("valid segment"))
            .collect();
        Self { segments }
    }

    /// Number of polynomial pieces.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The pieces, left to right.
    pub fn segments(&self) -> &[PolySegment] {
        &self.segments
    }

    /// Domain start.
    pub fn start(&self) -> Time {
        self.segments[0].t0
    }

    /// Domain end.
    pub fn end(&self) -> Time {
        self.segments.last().expect("non-empty").t1
    }

    /// Segment index containing `t` (half-open; last segment closed).
    pub fn locate(&self, t: Time) -> Option<usize> {
        if t < self.start() || t > self.end() {
            return None;
        }
        if t == self.end() {
            return Some(self.segments.len() - 1);
        }
        let idx = self.segments.partition_point(|s| s.t1 <= t);
        Some(idx.min(self.segments.len() - 1))
    }

    /// Evaluate the curve, `None` outside the domain.
    pub fn eval(&self, t: Time) -> Option<Value> {
        let j = self.locate(t)?;
        Some(self.segments[j].eval(t))
    }

    /// `∫_a^b p(t) dt`, clipped to the domain.
    pub fn integral(&self, a: Time, b: Time) -> f64 {
        if b <= a {
            return 0.0;
        }
        let lo = a.max(self.start());
        let hi = b.min(self.end());
        if hi <= lo {
            return 0.0;
        }
        let first = self.locate(lo).expect("clamped");
        let mut acc = 0.0;
        for seg in &self.segments[first..] {
            if seg.t0 >= hi {
                break;
            }
            acc += seg.integral_clipped(lo, hi);
        }
        acc
    }

    /// Total integral over the domain.
    pub fn total(&self) -> f64 {
        self.segments.iter().map(|s| s.integral_full()).sum()
    }

    /// Prefix sums at piece boundaries (`P[0] = 0`), the EXACT2/EXACT3
    /// stored quantity for polynomial data.
    pub fn prefix_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.segments.len() + 1);
        out.push(0.0);
        let mut acc = 0.0;
        for seg in &self.segments {
            acc += seg.integral_full();
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::PiecewiseLinear;

    #[test]
    fn construction_validates() {
        assert!(PolySegment::new(0.0, 1.0, vec![]).is_err());
        assert!(PolySegment::new(1.0, 1.0, vec![1.0]).is_err());
        assert!(PolySegment::new(0.0, 1.0, vec![f64::NAN]).is_err());
        assert!(PiecewisePoly::new(vec![]).is_err());
        let a = PolySegment::new(0.0, 1.0, vec![1.0]).unwrap();
        let b = PolySegment::new(2.0, 3.0, vec![1.0]).unwrap();
        assert!(PiecewisePoly::new(vec![a, b]).is_err(), "gap must be rejected");
    }

    #[test]
    fn quadratic_eval_and_integral() {
        // p(t) = (t-1)^2 on [1, 3]: coeffs [0, 0, 1].
        let s = PolySegment::new(1.0, 3.0, vec![0.0, 0.0, 1.0]).unwrap();
        assert!(approx_eq(s.eval(2.0), 1.0, 1e-12));
        assert!(approx_eq(s.eval(3.0), 4.0, 1e-12));
        // ∫_1^3 (t-1)^2 dt = 8/3.
        assert!(approx_eq(s.integral_full(), 8.0 / 3.0, 1e-12));
        // ∫_2^3 = (8-1)/3 = 7/3.
        assert!(approx_eq(s.integral_clipped(2.0, 5.0), 7.0 / 3.0, 1e-12));
    }

    #[test]
    fn degree_one_matches_trapezoid() {
        let lin = crate::Segment::new(2.0, 1.0, 8.0, 4.0);
        let p = PolySegment::from_linear(2.0, 1.0, 8.0, 4.0).unwrap();
        for &(a, b) in &[(2.0, 8.0), (3.0, 5.0), (0.0, 4.0), (7.0, 20.0)] {
            assert!(
                approx_eq(p.integral_clipped(a, b), lin.integral_clipped(a, b), 1e-12),
                "[{a},{b}]"
            );
        }
    }

    #[test]
    fn from_pwl_preserves_integrals() {
        let pwl = PiecewiseLinear::from_points(&[(0.0, 0.0), (2.0, 4.0), (5.0, 1.0), (6.0, 1.0)])
            .unwrap();
        let poly = PiecewisePoly::from_pwl(&pwl);
        assert_eq!(poly.num_segments(), 3);
        for &(a, b) in &[(0.0, 6.0), (1.0, 3.0), (-2.0, 2.5), (5.5, 9.0)] {
            assert!(approx_eq(poly.integral(a, b), pwl.integral(a, b), 1e-12), "[{a},{b}]");
        }
        assert!(approx_eq(poly.total(), pwl.total(), 1e-12));
    }

    #[test]
    fn prefix_sums_telescope() {
        let s1 = PolySegment::new(0.0, 1.0, vec![1.0]).unwrap(); // area 1
        let s2 = PolySegment::new(1.0, 2.0, vec![0.0, 2.0]).unwrap(); // area 1
        let s3 = PolySegment::new(2.0, 3.0, vec![0.0, 0.0, 3.0]).unwrap(); // area 1
        let p = PiecewisePoly::new(vec![s1, s2, s3]).unwrap();
        let pre = p.prefix_sums();
        assert_eq!(pre.len(), 4);
        assert!(approx_eq(pre[3], 3.0, 1e-12));
        assert!(approx_eq(pre[2], 2.0, 1e-12));
    }

    #[test]
    fn locate_and_eval() {
        let s1 = PolySegment::new(0.0, 1.0, vec![1.0]).unwrap();
        let s2 = PolySegment::new(1.0, 2.0, vec![5.0]).unwrap();
        let p = PiecewisePoly::new(vec![s1, s2]).unwrap();
        assert_eq!(p.locate(0.5), Some(0));
        assert_eq!(p.locate(1.0), Some(1));
        assert_eq!(p.locate(2.0), Some(1));
        assert_eq!(p.locate(2.5), None);
        assert_eq!(p.eval(0.5), Some(1.0));
        assert_eq!(p.eval(1.5), Some(5.0));
    }

    #[test]
    fn time_to_accumulate_quadratic() {
        // p(t) = t² on [0,2], ∫_0^x = x³/3; target 1 → x = 3^{1/3}.
        let s = PolySegment::new(0.0, 2.0, vec![0.0, 0.0, 1.0]).unwrap();
        let t = s.time_to_accumulate(0.0, 1.0).unwrap();
        assert!(approx_eq(t, 3.0_f64.cbrt(), 1e-9), "t={t}");
        assert!(s.time_to_accumulate(0.0, 10.0).is_none());
    }
}
