//! Robust numeric kernels shared by the curve model and the breakpoint
//! sweeps in `chronorank-core`.

/// Relative slack used by the crate's internal comparisons.
pub const EPS: f64 = 1e-12;

/// Solve for the smallest `δ > 0` such that the running integral of a linear
/// function starting at value `v0` with slope `w` reaches `target`:
///
/// ```text
///   F(δ) = w/2 · δ² + v0 · δ  =  target        (target > 0)
/// ```
///
/// Returns `None` when the accumulation never reaches `target` (e.g. the
/// value decays to zero first). This is the crossing solve used when placing
/// a breakpoint inside a segment (paper §3.1); the closed form
/// `2·target / (v0 + √(v0² + 2·w·target))` is the numerically stable root
/// that degrades gracefully to `target / v0` as `w → 0`.
pub fn accumulation_crossing(v0: f64, w: f64, target: f64) -> Option<f64> {
    debug_assert!(target > 0.0, "crossing target must be positive");
    if !v0.is_finite() || !w.is_finite() {
        return None;
    }
    if w.abs() < EPS {
        // Constant value: linear accumulation.
        if v0 <= 0.0 {
            return None;
        }
        return Some(target / v0);
    }
    let disc = v0 * v0 + 2.0 * w * target;
    if disc < 0.0 {
        // Downward slope peaks below the target.
        return None;
    }
    let s = disc.sqrt();
    let denom = v0 + s;
    if denom <= 0.0 {
        // v0 ≤ 0 and the parabola's positive branch: use the explicit root.
        // For w > 0 the integral eventually reaches any target.
        if w > 0.0 {
            return Some((-v0 + s) / w);
        }
        return None;
    }
    let delta = 2.0 * target / denom;
    if delta.is_finite() && delta >= 0.0 {
        Some(delta)
    } else {
        None
    }
}

/// True when `a` and `b` are equal within absolute slack `eps` scaled by
/// magnitude (useful for integral identities).
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= eps * scale
}

/// Monotone bisection: find `x ∈ [lo, hi]` with `f(x) ≈ target` for a
/// nondecreasing `f`. Used for polynomial accumulation crossings where no
/// closed form exists. Returns `hi` clamped if the target is beyond range.
pub fn monotone_bisect(mut lo: f64, mut hi: f64, target: f64, f: impl Fn(f64) -> f64) -> f64 {
    debug_assert!(lo <= hi);
    if f(hi) <= target {
        return hi;
    }
    if f(lo) >= target {
        return lo;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if !(lo < mid && mid < hi) {
            break; // float exhaustion
        }
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accum(v0: f64, w: f64, d: f64) -> f64 {
        0.5 * w * d * d + v0 * d
    }

    #[test]
    fn crossing_constant_value() {
        let d = accumulation_crossing(2.0, 0.0, 10.0).unwrap();
        assert!(approx_eq(d, 5.0, 1e-12));
    }

    #[test]
    fn crossing_rising_slope() {
        let d = accumulation_crossing(1.0, 2.0, 4.0).unwrap();
        assert!(approx_eq(accum(1.0, 2.0, d), 4.0, 1e-12), "got {d}");
    }

    #[test]
    fn crossing_falling_slope_reached() {
        // v0=4, w=-1: F peaks at δ=4 with value 8; target 6 is reachable.
        let d = accumulation_crossing(4.0, -1.0, 6.0).unwrap();
        assert!(approx_eq(accum(4.0, -1.0, d), 6.0, 1e-12));
        assert!(d < 4.0, "must take the earlier crossing, got {d}");
    }

    #[test]
    fn crossing_falling_slope_unreachable() {
        // Peak accumulation is 8; target 9 can never be reached.
        assert!(accumulation_crossing(4.0, -1.0, 9.0).is_none());
    }

    #[test]
    fn crossing_zero_value_zero_slope() {
        assert!(accumulation_crossing(0.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn crossing_zero_value_positive_slope() {
        // F(δ) = δ²/2 = 2 → δ = 2.
        let d = accumulation_crossing(0.0, 1.0, 2.0).unwrap();
        assert!(approx_eq(d, 2.0, 1e-12));
    }

    #[test]
    fn crossing_negative_start_positive_slope() {
        // Starts negative, integral dips then recovers: v0=-1, w=1,
        // F(δ) = δ²/2 - δ = 3 → δ = 1 + √7 ≈ 3.6458.
        let d = accumulation_crossing(-1.0, 1.0, 3.0).unwrap();
        assert!(approx_eq(accum(-1.0, 1.0, d), 3.0, 1e-12), "got {d}");
    }

    #[test]
    fn crossing_matches_brute_force_on_grid() {
        for &v0 in &[0.0, 0.5, 1.0, 10.0, 100.0] {
            for &w in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
                for &target in &[0.1, 1.0, 7.3] {
                    if let Some(d) = accumulation_crossing(v0, w, target) {
                        assert!(d >= 0.0);
                        assert!(
                            approx_eq(accum(v0, w, d), target, 1e-9),
                            "v0={v0} w={w} target={target} d={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bisect_finds_crossing() {
        let f = |x: f64| x * x * x; // monotone on [0, 10]
        let x = monotone_bisect(0.0, 10.0, 27.0, f);
        assert!(approx_eq(x, 3.0, 1e-9));
    }

    #[test]
    fn bisect_clamps_out_of_range_targets() {
        let f = |x: f64| x;
        assert_eq!(monotone_bisect(0.0, 1.0, 5.0, f), 1.0);
        assert_eq!(monotone_bisect(0.0, 1.0, -5.0, f), 0.0);
    }
}
