//! # chronorank-index — external-memory index structures
//!
//! The paper's methods are all built from three classic external-memory
//! ingredients, which this crate provides on top of the
//! [`chronorank-storage`](chronorank_storage) block layer:
//!
//! * [`BPlusTree`] — a disk-based B+-tree over `f64` keys with fixed-size
//!   payloads: bulk loading from sorted input, point inserts (splits),
//!   lower-bound search, and leaf-linked range cursors. EXACT1 indexes all
//!   `N` segments in one such tree; EXACT2 builds a forest of `m`; QUERY1's
//!   nested breakpoint directory is two levels of them.
//! * [`IntervalTree`] — a disk-resident interval tree with stabbing
//!   queries (`O(height + output/B)` IOs) and right-edge appends, the
//!   backbone of EXACT3. Built bottom-up at leaf fill 1.0 from lo-sorted
//!   streams via [`IntervalBulkLoader`].
//! * [`ExternalSorter`] / [`ExternalPq`] — run-based external merge sort
//!   and a buffered external priority queue, used by the construction
//!   sweeps (the paper sorts all `N` segments before every build).
//!
//! All structures charge their block transfers to the
//! [`IoCounter`](chronorank_storage::IoCounter) of the environment that
//! created their file, which is how the benchmark harness measures the
//! paper's "I/Os" columns.
//!
//! For paper-scale builds (`N ≥ 10⁷`) both bulk loaders accept a fence
//! budget ([`FenceSpill`]): the per-leaf fence list — the only `O(N/B)`
//! memory term in a bulk load — spills to a scratch file past the budget
//! and is replayed in order, leaving the built tree byte-identical.

mod btree;
mod bulk;
mod error;
mod extsort;
mod interval;

pub use btree::{BPlusTree, BulkLoader, Cursor};
pub use bulk::{FenceReplay, FenceSpill};
pub use error::{IndexError, Result};
pub use extsort::{ExternalPq, ExternalSorter, RunCursor};
pub use interval::{IntervalBulkLoader, IntervalEntry, IntervalTree};
