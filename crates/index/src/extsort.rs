//! Run-based external merge sort and a buffered external priority queue.
//!
//! Every construction in the paper begins by sorting all `N` segments
//! (`O((N/B) log_B N)` IOs); BREAKPOINTS2 and the QUERY1/QUERY2 sweeps
//! additionally use IO-efficient priority queues [Brodal–Katajainen].
//! These are the corresponding substrates:
//!
//! * [`ExternalSorter`] — push fixed-size records in any order; memory-full
//!   batches are sorted and spilled as block runs; `finish` returns a
//!   k-way-merged sorted stream.
//! * [`ExternalPq`] — a min-queue on `f64` keys whose overflow spills to
//!   sorted runs; pops merge the in-memory heap with the run heads.
//!
//! Records are opaque byte strings of a fixed length; callers provide a key
//! extractor.

use crate::error::{IndexError, Result};
use chronorank_storage::page::{get_u32, put_u32};
use chronorank_storage::{PageId, PagedFile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const RUN_HDR: usize = 4; // record count within the block

/// Locate record ordinal `pos` of a run: `(block index, slot within
/// block)`. Kept as a free helper so the arithmetic is testable at
/// paper-scale ordinals: a single sorted run at `N = 10⁸⁺` segments can
/// hold more than 2³² records, so every term here must stay `u64` — a
/// careless `usize` multiply would wrap on 32-bit hosts.
fn run_position(pos: u64, per_block: usize) -> (u64, usize) {
    let pb = per_block as u64;
    (pos / pb, (pos % pb) as usize)
}

/// A spilled sorted run: `blocks` consecutive blocks starting at `start`
/// holding `records` records.
#[derive(Debug, Clone, Copy)]
struct Run {
    start: PageId,
    records: u64,
}

/// Writes records packed into consecutive blocks; returns the run descriptor.
fn write_run(file: &PagedFile, record_len: usize, records: &[&[u8]]) -> Result<Run> {
    let block = file.block_size();
    let per_block = (block - RUN_HDR) / record_len;
    let blocks = records.len().div_ceil(per_block).max(1);
    let start = file.allocate(blocks as u64)?;
    let mut buf = vec![0u8; block];
    for (b, chunk) in records.chunks(per_block).enumerate() {
        buf.fill(0);
        put_u32(&mut buf, 0, chunk.len() as u32);
        for (i, rec) in chunk.iter().enumerate() {
            let off = RUN_HDR + i * record_len;
            buf[off..off + record_len].copy_from_slice(rec);
        }
        file.write(start + b as u64, &buf)?;
    }
    Ok(Run { start, records: records.len() as u64 })
}

/// Sequential reader over one spilled run.
pub struct RunCursor {
    run: Run,
    record_len: usize,
    per_block: usize,
    buf: Vec<u8>,
    /// Next record ordinal within the run.
    pos: u64,
    /// Block currently decoded into `buf` (`u64::MAX` = none yet).
    cur_block: u64,
}

impl RunCursor {
    fn new(run: Run, record_len: usize, block: usize) -> Self {
        Self {
            run,
            record_len,
            per_block: (block - RUN_HDR) / record_len,
            buf: vec![0u8; block],
            pos: 0,
            cur_block: u64::MAX,
        }
    }

    /// Borrow the next record, advancing; `None` at end of run.
    fn next<'a>(&'a mut self, file: &PagedFile) -> Result<Option<&'a [u8]>> {
        if self.pos >= self.run.records {
            return Ok(None);
        }
        let (block_idx, within) = run_position(self.pos, self.per_block);
        if block_idx != self.cur_block {
            file.read(self.run.start + block_idx, &mut self.buf)?;
            let count = get_u32(&self.buf, 0) as u64;
            let expected =
                (self.run.records - block_idx * self.per_block as u64).min(self.per_block as u64);
            if count != expected {
                return Err(IndexError::Corrupt(format!(
                    "run block holds {count} records, expected {expected}"
                )));
            }
            self.cur_block = block_idx;
        }
        self.pos += 1;
        let off = RUN_HDR + within * self.record_len;
        Ok(Some(&self.buf[off..off + self.record_len]))
    }
}

/// External merge sorter over fixed-size records (see module docs).
pub struct ExternalSorter<F: Fn(&[u8]) -> f64> {
    file: PagedFile,
    record_len: usize,
    key_fn: F,
    /// Max records buffered in memory before spilling a run.
    mem_budget: usize,
    buf: Vec<u8>,
    n_buf: usize,
    runs: Vec<Run>,
    total: u64,
}

impl<F: Fn(&[u8]) -> f64> ExternalSorter<F> {
    /// `file` must be a fresh scratch file; `mem_budget` is in records.
    pub fn new(file: PagedFile, record_len: usize, mem_budget: usize, key_fn: F) -> Result<Self> {
        if record_len == 0 || record_len > file.block_size() - RUN_HDR {
            return Err(IndexError::BadInput(format!(
                "record length {record_len} unusable with block size {}",
                file.block_size()
            )));
        }
        let mem_budget = mem_budget.max(16);
        Ok(Self {
            buf: Vec::with_capacity(mem_budget * record_len),
            n_buf: 0,
            runs: Vec::new(),
            total: 0,
            file,
            record_len,
            key_fn,
            mem_budget,
        })
    }

    /// Like [`ExternalSorter::new`], but the in-memory run length is
    /// derived from an explicit **byte** budget (a `ScaleBudget` sort
    /// share) instead of a record count. Floors at 16 records so a
    /// degenerate budget still sorts.
    pub fn with_byte_budget(
        file: PagedFile,
        record_len: usize,
        budget_bytes: u64,
        key_fn: F,
    ) -> Result<Self> {
        let records = (budget_bytes / record_len.max(1) as u64).clamp(16, 1 << 31) as usize;
        Self::new(file, record_len, records, key_fn)
    }

    /// Add one record.
    pub fn push(&mut self, rec: &[u8]) -> Result<()> {
        if rec.len() != self.record_len {
            return Err(IndexError::BadInput(format!(
                "record length {} != {}",
                rec.len(),
                self.record_len
            )));
        }
        let key = (self.key_fn)(rec);
        if !key.is_finite() {
            return Err(IndexError::BadInput("record key must be finite".into()));
        }
        self.buf.extend_from_slice(rec);
        self.n_buf += 1;
        self.total += 1;
        if self.n_buf >= self.mem_budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.n_buf == 0 {
            return Ok(());
        }
        let rl = self.record_len;
        let mut order: Vec<usize> = (0..self.n_buf).collect();
        order.sort_by(|&a, &b| {
            let ka = (self.key_fn)(&self.buf[a * rl..(a + 1) * rl]);
            let kb = (self.key_fn)(&self.buf[b * rl..(b + 1) * rl]);
            ka.total_cmp(&kb)
        });
        let refs: Vec<&[u8]> = order.iter().map(|&i| &self.buf[i * rl..(i + 1) * rl]).collect();
        let run = write_run(&self.file, rl, &refs)?;
        self.runs.push(run);
        self.buf.clear();
        self.n_buf = 0;
        Ok(())
    }

    /// Total records pushed so far.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Spill the final batch and return the merged, key-ordered stream.
    pub fn finish(mut self) -> Result<SortedStream<F>> {
        self.spill()?;
        let block = self.file.block_size();
        let mut cursors: Vec<RunCursor> =
            self.runs.iter().map(|&r| RunCursor::new(r, self.record_len, block)).collect();
        // Prime the heap with each run's head key.
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(rec) = c.next(&self.file)? {
                let key = (self.key_fn)(rec);
                let rec = rec.to_vec();
                heap.push(Reverse(HeapEntry { key, run: i, rec }));
            }
        }
        Ok(SortedStream {
            file: self.file,
            record_len: self.record_len,
            key_fn: self.key_fn,
            cursors,
            heap,
            remaining: self.total,
        })
    }
}

struct HeapEntry {
    key: f64,
    run: usize,
    rec: Vec<u8>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key).is_eq() && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key).then(self.run.cmp(&other.run))
    }
}

/// Key-ordered stream produced by [`ExternalSorter::finish`].
pub struct SortedStream<F: Fn(&[u8]) -> f64> {
    file: PagedFile,
    record_len: usize,
    key_fn: F,
    cursors: Vec<RunCursor>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    remaining: u64,
}

impl<F: Fn(&[u8]) -> f64> SortedStream<F> {
    /// Records not yet emitted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Copy the next record (in key order) into `out`; `Ok(false)` at end.
    pub fn next_into(&mut self, out: &mut [u8]) -> Result<bool> {
        if out.len() != self.record_len {
            return Err(IndexError::BadInput("output buffer length mismatch".into()));
        }
        let Some(Reverse(top)) = self.heap.pop() else { return Ok(false) };
        out.copy_from_slice(&top.rec);
        // Refill from the run the winner came from.
        if let Some(rec) = self.cursors[top.run].next(&self.file)? {
            let key = (self.key_fn)(rec);
            let rec = rec.to_vec();
            self.heap.push(Reverse(HeapEntry { key, run: top.run, rec }));
        }
        self.remaining -= 1;
        Ok(true)
    }
}

/// A buffered external min-priority-queue on `f64` keys with fixed-size
/// payloads. Pushes beyond the memory budget spill to sorted runs; pops
/// merge the in-memory heap with the run heads.
pub struct ExternalPq {
    file: PagedFile,
    payload_len: usize,
    mem_budget: usize,
    mem: BinaryHeap<Reverse<HeapEntry>>,
    cursors: Vec<RunCursor>,
    /// Head of each spilled run, refilled on pop (run index mirrors
    /// `cursors`).
    run_heads: BinaryHeap<Reverse<HeapEntry>>,
    len: u64,
}

impl ExternalPq {
    /// `file` must be a fresh scratch file.
    pub fn new(file: PagedFile, payload_len: usize, mem_budget: usize) -> Result<Self> {
        let record_len = 8 + payload_len;
        if record_len > file.block_size() - RUN_HDR {
            return Err(IndexError::BadInput("payload too large for block".into()));
        }
        Ok(Self {
            file,
            payload_len,
            mem_budget: mem_budget.max(16),
            mem: BinaryHeap::new(),
            cursors: Vec::new(),
            run_heads: BinaryHeap::new(),
            len: 0,
        })
    }

    /// Number of queued items.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item.
    pub fn push(&mut self, key: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.payload_len {
            return Err(IndexError::BadInput("payload length mismatch".into()));
        }
        if !key.is_finite() {
            return Err(IndexError::BadInput("key must be finite".into()));
        }
        let mut rec = Vec::with_capacity(8 + self.payload_len);
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(payload);
        self.mem.push(Reverse(HeapEntry { key, run: usize::MAX, rec }));
        self.len += 1;
        if self.mem.len() > self.mem_budget {
            self.spill()?;
        }
        Ok(())
    }

    /// Spill the in-memory heap as one sorted run.
    fn spill(&mut self) -> Result<()> {
        let mut items: Vec<HeapEntry> =
            std::mem::take(&mut self.mem).into_sorted_vec().into_iter().map(|r| r.0).collect();
        items.sort_by(|a, b| a.key.total_cmp(&b.key));
        let record_len = 8 + self.payload_len;
        let refs: Vec<&[u8]> = items.iter().map(|e| e.rec.as_slice()).collect();
        let run = write_run(&self.file, record_len, &refs)?;
        let run_idx = self.cursors.len();
        let mut cursor = RunCursor::new(run, record_len, self.file.block_size());
        if let Some(rec) = cursor.next(&self.file)? {
            let key = f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let rec = rec.to_vec();
            self.run_heads.push(Reverse(HeapEntry { key, run: run_idx, rec }));
        }
        self.cursors.push(cursor);
        Ok(())
    }

    /// Remove and return the minimum-key item.
    pub fn pop_min(&mut self) -> Result<Option<(f64, Vec<u8>)>> {
        let mem_key = self.mem.peek().map(|r| r.0.key);
        let run_key = self.run_heads.peek().map(|r| r.0.key);
        let from_mem = match (mem_key, run_key) {
            (None, None) => return Ok(None),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(m), Some(r)) => m.total_cmp(&r).is_le(),
        };
        self.len -= 1;
        if from_mem {
            let e = self.mem.pop().expect("peeked").0;
            return Ok(Some((e.key, e.rec[8..].to_vec())));
        }
        let e = self.run_heads.pop().expect("peeked").0;
        if let Some(rec) = self.cursors[e.run].next(&self.file)? {
            let key = f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let rec = rec.to_vec();
            self.run_heads.push(Reverse(HeapEntry { key, run: e.run, rec }));
        }
        Ok(Some((e.key, e.rec[8..].to_vec())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_storage::{Env, StoreConfig};

    fn env() -> Env {
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 16 })
    }

    fn rec(key: f64, tag: u32) -> Vec<u8> {
        let mut r = Vec::with_capacity(12);
        r.extend_from_slice(&key.to_le_bytes());
        r.extend_from_slice(&tag.to_le_bytes());
        r
    }

    fn key_of(r: &[u8]) -> f64 {
        f64::from_le_bytes(r[..8].try_into().unwrap())
    }

    #[test]
    fn sorts_random_input_across_many_runs() {
        let e = env();
        let mut s = ExternalSorter::new(e.create_file("runs").unwrap(), 12, 50, key_of).unwrap();
        // Deterministic pseudo-random keys.
        let mut x = 123456789u64;
        let mut keys = Vec::new();
        for i in 0..2000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 11) as f64 / (1u64 << 53) as f64 * 1e6;
            keys.push(k);
            s.push(&rec(k, i)).unwrap();
        }
        assert_eq!(s.len(), 2000);
        let mut stream = s.finish().unwrap();
        keys.sort_by(f64::total_cmp);
        let mut out = vec![0u8; 12];
        for want in &keys {
            assert!(stream.next_into(&mut out).unwrap());
            assert_eq!(key_of(&out), *want);
        }
        assert!(!stream.next_into(&mut out).unwrap());
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn run_position_survives_past_u32_records() {
        // Regression for the paper-scale audit: record ordinals beyond 2³²
        // must keep producing monotone block indexes and in-range slots.
        let per_block = 113usize;
        let boundary = 1u64 << 32;
        let mut prev_block = 0u64;
        for pos in (boundary - 3)..(boundary + 3) {
            let (block, within) = run_position(pos, per_block);
            assert_eq!(block, pos / per_block as u64);
            assert_eq!(within as u64, pos % per_block as u64);
            assert!(within < per_block);
            assert!(block >= prev_block, "block index went backwards at {pos}");
            assert!(block > u32::MAX as u64 / per_block as u64 - 1, "block index truncated");
            prev_block = block;
        }
        // The exact boundary ordinal: u32 arithmetic would wrap to 0 here.
        let (block, _) = run_position(boundary, per_block);
        assert_eq!(block, boundary / per_block as u64);
        assert_ne!(block, (boundary as u32 as u64) / per_block as u64);
    }

    #[test]
    fn byte_budget_constructor_sorts_identically() {
        let e = env();
        // 600 bytes / 12-byte records → 50-record runs: same spill pattern
        // as the record-count test above.
        let mut s =
            ExternalSorter::with_byte_budget(e.create_file("runs").unwrap(), 12, 600, key_of)
                .unwrap();
        let mut keys = Vec::new();
        let mut x = 7u64;
        for i in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 11) as f64;
            keys.push(k);
            s.push(&rec(k, i)).unwrap();
        }
        let mut stream = s.finish().unwrap();
        keys.sort_by(f64::total_cmp);
        let mut out = vec![0u8; 12];
        for want in &keys {
            assert!(stream.next_into(&mut out).unwrap());
            assert_eq!(key_of(&out), *want);
        }
        // Degenerate budgets floor at the 16-record minimum.
        let tiny = ExternalSorter::with_byte_budget(e.create_file("tiny").unwrap(), 12, 0, key_of)
            .unwrap();
        assert!(tiny.is_empty());
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let e = env();
        let s = ExternalSorter::new(e.create_file("runs").unwrap(), 12, 50, key_of).unwrap();
        assert!(s.is_empty());
        let mut stream = s.finish().unwrap();
        let mut out = vec![0u8; 12];
        assert!(!stream.next_into(&mut out).unwrap());
    }

    #[test]
    fn single_run_in_memory_only() {
        let e = env();
        let mut s = ExternalSorter::new(e.create_file("runs").unwrap(), 12, 1000, key_of).unwrap();
        for k in [5.0, 1.0, 3.0] {
            s.push(&rec(k, 0)).unwrap();
        }
        let mut stream = s.finish().unwrap();
        let mut out = vec![0u8; 12];
        let mut got = Vec::new();
        while stream.next_into(&mut out).unwrap() {
            got.push(key_of(&out));
        }
        assert_eq!(got, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn sorter_rejects_bad_input() {
        let e = env();
        let mut s = ExternalSorter::new(e.create_file("runs").unwrap(), 12, 50, key_of).unwrap();
        assert!(s.push(&[0u8; 5]).is_err());
        assert!(s.push(&rec(f64::NAN, 0)).is_err());
        assert!(ExternalSorter::new(e.create_file("r2").unwrap(), 0, 50, key_of).is_err());
        assert!(ExternalSorter::new(e.create_file("r3").unwrap(), 4000, 50, key_of).is_err());
    }

    #[test]
    fn duplicate_keys_are_all_preserved() {
        let e = env();
        let mut s = ExternalSorter::new(e.create_file("runs").unwrap(), 12, 20, key_of).unwrap();
        for i in 0..100u32 {
            s.push(&rec(7.0, i)).unwrap();
        }
        let mut stream = s.finish().unwrap();
        let mut out = vec![0u8; 12];
        let mut seen = std::collections::HashSet::new();
        while stream.next_into(&mut out).unwrap() {
            assert_eq!(key_of(&out), 7.0);
            seen.insert(u32::from_le_bytes(out[8..12].try_into().unwrap()));
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn pq_orders_interleaved_push_pop() {
        let e = env();
        let mut pq = ExternalPq::new(e.create_file("pq").unwrap(), 4, 16).unwrap();
        for k in [9.0, 2.0, 7.0, 4.0] {
            pq.push(k, &1u32.to_le_bytes()).unwrap();
        }
        assert_eq!(pq.pop_min().unwrap().unwrap().0, 2.0);
        pq.push(1.0, &2u32.to_le_bytes()).unwrap();
        assert_eq!(pq.pop_min().unwrap().unwrap().0, 1.0);
        assert_eq!(pq.pop_min().unwrap().unwrap().0, 4.0);
        assert_eq!(pq.len(), 2);
    }

    #[test]
    fn pq_spills_and_still_orders() {
        let e = env();
        let mut pq = ExternalPq::new(e.create_file("pq").unwrap(), 4, 16).unwrap();
        let mut x = 99u64;
        for i in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 20) as f64;
            pq.push(k, &i.to_le_bytes()).unwrap();
        }
        assert!(e.io_stats().writes > 0, "must have spilled to the device");
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((k, _)) = pq.pop_min().unwrap() {
            assert!(k >= prev, "{k} < {prev}");
            prev = k;
            n += 1;
        }
        assert_eq!(n, 500);
        assert!(pq.is_empty());
    }

    #[test]
    fn pq_rejects_bad_input() {
        let e = env();
        let mut pq = ExternalPq::new(e.create_file("pq").unwrap(), 4, 16).unwrap();
        assert!(pq.push(1.0, &[0u8; 3]).is_err());
        assert!(pq.push(f64::INFINITY, &[0u8; 4]).is_err());
        assert!(ExternalPq::new(e.create_file("pq2").unwrap(), 4000, 16).is_err());
    }
}
