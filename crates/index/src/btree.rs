//! A disk-based B+-tree over `f64` keys with fixed-size payloads.
//!
//! This is the structure the paper calls "a B+-tree" throughout Section 2:
//! EXACT1 bulk-loads one over all `N` segments keyed by left endpoint;
//! EXACT2 builds a forest of `m` of them over prefix-sum entries; the
//! approximate methods use small ones as breakpoint directories. Supported
//! operations:
//!
//! * streaming **bulk load** from key-sorted input ([`BulkLoader`]),
//! * point **insert** with node splits (the paper's `O(log_B N)` update),
//! * **lower-bound search** returning a [`Cursor`] positioned at the first
//!   entry with key ≥ the probe, stepping rightward across leaf links.
//!
//! Duplicate keys are allowed; `seek` always lands on the *leftmost*
//! duplicate.
//!
//! ## Page layout (all little-endian)
//!
//! ```text
//! meta (block 0): magic u32 | value_len u32 | root u64 | height u32 |
//!                 count u64 | first_leaf u64
//! leaf:           magic u32 | count u32 | next u64 | count × (key f64, payload)
//! internal:       magic u32 | count u32 | child0 u64 | (count-1) × (key f64, child u64)
//! ```
//!
//! `height = 1` means the root is a leaf. Page id 0 is always the meta page,
//! so 0 doubles as the "no next leaf" sentinel.

use crate::bulk::FenceSpill;
use crate::error::{IndexError, Result};
use chronorank_storage::page::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};
use chronorank_storage::{PageId, PagedFile};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

const META_MAGIC: u32 = 0xB7EE_0001;
const LEAF_MAGIC: u32 = 0xB7EE_00AA;
const INTERNAL_MAGIC: u32 = 0xB7EE_00BB;

const LEAF_HDR: usize = 4 + 4 + 8;
const INTERNAL_HDR: usize = 4 + 4;

/// A disk-based B+-tree (see module docs).
///
/// `Send + Sync`: a built tree is an immutable snapshot that any number of
/// threads may `seek`/scan through a shared reference (the backing
/// [`PagedFile`] synchronizes block access internally; the metadata below
/// is relaxed atomics). Mutation ([`BPlusTree::insert`]) still takes
/// `&self` for API compatibility but requires **external exclusivity** —
/// exactly one thread may mutate, with no concurrent readers; in this
/// workspace every mutating owner (live ingest shards, test drivers) holds
/// its index exclusively.
pub struct BPlusTree {
    file: PagedFile,
    value_len: usize,
    root: AtomicU64,
    height: AtomicU32,
    count: AtomicU64,
    first_leaf: AtomicU64,
}

impl BPlusTree {
    /// Start a streaming bulk load (alias for [`BulkLoader::new`]).
    pub fn bulk_loader(file: PagedFile, value_len: usize) -> Result<BulkLoader> {
        BulkLoader::new(file, value_len)
    }

    /// Maximum entries per leaf for this block size / payload length.
    fn leaf_cap(block: usize, value_len: usize) -> usize {
        (block - LEAF_HDR) / (8 + value_len)
    }

    /// Maximum children per internal node.
    fn internal_cap(block: usize) -> usize {
        (block - INTERNAL_HDR - 8) / 16 + 1
    }

    /// Create an empty tree in `file` (which must be freshly created).
    pub fn create(file: PagedFile, value_len: usize) -> Result<Self> {
        let block = file.block_size();
        if Self::leaf_cap(block, value_len) < 2 || Self::internal_cap(block) < 3 {
            return Err(IndexError::BadInput(format!(
                "payload of {value_len} bytes does not fit a {block}-byte block"
            )));
        }
        let meta = file.allocate(1)?;
        debug_assert_eq!(meta, 0);
        let root = file.allocate(1)?;
        let mut buf = vec![0u8; block];
        encode_leaf_header(&mut buf, 0, 0);
        file.write(root, &buf)?;
        let tree = Self {
            file,
            value_len,
            root: AtomicU64::new(root),
            height: AtomicU32::new(1),
            count: AtomicU64::new(0),
            first_leaf: AtomicU64::new(root),
        };
        tree.write_meta()?;
        Ok(tree)
    }

    /// Open a tree previously created/bulk-loaded in `file`.
    pub fn open(file: PagedFile) -> Result<Self> {
        let mut buf = vec![0u8; file.block_size()];
        file.read(0, &mut buf)?;
        if get_u32(&buf, 0) != META_MAGIC {
            return Err(IndexError::Corrupt("not a B+-tree file".into()));
        }
        let value_len = get_u32(&buf, 4) as usize;
        let root = get_u64(&buf, 8);
        let height = get_u32(&buf, 16);
        let count = get_u64(&buf, 20);
        let first_leaf = get_u64(&buf, 28);
        Ok(Self {
            file,
            value_len,
            root: AtomicU64::new(root),
            height: AtomicU32::new(height),
            count: AtomicU64::new(count),
            first_leaf: AtomicU64::new(first_leaf),
        })
    }

    fn write_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; self.file.block_size()];
        let mut o = put_u32(&mut buf, 0, META_MAGIC);
        o = put_u32(&mut buf, o, self.value_len as u32);
        o = put_u64(&mut buf, o, self.root.load(Ordering::Relaxed));
        o = put_u32(&mut buf, o, self.height.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.count.load(Ordering::Relaxed));
        put_u64(&mut buf, o, self.first_leaf.load(Ordering::Relaxed));
        self.file.write(0, &buf)?;
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height.load(Ordering::Relaxed)
    }

    /// Payload length in bytes.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Bytes allocated on the backing device.
    pub fn size_bytes(&self) -> u64 {
        self.file.size_bytes()
    }

    /// The backing file (for cache control / IO accounting).
    pub fn file(&self) -> &PagedFile {
        &self.file
    }

    /// Flush dirty pages and persist metadata.
    pub fn flush(&self) -> Result<()> {
        self.write_meta()?;
        self.file.flush()?;
        Ok(())
    }

    // ----- search ---------------------------------------------------------

    /// Position a cursor at the first entry with key ≥ `key`.
    pub fn seek(&self, key: f64) -> Result<Cursor<'_>> {
        let mut buf = vec![0u8; self.file.block_size()];
        let mut node = self.root.load(Ordering::Relaxed);
        let mut level = self.height.load(Ordering::Relaxed);
        while level > 1 {
            self.file.read(node, &mut buf)?;
            check_magic(&buf, INTERNAL_MAGIC)?;
            let n = get_u32(&buf, 4) as usize;
            // Leftmost-duplicate rule: descend to the first child whose
            // separator range can contain an entry ≥ key, i.e. child index
            // = #separators strictly below `key`.
            let mut idx = 0usize;
            while idx + 1 < n && internal_key(&buf, idx + 1) < key {
                idx += 1;
            }
            node = internal_child(&buf, idx);
            level -= 1;
        }
        self.file.read(node, &mut buf)?;
        check_magic(&buf, LEAF_MAGIC)?;
        let n = get_u32(&buf, 4) as usize;
        let stride = 8 + self.value_len;
        let mut idx = 0usize;
        while idx < n && get_f64(&buf, LEAF_HDR + idx * stride) < key {
            idx += 1;
        }
        let mut cur = Cursor { tree: self, buf, leaf: node, idx, entries: n };
        if idx == n {
            cur.advance_leaf()?;
        }
        Ok(cur)
    }

    /// Cursor at the first entry of the tree.
    pub fn cursor_first(&self) -> Result<Cursor<'_>> {
        let mut buf = vec![0u8; self.file.block_size()];
        let leaf = self.first_leaf.load(Ordering::Relaxed);
        self.file.read(leaf, &mut buf)?;
        check_magic(&buf, LEAF_MAGIC)?;
        let n = get_u32(&buf, 4) as usize;
        let mut cur = Cursor { tree: self, buf, leaf, idx: 0, entries: n };
        if n == 0 {
            cur.advance_leaf()?;
        }
        Ok(cur)
    }

    /// Payload of the entry with the largest key (`None` when empty).
    /// Used by the update path to fetch `σ_i(I_{i,n_i})` in `O(log_B n)`.
    pub fn last_entry(&self) -> Result<Option<(f64, Vec<u8>)>> {
        if self.is_empty() {
            return Ok(None);
        }
        let mut buf = vec![0u8; self.file.block_size()];
        let mut node = self.root.load(Ordering::Relaxed);
        let mut level = self.height.load(Ordering::Relaxed);
        while level > 1 {
            self.file.read(node, &mut buf)?;
            check_magic(&buf, INTERNAL_MAGIC)?;
            let n = get_u32(&buf, 4) as usize;
            node = internal_child(&buf, n - 1);
            level -= 1;
        }
        self.file.read(node, &mut buf)?;
        check_magic(&buf, LEAF_MAGIC)?;
        let n = get_u32(&buf, 4) as usize;
        if n == 0 {
            return Ok(None);
        }
        let stride = 8 + self.value_len;
        let off = LEAF_HDR + (n - 1) * stride;
        Ok(Some((get_f64(&buf, off), buf[off + 8..off + 8 + self.value_len].to_vec())))
    }

    // ----- insert ---------------------------------------------------------

    /// Insert an entry (duplicates allowed, placed after existing equals).
    pub fn insert(&self, key: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.value_len {
            return Err(IndexError::BadInput(format!(
                "payload length {} != value_len {}",
                payload.len(),
                self.value_len
            )));
        }
        if !key.is_finite() {
            return Err(IndexError::BadInput("key must be finite".into()));
        }
        let split = self.insert_rec(
            self.root.load(Ordering::Relaxed),
            self.height.load(Ordering::Relaxed),
            key,
            payload,
        )?;
        if let Some((sep, right)) = split {
            // Grow the tree: new root with two children.
            let new_root = self.file.allocate(1)?;
            let mut buf = vec![0u8; self.file.block_size()];
            let mut o = put_u32(&mut buf, 0, INTERNAL_MAGIC);
            o = put_u32(&mut buf, o, 2);
            o = put_u64(&mut buf, o, self.root.load(Ordering::Relaxed));
            o = put_f64(&mut buf, o, sep);
            put_u64(&mut buf, o, right);
            self.file.write(new_root, &buf)?;
            self.root.store(new_root, Ordering::Relaxed);
            self.height.store(self.height.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
        self.count.store(self.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.write_meta()?;
        Ok(())
    }

    fn insert_rec(
        &self,
        node: PageId,
        level: u32,
        key: f64,
        payload: &[u8],
    ) -> Result<Option<(f64, PageId)>> {
        let block = self.file.block_size();
        let mut buf = vec![0u8; block];
        self.file.read(node, &mut buf)?;
        if level == 1 {
            check_magic(&buf, LEAF_MAGIC)?;
            return self.leaf_insert(node, &mut buf, key, payload);
        }
        check_magic(&buf, INTERNAL_MAGIC)?;
        let n = get_u32(&buf, 4) as usize;
        // Rightmost-duplicate descent for inserts.
        let mut idx = 0usize;
        while idx + 1 < n && internal_key(&buf, idx + 1) <= key {
            idx += 1;
        }
        let child = internal_child(&buf, idx);
        let split = self.insert_rec(child, level - 1, key, payload)?;
        let Some((sep, right)) = split else { return Ok(None) };
        // Re-read: recursion may have evicted our frame, but contents of
        // this node only change through this single-threaded path, so the
        // buffer is still valid; decode fresh anyway for clarity.
        self.file.read(node, &mut buf)?;
        let (mut children, mut keys) = decode_internal(&buf);
        children.insert(idx + 1, right);
        keys.insert(idx, sep);
        let cap = Self::internal_cap(block);
        if children.len() <= cap {
            encode_internal(&mut buf, &children, &keys);
            self.file.write(node, &buf)?;
            return Ok(None);
        }
        // Split: promote the median separator.
        let mid = children.len() / 2; // left keeps `mid` children
        let promoted = keys[mid - 1];
        let right_children: Vec<u64> = children.split_off(mid);
        let right_keys: Vec<f64> = keys.split_off(mid);
        keys.pop(); // drop the promoted separator from the left node
        let right_id = self.file.allocate(1)?;
        encode_internal(&mut buf, &children, &keys);
        self.file.write(node, &buf)?;
        let mut rbuf = vec![0u8; block];
        encode_internal(&mut rbuf, &right_children, &right_keys);
        self.file.write(right_id, &rbuf)?;
        Ok(Some((promoted, right_id)))
    }

    fn leaf_insert(
        &self,
        node: PageId,
        buf: &mut [u8],
        key: f64,
        payload: &[u8],
    ) -> Result<Option<(f64, PageId)>> {
        let block = self.file.block_size();
        let stride = 8 + self.value_len;
        let cap = Self::leaf_cap(block, self.value_len);
        let n = get_u32(buf, 4) as usize;
        let mut pos = 0usize;
        while pos < n && get_f64(buf, LEAF_HDR + pos * stride) <= key {
            pos += 1;
        }
        if n < cap {
            // Shift right and insert in place.
            let start = LEAF_HDR + pos * stride;
            let end = LEAF_HDR + n * stride;
            buf.copy_within(start..end, start + stride);
            put_f64(buf, start, key);
            buf[start + 8..start + stride].copy_from_slice(payload);
            put_u32(buf, 4, (n + 1) as u32);
            self.file.write(node, buf)?;
            return Ok(None);
        }
        // Split the leaf: left keeps `half`, right takes the rest.
        let half = n.div_ceil(2);
        let right_id = self.file.allocate(1)?;
        let next = get_u64(buf, 8);
        let mut entries: Vec<(f64, Vec<u8>)> = (0..n)
            .map(|i| {
                let off = LEAF_HDR + i * stride;
                (get_f64(buf, off), buf[off + 8..off + stride].to_vec())
            })
            .collect();
        entries.insert(pos, (key, payload.to_vec()));
        let right_entries = entries.split_off(half);
        // Rewrite left leaf (points to the new right leaf).
        encode_leaf_header(buf, entries.len() as u32, right_id);
        for (i, (k, v)) in entries.iter().enumerate() {
            let off = LEAF_HDR + i * stride;
            put_f64(buf, off, *k);
            buf[off + 8..off + stride].copy_from_slice(v);
        }
        // Zero the tail so stale bytes never persist.
        for b in &mut buf[LEAF_HDR + entries.len() * stride..] {
            *b = 0;
        }
        self.file.write(node, buf)?;
        // Write the right leaf.
        let mut rbuf = vec![0u8; block];
        encode_leaf_header(&mut rbuf, right_entries.len() as u32, next);
        for (i, (k, v)) in right_entries.iter().enumerate() {
            let off = LEAF_HDR + i * stride;
            put_f64(&mut rbuf, off, *k);
            rbuf[off + 8..off + stride].copy_from_slice(v);
        }
        self.file.write(right_id, &rbuf)?;
        Ok(Some((right_entries[0].0, right_id)))
    }
}

/// Streaming bulk loader: push key-sorted entries, then [`BulkLoader::finish`].
///
/// # Bulk-load invariants
///
/// * Input keys must be **nondecreasing**; every leaf except the last is
///   written at **fill rate 1.0** (exactly `leaf_cap` entries), which is
///   what makes the paper's `O(scanned/B)` range-output cost hold.
/// * Leaves are allocated and written in key order, so leaf page ids are
///   physically sequential and the `next` chain never seeks backwards.
/// * Construction memory is one leaf buffer plus one fence per sealed leaf;
///   [`BulkLoader::with_fence_budget`] caps the fence term by spilling to a
///   scratch file, and produces a **byte-identical** tree file to
///   [`BulkLoader::new`] for the same input (the scratch file is separate,
///   so tree-page allocation order is unchanged).
pub struct BulkLoader {
    file: PagedFile,
    value_len: usize,
    leaf_cap: usize,
    block: usize,
    /// Current partially-filled leaf.
    cur: Vec<u8>,
    cur_id: PageId,
    cur_n: usize,
    cur_first_key: f64,
    /// Previous full leaf waiting for its `next` pointer.
    pending: Option<(PageId, Vec<u8>)>,
    /// `(first_key, page)` for every sealed leaf, bottom level of the build.
    level: FenceSpill,
    first_leaf: PageId,
    count: u64,
    last_key: f64,
}

impl BulkLoader {
    /// Start a bulk load into a freshly created `file`.
    pub fn new(file: PagedFile, value_len: usize) -> Result<Self> {
        Self::with_level(file, value_len, FenceSpill::unbounded())
    }

    /// Like [`BulkLoader::new`], but keeps at most `fence_budget` leaf
    /// fences in memory, spilling the rest to `scratch` (a freshly created
    /// file the loader owns — **not** the tree file). The finished tree is
    /// byte-identical to an unbudgeted build of the same input.
    pub fn with_fence_budget(
        file: PagedFile,
        value_len: usize,
        scratch: PagedFile,
        fence_budget: usize,
    ) -> Result<Self> {
        let level = FenceSpill::budgeted(scratch, fence_budget)?;
        Self::with_level(file, value_len, level)
    }

    fn with_level(file: PagedFile, value_len: usize, level: FenceSpill) -> Result<Self> {
        let block = file.block_size();
        let leaf_cap = BPlusTree::leaf_cap(block, value_len);
        if leaf_cap < 2 || BPlusTree::internal_cap(block) < 3 {
            return Err(IndexError::BadInput(format!(
                "payload of {value_len} bytes does not fit a {block}-byte block"
            )));
        }
        let meta = file.allocate(1)?;
        debug_assert_eq!(meta, 0);
        let cur_id = file.allocate(1)?;
        Ok(Self {
            cur: vec![0u8; block],
            cur_id,
            cur_n: 0,
            cur_first_key: 0.0,
            pending: None,
            level,
            first_leaf: cur_id,
            count: 0,
            last_key: f64::NEG_INFINITY,
            file,
            value_len,
            leaf_cap,
            block,
        })
    }

    /// Append one entry; keys must be nondecreasing.
    pub fn push(&mut self, key: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.value_len {
            return Err(IndexError::BadInput(format!(
                "payload length {} != value_len {}",
                payload.len(),
                self.value_len
            )));
        }
        if !key.is_finite() || key < self.last_key {
            return Err(IndexError::BadInput(format!(
                "bulk-load keys must be nondecreasing and finite (got {key} after {})",
                self.last_key
            )));
        }
        self.last_key = key;
        if self.cur_n == self.leaf_cap {
            self.seal_leaf()?;
        }
        if self.cur_n == 0 {
            self.cur_first_key = key;
        }
        let stride = 8 + self.value_len;
        let off = LEAF_HDR + self.cur_n * stride;
        put_f64(&mut self.cur, off, key);
        self.cur[off + 8..off + stride].copy_from_slice(payload);
        self.cur_n += 1;
        self.count += 1;
        Ok(())
    }

    /// Seal the current leaf and open a new one.
    fn seal_leaf(&mut self) -> Result<()> {
        let new_id = self.file.allocate(1)?;
        encode_leaf_header(&mut self.cur, self.cur_n as u32, 0);
        if let Some((pid, mut pbuf)) = self.pending.take() {
            put_u64(&mut pbuf, 8, self.cur_id);
            self.file.write(pid, &pbuf)?;
        }
        self.level.push(self.cur_first_key, 0.0, self.cur_id)?;
        self.pending = Some((self.cur_id, std::mem::replace(&mut self.cur, vec![0u8; self.block])));
        self.cur_id = new_id;
        self.cur_n = 0;
        Ok(())
    }

    /// Build the internal levels and return the finished tree.
    pub fn finish(mut self) -> Result<BPlusTree> {
        // Seal the final (possibly empty) leaf.
        encode_leaf_header(&mut self.cur, self.cur_n as u32, 0);
        if let Some((pid, mut pbuf)) = self.pending.take() {
            if self.cur_n > 0 {
                put_u64(&mut pbuf, 8, self.cur_id);
            }
            self.file.write(pid, &pbuf)?;
        }
        if self.cur_n > 0 || self.level.is_empty() {
            self.level.push(self.cur_first_key, 0.0, self.cur_id)?;
            self.file.write(self.cur_id, &self.cur)?;
        }
        // Build internal levels bottom-up. The leaf-fence level is the only
        // one that can exceed the fence budget, so it is streamed out of the
        // (possibly spilled) queue chunk by chunk; each level above shrinks
        // by the internal fanout and stays in memory.
        let cap = BPlusTree::internal_cap(self.block);
        let mut height = 1u32;
        let fences = std::mem::replace(&mut self.level, FenceSpill::unbounded());
        let single_leaf = fences.len() == 1;
        let mut replay = fences.replay()?;
        let mut level: Vec<(f64, PageId)> = Vec::new();
        if single_leaf {
            while let Some((k, _, page)) = replay.next()? {
                level.push((k, page));
            }
        } else {
            height += 1;
            let mut buf = vec![0u8; self.block];
            let mut chunk: Vec<(f64, PageId)> = Vec::with_capacity(cap);
            loop {
                let item = replay.next()?;
                if let Some((k, _, page)) = item {
                    chunk.push((k, page));
                }
                if chunk.len() == cap || (item.is_none() && !chunk.is_empty()) {
                    let id = self.file.allocate(1)?;
                    let children: Vec<u64> = chunk.iter().map(|&(_, c)| c).collect();
                    let keys: Vec<f64> = chunk.iter().skip(1).map(|&(k, _)| k).collect();
                    encode_internal(&mut buf, &children, &keys);
                    self.file.write(id, &buf)?;
                    level.push((chunk[0].0, id));
                    chunk.clear();
                }
                if item.is_none() {
                    break;
                }
            }
        }
        while level.len() > 1 {
            height += 1;
            let mut upper: Vec<(f64, PageId)> = Vec::with_capacity(level.len() / 2 + 1);
            let mut buf = vec![0u8; self.block];
            for chunk in level.chunks(cap) {
                let id = self.file.allocate(1)?;
                let children: Vec<u64> = chunk.iter().map(|&(_, c)| c).collect();
                let keys: Vec<f64> = chunk.iter().skip(1).map(|&(k, _)| k).collect();
                encode_internal(&mut buf, &children, &keys);
                self.file.write(id, &buf)?;
                upper.push((chunk[0].0, id));
            }
            level = upper;
        }
        let root = level[0].1;
        let tree = BPlusTree {
            file: self.file,
            value_len: self.value_len,
            root: AtomicU64::new(root),
            height: AtomicU32::new(height),
            count: AtomicU64::new(self.count),
            first_leaf: AtomicU64::new(self.first_leaf),
        };
        tree.write_meta()?;
        Ok(tree)
    }
}

/// A forward cursor over leaf entries. Created by [`BPlusTree::seek`] /
/// [`BPlusTree::cursor_first`]; step with [`Cursor::advance`].
pub struct Cursor<'a> {
    tree: &'a BPlusTree,
    buf: Vec<u8>,
    leaf: PageId,
    idx: usize,
    entries: usize,
}

impl<'a> Cursor<'a> {
    /// True when positioned on an entry.
    pub fn valid(&self) -> bool {
        self.idx < self.entries
    }

    /// Current key; cursor must be valid.
    pub fn key(&self) -> f64 {
        debug_assert!(self.valid());
        let stride = 8 + self.tree.value_len;
        get_f64(&self.buf, LEAF_HDR + self.idx * stride)
    }

    /// Current payload bytes; cursor must be valid.
    pub fn payload(&self) -> &[u8] {
        debug_assert!(self.valid());
        let stride = 8 + self.tree.value_len;
        let off = LEAF_HDR + self.idx * stride + 8;
        &self.buf[off..off + self.tree.value_len]
    }

    /// Step to the next entry (following leaf links); returns `valid()`.
    pub fn advance(&mut self) -> Result<bool> {
        self.idx += 1;
        if self.idx >= self.entries {
            self.advance_leaf()?;
        }
        Ok(self.valid())
    }

    /// Move to the first entry of the next non-empty leaf, if any.
    fn advance_leaf(&mut self) -> Result<()> {
        loop {
            let next = get_u64(&self.buf, 8);
            if next == 0 {
                self.idx = 0;
                self.entries = 0;
                return Ok(());
            }
            self.tree.file.read(next, &mut self.buf)?;
            check_magic(&self.buf, LEAF_MAGIC)?;
            self.leaf = next;
            self.idx = 0;
            self.entries = get_u32(&self.buf, 4) as usize;
            if self.entries > 0 {
                return Ok(());
            }
        }
    }
}

// ----- page codecs ---------------------------------------------------------

fn encode_leaf_header(buf: &mut [u8], count: u32, next: u64) {
    let o = put_u32(buf, 0, LEAF_MAGIC);
    let o = put_u32(buf, o, count);
    put_u64(buf, o, next);
}

fn internal_key(buf: &[u8], i: usize) -> f64 {
    // Key i (1-based separators): child0 at 8, then (key, child) pairs.
    get_f64(buf, INTERNAL_HDR + 8 + (i - 1) * 16)
}

fn internal_child(buf: &[u8], i: usize) -> u64 {
    if i == 0 {
        get_u64(buf, INTERNAL_HDR)
    } else {
        get_u64(buf, INTERNAL_HDR + 8 + (i - 1) * 16 + 8)
    }
}

fn decode_internal(buf: &[u8]) -> (Vec<u64>, Vec<f64>) {
    let n = get_u32(buf, 4) as usize;
    let mut children = Vec::with_capacity(n + 1);
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        children.push(internal_child(buf, i));
        if i > 0 {
            keys.push(internal_key(buf, i));
        }
    }
    (children, keys)
}

fn encode_internal(buf: &mut [u8], children: &[u64], keys: &[f64]) {
    debug_assert_eq!(children.len(), keys.len() + 1);
    buf.fill(0);
    let o = put_u32(buf, 0, INTERNAL_MAGIC);
    put_u32(buf, o, children.len() as u32);
    put_u64(buf, INTERNAL_HDR, children[0]);
    for (i, (&k, &c)) in keys.iter().zip(children.iter().skip(1)).enumerate() {
        let off = INTERNAL_HDR + 8 + i * 16;
        put_f64(buf, off, k);
        put_u64(buf, off + 8, c);
    }
}

fn check_magic(buf: &[u8], want: u32) -> Result<()> {
    let got = get_u32(buf, 0);
    if got != want {
        return Err(IndexError::Corrupt(format!("expected page magic {want:#x}, found {got:#x}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_storage::{Env, StoreConfig};

    fn env() -> Env {
        // Small blocks force multi-level trees quickly.
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 64 })
    }

    fn payload(v: u64) -> [u8; 8] {
        v.to_le_bytes()
    }

    fn collect_all(tree: &BPlusTree) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cur = tree.cursor_first().unwrap();
        while cur.valid() {
            out.push((cur.key(), u64::from_le_bytes(cur.payload().try_into().unwrap())));
            cur.advance().unwrap();
        }
        out
    }

    #[test]
    fn budgeted_bulk_load_is_bit_identical() {
        // Satellite invariant: spilling leaf fences to scratch must not
        // change one byte of the tree file, at any input size.
        let e = env();
        for n in [0u64, 1, 5, 40, 1000] {
            let mut plain =
                BulkLoader::new(e.create_file(&format!("plain{n}")).unwrap(), 8).unwrap();
            let mut tight = BulkLoader::with_fence_budget(
                e.create_file(&format!("tight{n}")).unwrap(),
                8,
                e.create_file(&format!("scratch{n}")).unwrap(),
                2,
            )
            .unwrap();
            for i in 0..n {
                let k = (i / 3) as f64; // duplicates included
                plain.push(k, &payload(i)).unwrap();
                tight.push(k, &payload(i)).unwrap();
            }
            let ta = plain.finish().unwrap();
            let tb = tight.finish().unwrap();
            assert_eq!(ta.file.num_blocks(), tb.file.num_blocks(), "n={n}");
            let block = ta.file.block_size();
            let (mut ba, mut bb) = (vec![0u8; block], vec![0u8; block]);
            for id in 0..ta.file.num_blocks() {
                ta.file.read(id, &mut ba).unwrap();
                tb.file.read(id, &mut bb).unwrap();
                assert_eq!(ba, bb, "block {id} differs at n={n}");
            }
            assert_eq!(collect_all(&ta), collect_all(&tb));
        }
    }

    #[test]
    fn bulk_load_and_scan_all() {
        let e = env();
        let mut b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        for i in 0..1000u64 {
            b.push(i as f64, &payload(i)).unwrap();
        }
        let tree = b.finish().unwrap();
        assert_eq!(tree.len(), 1000);
        assert!(tree.height() >= 2, "1000 entries in 256B blocks must be multi-level");
        let all = collect_all(&tree);
        assert_eq!(all.len(), 1000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as f64);
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn seek_finds_lower_bound() {
        let e = env();
        let mut b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        for i in 0..500u64 {
            b.push(2.0 * i as f64, &payload(i)).unwrap(); // even keys 0..998
        }
        let tree = b.finish().unwrap();
        // Exact hit.
        let c = tree.seek(100.0).unwrap();
        assert!(c.valid());
        assert_eq!(c.key(), 100.0);
        // Between keys: lands on the next even key.
        let c = tree.seek(101.0).unwrap();
        assert_eq!(c.key(), 102.0);
        // Before the first key.
        let c = tree.seek(-5.0).unwrap();
        assert_eq!(c.key(), 0.0);
        // Past the last key: invalid cursor.
        let c = tree.seek(999.0).unwrap();
        assert!(!c.valid());
    }

    #[test]
    fn seek_lands_on_leftmost_duplicate() {
        let e = env();
        let mut b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        // 50 copies of key 1, then 300 copies of key 5 (spanning leaves),
        // then 50 copies of key 9.
        let mut seq = 0u64;
        for _ in 0..50 {
            b.push(1.0, &payload(seq)).unwrap();
            seq += 1;
        }
        let first_five = seq;
        for _ in 0..300 {
            b.push(5.0, &payload(seq)).unwrap();
            seq += 1;
        }
        for _ in 0..50 {
            b.push(9.0, &payload(seq)).unwrap();
            seq += 1;
        }
        let tree = b.finish().unwrap();
        let c = tree.seek(5.0).unwrap();
        assert_eq!(c.key(), 5.0);
        assert_eq!(u64::from_le_bytes(c.payload().try_into().unwrap()), first_five);
        // Scanning forward sees all 300 fives then a nine.
        let mut c = tree.seek(5.0).unwrap();
        let mut fives = 0;
        while c.valid() && c.key() == 5.0 {
            fives += 1;
            c.advance().unwrap();
        }
        assert_eq!(fives, 300);
        assert_eq!(c.key(), 9.0);
    }

    #[test]
    fn inserts_into_empty_tree() {
        let e = env();
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 8).unwrap();
        assert!(tree.is_empty());
        for i in (0..300u64).rev() {
            tree.insert(i as f64, &payload(i)).unwrap();
        }
        assert_eq!(tree.len(), 300);
        let all = collect_all(&tree);
        assert_eq!(all.len(), 300);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as f64, "sorted order after random-order inserts");
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn interleaved_inserts_after_bulk_load() {
        let e = env();
        let mut b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        for i in 0..200u64 {
            b.push((2 * i) as f64, &payload(2 * i)).unwrap();
        }
        let tree = b.finish().unwrap();
        for i in 0..200u64 {
            tree.insert((2 * i + 1) as f64, &payload(2 * i + 1)).unwrap();
        }
        assert_eq!(tree.len(), 400);
        let all = collect_all(&tree);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as f64);
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn last_entry_returns_max_key() {
        let e = env();
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 8).unwrap();
        assert!(tree.last_entry().unwrap().is_none());
        for i in 0..250u64 {
            tree.insert(i as f64, &payload(i)).unwrap();
        }
        let (k, v) = tree.last_entry().unwrap().unwrap();
        assert_eq!(k, 249.0);
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 249);
    }

    #[test]
    fn open_after_flush_round_trips() {
        let e = env();
        let f = e.create_file("t").unwrap();
        let mut b = BulkLoader::new(f, 8).unwrap();
        for i in 0..100u64 {
            b.push(i as f64, &payload(i)).unwrap();
        }
        let tree = b.finish().unwrap();
        tree.flush().unwrap();
        // Re-open through a second file handle over the same device is not
        // possible with MemDevice, so emulate persistence by re-opening the
        // tree struct from its own file.
        let file = {
            let BPlusTree { file, .. } = tree;
            file
        };
        let tree2 = BPlusTree::open(file).unwrap();
        assert_eq!(tree2.len(), 100);
        let c = tree2.seek(42.0).unwrap();
        assert_eq!(c.key(), 42.0);
    }

    #[test]
    fn bulk_load_rejects_unsorted_input() {
        let e = env();
        let mut b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        b.push(5.0, &payload(0)).unwrap();
        assert!(matches!(b.push(4.0, &payload(1)), Err(IndexError::BadInput(_))));
        assert!(matches!(b.push(f64::NAN, &payload(1)), Err(IndexError::BadInput(_))));
    }

    #[test]
    fn wrong_payload_len_rejected() {
        let e = env();
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 8).unwrap();
        assert!(matches!(tree.insert(1.0, &[0u8; 4]), Err(IndexError::BadInput(_))));
        let mut b = BulkLoader::new(e.create_file("u").unwrap(), 8).unwrap();
        assert!(matches!(b.push(1.0, &[0u8; 9]), Err(IndexError::BadInput(_))));
    }

    #[test]
    fn empty_tree_cursors_are_invalid() {
        let e = env();
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 8).unwrap();
        assert!(!tree.cursor_first().unwrap().valid());
        assert!(!tree.seek(0.0).unwrap().valid());
    }

    #[test]
    fn empty_bulk_load_is_a_valid_empty_tree() {
        let e = env();
        let b = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        let tree = b.finish().unwrap();
        assert!(tree.is_empty());
        assert!(!tree.cursor_first().unwrap().valid());
        tree.insert(1.0, &payload(1)).unwrap();
        assert_eq!(collect_all(&tree), vec![(1.0, 1)]);
    }

    #[test]
    fn large_payloads_still_split_correctly() {
        let e = env();
        // 100-byte payloads in 256-byte blocks → 2 entries per leaf.
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 100).unwrap();
        let mk = |i: u64| {
            let mut p = vec![0u8; 100];
            p[..8].copy_from_slice(&i.to_le_bytes());
            p
        };
        for i in 0..100u64 {
            tree.insert((i % 10) as f64, &mk(i)).unwrap();
        }
        assert_eq!(tree.len(), 100);
        let mut cur = tree.cursor_first().unwrap();
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while cur.valid() {
            assert!(cur.key() >= prev);
            prev = cur.key();
            n += 1;
            cur.advance().unwrap();
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn payload_too_large_for_block_is_rejected() {
        let e = env();
        assert!(BPlusTree::create(e.create_file("t").unwrap(), 4000).is_err());
        assert!(BulkLoader::new(e.create_file("u").unwrap(), 4000).is_err());
    }

    #[test]
    fn seek_counts_logarithmic_ios_when_cold() {
        let big = Env::mem(StoreConfig { block_size: 4096, pool_capacity: 4096 });
        let mut b = BulkLoader::new(big.create_file("t").unwrap(), 8).unwrap();
        for i in 0..200_000u64 {
            b.push(i as f64, &payload(i)).unwrap();
        }
        let tree = b.finish().unwrap();
        tree.file().drop_cache().unwrap();
        big.reset_io();
        let c = tree.seek(123_456.0).unwrap();
        assert!(c.valid());
        let ios = big.io_stats().reads;
        // height is 2-3 at this fanout; the seek must not scan.
        assert!(ios <= 5, "cold seek took {ios} reads");
    }
}
