//! Budget-spilled fence queues for bottom-up bulk loads.
//!
//! Both bulk loaders in this crate ([`crate::BulkLoader`] and
//! [`crate::IntervalBulkLoader`]) write their leaves at **fill rate 1.0**
//! as the sorted stream arrives and remember one small *fence* per sealed
//! leaf — `(separator key, page)` for the B+-tree, `(min lo, max hi, page)`
//! for the interval tree. When `finish` runs, the fences become the bottom
//! input of the `while level.len() > 1` stacking loop that writes the
//! inner levels.
//!
//! At bench scale the fence list is the *only* part of a bulk load whose
//! memory footprint grows with `N`: one 24-byte record per leaf, i.e.
//! `O(N/B)` — roughly 14 MB of fences for `N = 10⁸` segments in 4 KiB
//! blocks. [`FenceSpill`] caps that term. It keeps up to a configured
//! number of fences in memory and appends the overflow to a scratch
//! [`PagedFile`] in fixed 24-byte records, then replays the whole sequence
//! **in push order** so the first inner level can be streamed out chunk by
//! chunk. Every level above the first shrinks by the inner fanout
//! (dozens-to-hundreds ×), so upper levels always fit the same budget and
//! stay in memory.
//!
//! # Invariants
//!
//! * **Order-preserving**: [`FenceSpill::replay`] yields records in exactly
//!   the order they were pushed — the in-memory prefix first, then the
//!   spilled suffix. Bulk loaders push fences in leaf-allocation order, so
//!   replay order equals the order the old all-in-memory `Vec` had.
//! * **Bit-for-bit neutral**: the scratch file is a *separate* file from
//!   the tree under construction, so spilling never perturbs the tree
//!   file's allocation sequence. A budgeted bulk load writes a
//!   byte-identical tree file to an unbudgeted one (asserted by tests in
//!   this module and in `btree`/`interval`).
//! * The budget bounds the fence *queue* only; the loader's one-leaf write
//!   buffer and the per-level chunk buffer (≤ fanout records) are O(B).

use crate::error::{IndexError, Result};
use chronorank_storage::page::{get_f64, get_u64, put_f64, put_u64};
use chronorank_storage::{PageId, PagedFile};

/// Bytes per spilled fence record: two `f64` fields plus a page id.
const REC_LEN: usize = 8 + 8 + 8;

/// An append-only queue of `(a, b, page)` fence records that spills past a
/// memory budget to a scratch file. See the module docs for the contract;
/// the meaning of `a`/`b` is the caller's (the B+-tree loader stores its
/// separator key in `a` and leaves `b` zero, the interval loader stores
/// `(min_lo, max_hi)`).
pub struct FenceSpill {
    budget: usize,
    mem: Vec<(f64, f64, PageId)>,
    scratch: Option<PagedFile>,
    /// Scratch blocks in write order (contiguity is not assumed).
    blocks: Vec<PageId>,
    buf: Vec<u8>,
    buf_n: usize,
    spilled: u64,
}

impl FenceSpill {
    /// A queue that never spills — pure `Vec` semantics, no scratch file.
    pub fn unbounded() -> Self {
        Self {
            budget: usize::MAX,
            mem: Vec::new(),
            scratch: None,
            blocks: Vec::new(),
            buf: Vec::new(),
            buf_n: 0,
            spilled: 0,
        }
    }

    /// A queue that keeps at most `budget_entries` fences in memory and
    /// appends the rest to `scratch` (a freshly created file this queue
    /// owns). A zero budget is rounded up to one entry.
    pub fn budgeted(scratch: PagedFile, budget_entries: usize) -> Result<Self> {
        let block = scratch.block_size();
        if block < REC_LEN {
            return Err(IndexError::BadInput(format!(
                "{block}-byte blocks cannot hold a {REC_LEN}-byte fence record"
            )));
        }
        Ok(Self {
            budget: budget_entries.max(1),
            mem: Vec::new(),
            buf: vec![0u8; block],
            scratch: Some(scratch),
            blocks: Vec::new(),
            buf_n: 0,
            spilled: 0,
        })
    }

    /// Records pushed so far (in memory plus spilled).
    pub fn len(&self) -> u64 {
        self.mem.len() as u64 + self.spilled
    }

    /// True when nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records currently resident in the scratch file (telemetry).
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Append one fence record, spilling when the in-memory prefix is full.
    pub fn push(&mut self, a: f64, b: f64, page: PageId) -> Result<()> {
        if self.mem.len() < self.budget {
            self.mem.push((a, b, page));
            return Ok(());
        }
        let Some(scratch) = &self.scratch else {
            // `unbounded` has budget == usize::MAX; a full Vec would have
            // aborted on allocation long before this point.
            return Err(IndexError::BadInput("fence budget exhausted with no scratch file".into()));
        };
        let off = self.buf_n * REC_LEN;
        put_f64(&mut self.buf, off, a);
        put_f64(&mut self.buf, off + 8, b);
        put_u64(&mut self.buf, off + 16, page);
        self.buf_n += 1;
        self.spilled += 1;
        if (self.buf_n + 1) * REC_LEN > self.buf.len() {
            let id = scratch.allocate(1)?;
            scratch.write(id, &self.buf)?;
            self.blocks.push(id);
            self.buf.fill(0);
            self.buf_n = 0;
        }
        Ok(())
    }

    /// Flush any partial scratch block and return a pull cursor that yields
    /// every record in push order.
    pub fn replay(mut self) -> Result<FenceReplay> {
        if self.buf_n > 0 {
            let scratch = self.scratch.as_ref().expect("buffered records imply a scratch file");
            let id = scratch.allocate(1)?;
            scratch.write(id, &self.buf)?;
            self.blocks.push(id);
            self.buf_n = 0;
        }
        let epb = if self.scratch.is_some() { self.buf.len() / REC_LEN } else { 0 };
        Ok(FenceReplay {
            mem: self.mem.into_iter(),
            scratch: self.scratch,
            blocks: self.blocks.into_iter(),
            buf: self.buf,
            in_block: 0,
            block_n: 0,
            remaining: self.spilled,
            epb,
        })
    }
}

/// Pull cursor over a [`FenceSpill`], in push order. Created by
/// [`FenceSpill::replay`].
pub struct FenceReplay {
    mem: std::vec::IntoIter<(f64, f64, PageId)>,
    scratch: Option<PagedFile>,
    blocks: std::vec::IntoIter<PageId>,
    buf: Vec<u8>,
    in_block: usize,
    block_n: usize,
    remaining: u64,
    epb: usize,
}

impl FenceReplay {
    /// The next record, or `None` when the queue is exhausted.
    #[allow(clippy::should_implement_trait)] // fallible next: Iterator would bury the Result
    pub fn next(&mut self) -> Result<Option<(f64, f64, PageId)>> {
        if let Some(rec) = self.mem.next() {
            return Ok(Some(rec));
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.in_block == self.block_n {
            let id = self
                .blocks
                .next()
                .ok_or_else(|| IndexError::Corrupt("fence spill block list short".into()))?;
            let scratch = self.scratch.as_ref().expect("spilled records imply a scratch file");
            scratch.read(id, &mut self.buf)?;
            self.block_n = (self.epb as u64).min(self.remaining) as usize;
            self.in_block = 0;
        }
        let off = self.in_block * REC_LEN;
        let a = get_f64(&self.buf, off);
        let b = get_f64(&self.buf, off + 8);
        let page = get_u64(&self.buf, off + 16);
        self.in_block += 1;
        self.remaining -= 1;
        Ok(Some((a, b, page)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_storage::{Env, StoreConfig};

    fn env() -> Env {
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 16 })
    }

    fn drain(mut r: FenceReplay) -> Vec<(f64, f64, PageId)> {
        let mut out = Vec::new();
        while let Some(rec) = r.next().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn unbounded_replays_in_push_order() {
        let mut q = FenceSpill::unbounded();
        for i in 0..100u64 {
            q.push(i as f64, -(i as f64), i * 3).unwrap();
        }
        assert_eq!(q.len(), 100);
        assert_eq!(q.spilled(), 0);
        let got = drain(q.replay().unwrap());
        for (i, &(a, b, p)) in got.iter().enumerate() {
            assert_eq!((a, b, p), (i as f64, -(i as f64), i as u64 * 3));
        }
    }

    #[test]
    fn budgeted_spills_and_preserves_order() {
        // 256-byte blocks hold 10 records; 1000 pushes with a 7-entry
        // budget crosses many block boundaries and ends mid-block.
        let e = env();
        let mut q = FenceSpill::budgeted(e.create_file("fences").unwrap(), 7).unwrap();
        for i in 0..1000u64 {
            q.push(i as f64 * 0.5, i as f64 * 0.5 + 1.0, i).unwrap();
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.spilled(), 993);
        let got = drain(q.replay().unwrap());
        assert_eq!(got.len(), 1000);
        for (i, &(a, b, p)) in got.iter().enumerate() {
            assert_eq!((a, b, p), (i as f64 * 0.5, i as f64 * 0.5 + 1.0, i as u64));
        }
    }

    #[test]
    fn budgeted_matches_unbounded_exactly() {
        let e = env();
        for n in [0u64, 1, 7, 8, 77, 500] {
            let mut a = FenceSpill::unbounded();
            let mut b = FenceSpill::budgeted(e.create_file(&format!("f{n}")).unwrap(), 3).unwrap();
            for i in 0..n {
                let (lo, hi) = ((i as f64).sqrt(), (i as f64).sqrt() + 2.0);
                a.push(lo, hi, i).unwrap();
                b.push(lo, hi, i).unwrap();
            }
            assert_eq!(drain(a.replay().unwrap()), drain(b.replay().unwrap()));
        }
    }
}
