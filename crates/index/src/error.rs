//! Index-layer errors.

use chronorank_storage::StorageError;
use std::fmt;

/// Index-layer result alias.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Errors from index structures.
#[derive(Debug)]
pub enum IndexError {
    /// Propagated storage failure.
    Storage(StorageError),
    /// A page decoded to something structurally impossible.
    Corrupt(String),
    /// The operation's preconditions were violated (e.g. unsorted bulk-load
    /// input, payload length mismatch).
    BadInput(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage: {e}"),
            IndexError::Corrupt(m) => write!(f, "corrupt index: {m}"),
            IndexError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IndexError::Corrupt("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = IndexError::from(StorageError::Corrupt("x".into()));
        assert!(std::error::Error::source(&e).is_some());
        assert!(IndexError::BadInput("y".into()).to_string().contains('y'));
    }
}
