//! A disk-resident centered interval tree with stabbing queries — the
//! backbone of EXACT3.
//!
//! The paper indexes the `N` interval-keyed entries
//! `(I⁻_{i,ℓ}, (g_{i,ℓ}, σ_i(I_{i,ℓ})))` in an external interval tree and
//! answers a query with **two stabbing queries** whose cost is
//! `O(log_B N + m/B)` IOs. We implement the classic centered form laid out
//! in blocks:
//!
//! * every node stores a center point and the intervals containing it,
//!   twice — sorted by left endpoint ascending (scanned when the probe is
//!   left of center) and by right endpoint descending (probe right of
//!   center);
//! * intervals entirely left/right of the center go to the child subtrees;
//!   centers are endpoint medians, so the height is `O(log N)`;
//! * a stab at `t` walks one root-to-leaf path, scanning only list prefixes
//!   that match, for `O(height + output/B)` block reads. (The Arge–Vitter
//!   structure sharpens the additive term to `O(log_B N)`; the dominant
//!   `output/B` term — which is what the paper's experiments measure at
//!   `m/B` per stab — is identical. See DESIGN.md §5.)
//!
//! **Appends** (the paper's right-edge update model) go to a chained tail
//! of blocks scanned lineally by stabs; [`IntervalTree::needs_rebuild`]
//! tells the owner when folding the tail into a fresh build is due, which
//! is how the paper amortizes update cost.
//!
//! Interval containment is **closed** (`lo ≤ t ≤ hi`); callers that need
//! half-open semantics (EXACT3 does, to get exactly one entry per object)
//! dedupe at shared endpoints.

use crate::error::{IndexError, Result};
use chronorank_storage::page::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};
use chronorank_storage::{PageId, PagedFile};
use std::sync::atomic::{AtomicU64, Ordering};

const META_MAGIC: u32 = 0x17EE_0001;
const NODE_MAGIC: u32 = 0x17EE_00CC;
const TAIL_MAGIC: u32 = 0x17EE_00DD;

const TAIL_HDR: usize = 4 + 4 + 8; // magic, count, next

/// One interval-keyed entry.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEntry {
    /// Left endpoint of the key interval.
    pub lo: f64,
    /// Right endpoint (≥ `lo`).
    pub hi: f64,
    /// Fixed-size payload bytes.
    pub payload: Vec<u8>,
}

/// Disk-based centered interval tree (see module docs).
///
/// `Send + Sync`: a built tree is an immutable snapshot that any number of
/// threads may stab concurrently (block access is synchronized inside
/// [`PagedFile`]; the metadata below is relaxed atomics). Tail appends
/// ([`IntervalTree::append`]) take `&self` for API compatibility but
/// require **external exclusivity** — one mutating thread, no concurrent
/// readers — which every owner in this workspace guarantees (frozen
/// generations are never appended to; mutable tails are single-owner).
pub struct IntervalTree {
    file: PagedFile,
    payload_len: usize,
    root: AtomicU64,
    n: AtomicU64,
    /// First and last tail blocks (0 = none).
    tail_head: AtomicU64,
    tail_last: AtomicU64,
    tail_count: AtomicU64,
    /// Entries folded into the main (static) tree.
    main_count: AtomicU64,
}

impl IntervalTree {
    fn entry_len(payload_len: usize) -> usize {
        16 + payload_len
    }

    fn entries_per_block(block: usize, payload_len: usize) -> usize {
        (block - TAIL_HDR) / Self::entry_len(payload_len)
    }

    /// Build a tree over `entries` in `file` (freshly created).
    /// `entries` is consumed; the build is `O(N log N)` comparisons and
    /// `O(N/B · log N)` writes.
    pub fn build(file: PagedFile, payload_len: usize, entries: Vec<IntervalEntry>) -> Result<Self> {
        let block = file.block_size();
        if Self::entries_per_block(block, payload_len) < 1 {
            return Err(IndexError::BadInput(format!(
                "payload of {payload_len} bytes does not fit a {block}-byte block"
            )));
        }
        for (i, e) in entries.iter().enumerate() {
            if e.payload.len() != payload_len {
                return Err(IndexError::BadInput(format!(
                    "entry {i}: payload length {} != {payload_len}",
                    e.payload.len()
                )));
            }
            if !(e.lo.is_finite() && e.hi.is_finite() && e.lo <= e.hi) {
                return Err(IndexError::BadInput(format!(
                    "entry {i}: bad interval [{}, {}]",
                    e.lo, e.hi
                )));
            }
        }
        let meta = file.allocate(1)?;
        debug_assert_eq!(meta, 0);
        let n = entries.len() as u64;
        let tree = Self {
            file,
            payload_len,
            root: AtomicU64::new(0),
            n: AtomicU64::new(n),
            tail_head: AtomicU64::new(0),
            tail_last: AtomicU64::new(0),
            tail_count: AtomicU64::new(0),
            main_count: AtomicU64::new(n),
        };
        let idx: Vec<u32> = (0..entries.len() as u32).collect();
        let root = tree.build_rec(&entries, idx)?;
        tree.root.store(root.unwrap_or(0), Ordering::Relaxed);
        tree.write_meta()?;
        Ok(tree)
    }

    /// Recursive build over entry indices; returns the node page id.
    fn build_rec(&self, entries: &[IntervalEntry], idx: Vec<u32>) -> Result<Option<PageId>> {
        if idx.is_empty() {
            return Ok(None);
        }
        // Center = median endpoint of the subset (guarantees balance).
        let mut endpoints: Vec<f64> = Vec::with_capacity(idx.len() * 2);
        for &i in &idx {
            endpoints.push(entries[i as usize].lo);
            endpoints.push(entries[i as usize].hi);
        }
        let mid = endpoints.len() / 2;
        endpoints.select_nth_unstable_by(mid, f64::total_cmp);
        let center = endpoints[mid];

        let mut here: Vec<u32> = Vec::new();
        let mut left: Vec<u32> = Vec::new();
        let mut right: Vec<u32> = Vec::new();
        for &i in &idx {
            let e = &entries[i as usize];
            if e.hi < center {
                left.push(i);
            } else if e.lo > center {
                right.push(i);
            } else {
                here.push(i);
            }
        }
        drop(idx);
        debug_assert!(!here.is_empty(), "median endpoint must pin an interval");

        // Write the node's two lists: by lo ascending, then by hi descending.
        let count = here.len();
        let mut by_lo = here.clone();
        by_lo.sort_by(|&a, &b| entries[a as usize].lo.total_cmp(&entries[b as usize].lo));
        let mut by_hi = here;
        by_hi.sort_by(|&a, &b| entries[b as usize].hi.total_cmp(&entries[a as usize].hi));

        let block = self.file.block_size();
        let epb = Self::entries_per_block(block, self.payload_len);
        let total_entries = 2 * count;
        let list_blocks = total_entries.div_ceil(epb) as u64;
        let node_id = self.file.allocate(1)?;
        let list_start = self.file.allocate(list_blocks)?;

        let mut buf = vec![0u8; block];
        let mut blk = 0u64;
        let mut within = 0usize;
        let write_entry = |e: &IntervalEntry,
                           buf: &mut Vec<u8>,
                           blk: &mut u64,
                           within: &mut usize|
         -> Result<()> {
            if *within == epb {
                self.file.write(list_start + *blk, buf)?;
                buf.fill(0);
                *blk += 1;
                *within = 0;
            }
            let off = TAIL_HDR + *within * Self::entry_len(self.payload_len);
            put_f64(buf, off, e.lo);
            put_f64(buf, off + 8, e.hi);
            buf[off + 16..off + 16 + self.payload_len].copy_from_slice(&e.payload);
            *within += 1;
            Ok(())
        };
        for &i in &by_lo {
            write_entry(&entries[i as usize], &mut buf, &mut blk, &mut within)?;
        }
        for &i in &by_hi {
            write_entry(&entries[i as usize], &mut buf, &mut blk, &mut within)?;
        }
        if within > 0 {
            self.file.write(list_start + blk, &buf)?;
        }

        let lchild = self.build_rec(entries, left)?;
        let rchild = self.build_rec(entries, right)?;

        buf.fill(0);
        let o = put_u32(&mut buf, 0, NODE_MAGIC);
        let o = put_u32(&mut buf, o, count as u32);
        let o = put_f64(&mut buf, o, center);
        let o = put_u64(&mut buf, o, lchild.unwrap_or(0));
        let o = put_u64(&mut buf, o, rchild.unwrap_or(0));
        put_u64(&mut buf, o, list_start);
        self.file.write(node_id, &buf)?;
        Ok(Some(node_id))
    }

    fn write_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; self.file.block_size()];
        let mut o = put_u32(&mut buf, 0, META_MAGIC);
        o = put_u32(&mut buf, o, self.payload_len as u32);
        o = put_u64(&mut buf, o, self.root.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.n.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_head.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_last.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_count.load(Ordering::Relaxed));
        put_u64(&mut buf, o, self.main_count.load(Ordering::Relaxed));
        self.file.write(0, &buf)?;
        Ok(())
    }

    /// Open a tree previously built in `file`.
    pub fn open(file: PagedFile) -> Result<Self> {
        let mut buf = vec![0u8; file.block_size()];
        file.read(0, &mut buf)?;
        if get_u32(&buf, 0) != META_MAGIC {
            return Err(IndexError::Corrupt("not an interval-tree file".into()));
        }
        let payload_len = get_u32(&buf, 4) as usize;
        Ok(Self {
            payload_len,
            root: AtomicU64::new(get_u64(&buf, 8)),
            n: AtomicU64::new(get_u64(&buf, 16)),
            tail_head: AtomicU64::new(get_u64(&buf, 24)),
            tail_last: AtomicU64::new(get_u64(&buf, 32)),
            tail_count: AtomicU64::new(get_u64(&buf, 40)),
            main_count: AtomicU64::new(get_u64(&buf, 48)),
            file,
        })
    }

    /// Total entries (static tree + tail).
    pub fn len(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries waiting in the append tail.
    pub fn tail_len(&self) -> u64 {
        self.tail_count.load(Ordering::Relaxed)
    }

    /// Bytes allocated on the device.
    pub fn size_bytes(&self) -> u64 {
        self.file.size_bytes()
    }

    /// The backing file (cache control / IO accounting).
    pub fn file(&self) -> &PagedFile {
        &self.file
    }

    /// Flush dirty pages and persist metadata.
    pub fn flush(&self) -> Result<()> {
        self.write_meta()?;
        self.file.flush()?;
        Ok(())
    }

    /// True when the append tail has outgrown the amortization threshold
    /// (10 % of the static tree, min 256 entries) and the owner should
    /// rebuild — the paper's rebuild-on-doubling policy uses the same hook.
    pub fn needs_rebuild(&self) -> bool {
        let tail = self.tail_count.load(Ordering::Relaxed);
        tail > 256.max(self.main_count.load(Ordering::Relaxed) / 10)
    }

    /// Visit every entry whose closed interval contains `t`:
    /// `visit(lo, hi, payload)`.
    pub fn stab(&self, t: f64, visit: &mut dyn FnMut(f64, f64, &[u8])) -> Result<()> {
        let block = self.file.block_size();
        let epb = Self::entries_per_block(block, self.payload_len);
        let elen = Self::entry_len(self.payload_len);
        let mut node_buf = vec![0u8; block];
        let mut list_buf = vec![0u8; block];
        let mut node = self.root.load(Ordering::Relaxed);
        while node != 0 {
            self.file.read(node, &mut node_buf)?;
            if get_u32(&node_buf, 0) != NODE_MAGIC {
                return Err(IndexError::Corrupt("bad interval node magic".into()));
            }
            let count = get_u32(&node_buf, 4) as usize;
            let center = get_f64(&node_buf, 8);
            let left = get_u64(&node_buf, 16);
            let right = get_u64(&node_buf, 24);
            let list_start = get_u64(&node_buf, 32);
            if t <= center {
                // Scan by-lo-ascending list (entry ordinals 0..count) while
                // lo ≤ t; every such interval contains t because hi ≥ center ≥ t.
                for ord in 0..count {
                    let blk = (ord / epb) as u64;
                    let within = ord % epb;
                    if within == 0 {
                        self.file.read(list_start + blk, &mut list_buf)?;
                    }
                    let off = TAIL_HDR + within * elen;
                    let lo = get_f64(&list_buf, off);
                    if lo > t {
                        break;
                    }
                    let hi = get_f64(&list_buf, off + 8);
                    visit(lo, hi, &list_buf[off + 16..off + 16 + self.payload_len]);
                }
                if t == center {
                    break;
                }
                node = left;
            } else {
                // Scan by-hi-descending list (ordinals count..2count) while
                // hi ≥ t; lo ≤ center < t guarantees containment.
                for i in 0..count {
                    let ord = count + i;
                    let blk = (ord / epb) as u64;
                    let within = ord % epb;
                    // The first touched block may be mid-run; always (re)read
                    // when crossing a block boundary or on the first entry.
                    if within == 0 || i == 0 {
                        self.file.read(list_start + blk, &mut list_buf)?;
                    }
                    let off = TAIL_HDR + within * elen;
                    let hi = get_f64(&list_buf, off + 8);
                    if hi < t {
                        break;
                    }
                    let lo = get_f64(&list_buf, off);
                    visit(lo, hi, &list_buf[off + 16..off + 16 + self.payload_len]);
                }
                node = right;
            }
        }
        // Tail scan: the append log is small by the rebuild invariant.
        let mut blk = self.tail_head.load(Ordering::Relaxed);
        while blk != 0 {
            self.file.read(blk, &mut list_buf)?;
            if get_u32(&list_buf, 0) != TAIL_MAGIC {
                return Err(IndexError::Corrupt("bad tail block magic".into()));
            }
            let cnt = get_u32(&list_buf, 4) as usize;
            for i in 0..cnt {
                let off = TAIL_HDR + i * elen;
                let lo = get_f64(&list_buf, off);
                let hi = get_f64(&list_buf, off + 8);
                if lo <= t && t <= hi {
                    visit(lo, hi, &list_buf[off + 16..off + 16 + self.payload_len]);
                }
            }
            blk = get_u64(&list_buf, 8);
        }
        Ok(())
    }

    /// Append an entry to the tail (`O(1)` amortized block writes — the
    /// paper's `O(log_B N)` bound is dominated by this plus the eventual
    /// amortized rebuild).
    pub fn append(&self, lo: f64, hi: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.payload_len {
            return Err(IndexError::BadInput("payload length mismatch".into()));
        }
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(IndexError::BadInput(format!("bad interval [{lo}, {hi}]")));
        }
        let block = self.file.block_size();
        let epb = Self::entries_per_block(block, self.payload_len);
        let elen = Self::entry_len(self.payload_len);
        let mut buf = vec![0u8; block];
        let last = self.tail_last.load(Ordering::Relaxed);
        let mut target = last;
        let mut count_in_block = 0usize;
        if last != 0 {
            self.file.read(last, &mut buf)?;
            count_in_block = get_u32(&buf, 4) as usize;
        }
        if last == 0 || count_in_block == epb {
            // Start a new tail block and link it in.
            let new_blk = self.file.allocate(1)?;
            if last != 0 {
                put_u64(&mut buf, 8, new_blk);
                self.file.write(last, &buf)?;
            } else {
                self.tail_head.store(new_blk, Ordering::Relaxed);
            }
            buf.fill(0);
            put_u32(&mut buf, 0, TAIL_MAGIC);
            put_u32(&mut buf, 4, 0);
            put_u64(&mut buf, 8, 0);
            self.tail_last.store(new_blk, Ordering::Relaxed);
            target = new_blk;
            count_in_block = 0;
        }
        let off = TAIL_HDR + count_in_block * elen;
        put_f64(&mut buf, off, lo);
        put_f64(&mut buf, off + 8, hi);
        buf[off + 16..off + 16 + self.payload_len].copy_from_slice(payload);
        put_u32(&mut buf, 4, (count_in_block + 1) as u32);
        self.file.write(target, &buf)?;
        self.tail_count.store(self.tail_count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.n.store(self.n.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.write_meta()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_storage::{Env, StoreConfig};

    fn env() -> Env {
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 64 })
    }

    fn entry(lo: f64, hi: f64, tag: u32) -> IntervalEntry {
        IntervalEntry { lo, hi, payload: tag.to_le_bytes().to_vec() }
    }

    fn stab_tags(tree: &IntervalTree, t: f64) -> Vec<u32> {
        let mut out = Vec::new();
        tree.stab(t, &mut |_, _, p| out.push(u32::from_le_bytes(p.try_into().unwrap()))).unwrap();
        out.sort();
        out
    }

    #[test]
    fn stab_small_handmade_tree() {
        let e = env();
        let entries = vec![
            entry(0.0, 10.0, 1),
            entry(5.0, 15.0, 2),
            entry(12.0, 20.0, 3),
            entry(0.0, 3.0, 4),
            entry(18.0, 25.0, 5),
        ];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(tree.len(), 5);
        assert_eq!(stab_tags(&tree, 1.0), vec![1, 4]);
        assert_eq!(stab_tags(&tree, 7.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 13.0), vec![2, 3]);
        assert_eq!(stab_tags(&tree, 19.0), vec![3, 5]);
        assert_eq!(stab_tags(&tree, 30.0), Vec::<u32>::new());
        // Endpoints are inclusive.
        assert_eq!(stab_tags(&tree, 10.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 3.0), vec![1, 4]);
    }

    #[test]
    fn stab_matches_brute_force_on_random_intervals() {
        let e = env();
        let mut x = 42u64;
        let mut rnd = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for i in 0..800u32 {
            let lo = rnd() * 1000.0;
            let hi = lo + rnd() * 100.0;
            entries.push(entry(lo, hi, i));
        }
        let reference = entries.clone();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        for probe in 0..100 {
            let t = probe as f64 * 10.5;
            let got = stab_tags(&tree, t);
            let mut want: Vec<u32> = reference
                .iter()
                .filter(|e| e.lo <= t && t <= e.hi)
                .map(|e| u32::from_le_bytes(e.payload.as_slice().try_into().unwrap()))
                .collect();
            want.sort();
            assert_eq!(got, want, "probe t={t}");
        }
    }

    #[test]
    fn empty_tree_stabs_nothing() {
        let e = env();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, vec![]).unwrap();
        assert!(tree.is_empty());
        assert_eq!(stab_tags(&tree, 5.0), Vec::<u32>::new());
    }

    #[test]
    fn build_rejects_bad_entries() {
        let e = env();
        let bad = vec![entry(5.0, 1.0, 0)];
        assert!(IntervalTree::build(e.create_file("a").unwrap(), 4, bad).is_err());
        let bad = vec![IntervalEntry { lo: 0.0, hi: 1.0, payload: vec![0u8; 7] }];
        assert!(IntervalTree::build(e.create_file("b").unwrap(), 4, bad).is_err());
        let bad = vec![entry(f64::NAN, 1.0, 0)];
        assert!(IntervalTree::build(e.create_file("c").unwrap(), 4, bad).is_err());
    }

    #[test]
    fn appended_entries_are_stabbed() {
        let e = env();
        let entries = vec![entry(0.0, 10.0, 1)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        for i in 0..50u32 {
            let lo = 10.0 + i as f64;
            tree.append(lo, lo + 2.0, &(100 + i).to_le_bytes()).unwrap();
        }
        assert_eq!(tree.len(), 51);
        assert_eq!(tree.tail_len(), 50);
        // t=30.5 hits appended intervals [29,31] and [30,32].
        assert_eq!(stab_tags(&tree, 30.5), vec![119, 120]);
        // Static entry still found.
        assert_eq!(stab_tags(&tree, 5.0), vec![1]);
        // Boundary overlap between static and tail.
        assert_eq!(stab_tags(&tree, 10.0), vec![1, 100]);
    }

    #[test]
    fn needs_rebuild_after_many_appends() {
        let e = env();
        let entries = vec![entry(0.0, 1.0, 0)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert!(!tree.needs_rebuild());
        for i in 0..300u32 {
            tree.append(i as f64, i as f64 + 1.0, &i.to_le_bytes()).unwrap();
        }
        assert!(tree.needs_rebuild());
    }

    #[test]
    fn open_round_trips_with_tail() {
        let e = env();
        let entries = vec![entry(0.0, 10.0, 1), entry(5.0, 7.0, 2)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        tree.append(10.0, 12.0, &3u32.to_le_bytes()).unwrap();
        tree.flush().unwrap();
        let file = {
            let IntervalTree { file, .. } = tree;
            file
        };
        let tree2 = IntervalTree::open(file).unwrap();
        assert_eq!(tree2.len(), 3);
        assert_eq!(stab_tags(&tree2, 6.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree2, 11.0), vec![3]);
    }

    #[test]
    fn duplicate_intervals_all_reported() {
        let e = env();
        let entries = (0..40).map(|i| entry(1.0, 2.0, i)).collect();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(stab_tags(&tree, 1.5).len(), 40);
    }

    #[test]
    fn point_intervals_work() {
        let e = env();
        let entries = vec![entry(5.0, 5.0, 1), entry(0.0, 10.0, 2)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(stab_tags(&tree, 5.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 5.1), vec![2]);
    }

    #[test]
    fn stab_output_cost_scales_with_matches_not_size() {
        // Output-sensitivity: a stab that matches k intervals out of N must
        // not scan all N. Layout: many disjoint short intervals plus a few
        // long ones covering the probe.
        let e = Env::mem(StoreConfig { block_size: 4096, pool_capacity: 4096 });
        let mut entries = Vec::new();
        for i in 0..20_000u32 {
            let lo = i as f64 * 10.0;
            entries.push(entry(lo, lo + 5.0, i));
        }
        for i in 0..32u32 {
            entries.push(entry(0.0, 300_000.0, 1_000_000 + i));
        }
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        tree.file().drop_cache().unwrap();
        e.reset_io();
        let got = stab_tags(&tree, 100_006.0); // inside a gap: only the long ones
        assert_eq!(got.len(), 32);
        let reads = e.io_stats().reads;
        assert!(reads < 64, "stab read {reads} blocks for 32 matches");
    }
}
