//! A disk-resident interval tree with stabbing queries — the backbone of
//! EXACT3 — built **bottom-up from lo-sorted streams**.
//!
//! The paper indexes the `N` interval-keyed entries
//! `(I⁻_{i,ℓ}, (g_{i,ℓ}, σ_i(I_{i,ℓ})))` in an external interval tree and
//! answers a query with **two stabbing queries** whose cost is
//! `O(log_B N + m/B)` IOs. Construction in the paper starts by sorting all
//! `N` segments externally (`O((N/B) log_B N)` IOs); this implementation
//! takes the same shape end to end:
//!
//! * **leaves** hold the entries in `lo` order at fill rate 1.0, written
//!   sequentially as the sorted stream arrives ([`IntervalBulkLoader`],
//!   the sweep-bptree pattern: never insert, only append);
//! * **inner levels** are stacked bottom-up; an inner node stores, per
//!   child, the page id plus two fences — the child subtree's minimum
//!   `lo` and maximum `hi` (a B-tree-order max-augmented interval tree);
//! * a **stab** at `t` walks the tree with an explicit work stack,
//!   descending exactly into subtrees with `min_lo ≤ t ≤ max_hi`. Leaves
//!   scan their lo-ascending prefix while `lo ≤ t` and report entries with
//!   `hi ≥ t`. The boundary path costs `O(log_B N)`; reported leaves are
//!   full by construction, so the output term is `O(output/B)` whenever
//!   long intervals are not vastly outnumbered by short ones sharing their
//!   leaves — and EXACT3's stabs report ~one entry per alive object
//!   (`≈ m/B` blocks), which is exactly the regime the paper measures.
//!   (A centered/fractionally-cascaded structure would sharpen the
//!   adversarial case; see DESIGN.md §5.)
//!
//! Nothing here recurses: both the build and the stab are loops over
//! explicit stacks, so degenerate inputs (all-identical intervals, fully
//! nested endpoint chains) cannot blow the call stack no matter how large
//! `N` grows.
//!
//! **Appends** (the paper's right-edge update model) go to a chained tail
//! of blocks scanned lineally by stabs; [`IntervalTree::needs_rebuild`]
//! tells the owner when folding the tail into a fresh build is due, which
//! is how the paper amortizes update cost.
//!
//! Interval containment is **closed** (`lo ≤ t ≤ hi`); callers that need
//! half-open semantics (EXACT3 does, to get exactly one entry per object)
//! dedupe at shared endpoints.

use crate::bulk::FenceSpill;
use crate::error::{IndexError, Result};
use chronorank_storage::page::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};
use chronorank_storage::{PageId, PagedFile};
use std::sync::atomic::{AtomicU64, Ordering};

const META_MAGIC: u32 = 0x17EE_0002;
const LEAF_MAGIC: u32 = 0x17EE_00AA;
const INNER_MAGIC: u32 = 0x17EE_00BB;
const TAIL_MAGIC: u32 = 0x17EE_00DD;

/// Leaf and tail blocks share one header shape: magic, count, next-link
/// (leaves leave the link zero — they are physically consecutive).
const TAIL_HDR: usize = 4 + 4 + 8;
/// Inner node header: magic, child count.
const INNER_HDR: usize = 4 + 4;
/// Per-child fence record in an inner node: page, min lo, max hi.
const FENCE_LEN: usize = 8 + 8 + 8;

/// One interval-keyed entry.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEntry {
    /// Left endpoint of the key interval.
    pub lo: f64,
    /// Right endpoint (≥ `lo`).
    pub hi: f64,
    /// Fixed-size payload bytes.
    pub payload: Vec<u8>,
}

/// Disk-based bottom-up interval tree (see module docs).
///
/// `Send + Sync`: a built tree is an immutable snapshot that any number of
/// threads may stab concurrently (block access is synchronized inside
/// [`PagedFile`]; the metadata below is relaxed atomics). Tail appends
/// ([`IntervalTree::append`]) take `&self` for API compatibility but
/// require **external exclusivity** — one mutating thread, no concurrent
/// readers — which every owner in this workspace guarantees (frozen
/// generations are never appended to; mutable tails are single-owner).
pub struct IntervalTree {
    file: PagedFile,
    payload_len: usize,
    root: AtomicU64,
    n: AtomicU64,
    /// First and last tail blocks (0 = none).
    tail_head: AtomicU64,
    tail_last: AtomicU64,
    tail_count: AtomicU64,
    /// Entries folded into the main (static) tree.
    main_count: AtomicU64,
}

/// Streaming bottom-up builder: push entries in **nondecreasing `lo`
/// order** (an [`crate::ExternalSorter`] stream, typically) and leaves are
/// written at fill 1.0 as they close; [`IntervalBulkLoader::finish`]
/// stacks the inner levels over the collected fences and returns the
/// ready tree. Memory held during the build is one leaf buffer plus one
/// 24-byte fence per leaf (`O(N/B)`), shrinking by the inner fanout per
/// level; [`IntervalBulkLoader::with_fence_budget`] caps the fence term by
/// spilling to a scratch file without changing a byte of the output tree.
pub struct IntervalBulkLoader {
    file: PagedFile,
    payload_len: usize,
    buf: Vec<u8>,
    within: usize,
    /// `(min_lo, max_hi, page)` of every closed leaf, in lo order.
    fences: FenceSpill,
    count: u64,
    last_lo: f64,
    cur_min_lo: f64,
    cur_max_hi: f64,
}

impl IntervalBulkLoader {
    /// Start a bulk load into `file` (freshly created; block 0 becomes the
    /// metadata page).
    pub fn new(file: PagedFile, payload_len: usize) -> Result<Self> {
        Self::with_fences(file, payload_len, FenceSpill::unbounded())
    }

    /// Like [`IntervalBulkLoader::new`], but keeps at most `fence_budget`
    /// leaf fences in memory, spilling the rest to `scratch` (a freshly
    /// created file the loader owns — **not** the tree file). The finished
    /// tree is byte-identical to an unbudgeted build of the same input.
    pub fn with_fence_budget(
        file: PagedFile,
        payload_len: usize,
        scratch: PagedFile,
        fence_budget: usize,
    ) -> Result<Self> {
        let fences = FenceSpill::budgeted(scratch, fence_budget)?;
        Self::with_fences(file, payload_len, fences)
    }

    fn with_fences(file: PagedFile, payload_len: usize, fences: FenceSpill) -> Result<Self> {
        let block = file.block_size();
        if IntervalTree::entries_per_block(block, payload_len) < 1 {
            return Err(IndexError::BadInput(format!(
                "payload of {payload_len} bytes does not fit a {block}-byte block"
            )));
        }
        if (block - INNER_HDR) / FENCE_LEN < 2 {
            return Err(IndexError::BadInput(format!(
                "{block}-byte blocks cannot hold two child fences"
            )));
        }
        let meta = file.allocate(1)?;
        debug_assert_eq!(meta, 0);
        Ok(Self {
            buf: vec![0u8; block],
            within: 0,
            fences,
            count: 0,
            last_lo: f64::NEG_INFINITY,
            cur_min_lo: f64::INFINITY,
            cur_max_hi: f64::NEG_INFINITY,
            file,
            payload_len,
        })
    }

    /// Append the next entry; `lo` must be ≥ every previously pushed `lo`.
    pub fn push(&mut self, lo: f64, hi: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.payload_len {
            return Err(IndexError::BadInput(format!(
                "payload length {} != {}",
                payload.len(),
                self.payload_len
            )));
        }
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(IndexError::BadInput(format!("bad interval [{lo}, {hi}]")));
        }
        if lo < self.last_lo {
            return Err(IndexError::BadInput(format!(
                "bulk load requires nondecreasing lo keys: {lo} after {}",
                self.last_lo
            )));
        }
        self.last_lo = lo;
        let epb = IntervalTree::entries_per_block(self.file.block_size(), self.payload_len);
        if self.within == epb {
            self.close_leaf()?;
        }
        let off = TAIL_HDR + self.within * IntervalTree::entry_len(self.payload_len);
        put_f64(&mut self.buf, off, lo);
        put_f64(&mut self.buf, off + 8, hi);
        self.buf[off + 16..off + 16 + self.payload_len].copy_from_slice(payload);
        self.within += 1;
        self.count += 1;
        self.cur_min_lo = self.cur_min_lo.min(lo);
        self.cur_max_hi = self.cur_max_hi.max(hi);
        Ok(())
    }

    /// Write out the leaf under construction and record its fence.
    fn close_leaf(&mut self) -> Result<()> {
        if self.within == 0 {
            return Ok(());
        }
        put_u32(&mut self.buf, 0, LEAF_MAGIC);
        put_u32(&mut self.buf, 4, self.within as u32);
        put_u64(&mut self.buf, 8, 0);
        let page = self.file.allocate(1)?;
        self.file.write(page, &self.buf)?;
        self.fences.push(self.cur_min_lo, self.cur_max_hi, page)?;
        self.buf.fill(0);
        self.within = 0;
        self.cur_min_lo = f64::INFINITY;
        self.cur_max_hi = f64::NEG_INFINITY;
        Ok(())
    }

    /// Entries pushed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Close the last leaf, stack the inner levels bottom-up, persist the
    /// metadata page, and return the finished tree.
    pub fn finish(mut self) -> Result<IntervalTree> {
        self.close_leaf()?;
        let block = self.file.block_size();
        let per_inner = (block - INNER_HDR) / FENCE_LEN;
        let mut buf = vec![0u8; block];
        // The leaf-fence level is the only one that can exceed the fence
        // budget: stream it out of the (possibly spilled) queue chunk by
        // chunk. Levels above shrink by the inner fanout and fit in memory.
        let fences = std::mem::replace(&mut self.fences, FenceSpill::unbounded());
        let single_leaf = fences.len() <= 1;
        let mut replay = fences.replay()?;
        let mut level: Vec<(PageId, f64, f64)> = Vec::new();
        if single_leaf {
            while let Some((lo, hi, page)) = replay.next()? {
                level.push((page, lo, hi));
            }
        } else {
            let mut chunk: Vec<(PageId, f64, f64)> = Vec::with_capacity(per_inner);
            loop {
                let item = replay.next()?;
                if let Some((lo, hi, page)) = item {
                    chunk.push((page, lo, hi));
                }
                if chunk.len() == per_inner || (item.is_none() && !chunk.is_empty()) {
                    buf.fill(0);
                    put_u32(&mut buf, 0, INNER_MAGIC);
                    put_u32(&mut buf, 4, chunk.len() as u32);
                    let mut min_lo = f64::INFINITY;
                    let mut max_hi = f64::NEG_INFINITY;
                    for (i, &(page, lo, hi)) in chunk.iter().enumerate() {
                        let off = INNER_HDR + i * FENCE_LEN;
                        put_u64(&mut buf, off, page);
                        put_f64(&mut buf, off + 8, lo);
                        put_f64(&mut buf, off + 16, hi);
                        min_lo = min_lo.min(lo);
                        max_hi = max_hi.max(hi);
                    }
                    let page = self.file.allocate(1)?;
                    self.file.write(page, &buf)?;
                    level.push((page, min_lo, max_hi));
                    chunk.clear();
                }
                if item.is_none() {
                    break;
                }
            }
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(per_inner));
            for group in level.chunks(per_inner) {
                buf.fill(0);
                put_u32(&mut buf, 0, INNER_MAGIC);
                put_u32(&mut buf, 4, group.len() as u32);
                let mut min_lo = f64::INFINITY;
                let mut max_hi = f64::NEG_INFINITY;
                for (i, &(page, lo, hi)) in group.iter().enumerate() {
                    let off = INNER_HDR + i * FENCE_LEN;
                    put_u64(&mut buf, off, page);
                    put_f64(&mut buf, off + 8, lo);
                    put_f64(&mut buf, off + 16, hi);
                    min_lo = min_lo.min(lo);
                    max_hi = max_hi.max(hi);
                }
                let page = self.file.allocate(1)?;
                self.file.write(page, &buf)?;
                next.push((page, min_lo, max_hi));
            }
            level = next;
        }
        let root = level.first().map(|&(page, _, _)| page).unwrap_or(0);
        let tree = IntervalTree {
            file: self.file,
            payload_len: self.payload_len,
            root: AtomicU64::new(root),
            n: AtomicU64::new(self.count),
            tail_head: AtomicU64::new(0),
            tail_last: AtomicU64::new(0),
            tail_count: AtomicU64::new(0),
            main_count: AtomicU64::new(self.count),
        };
        tree.write_meta()?;
        Ok(tree)
    }
}

impl IntervalTree {
    fn entry_len(payload_len: usize) -> usize {
        16 + payload_len
    }

    fn entries_per_block(block: usize, payload_len: usize) -> usize {
        (block - TAIL_HDR) / Self::entry_len(payload_len)
    }

    /// Build a tree over `entries` in `file` (freshly created): validate,
    /// sort by `lo`, and feed the [`IntervalBulkLoader`]. `entries` is
    /// consumed; the build is `O(N log N)` comparisons and `O(N/B)`
    /// writes. Callers that already hold a lo-sorted stream (EXACT3's
    /// external sort) should drive the loader directly.
    pub fn build(
        file: PagedFile,
        payload_len: usize,
        mut entries: Vec<IntervalEntry>,
    ) -> Result<Self> {
        for (i, e) in entries.iter().enumerate() {
            if e.payload.len() != payload_len {
                return Err(IndexError::BadInput(format!(
                    "entry {i}: payload length {} != {payload_len}",
                    e.payload.len()
                )));
            }
            if !(e.lo.is_finite() && e.hi.is_finite() && e.lo <= e.hi) {
                return Err(IndexError::BadInput(format!(
                    "entry {i}: bad interval [{}, {}]",
                    e.lo, e.hi
                )));
            }
        }
        entries.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut loader = IntervalBulkLoader::new(file, payload_len)?;
        for e in &entries {
            loader.push(e.lo, e.hi, &e.payload)?;
        }
        loader.finish()
    }

    fn write_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; self.file.block_size()];
        let mut o = put_u32(&mut buf, 0, META_MAGIC);
        o = put_u32(&mut buf, o, self.payload_len as u32);
        o = put_u64(&mut buf, o, self.root.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.n.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_head.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_last.load(Ordering::Relaxed));
        o = put_u64(&mut buf, o, self.tail_count.load(Ordering::Relaxed));
        put_u64(&mut buf, o, self.main_count.load(Ordering::Relaxed));
        self.file.write(0, &buf)?;
        Ok(())
    }

    /// Open a tree previously built in `file`.
    pub fn open(file: PagedFile) -> Result<Self> {
        let mut buf = vec![0u8; file.block_size()];
        file.read(0, &mut buf)?;
        if get_u32(&buf, 0) != META_MAGIC {
            return Err(IndexError::Corrupt("not an interval-tree file".into()));
        }
        let payload_len = get_u32(&buf, 4) as usize;
        Ok(Self {
            payload_len,
            root: AtomicU64::new(get_u64(&buf, 8)),
            n: AtomicU64::new(get_u64(&buf, 16)),
            tail_head: AtomicU64::new(get_u64(&buf, 24)),
            tail_last: AtomicU64::new(get_u64(&buf, 32)),
            tail_count: AtomicU64::new(get_u64(&buf, 40)),
            main_count: AtomicU64::new(get_u64(&buf, 48)),
            file,
        })
    }

    /// Total entries (static tree + tail).
    pub fn len(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries waiting in the append tail.
    pub fn tail_len(&self) -> u64 {
        self.tail_count.load(Ordering::Relaxed)
    }

    /// Bytes allocated on the device.
    pub fn size_bytes(&self) -> u64 {
        self.file.size_bytes()
    }

    /// The backing file (cache control / IO accounting).
    pub fn file(&self) -> &PagedFile {
        &self.file
    }

    /// Flush dirty pages and persist metadata.
    pub fn flush(&self) -> Result<()> {
        self.write_meta()?;
        self.file.flush()?;
        Ok(())
    }

    /// True when the append tail has outgrown the amortization threshold
    /// (10 % of the static tree, min 256 entries) and the owner should
    /// rebuild — the paper's rebuild-on-doubling policy uses the same hook.
    pub fn needs_rebuild(&self) -> bool {
        let tail = self.tail_count.load(Ordering::Relaxed);
        tail > 256.max(self.main_count.load(Ordering::Relaxed) / 10)
    }

    /// Visit every entry whose closed interval contains `t`:
    /// `visit(lo, hi, payload)`. Iterative — an explicit work stack of
    /// page ids bounded by `height × fanout`, never the call stack.
    pub fn stab(&self, t: f64, visit: &mut dyn FnMut(f64, f64, &[u8])) -> Result<()> {
        let block = self.file.block_size();
        let elen = Self::entry_len(self.payload_len);
        let mut buf = vec![0u8; block];
        let mut stack: Vec<PageId> = Vec::new();
        let root = self.root.load(Ordering::Relaxed);
        if root != 0 {
            stack.push(root);
        }
        while let Some(page) = stack.pop() {
            self.file.read(page, &mut buf)?;
            match get_u32(&buf, 0) {
                INNER_MAGIC => {
                    let count = get_u32(&buf, 4) as usize;
                    for i in 0..count {
                        let off = INNER_HDR + i * FENCE_LEN;
                        let min_lo = get_f64(&buf, off + 8);
                        if min_lo > t {
                            // Children are in lo order; the rest start
                            // strictly after t and cannot contain it.
                            break;
                        }
                        if get_f64(&buf, off + 16) >= t {
                            stack.push(get_u64(&buf, off));
                        }
                    }
                }
                LEAF_MAGIC => {
                    let count = get_u32(&buf, 4) as usize;
                    for i in 0..count {
                        let off = TAIL_HDR + i * elen;
                        let lo = get_f64(&buf, off);
                        if lo > t {
                            break;
                        }
                        let hi = get_f64(&buf, off + 8);
                        if hi >= t {
                            visit(lo, hi, &buf[off + 16..off + 16 + self.payload_len]);
                        }
                    }
                }
                _ => return Err(IndexError::Corrupt("bad interval node magic".into())),
            }
        }
        // Tail scan: the append log is small by the rebuild invariant.
        let mut blk = self.tail_head.load(Ordering::Relaxed);
        while blk != 0 {
            self.file.read(blk, &mut buf)?;
            if get_u32(&buf, 0) != TAIL_MAGIC {
                return Err(IndexError::Corrupt("bad tail block magic".into()));
            }
            let cnt = get_u32(&buf, 4) as usize;
            for i in 0..cnt {
                let off = TAIL_HDR + i * elen;
                let lo = get_f64(&buf, off);
                let hi = get_f64(&buf, off + 8);
                if lo <= t && t <= hi {
                    visit(lo, hi, &buf[off + 16..off + 16 + self.payload_len]);
                }
            }
            blk = get_u64(&buf, 8);
        }
        Ok(())
    }

    /// Append an entry to the tail (`O(1)` amortized block writes — the
    /// paper's `O(log_B N)` bound is dominated by this plus the eventual
    /// amortized rebuild).
    pub fn append(&self, lo: f64, hi: f64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.payload_len {
            return Err(IndexError::BadInput("payload length mismatch".into()));
        }
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(IndexError::BadInput(format!("bad interval [{lo}, {hi}]")));
        }
        let block = self.file.block_size();
        let epb = Self::entries_per_block(block, self.payload_len);
        let elen = Self::entry_len(self.payload_len);
        let mut buf = vec![0u8; block];
        let last = self.tail_last.load(Ordering::Relaxed);
        let mut target = last;
        let mut count_in_block = 0usize;
        if last != 0 {
            self.file.read(last, &mut buf)?;
            count_in_block = get_u32(&buf, 4) as usize;
        }
        if last == 0 || count_in_block == epb {
            // Start a new tail block and link it in.
            let new_blk = self.file.allocate(1)?;
            if last != 0 {
                put_u64(&mut buf, 8, new_blk);
                self.file.write(last, &buf)?;
            } else {
                self.tail_head.store(new_blk, Ordering::Relaxed);
            }
            buf.fill(0);
            put_u32(&mut buf, 0, TAIL_MAGIC);
            put_u32(&mut buf, 4, 0);
            put_u64(&mut buf, 8, 0);
            self.tail_last.store(new_blk, Ordering::Relaxed);
            target = new_blk;
            count_in_block = 0;
        }
        let off = TAIL_HDR + count_in_block * elen;
        put_f64(&mut buf, off, lo);
        put_f64(&mut buf, off + 8, hi);
        buf[off + 16..off + 16 + self.payload_len].copy_from_slice(payload);
        put_u32(&mut buf, 4, (count_in_block + 1) as u32);
        self.file.write(target, &buf)?;
        self.tail_count.store(self.tail_count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.n.store(self.n.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.write_meta()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_storage::{Env, StoreConfig};

    fn env() -> Env {
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 64 })
    }

    fn entry(lo: f64, hi: f64, tag: u32) -> IntervalEntry {
        IntervalEntry { lo, hi, payload: tag.to_le_bytes().to_vec() }
    }

    fn stab_tags(tree: &IntervalTree, t: f64) -> Vec<u32> {
        let mut out = Vec::new();
        tree.stab(t, &mut |_, _, p| out.push(u32::from_le_bytes(p.try_into().unwrap()))).unwrap();
        out.sort();
        out
    }

    #[test]
    fn budgeted_bulk_load_is_bit_identical() {
        // Satellite invariant: spilling leaf fences to scratch must not
        // change one byte of the tree file, at any input size.
        let e = env();
        for n in [0u32, 1, 7, 35, 900] {
            let mut plain =
                IntervalBulkLoader::new(e.create_file(&format!("plain{n}")).unwrap(), 4).unwrap();
            let mut tight = IntervalBulkLoader::with_fence_budget(
                e.create_file(&format!("tight{n}")).unwrap(),
                4,
                e.create_file(&format!("scratch{n}")).unwrap(),
                3,
            )
            .unwrap();
            for i in 0..n {
                let lo = (i / 2) as f64;
                let hi = lo + 5.0 + (i % 7) as f64;
                plain.push(lo, hi, &i.to_le_bytes()).unwrap();
                tight.push(lo, hi, &i.to_le_bytes()).unwrap();
            }
            let ta = plain.finish().unwrap();
            let tb = tight.finish().unwrap();
            assert_eq!(ta.file.num_blocks(), tb.file.num_blocks(), "n={n}");
            let block = ta.file.block_size();
            let (mut ba, mut bb) = (vec![0u8; block], vec![0u8; block]);
            for id in 0..ta.file.num_blocks() {
                ta.file.read(id, &mut ba).unwrap();
                tb.file.read(id, &mut bb).unwrap();
                assert_eq!(ba, bb, "block {id} differs at n={n}");
            }
            for probe in [0.0, 3.5, 100.0, 449.0, 1000.0] {
                assert_eq!(stab_tags(&ta, probe), stab_tags(&tb, probe), "probe {probe} n={n}");
            }
        }
    }

    #[test]
    fn stab_small_handmade_tree() {
        let e = env();
        let entries = vec![
            entry(0.0, 10.0, 1),
            entry(5.0, 15.0, 2),
            entry(12.0, 20.0, 3),
            entry(0.0, 3.0, 4),
            entry(18.0, 25.0, 5),
        ];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(tree.len(), 5);
        assert_eq!(stab_tags(&tree, 1.0), vec![1, 4]);
        assert_eq!(stab_tags(&tree, 7.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 13.0), vec![2, 3]);
        assert_eq!(stab_tags(&tree, 19.0), vec![3, 5]);
        assert_eq!(stab_tags(&tree, 30.0), Vec::<u32>::new());
        // Endpoints are inclusive.
        assert_eq!(stab_tags(&tree, 10.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 3.0), vec![1, 4]);
    }

    #[test]
    fn stab_matches_brute_force_on_random_intervals() {
        let e = env();
        let mut x = 42u64;
        let mut rnd = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for i in 0..800u32 {
            let lo = rnd() * 1000.0;
            let hi = lo + rnd() * 100.0;
            entries.push(entry(lo, hi, i));
        }
        let reference = entries.clone();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        for probe in 0..100 {
            let t = probe as f64 * 10.5;
            let got = stab_tags(&tree, t);
            let mut want: Vec<u32> = reference
                .iter()
                .filter(|e| e.lo <= t && t <= e.hi)
                .map(|e| u32::from_le_bytes(e.payload.as_slice().try_into().unwrap()))
                .collect();
            want.sort();
            assert_eq!(got, want, "probe t={t}");
        }
    }

    #[test]
    fn empty_tree_stabs_nothing() {
        let e = env();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, vec![]).unwrap();
        assert!(tree.is_empty());
        assert_eq!(stab_tags(&tree, 5.0), Vec::<u32>::new());
    }

    #[test]
    fn build_rejects_bad_entries() {
        let e = env();
        let bad = vec![entry(5.0, 1.0, 0)];
        assert!(IntervalTree::build(e.create_file("a").unwrap(), 4, bad).is_err());
        let bad = vec![IntervalEntry { lo: 0.0, hi: 1.0, payload: vec![0u8; 7] }];
        assert!(IntervalTree::build(e.create_file("b").unwrap(), 4, bad).is_err());
        let bad = vec![entry(f64::NAN, 1.0, 0)];
        assert!(IntervalTree::build(e.create_file("c").unwrap(), 4, bad).is_err());
    }

    #[test]
    fn bulk_loader_rejects_out_of_order_keys() {
        let e = env();
        let mut loader = IntervalBulkLoader::new(e.create_file("bl").unwrap(), 4).unwrap();
        loader.push(5.0, 6.0, &0u32.to_le_bytes()).unwrap();
        loader.push(5.0, 9.0, &1u32.to_le_bytes()).unwrap(); // ties are fine
        assert!(loader.push(4.0, 10.0, &2u32.to_le_bytes()).is_err());
    }

    #[test]
    fn bulk_loaded_stream_equals_vec_build() {
        // The loader fed a lo-sorted stream must answer identically to
        // `build` over the same entries in arbitrary order.
        let e = env();
        let mut x = 7u64;
        let mut rnd = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for i in 0..500u32 {
            let lo = rnd() * 800.0;
            entries.push(entry(lo, lo + rnd() * 120.0, i));
        }
        let built = IntervalTree::build(e.create_file("vec").unwrap(), 4, entries.clone()).unwrap();
        entries.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut loader = IntervalBulkLoader::new(e.create_file("stream").unwrap(), 4).unwrap();
        for en in &entries {
            loader.push(en.lo, en.hi, &en.payload).unwrap();
        }
        let loaded = loader.finish().unwrap();
        assert_eq!(loaded.len(), built.len());
        for probe in 0..90 {
            let t = probe as f64 * 9.7;
            assert_eq!(stab_tags(&loaded, t), stab_tags(&built, t), "probe t={t}");
        }
    }

    #[test]
    fn appended_entries_are_stabbed() {
        let e = env();
        let entries = vec![entry(0.0, 10.0, 1)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        for i in 0..50u32 {
            let lo = 10.0 + i as f64;
            tree.append(lo, lo + 2.0, &(100 + i).to_le_bytes()).unwrap();
        }
        assert_eq!(tree.len(), 51);
        assert_eq!(tree.tail_len(), 50);
        // t=30.5 hits appended intervals [29,31] and [30,32].
        assert_eq!(stab_tags(&tree, 30.5), vec![119, 120]);
        // Static entry still found.
        assert_eq!(stab_tags(&tree, 5.0), vec![1]);
        // Boundary overlap between static and tail.
        assert_eq!(stab_tags(&tree, 10.0), vec![1, 100]);
    }

    #[test]
    fn needs_rebuild_after_many_appends() {
        let e = env();
        let entries = vec![entry(0.0, 1.0, 0)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert!(!tree.needs_rebuild());
        for i in 0..300u32 {
            tree.append(i as f64, i as f64 + 1.0, &i.to_le_bytes()).unwrap();
        }
        assert!(tree.needs_rebuild());
    }

    #[test]
    fn open_round_trips_with_tail() {
        let e = env();
        let entries = vec![entry(0.0, 10.0, 1), entry(5.0, 7.0, 2)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        tree.append(10.0, 12.0, &3u32.to_le_bytes()).unwrap();
        tree.flush().unwrap();
        let file = {
            let IntervalTree { file, .. } = tree;
            file
        };
        let tree2 = IntervalTree::open(file).unwrap();
        assert_eq!(tree2.len(), 3);
        assert_eq!(stab_tags(&tree2, 6.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree2, 11.0), vec![3]);
    }

    #[test]
    fn duplicate_intervals_all_reported() {
        let e = env();
        let entries = (0..40).map(|i| entry(1.0, 2.0, i)).collect();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(stab_tags(&tree, 1.5).len(), 40);
    }

    #[test]
    fn point_intervals_work() {
        let e = env();
        let entries = vec![entry(5.0, 5.0, 1), entry(0.0, 10.0, 2)];
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        assert_eq!(stab_tags(&tree, 5.0), vec![1, 2]);
        assert_eq!(stab_tags(&tree, 5.1), vec![2]);
    }

    #[test]
    fn stab_output_cost_scales_with_matches_not_size() {
        // Output-sensitivity: a stab that matches k intervals out of N must
        // not scan all N. Layout: many disjoint short intervals plus a few
        // long ones covering the probe.
        let e = Env::mem(StoreConfig { block_size: 4096, pool_capacity: 4096 });
        let mut entries = Vec::new();
        for i in 0..20_000u32 {
            let lo = i as f64 * 10.0;
            entries.push(entry(lo, lo + 5.0, i));
        }
        for i in 0..32u32 {
            entries.push(entry(0.0, 300_000.0, 1_000_000 + i));
        }
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        tree.file().drop_cache().unwrap();
        e.reset_io();
        let got = stab_tags(&tree, 100_006.0); // inside a gap: only the long ones
        assert_eq!(got.len(), 32);
        let reads = e.io_stats().reads;
        assert!(reads < 64, "stab read {reads} blocks for 32 matches");
    }

    #[test]
    fn degenerate_inputs_build_and_stab_without_recursion() {
        // Regression for the old recursive `build_rec`: 10⁵ all-identical
        // intervals (every one pinned at the median endpoint) and 10⁵
        // fully nested intervals (a linear containment chain) both used to
        // risk linear recursion depth. The whole build + stab now runs in
        // a 512 KiB stack because nothing recurses.
        let run = || {
            let e = Env::mem(StoreConfig { block_size: 4096, pool_capacity: 256 });
            let n: u32 = 100_000;
            let identical: Vec<_> = (0..n).map(|i| entry(5.0, 5.0, i)).collect();
            let tree = IntervalTree::build(e.create_file("same").unwrap(), 4, identical).unwrap();
            let mut hits = 0u64;
            tree.stab(5.0, &mut |_, _, _| hits += 1).unwrap();
            assert_eq!(hits, n as u64);
            let nested: Vec<_> = (0..n).map(|i| entry(i as f64, (2 * n - i) as f64, i)).collect();
            let tree = IntervalTree::build(e.create_file("nested").unwrap(), 4, nested).unwrap();
            let mut hits = 0u64;
            tree.stab(n as f64, &mut |_, _, _| hits += 1).unwrap();
            assert_eq!(hits, n as u64);
        };
        std::thread::Builder::new()
            .name("degenerate-build".into())
            .stack_size(512 * 1024)
            .spawn(run)
            .unwrap()
            .join()
            .unwrap();
    }
}
