//! Bulk-built == insert-built equivalence (ISSUE 6): the bottom-up bulk
//! loaders exist so frozen generations can be stacked from sorted runs at
//! fill 1.0 — but they must be *observationally identical* to the
//! incremental construction they replace. For arbitrary inputs, a
//! bulk-loaded structure and an insert/append-built one over the same
//! data must answer every scan, seek, and stab the same way. Case counts
//! honour `PROPTEST_CASES` like every property suite in the workspace.

use chronorank_index::{BPlusTree, BulkLoader, IntervalBulkLoader, IntervalEntry, IntervalTree};
use chronorank_storage::{Env, StoreConfig};
use proptest::prelude::*;

fn env() -> Env {
    // Small blocks → multi-layer trees even at a few dozen entries, so
    // the bottom-up inner-node stacking is actually exercised.
    Env::mem(StoreConfig { block_size: 256, pool_capacity: 32 })
}

/// Full scan as `(key bits, payload)` pairs — bitwise, so -0.0 vs 0.0 or
/// any rounding drift between the two builds would fail loudly.
fn scan(tree: &BPlusTree) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    let mut cur = tree.cursor_first().unwrap();
    while cur.valid() {
        out.push((cur.key().to_bits(), cur.payload().to_vec()));
        cur.advance().unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// B+-tree: a bulk load of the sorted keys and a plain insert loop
    /// over the same (unique-key) data produce identical scans and agree
    /// on every lower-bound seek.
    #[test]
    fn btree_bulk_load_equals_insert_build(
        raw in proptest::collection::vec(-500.0f64..500.0, 1..160),
        probes in proptest::collection::vec(-600.0f64..600.0, 1..12),
    ) {
        // Unique keys, so the two builds must agree pair-for-pair (with
        // duplicates the scan order of equal keys is a free choice).
        let mut keys = raw;
        keys.sort_by(f64::total_cmp);
        keys.dedup();

        let e = env();
        let mut loader = BulkLoader::new(e.create_file("bulk").unwrap(), 8).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            loader.push(k, &(i as u64).to_le_bytes()).unwrap();
        }
        let bulk = loader.finish().unwrap();

        let insert = BPlusTree::create(e.create_file("ins").unwrap(), 8).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            insert.insert(k, &(i as u64).to_le_bytes()).unwrap();
        }

        prop_assert_eq!(bulk.len(), insert.len());
        prop_assert_eq!(scan(&bulk), scan(&insert));
        prop_assert_eq!(
            bulk.last_entry().unwrap(), insert.last_entry().unwrap()
        );
        for &p in &probes {
            let a = bulk.seek(p).unwrap();
            let b = insert.seek(p).unwrap();
            prop_assert_eq!(a.valid(), b.valid(), "probe {}", p);
            if a.valid() {
                prop_assert_eq!(a.key().to_bits(), b.key().to_bits(), "probe {}", p);
                prop_assert_eq!(a.payload(), b.payload(), "probe {}", p);
            }
        }
    }

    /// Interval tree: a lo-sorted stream through [`IntervalBulkLoader`],
    /// the vec-consuming [`IntervalTree::build`], and an append-built tree
    /// (empty build + one append per entry) all report the same stab set
    /// at every probe.
    #[test]
    fn interval_bulk_load_equals_append_build(
        spans in proptest::collection::vec((0.0f64..900.0, 0.0f64..120.0), 1..120),
        probes in proptest::collection::vec(-50.0f64..1100.0, 1..16),
    ) {
        let entries: Vec<IntervalEntry> = spans
            .iter()
            .enumerate()
            .map(|(i, &(lo, len))| IntervalEntry {
                lo,
                hi: lo + len,
                payload: (i as u32).to_le_bytes().to_vec(),
            })
            .collect();

        let e = env();
        // Stream path: sorted lo order into the loader, as EXACT3's
        // external sort drives it.
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut loader = IntervalBulkLoader::new(e.create_file("stream").unwrap(), 4).unwrap();
        for en in &sorted {
            loader.push(en.lo, en.hi, &en.payload).unwrap();
        }
        let streamed = loader.finish().unwrap();

        // Vec path (sorts internally).
        let built =
            IntervalTree::build(e.create_file("vec").unwrap(), 4, entries.clone()).unwrap();

        // Append path: every entry lands in the tail, the structure the
        // incremental (§4) ingest writes into.
        let appended =
            IntervalTree::build(e.create_file("app").unwrap(), 4, Vec::new()).unwrap();
        for en in &entries {
            appended.append(en.lo, en.hi, &en.payload).unwrap();
        }

        prop_assert_eq!(streamed.len(), entries.len() as u64);
        prop_assert_eq!(built.len(), entries.len() as u64);
        prop_assert_eq!(appended.len(), entries.len() as u64);
        for &t in &probes {
            let stab = |tree: &IntervalTree| {
                let mut got: Vec<(u64, u64, u32)> = Vec::new();
                tree.stab(t, &mut |lo, hi, p| {
                    got.push((
                        lo.to_bits(),
                        hi.to_bits(),
                        u32::from_le_bytes(p.try_into().unwrap()),
                    ));
                })
                .unwrap();
                got.sort();
                got
            };
            let a = stab(&streamed);
            prop_assert_eq!(&a, &stab(&built), "stab at {}", t);
            prop_assert_eq!(&a, &stab(&appended), "stab at {}", t);
        }
    }
}
