//! Property-based tests for the index substrates: the B+-tree must behave
//! exactly like a sorted multimap, and the interval tree like a brute-force
//! interval list, for arbitrary operation sequences.

use chronorank_index::{BPlusTree, BulkLoader, IntervalEntry, IntervalTree};
use chronorank_storage::{Env, StoreConfig};
use proptest::prelude::*;

fn env() -> Env {
    // Small blocks → deep trees and frequent splits.
    Env::mem(StoreConfig { block_size: 256, pool_capacity: 32 })
}

fn payload(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Reference model: key-sorted (stable by insertion order for duplicates)
/// list of (key, tag).
fn model_sorted(items: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let mut v: Vec<(f64, u64)> = items.to_vec();
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arbitrary inserts (possibly duplicated keys): a full scan returns
    /// exactly the multiset in key order; seeks land on lower bounds.
    #[test]
    fn btree_inserts_behave_like_sorted_multimap(
        keys in proptest::collection::vec(-1000.0f64..1000.0, 1..120),
        probes in proptest::collection::vec(-1100.0f64..1100.0, 1..12),
    ) {
        let e = env();
        let tree = BPlusTree::create(e.create_file("t").unwrap(), 8).unwrap();
        let mut items = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            // Quantize to provoke duplicate keys.
            let k = (k * 0.1).round() * 10.0;
            tree.insert(k, &payload(i as u64)).unwrap();
            items.push((k, i as u64));
        }
        let want = model_sorted(&items);
        // Full scan.
        let mut got = Vec::new();
        let mut cur = tree.cursor_first().unwrap();
        while cur.valid() {
            got.push((cur.key(), u64::from_le_bytes(cur.payload().try_into().unwrap())));
            cur.advance().unwrap();
        }
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.0, w.0, "key order mismatch");
        }
        // The multiset of tags must match exactly.
        let mut gt: Vec<u64> = got.iter().map(|&(_, t)| t).collect();
        let mut wt: Vec<u64> = want.iter().map(|&(_, t)| t).collect();
        gt.sort();
        wt.sort();
        prop_assert_eq!(gt, wt);
        // Lower-bound probes.
        for &p in &probes {
            let cur = tree.seek(p).unwrap();
            let model = want.iter().find(|&&(k, _)| k >= p);
            match model {
                Some(&(k, _)) => {
                    prop_assert!(cur.valid(), "probe {} expected {}", p, k);
                    prop_assert_eq!(cur.key(), k, "probe {}", p);
                }
                None => prop_assert!(!cur.valid(), "probe {} expected end", p),
            }
        }
    }

    /// Bulk load + subsequent inserts interleave correctly.
    #[test]
    fn btree_bulk_then_insert(
        base in proptest::collection::vec(0.0f64..500.0, 1..150),
        extra in proptest::collection::vec(0.0f64..500.0, 0..40),
    ) {
        let e = env();
        let mut sorted = base.clone();
        sorted.sort_by(f64::total_cmp);
        let mut loader = BulkLoader::new(e.create_file("t").unwrap(), 8).unwrap();
        let mut items = Vec::new();
        for (i, &k) in sorted.iter().enumerate() {
            loader.push(k, &payload(i as u64)).unwrap();
            items.push((k, i as u64));
        }
        let tree = loader.finish().unwrap();
        for (j, &k) in extra.iter().enumerate() {
            tree.insert(k, &payload(10_000 + j as u64)).unwrap();
            items.push((k, 10_000 + j as u64));
        }
        prop_assert_eq!(tree.len(), items.len() as u64);
        let want = model_sorted(&items);
        let mut cur = tree.cursor_first().unwrap();
        let mut n = 0;
        let mut prev = f64::NEG_INFINITY;
        while cur.valid() {
            prop_assert!(cur.key() >= prev);
            prev = cur.key();
            n += 1;
            cur.advance().unwrap();
        }
        prop_assert_eq!(n, want.len());
        // last_entry agrees with the model maximum.
        let (k, _) = tree.last_entry().unwrap().unwrap();
        prop_assert_eq!(k, want.last().unwrap().0);
    }

    /// Interval tree stabbing equals brute force, including after appends.
    #[test]
    fn interval_tree_equals_bruteforce(
        spans in proptest::collection::vec((0.0f64..900.0, 0.0f64..120.0), 1..120),
        appends in proptest::collection::vec((0.0f64..900.0, 0.0f64..120.0), 0..20),
        probes in proptest::collection::vec(-50.0f64..1100.0, 1..16),
    ) {
        let e = env();
        let entries: Vec<IntervalEntry> = spans
            .iter()
            .enumerate()
            .map(|(i, &(lo, len))| IntervalEntry {
                lo,
                hi: lo + len,
                payload: (i as u32).to_le_bytes().to_vec(),
            })
            .collect();
        let mut reference: Vec<(f64, f64, u32)> =
            entries.iter().map(|e| (e.lo, e.hi, u32::from_le_bytes(e.payload[..4].try_into().unwrap()))).collect();
        let tree = IntervalTree::build(e.create_file("it").unwrap(), 4, entries).unwrap();
        for (j, &(lo, len)) in appends.iter().enumerate() {
            let tag = 100_000 + j as u32;
            tree.append(lo, lo + len, &tag.to_le_bytes()).unwrap();
            reference.push((lo, lo + len, tag));
        }
        for &t in &probes {
            let mut got = Vec::new();
            tree.stab(t, &mut |_, _, p| {
                got.push(u32::from_le_bytes(p.try_into().unwrap()));
            }).unwrap();
            got.sort();
            let mut want: Vec<u32> = reference
                .iter()
                .filter(|&&(lo, hi, _)| lo <= t && t <= hi)
                .map(|&(_, _, tag)| tag)
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "stab at {}", t);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-thread snapshot reads (ISSUE 5)
// ---------------------------------------------------------------------------

#[test]
fn index_structures_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<chronorank_index::BPlusTree>();
    assert_send_sync::<chronorank_index::IntervalTree>();
}

#[test]
fn concurrent_stabs_over_one_shared_interval_tree_agree() {
    use chronorank_index::{IntervalEntry, IntervalTree};
    let env = Env::mem(StoreConfig { block_size: 512, pool_capacity: 8 });
    let entries: Vec<IntervalEntry> = (0..300)
        .map(|i| {
            let lo = (i % 37) as f64;
            IntervalEntry { lo, hi: lo + 1.0 + (i % 5) as f64, payload: vec![i as u8; 4] }
        })
        .collect();
    let tree = IntervalTree::build(env.create_file("shared").unwrap(), 4, entries.clone()).unwrap();
    // Ground truth on one thread, then 8 threads stab the SAME tree (tiny
    // pool: they contend on frames and force concurrent evict/reload).
    let expected: Vec<usize> = (0..40)
        .map(|t| {
            let t = t as f64;
            entries.iter().filter(|e| e.lo <= t && t <= e.hi).count()
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (tree, expected) = (&tree, &expected);
            scope.spawn(move || {
                for (i, want) in expected.iter().enumerate() {
                    let mut got = 0usize;
                    tree.stab(i as f64, &mut |_, _, _| got += 1).unwrap();
                    assert_eq!(got, *want, "stab at t={i}");
                }
            });
        }
    });
}
