//! Property-based tests for the ranking methods: on arbitrary generated
//! temporal sets, the exact methods must equal brute force, the
//! breakpoint constructions must satisfy their invariants, and the
//! approximate methods must satisfy Definition 2.

use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, B2Construction, Breakpoints, Exact1, Exact2,
    Exact3, IndexConfig, RankMethod, TemporalSet,
};
use chronorank_curve::PiecewiseLinear;
use proptest::prelude::*;

/// An arbitrary temporal set: 2..=8 objects, ragged domains, values that
/// may include negatives when `allow_negative` is set.
fn arb_set(allow_negative: bool) -> impl Strategy<Value = TemporalSet> {
    let lo = if allow_negative { -10.0 } else { 0.0 };
    proptest::collection::vec(
        (
            2usize..14,   // points per curve
            0.0f64..40.0, // start offset
            0.2f64..8.0,  // step scale
            proptest::collection::vec(lo..10.0f64, 14),
        ),
        2..=8,
    )
    .prop_map(move |specs| {
        let curves: Vec<PiecewiseLinear> = specs
            .into_iter()
            .map(|(n, start, step, values)| {
                let pts: Vec<(f64, f64)> = (0..n.max(2))
                    .map(|i| (start + i as f64 * step, values[i % values.len()]))
                    .collect();
                PiecewiseLinear::from_points(&pts).expect("valid curve")
            })
            .collect();
        TemporalSet::from_curves(curves).expect("valid set")
    })
}

/// A query interval loosely around the generated sets' domains.
fn arb_query() -> impl Strategy<Value = (f64, f64, usize)> {
    (-10.0f64..160.0, 0.0f64..120.0, 1usize..6).prop_map(|(a, len, k)| (a, a + len, k))
}

fn scores_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three exact methods reproduce brute force rank-for-rank (score
    /// equality; id ties may permute).
    #[test]
    fn exact_methods_equal_bruteforce(set in arb_set(false), (t1, t2, k) in arb_query()) {
        let want = set.top_k_bruteforce(t1, t2, k);
        let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
        let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
        let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
        for (m, name) in [(&e1 as &dyn RankMethod, "E1"), (&e2, "E2"), (&e3, "E3")] {
            let got = m.top_k(t1, t2, k, AggKind::Sum).unwrap();
            prop_assert_eq!(got.len(), want.len());
            for j in 0..want.len() {
                prop_assert!(
                    scores_close(want.rank(j).1, got.rank(j).1),
                    "{} rank {}: want {} got {}", name, j, want.rank(j).1, got.rank(j).1
                );
            }
        }
    }

    /// EXACT3 bulk-built == append-built (ISSUE 6): the bottom-up bulk
    /// build over the full set must answer exactly like an index built
    /// over a truncated prefix of the same set and then extended
    /// segment-by-segment through the §4 append path.
    #[test]
    fn exact3_bulk_build_equals_append_extended(
        set in arb_set(true),
        cut in 0.0f64..1.0,
        (t1, t2, k) in arb_query(),
    ) {
        // Per-object split point on a segment boundary: keep at least one
        // segment, append the rest (cut < 1 guarantees a non-empty tail
        // whenever the curve has more than one segment).
        let ends: Vec<f64> = set
            .objects()
            .iter()
            .map(|o| {
                let times = o.curve.times();
                let keep = 2 + ((times.len() - 2) as f64 * cut) as usize;
                times[keep - 1]
            })
            .collect();
        let base = set.truncated_at(&ends).unwrap();
        let bulk = Exact3::build(&set, IndexConfig::default()).unwrap();
        let inc = Exact3::build(&base, IndexConfig::default()).unwrap();
        for (i, o) in set.objects().iter().enumerate() {
            for seg in o.curve.segments() {
                if seg.t0 >= ends[i] {
                    inc.append_segment(o.id, seg).unwrap();
                }
            }
        }
        let a = bulk.top_k(t1, t2, k, AggKind::Sum).unwrap();
        let b = inc.top_k(t1, t2, k, AggKind::Sum).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for j in 0..a.len() {
            prop_assert_eq!(a.rank(j).0, b.rank(j).0, "rank {} object", j);
            prop_assert!(
                scores_close(a.rank(j).1, b.rank(j).1),
                "rank {}: bulk {} incremental {}", j, a.rank(j).1, b.rank(j).1
            );
        }
    }

    /// Negative scores: exact methods still equal brute force (§4).
    #[test]
    fn exact_methods_handle_negatives(set in arb_set(true), (t1, t2, k) in arb_query()) {
        let want = set.top_k_bruteforce(t1, t2, k);
        let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
        let got = e3.top_k(t1, t2, k, AggKind::Sum).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for j in 0..want.len() {
            prop_assert!(scores_close(want.rank(j).1, got.rank(j).1), "rank {}", j);
        }
    }

    /// Breakpoint gap invariant: no object accumulates more than εM of
    /// absolute mass between consecutive breakpoints (B2), and the global
    /// sum respects εM (B1). This is the precondition of Lemma 2.
    #[test]
    fn breakpoint_gap_invariants(set in arb_set(true), eps in 0.01f64..0.5) {
        let tau = eps * set.total_mass();
        if tau <= 0.0 { return Ok(()); }
        let slack = tau * (1.0 + 1e-6) + 1e-9;
        let b1 = Breakpoints::b1_with_eps(&set, eps).unwrap();
        for w in b1.points().windows(2) {
            let total: f64 = set.objects().iter().map(|o| o.curve.abs_integral(w[0], w[1])).sum();
            prop_assert!(total <= slack, "B1 gap [{}, {}] = {}", w[0], w[1], total);
        }
        let b2 = Breakpoints::b2_with_eps(&set, eps, B2Construction::Efficient).unwrap();
        for w in b2.points().windows(2) {
            for o in set.objects() {
                let s = o.curve.abs_integral(w[0], w[1]);
                prop_assert!(s <= slack, "B2 gap [{}, {}] obj {} = {}", w[0], w[1], o.id, s);
            }
        }
        prop_assert!(b2.len() <= b1.len() + 1, "B2 ({}) > B1 ({})", b2.len(), b1.len());
    }

    /// The two BREAKPOINTS2 constructions are equivalent on arbitrary data.
    #[test]
    fn b2_constructions_agree(set in arb_set(true), eps in 0.02f64..0.5) {
        let a = Breakpoints::b2_with_eps(&set, eps, B2Construction::Baseline).unwrap();
        let b = Breakpoints::b2_with_eps(&set, eps, B2Construction::Efficient).unwrap();
        prop_assert_eq!(a.len(), b.len(), "counts differ");
        for (x, y) in a.points().iter().zip(b.points()) {
            prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{} vs {}", x, y);
        }
    }

    /// APPX1 satisfies the (ε,1) guarantee of Definition 2 on arbitrary
    /// inputs; APPX2 satisfies (ε, 2 log r).
    #[test]
    fn approx_guarantees_hold(set in arb_set(false), (t1, t2, k) in arb_query()) {
        let cfg = ApproxConfig { r: 12, kmax: 6, ..Default::default() };
        let k = k.min(cfg.kmax);
        let exact = set.top_k_bruteforce(t1, t2, k);
        for variant in [ApproxVariant::APPX1, ApproxVariant::APPX2] {
            let idx = ApproxIndex::build(&set, variant, cfg).unwrap();
            let em = idx.breakpoints().eps() * idx.breakpoints().mass();
            let alpha = match variant.query {
                chronorank_core::QueryKind::Q1 => 1.0,
                chronorank_core::QueryKind::Q2 =>
                    2.0 * (idx.breakpoints().len() as f64).log2().max(1.0),
            };
            let approx = idx.top_k(t1, t2, k, AggKind::Sum).unwrap();
            for j in 0..approx.len().min(exact.len()) {
                let sa = approx.rank(j).1;
                let se = exact.rank(j).1;
                let slack = 1e-7 * (1.0 + se.abs()) + 1e-9;
                prop_assert!(
                    sa >= se / alpha - em - slack && sa <= se + em + slack,
                    "{} rank {}: approx {} exact {} eps*M {} alpha {}",
                    variant.name(), j, sa, se, em, alpha
                );
            }
        }
    }

    /// Snapping: B(t) is the smallest breakpoint ≥ t for interior t.
    #[test]
    fn snap_is_successor(set in arb_set(false), frac in 0.0f64..1.0) {
        let bp = Breakpoints::b1_with_eps(&set, 0.1).unwrap();
        let t = set.t_min() + frac * set.span();
        let s = bp.snap(t);
        prop_assert!(s >= t || (t - s).abs() < 1e-12 || bp.snap_idx(t) == bp.len() - 1);
        // No breakpoint in (t, s).
        for &b in bp.points() {
            prop_assert!(!(b >= t && b < s), "breakpoint {} inside ({}, {})", b, t, s);
        }
    }
}
