//! Streaming (external-memory) BREAKPOINTS2 construction for paper-scale
//! builds.
//!
//! The in-memory sweep in [`crate::breakpoints`] needs every curve resident
//! so it can re-base running integrals against arbitrary past breakpoints.
//! At the paper's Meme scale (`m ≈ 1.5·10⁶` objects, `N ≈ 10⁸` segments)
//! that is ruled out, so this module reruns the *same* sweep against an
//! externally sorted segment stream:
//!
//! 1. [`scan_stats`] makes one pass over the generator to obtain the exact
//!    quantities [`crate::TemporalSet`] would report (`M`, `t_min`, `t_max`,
//!    …) — same accumulation order, bit-identical values, so the threshold
//!    `τ = εM` matches the in-memory construction exactly;
//! 2. [`b2_streaming`] pushes every `|g_i|` segment through an
//!    [`ExternalSorter`] under an explicit byte budget and replays the
//!    §3.1 efficient sweep over the sorted run merge. Per object it keeps
//!    only the *active window* — the segments consumed since the object was
//!    last re-based that still end after the current breakpoint — in a
//!    `pending` buffer. Every integral/crossing query the sweep performs
//!    (`σ_i(b*, frontier)` at commits, crossing searches for dangerous
//!    objects) touches only that window, so peak memory is `O(m)` state
//!    plus the segments of one breakpoint gap, never the `N`-segment
//!    dataset.
//!
//! The pending-window walks mirror [`chronorank_curve::PiecewiseLinear`]'s
//! `integral`/`time_to_accumulate` term by term (same per-segment clipped
//! trapezoids, same accumulation order); trimmed segments would contribute
//! exactly `+0.0`, so the streaming sweep emits the same breakpoints as
//! `Breakpoints::b2_with_eps` up to ulp-level ties (the property tests in
//! this module assert equality on mixed-sign inputs).

use crate::breakpoints::OrdF64;
use crate::breakpoints::{abs_curve, check_eps, B2Construction, Breakpoints, BreakpointsKind};
use crate::error::Result;
use crate::object::TemporalObject;
use chronorank_curve::Segment;
use chronorank_index::ExternalSorter;
use chronorank_storage::Env;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Dataset statistics gathered by [`scan_stats`] — the streaming stand-in
/// for the fields [`crate::TemporalSet`] precomputes, accumulated in the
/// same object order with the same operations so that thresholds derived
/// from them (`τ = εM`) are bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct StreamStats {
    /// Number of objects `m`.
    pub num_objects: usize,
    /// Total number of segments `N`.
    pub num_segments: u64,
    /// Left edge of the global time domain.
    pub t_min: f64,
    /// Right edge of the global time domain (`T`).
    pub t_max: f64,
    /// Total absolute mass `M = Σ_i ∫|g_i|`.
    pub total_mass: f64,
    /// Whether any curve dips below zero (§4 negative scores).
    pub has_negative: bool,
    /// Longest single segment duration (EXACT1's scan-back bound `Δmax`).
    pub max_segment_duration: f64,
}

/// One streaming pass over a generator, computing [`StreamStats`] exactly
/// as `TemporalSet::recompute_stats` would (same order, same operations).
pub fn scan_stats<I>(objects: I) -> StreamStats
where
    I: IntoIterator<Item = TemporalObject>,
{
    let mut s = StreamStats {
        num_objects: 0,
        num_segments: 0,
        t_min: f64::INFINITY,
        t_max: f64::NEG_INFINITY,
        total_mass: 0.0,
        has_negative: false,
        max_segment_duration: 0.0,
    };
    for o in objects {
        let c = &o.curve;
        s.t_min = s.t_min.min(c.start());
        s.t_max = s.t_max.max(c.end());
        s.num_segments += c.num_segments() as u64;
        s.total_mass += c.total_abs();
        s.has_negative |= c.min_value() < 0.0;
        s.max_segment_duration = s.max_segment_duration.max(c.max_segment_duration());
        s.num_objects += 1;
    }
    s
}

/// Result of a streaming BREAKPOINTS2 construction.
#[derive(Debug)]
pub struct StreamedB2 {
    /// The constructed breakpoint set (same points as the in-memory sweep).
    pub breakpoints: Breakpoints,
    /// High-water mark of retained segments across all pending windows —
    /// the sweep's actual working set, reported by `paper_bench paperscale`
    /// as part of the resource envelope.
    pub peak_pending_segments: u64,
}

/// External-sort record: `t0 | obj | t1 | v0 | v1` (little-endian), keyed
/// by the segment's left endpoint — the order the paper's queue `Q`
/// consumes.
const B2_REC_LEN: usize = 8 + 4 + 8 + 8 + 8;

fn encode_b2(rec: &mut [u8; B2_REC_LEN], obj: u32, seg: &Segment) {
    rec[0..8].copy_from_slice(&seg.t0.to_le_bytes());
    rec[8..12].copy_from_slice(&obj.to_le_bytes());
    rec[12..20].copy_from_slice(&seg.t1.to_le_bytes());
    rec[20..28].copy_from_slice(&seg.v0.to_le_bytes());
    rec[28..36].copy_from_slice(&seg.v1.to_le_bytes());
}

fn decode_b2(rec: &[u8; B2_REC_LEN]) -> (u32, Segment) {
    let f = |at: usize| f64::from_le_bytes(rec[at..at + 8].try_into().expect("8 bytes"));
    let obj = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
    (obj, Segment::new(f(0), f(20), f(12), f(28)))
}

/// Per-object sweep state plus the retained active window.
struct StreamObj {
    /// Running integral since the object's last re-base (see `ObjState`).
    integral: f64,
    /// Time up to which this object's segments have been consumed.
    frontier: f64,
    /// Breakpoint index at which `integral` was last re-based.
    epoch: usize,
    /// Whether a crossing candidate is queued.
    dangerous: bool,
    /// Lazy-invalidated generation for heap entries.
    generation: u64,
    /// Consumed segments still ending after the current breakpoint — the
    /// only part of the curve the sweep can still ask about.
    pending: Vec<Segment>,
}

/// Mirror of `PiecewiseLinear::integral(a, b)` over a retained suffix of
/// the curve. Segments wholly behind `a` contribute the same `+0.0` the
/// full walk's `locate` skip produces, so trimming them is bit-neutral.
fn pending_integral(pending: &[Segment], a: f64, b: f64) -> f64 {
    if b <= a {
        return 0.0;
    }
    let mut acc = 0.0;
    for seg in pending {
        if seg.t0 >= b {
            break;
        }
        acc += seg.integral_clipped(a, b);
    }
    acc
}

/// Mirror of `PiecewiseLinear::time_to_accumulate(from, target)` over a
/// retained suffix (same per-segment availability terms, same subtraction
/// order). Only called when the retained mass past `from` reaches
/// `target`, so staying within the window loses nothing.
fn pending_time_to_accumulate(pending: &[Segment], from: f64, target: f64) -> Option<f64> {
    debug_assert!(target > 0.0);
    let mut need = target;
    for seg in pending {
        let lo = from.max(seg.t0);
        let available = seg.integral_clipped(lo, seg.t1);
        if available >= need {
            return seg.time_to_accumulate(lo, need);
        }
        need -= available;
    }
    None
}

/// Drop pending segments that end at or before `b`: every future query
/// uses a left bound ≥ `b` (breakpoints only advance), so they can only
/// ever contribute an exact `0.0` again.
fn trim(s: &mut StreamObj, b: f64, live: &mut u64) {
    let before = s.pending.len();
    s.pending.retain(|seg| seg.t1 > b);
    *live -= (before - s.pending.len()) as u64;
}

/// Streaming BREAKPOINTS2 (§3.1) over an object stream: externally sorts
/// all `|g_i|` segments by left endpoint under `sort_budget_bytes`, then
/// replays the efficient sweep holding only per-object active windows.
/// Produces the same breakpoints as [`Breakpoints::b2_with_eps`] on the
/// materialized set (`stats` must come from [`scan_stats`] over the same
/// stream).
pub fn b2_streaming<I>(
    env: &Env,
    objects: I,
    stats: &StreamStats,
    eps: f64,
    construction: B2Construction,
    sort_budget_bytes: u64,
) -> Result<StreamedB2>
where
    I: IntoIterator<Item = TemporalObject>,
{
    check_eps(eps)?;
    let tau = eps * stats.total_mass;
    let (t_min, t_max) = (stats.t_min, stats.t_max);
    let mut points = vec![t_min];
    if tau <= 0.0 || stats.total_mass <= 0.0 {
        points.push(t_max);
        return Ok(StreamedB2 {
            breakpoints: Breakpoints::from_sweep(
                BreakpointsKind::B2,
                points,
                eps,
                stats.total_mass,
            ),
            peak_pending_segments: 0,
        });
    }

    // Externally sort all |g| segments by t0 (the paper's queue Q). Pushed
    // object-major in id order, so equal-t0 ties merge back in the same
    // order the in-memory stable sort produces.
    let sort_file = env.create_file("b2_stream_sort")?;
    let mut sorter =
        ExternalSorter::with_byte_budget(sort_file, B2_REC_LEN, sort_budget_bytes, |rec| {
            f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"))
        })?;
    let mut rec = [0u8; B2_REC_LEN];
    for o in objects {
        if stats.has_negative {
            // §4 negative scores: sweep |g| — same global rule as the
            // in-memory AbsCurves (all curves pass through abs_curve).
            let ac = abs_curve(&o.curve)?;
            for seg in ac.segments() {
                encode_b2(&mut rec, o.id, &seg);
                sorter.push(&rec)?;
            }
        } else {
            for seg in o.curve.segments() {
                encode_b2(&mut rec, o.id, &seg);
                sorter.push(&rec)?;
            }
        }
    }
    let mut stream = sorter.finish()?;

    let m = stats.num_objects;
    let mut st: Vec<StreamObj> = (0..m)
        .map(|_| StreamObj {
            integral: 0.0,
            // NEG_INFINITY stands in for the (unknown) curve start: both
            // make every pre-consumption re-base take the `0.0` branch.
            frontier: f64::NEG_INFINITY,
            epoch: 0,
            dangerous: false,
            generation: 0,
            pending: Vec::new(),
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u64)>> = BinaryHeap::new();
    let mut b_cur = t_min;
    let mut live_pending = 0u64;
    let mut peak_pending = 0u64;

    macro_rules! pop_valid {
        () => {{
            let mut found = None;
            while let Some(&Reverse((OrdF64(t), obj, gen))) = heap.peek() {
                let o = obj as usize;
                if st[o].dangerous && st[o].generation == gen {
                    found = Some((t, obj));
                    break;
                }
                heap.pop();
            }
            found
        }};
    }

    let rebase_all = construction == B2Construction::Baseline;
    let commit = |b_star: f64,
                  st: &mut Vec<StreamObj>,
                  heap: &mut BinaryHeap<Reverse<(OrdF64, u32, u64)>>,
                  points: &mut Vec<f64>,
                  b_cur: &mut f64,
                  live_pending: &mut u64| {
        points.push(b_star);
        *b_cur = b_star;
        let epoch = points.len() - 1;
        for (i, s) in st.iter_mut().enumerate() {
            if !rebase_all && !s.dangerous {
                continue;
            }
            s.integral = if s.frontier > b_star {
                pending_integral(&s.pending, b_star, s.frontier)
            } else {
                0.0
            };
            s.epoch = epoch;
            s.generation += 1;
            s.dangerous = false;
            if s.integral >= tau {
                if let Some(t_star) = pending_time_to_accumulate(&s.pending, b_star, tau) {
                    s.dangerous = true;
                    heap.push(Reverse((OrdF64(t_star), i as u32, s.generation)));
                }
            }
            trim(s, b_star, live_pending);
        }
    };

    while stream.next_into(&mut rec)? {
        let (obj, seg) = decode_b2(&rec);
        let t_l = seg.t0;
        loop {
            match pop_valid!() {
                Some((b_star, _)) if t_l > b_star => {
                    commit(b_star, &mut st, &mut heap, &mut points, &mut b_cur, &mut live_pending);
                }
                _ => break,
            }
        }
        let o = obj as usize;
        if st[o].epoch != points.len() - 1 {
            st[o].integral = if st[o].frontier > b_cur {
                pending_integral(&st[o].pending, b_cur, st[o].frontier)
            } else {
                0.0
            };
            st[o].epoch = points.len() - 1;
            debug_assert!(
                st[o].integral < tau * (1.0 + 1e-9) + 1e-12 || st[o].dangerous,
                "lazy rebase found an unnoticed crossing"
            );
        }
        trim(&mut st[o], b_cur, &mut live_pending);
        let from = seg.t0.max(b_cur);
        let add = if from < seg.t1 { seg.integral_clipped(from, seg.t1) } else { 0.0 };
        if !st[o].dangerous && st[o].integral < tau && st[o].integral + add >= tau {
            if let Some(t_star) = seg.time_to_accumulate(from, tau - st[o].integral) {
                st[o].dangerous = true;
                st[o].generation += 1;
                heap.push(Reverse((OrdF64(t_star), obj, st[o].generation)));
            }
        }
        st[o].integral += add;
        st[o].frontier = seg.t1;
        st[o].pending.push(seg);
        live_pending += 1;
        peak_pending = peak_pending.max(live_pending);
    }
    while let Some((b_star, _)) = pop_valid!() {
        if b_star >= t_max {
            break;
        }
        commit(b_star, &mut st, &mut heap, &mut points, &mut b_cur, &mut live_pending);
    }
    if *points.last().expect("non-empty") < t_max {
        points.push(t_max);
    }
    Ok(StreamedB2 {
        breakpoints: Breakpoints::from_sweep(BreakpointsKind::B2, points, eps, stats.total_mass),
        peak_pending_segments: peak_pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::TemporalSet;
    use crate::test_support::small_set;
    use chronorank_curve::PiecewiseLinear;
    use chronorank_storage::{Env, StoreConfig};

    fn stream_env() -> Env {
        Env::mem(StoreConfig { block_size: 256, pool_capacity: 16 })
    }

    fn assert_streaming_matches(set: &TemporalSet, eps: f64, construction: B2Construction) {
        let expect = Breakpoints::b2_with_eps(set, eps, construction).unwrap();
        let stats = scan_stats(set.objects().iter().cloned());
        let got = b2_streaming(
            &stream_env(),
            set.objects().iter().cloned(),
            &stats,
            eps,
            construction,
            // Tiny budget: force multi-run external merges.
            4 * B2_REC_LEN as u64 * 16,
        )
        .unwrap();
        assert_eq!(
            got.breakpoints.points(),
            expect.points(),
            "eps={eps} {construction:?}: streaming and in-memory sweeps diverged"
        );
        assert_eq!(got.breakpoints.eps(), expect.eps());
        assert_eq!(got.breakpoints.mass(), expect.mass());
    }

    #[test]
    fn stats_match_materialized_set() {
        let set = small_set();
        let s = scan_stats(set.objects().iter().cloned());
        assert_eq!(s.num_objects, set.num_objects());
        assert_eq!(s.num_segments, set.num_segments());
        assert_eq!(s.t_min, set.t_min());
        assert_eq!(s.t_max, set.t_max());
        assert_eq!(s.total_mass.to_bits(), set.total_mass().to_bits(), "M must be bit-identical");
        assert_eq!(s.has_negative, set.has_negative());
        assert_eq!(s.max_segment_duration, set.max_segment_duration());
    }

    #[test]
    fn streaming_matches_in_memory_sweep() {
        let set = small_set();
        for &eps in &[0.5, 0.1, 0.03, 0.01, 0.003] {
            assert_streaming_matches(&set, eps, B2Construction::Efficient);
            assert_streaming_matches(&set, eps, B2Construction::Baseline);
        }
    }

    #[test]
    fn streaming_matches_on_negative_scores() {
        let c0 = PiecewiseLinear::from_points(&[(0.0, -4.0), (10.0, 4.0), (20.0, -4.0)]).unwrap();
        let c1 = PiecewiseLinear::from_points(&[(0.0, 1.0), (20.0, 1.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c0, c1]).unwrap();
        assert!(set.has_negative());
        for &eps in &[0.3, 0.1, 0.02] {
            assert_streaming_matches(&set, eps, B2Construction::Efficient);
        }
    }

    #[test]
    fn streaming_handles_multi_crossing_segments() {
        // One long flat segment the sweep must cut repeatedly from the
        // dangerous-object heap (pending window = a single segment).
        let c = PiecewiseLinear::from_points(&[(0.0, 10.0), (100.0, 10.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c]).unwrap();
        assert_streaming_matches(&set, 0.1, B2Construction::Efficient);
    }

    #[test]
    fn streaming_degenerates_like_in_memory() {
        let c = PiecewiseLinear::from_points(&[(0.0, 0.0), (5.0, 0.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c]).unwrap();
        assert_streaming_matches(&set, 0.1, B2Construction::Efficient);
    }

    #[test]
    fn streaming_method_builds_answer_identically() {
        use crate::agg::AggKind;
        use crate::appx::{ApproxConfig, ApproxIndex, ApproxVariant};
        use crate::exact1::Exact1;
        use crate::exact3::Exact3;
        use crate::topk::RankMethod;
        use crate::IndexConfig;

        let set = small_set();
        let budget = 1u64 << 14;
        let objs = || set.objects().iter().cloned();

        let e1_mem = Exact1::build(&set, IndexConfig::default()).unwrap();
        let e1_str =
            Exact1::build_streaming(Env::mem(StoreConfig::default()), objs(), budget).unwrap();
        let e3_mem = Exact3::build(&set, IndexConfig::default()).unwrap();
        let e3_str = Exact3::build_streaming(
            Env::mem(StoreConfig::default()),
            StoreConfig::default(),
            objs(),
            budget,
        )
        .unwrap();
        let bp = Breakpoints::b2_with_eps(&set, 0.05, B2Construction::Efficient).unwrap();
        let cfg = ApproxConfig { kmax: 4, ..Default::default() };
        let mut pairs: Vec<(Box<dyn RankMethod>, Box<dyn RankMethod>)> =
            vec![(Box::new(e1_mem), Box::new(e1_str)), (Box::new(e3_mem), Box::new(e3_str))];
        for v in [ApproxVariant::APPX1, ApproxVariant::APPX2] {
            let mem = ApproxIndex::build_with_breakpoints(
                Env::mem(StoreConfig::default()),
                &set,
                v,
                cfg,
                bp.clone(),
            )
            .unwrap();
            let str = ApproxIndex::build_streaming(
                Env::mem(StoreConfig::default()),
                objs(),
                v,
                cfg,
                bp.clone(),
            )
            .unwrap();
            pairs.push((Box::new(mem), Box::new(str)));
        }
        for (mem, str) in &pairs {
            for &(a, b) in crate::test_support::INTERVALS {
                let want = mem.top_k(a, b, 3, AggKind::Sum).unwrap();
                let got = str.top_k(a, b, 3, AggKind::Sum).unwrap();
                assert_eq!(want.ids(), got.ids(), "{} [{a},{b}] ids", mem.name());
                for (x, y) in want.scores().iter().zip(got.scores()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} [{a},{b}] scores", mem.name());
                }
            }
        }
        // APPX2+ has no streaming path: the EXACT2 forest is per-object.
        assert!(ApproxIndex::build_streaming(
            Env::mem(StoreConfig::default()),
            objs(),
            ApproxVariant::APPX2_PLUS,
            cfg,
            bp,
        )
        .is_err());
    }

    #[test]
    fn pending_window_stays_below_dataset() {
        // The whole point: at small eps the sweep never retains more than a
        // gap's worth of segments (plus one in flight per object).
        let set = small_set();
        let stats = scan_stats(set.objects().iter().cloned());
        let got = b2_streaming(
            &stream_env(),
            set.objects().iter().cloned(),
            &stats,
            0.01,
            B2Construction::Efficient,
            1 << 16,
        )
        .unwrap();
        assert!(got.peak_pending_segments > 0);
        assert!(
            got.peak_pending_segments < stats.num_segments,
            "peak window {} must undercut N = {}",
            got.peak_pending_segments,
            stats.num_segments
        );
    }
}
