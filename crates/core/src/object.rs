//! The temporal database model: objects and object sets.

use crate::error::{CoreError, Result};
use chronorank_curve::{ColumnarTail, PiecewiseLinear};

/// Object identifier; objects are dense `0..m` within a [`TemporalSet`].
pub type ObjectId = u32;

/// One temporal object `o_i`: an id plus its score curve `g_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalObject {
    /// Dense id in `[0, m)`.
    pub id: ObjectId,
    /// The piecewise-linear score function.
    pub curve: PiecewiseLinear,
}

/// One §4 update: a new reading `(t, v)` extending `object` at its right
/// time edge (the segment from the object's previous endpoint to `(t, v)`).
///
/// This is the unit the live ingest path moves around — appended to the
/// write-ahead log, shipped to shards, replayed on recovery — so it is
/// plain `Copy` data with a fixed-width byte encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendRecord {
    /// The object being extended.
    pub object: ObjectId,
    /// New right edge (must exceed the object's current end time).
    pub t: f64,
    /// Score value at `t`.
    pub v: f64,
}

impl AppendRecord {
    /// Byte length of [`AppendRecord::encode`]'s output.
    pub const ENCODED_LEN: usize = 20;

    /// Fixed-width little-endian encoding (object, t, v).
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[..4].copy_from_slice(&self.object.to_le_bytes());
        out[4..12].copy_from_slice(&self.t.to_bits().to_le_bytes());
        out[12..20].copy_from_slice(&self.v.to_bits().to_le_bytes());
        out
    }

    /// Inverse of [`AppendRecord::encode`]; `None` on a length mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        Some(Self {
            object: ObjectId::from_le_bytes(bytes[..4].try_into().ok()?),
            t: f64::from_bits(u64::from_le_bytes(bytes[4..12].try_into().ok()?)),
            v: f64::from_bits(u64::from_le_bytes(bytes[12..20].try_into().ok()?)),
        })
    }
}

/// The temporal database: `m` objects over a common time domain `[0, T]`
/// (objects need not individually span the whole domain, nor align their
/// segment boundaries — the paper explicitly permits heterogeneous
/// segmentations).
///
/// The set is the ground-truth, in-memory representation that all index
/// structures are built from; it also serves as the oracle for correctness
/// tests ([`TemporalSet::score`] / [`TemporalSet::top_k_bruteforce`]).
#[derive(Debug, Clone)]
pub struct TemporalSet {
    objects: Vec<TemporalObject>,
    t_min: f64,
    t_max: f64,
    num_segments: u64,
    /// `M = Σ_i σ_i(0, T)` over |g| (absolute mass; equals the plain mass
    /// for non-negative data). Breakpoint thresholds are `ε·M` (§3.1, §4).
    total_mass: f64,
    /// True when any object takes a negative value (enables the §4
    /// absolute-value handling in breakpoint construction).
    has_negative: bool,
    max_segment_duration: f64,
}

impl TemporalSet {
    /// Build a set from curves; ids are assigned positionally.
    pub fn from_curves(curves: Vec<PiecewiseLinear>) -> Result<Self> {
        let objects = curves
            .into_iter()
            .enumerate()
            .map(|(i, curve)| TemporalObject { id: i as ObjectId, curve })
            .collect();
        Self::from_objects(objects)
    }

    /// Build a set from objects whose ids must be dense `0..m` in order.
    pub fn from_objects(objects: Vec<TemporalObject>) -> Result<Self> {
        if objects.is_empty() {
            return Err(CoreError::BadQuery("a temporal set needs at least one object".into()));
        }
        for (i, o) in objects.iter().enumerate() {
            if o.id != i as ObjectId {
                return Err(CoreError::BadQuery(format!(
                    "object ids must be dense and ordered: position {i} holds id {}",
                    o.id
                )));
            }
        }
        let mut set = Self {
            objects,
            t_min: 0.0,
            t_max: 0.0,
            num_segments: 0,
            total_mass: 0.0,
            has_negative: false,
            max_segment_duration: 0.0,
        };
        set.recompute_stats();
        Ok(set)
    }

    fn recompute_stats(&mut self) {
        self.t_min = f64::INFINITY;
        self.t_max = f64::NEG_INFINITY;
        self.num_segments = 0;
        self.total_mass = 0.0;
        self.has_negative = false;
        self.max_segment_duration = 0.0;
        for o in &self.objects {
            let c = &o.curve;
            self.t_min = self.t_min.min(c.start());
            self.t_max = self.t_max.max(c.end());
            self.num_segments += c.num_segments() as u64;
            self.total_mass += c.total_abs();
            self.has_negative |= c.min_value() < 0.0;
            self.max_segment_duration = self.max_segment_duration.max(c.max_segment_duration());
        }
    }

    /// Number of objects `m`.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total number of segments `N`.
    pub fn num_segments(&self) -> u64 {
        self.num_segments
    }

    /// Left edge of the global time domain.
    pub fn t_min(&self) -> f64 {
        self.t_min
    }

    /// Right edge of the global time domain (`T`).
    pub fn t_max(&self) -> f64 {
        self.t_max
    }

    /// `t_max - t_min`.
    pub fn span(&self) -> f64 {
        self.t_max - self.t_min
    }

    /// `M = Σ_i ∫ |g_i|` — the paper's total mass, absolute-valued per §4.
    pub fn total_mass(&self) -> f64 {
        self.total_mass
    }

    /// True when any curve dips below zero.
    pub fn has_negative(&self) -> bool {
        self.has_negative
    }

    /// Longest single segment duration across all objects.
    pub fn max_segment_duration(&self) -> f64 {
        self.max_segment_duration
    }

    /// Borrow an object.
    pub fn object(&self, id: ObjectId) -> Result<&TemporalObject> {
        self.objects.get(id as usize).ok_or(CoreError::NoSuchObject(id))
    }

    /// All objects, id order.
    pub fn objects(&self) -> &[TemporalObject] {
        &self.objects
    }

    /// `σ_i(t1, t2)`: the ground-truth aggregate score of one object.
    pub fn score(&self, id: ObjectId, t1: f64, t2: f64) -> Result<f64> {
        Ok(self.object(id)?.curve.integral(t1, t2))
    }

    /// Ground-truth `top-k(t1, t2, sum)` by brute force over all objects —
    /// the paper's EXACT1 semantics without any index; `O(m log n + Σ q_i)`
    /// compute. Used as the oracle in tests and quality metrics.
    pub fn top_k_bruteforce(&self, t1: f64, t2: f64, k: usize) -> crate::TopK {
        let scores = self.objects.iter().map(|o| (o.id, o.curve.integral(t1, t2)));
        crate::topk::top_k_from_scores(scores, k)
    }

    /// Append a segment to object `id` (the paper's §4 update model: a new
    /// segment extending the object at the current time edge). Set-level
    /// statistics (`M`, `N`, `T`, …) are maintained incrementally.
    pub fn append_segment(&mut self, id: ObjectId, t: f64, v: f64) -> Result<()> {
        let idx = id as usize;
        if idx >= self.objects.len() {
            return Err(CoreError::NoSuchObject(id));
        }
        let curve = &mut self.objects[idx].curve;
        let (prev_t, prev_v) = curve.point(curve.num_points() - 1);
        curve.append(t, v)?;
        self.num_segments += 1;
        self.t_max = self.t_max.max(t);
        self.max_segment_duration = self.max_segment_duration.max(t - prev_t);
        // Absolute mass of the new trapezoid (exact, including sign change).
        let seg = chronorank_curve::Segment::new(prev_t, prev_v, t, v);
        self.total_mass += seg.abs_integral_clipped(prev_t, t);
        self.has_negative |= v < 0.0;
        Ok(())
    }

    /// Apply one [`AppendRecord`] (the §4 update model as shipped by the
    /// live ingest path).
    pub fn apply(&mut self, rec: AppendRecord) -> Result<()> {
        self.append_segment(rec.object, rec.t, rec.v)
    }

    /// Serialize every curve with exact `f64` bits: `m`, then per object
    /// the point count followed by its `(t, v)` pairs. The persistent
    /// generation image stores this instead of re-parsing a CSV snapshot
    /// on recovery; [`TemporalSet::from_bytes`] reproduces a bit-identical
    /// set (statistics are recomputed from the same bits).
    pub fn to_bytes(&self) -> Vec<u8> {
        let total_points: usize = self.objects.iter().map(|o| o.curve.num_points()).sum();
        let mut out = Vec::with_capacity(4 + 4 * self.objects.len() + 16 * total_points);
        out.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for o in &self.objects {
            out.extend_from_slice(&(o.curve.num_points() as u32).to_le_bytes());
            for (&t, &v) in o.curve.times().iter().zip(o.curve.values()) {
                out.extend_from_slice(&t.to_bits().to_le_bytes());
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`TemporalSet::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let corrupt = || CoreError::BadQuery("corrupt serialized temporal set".into());
        let mut at = 0usize;
        let u32_at = |at: &mut usize| -> Result<u32> {
            let v = bytes.get(*at..*at + 4).ok_or_else(corrupt)?;
            *at += 4;
            Ok(u32::from_le_bytes(v.try_into().expect("4 bytes")))
        };
        let m = u32_at(&mut at)? as usize;
        let mut objects = Vec::with_capacity(m);
        for id in 0..m {
            let n_points = u32_at(&mut at)? as usize;
            let mut times = Vec::with_capacity(n_points);
            let mut values = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                let raw = bytes.get(at..at + 16).ok_or_else(corrupt)?;
                times.push(f64::from_bits(u64::from_le_bytes(
                    raw[..8].try_into().expect("8 bytes"),
                )));
                values.push(f64::from_bits(u64::from_le_bytes(
                    raw[8..].try_into().expect("8 bytes"),
                )));
                at += 16;
            }
            let curve = PiecewiseLinear::from_times_values(times, values)?;
            objects.push(TemporalObject { id: id as ObjectId, curve });
        }
        if at != bytes.len() {
            return Err(corrupt());
        }
        Self::from_objects(objects)
    }

    /// Freeze every curve into columnar (structure-of-arrays) storage —
    /// the live tier's mutable-tail representation and the checkpoint
    /// image's `live_set` section format. Point bits are copied verbatim.
    pub fn to_columnar(&self) -> ColumnarTail {
        let mut ct = ColumnarTail::new();
        for o in &self.objects {
            ct.push_object(o.curve.times(), o.curve.values())
                .expect("set curves are already validated");
        }
        ct
    }

    /// Rebuild a row-form set from columnar storage (ids positional, as
    /// [`TemporalSet::from_curves`]). Inverse of
    /// [`TemporalSet::to_columnar`] bit-for-bit; statistics are recomputed
    /// from the same point bits.
    pub fn from_columnar(ct: &ColumnarTail) -> Result<Self> {
        let (mut times, mut values) = (Vec::new(), Vec::new());
        let objects = (0..ct.num_objects())
            .map(|i| {
                ct.copy_points(i, &mut times, &mut values);
                let curve = PiecewiseLinear::from_times_values(times.clone(), values.clone())?;
                Ok(TemporalObject { id: i as ObjectId, curve })
            })
            .collect::<Result<Vec<_>>>()?;
        Self::from_objects(objects)
    }

    /// The set as it looked when object `i` ended at `ends[i]`: every
    /// curve truncated to its point-prefix with `t ≤ ends[i]`. Because the
    /// §4 update model only ever extends curves at the right edge, this
    /// prefix is **bit-identical** to the historical snapshot — which is
    /// how a persisted generation's approximate indexes are rebuilt
    /// deterministically from the recovered live set plus the frozen-end
    /// stamps, without persisting a second copy of the curves.
    pub fn truncated_at(&self, ends: &[f64]) -> Result<Self> {
        if ends.len() != self.objects.len() {
            return Err(CoreError::BadQuery(format!(
                "frozen-end table covers {} objects, set holds {}",
                ends.len(),
                self.objects.len()
            )));
        }
        let objects = self
            .objects
            .iter()
            .zip(ends)
            .map(|(o, &end)| {
                let keep = o.curve.times().partition_point(|&t| t <= end);
                if keep < 2 {
                    return Err(CoreError::BadQuery(format!(
                        "frozen end {end} precedes object {}'s second point",
                        o.id
                    )));
                }
                let curve = PiecewiseLinear::from_times_values(
                    o.curve.times()[..keep].to_vec(),
                    o.curve.values()[..keep].to_vec(),
                )?;
                Ok(TemporalObject { id: o.id, curve })
            })
            .collect::<Result<Vec<_>>>()?;
        Self::from_objects(objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_curve::numeric::approx_eq;

    fn set() -> TemporalSet {
        let c0 = PiecewiseLinear::from_points(&[(0.0, 1.0), (10.0, 1.0)]).unwrap(); // area 10
        let c1 = PiecewiseLinear::from_points(&[(2.0, 0.0), (6.0, 4.0), (8.0, 0.0)]).unwrap(); // area 12
        let c2 = PiecewiseLinear::from_points(&[(5.0, 2.0), (15.0, 2.0)]).unwrap(); // area 20
        TemporalSet::from_curves(vec![c0, c1, c2]).unwrap()
    }

    #[test]
    fn stats_are_computed() {
        let s = set();
        assert_eq!(s.num_objects(), 3);
        assert_eq!(s.num_segments(), 4);
        assert_eq!(s.t_min(), 0.0);
        assert_eq!(s.t_max(), 15.0);
        assert_eq!(s.span(), 15.0);
        assert!(approx_eq(s.total_mass(), 42.0, 1e-12));
        assert!(!s.has_negative());
        assert_eq!(s.max_segment_duration(), 10.0);
    }

    #[test]
    fn id_validation() {
        let c = PiecewiseLinear::from_points(&[(0.0, 1.0), (1.0, 1.0)]).unwrap();
        let bad = vec![TemporalObject { id: 5, curve: c }];
        assert!(TemporalSet::from_objects(bad).is_err());
        assert!(TemporalSet::from_objects(vec![]).is_err());
    }

    #[test]
    fn scores_and_bruteforce_topk() {
        let s = set();
        // On [4, 8]: o0 = 4, o1 = ∫_4^6 (t-2) + ∫_6^8 (4-2(t-6)) = 6+4 = 10...
        // o1 on [4,6]: values 2→4 → area 6; [6,8]: 4→0 → area 4; total 10.
        // o2 on [5,8]: 2*3 = 6.
        assert!(approx_eq(s.score(0, 4.0, 8.0).unwrap(), 4.0, 1e-12));
        assert!(approx_eq(s.score(1, 4.0, 8.0).unwrap(), 10.0, 1e-12));
        assert!(approx_eq(s.score(2, 4.0, 8.0).unwrap(), 6.0, 1e-12));
        let top = s.top_k_bruteforce(4.0, 8.0, 2);
        assert_eq!(top.ids(), vec![1, 2]);
        assert!(s.score(99, 0.0, 1.0).is_err());
    }

    #[test]
    fn figure2_example() {
        // Reproduce the paper's Figure 2 claims: the top-2(t1,t2,sum) answer
        // is {o3, o1}; and A(1, t2, t3) = {o1} even though o1 is never an
        // instant top-1(t) for any t in [t2, t3].
        let o1 = PiecewiseLinear::from_points(&[(0.0, 5.0), (10.0, 5.0)]).unwrap();
        let o2 = PiecewiseLinear::from_points(&[
            (0.0, 1.0),
            (3.0, 2.0),
            (4.0, 9.0),
            (5.0, 2.0),
            (6.0, 0.5),
            (8.0, 5.5),
            (10.0, 6.0),
        ])
        .unwrap();
        let o3 = PiecewiseLinear::from_points(&[(0.0, 8.0), (6.0, 8.0), (10.0, 1.9)]).unwrap();
        let s = TemporalSet::from_curves(vec![o1, o2, o3]).unwrap();
        // Over [1, 6] (the figure's [t1, t2]): o3 = 40, o1 = 25, o2 ≈ 15.6.
        let top = s.top_k_bruteforce(1.0, 6.0, 2);
        assert_eq!(top.ids(), vec![2, 0], "answer must be (o3, o1)");
        // Over [6, 10] (the figure's [t2, t3]): o1 = 20 beats o3 = 19.8 and
        // o2 = 17.5, yet at every instant either o3 (early) or o2 (late) is
        // above o1's constant 5.
        let top = s.top_k_bruteforce(6.0, 10.0, 1);
        assert_eq!(top.ids(), vec![0]);
        for i in 0..=40 {
            let t = 6.0 + i as f64 * 0.1;
            let v1 = s.object(0).unwrap().curve.eval(t).unwrap();
            let v2 = s.object(1).unwrap().curve.eval(t).unwrap();
            let v3 = s.object(2).unwrap().curve.eval(t).unwrap();
            assert!(v2.max(v3) >= v1, "o1 must never be instant top-1 (t={t})");
        }
    }

    #[test]
    fn append_segment_maintains_stats() {
        let mut s = set();
        let m_before = s.total_mass();
        s.append_segment(0, 14.0, 3.0).unwrap(); // trapezoid (1+3)/2*4 = 8
        assert_eq!(s.num_segments(), 5);
        assert!(approx_eq(s.total_mass(), m_before + 8.0, 1e-12));
        assert_eq!(s.t_max(), 15.0); // still dominated by o2
        s.append_segment(0, 20.0, 3.0).unwrap();
        assert_eq!(s.t_max(), 20.0);
        assert!(s.append_segment(9, 30.0, 0.0).is_err());
        assert!(s.append_segment(0, 1.0, 0.0).is_err(), "must extend rightward");
    }

    #[test]
    fn append_record_roundtrips_bit_exactly() {
        let rec = AppendRecord { object: 7, t: 123.456789e-3, v: -0.1 };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), AppendRecord::ENCODED_LEN);
        let back = AppendRecord::decode(&bytes).unwrap();
        assert_eq!(back.object, rec.object);
        assert_eq!(back.t.to_bits(), rec.t.to_bits());
        assert_eq!(back.v.to_bits(), rec.v.to_bits());
        assert!(AppendRecord::decode(&bytes[..10]).is_none());
        // apply == append_segment.
        let mut a = set();
        let mut b = set();
        a.apply(AppendRecord { object: 0, t: 14.0, v: 3.0 }).unwrap();
        b.append_segment(0, 14.0, 3.0).unwrap();
        assert_eq!(a.total_mass().to_bits(), b.total_mass().to_bits());
        assert!(a.apply(AppendRecord { object: 99, t: 1.0, v: 0.0 }).is_err());
    }

    #[test]
    fn columnar_roundtrip_is_bit_identical() {
        let mut s = set();
        s.append_segment(1, 9.5, -2.0).unwrap();
        let ct = s.to_columnar();
        assert_eq!(ct.num_objects(), s.num_objects());
        let back = TemporalSet::from_columnar(&ct).unwrap();
        assert_eq!(back.num_objects(), s.num_objects());
        for (a, b) in s.objects().iter().zip(back.objects()) {
            assert_eq!(a.id, b.id);
            for j in 0..a.curve.num_points() {
                let (at, av) = a.curve.point(j);
                let (bt, bv) = b.curve.point(j);
                assert_eq!(at.to_bits(), bt.to_bits());
                assert_eq!(av.to_bits(), bv.to_bits());
            }
        }
        // Stats recompute from identical bits → identical stats.
        assert_eq!(back.total_mass().to_bits(), s.total_mass().to_bits());
        assert_eq!(back.num_segments(), s.num_segments());
        assert!(back.has_negative());
    }

    #[test]
    fn negative_detection() {
        let c = PiecewiseLinear::from_points(&[(0.0, -1.0), (1.0, 1.0)]).unwrap();
        let s = TemporalSet::from_curves(vec![c]).unwrap();
        assert!(s.has_negative());
        // |g| mass: two triangles 0.25 each.
        assert!(approx_eq(s.total_mass(), 0.5, 1e-12));
        let mut s = s;
        s.append_segment(0, 2.0, -1.0).unwrap(); // crosses zero again
        assert!(approx_eq(s.total_mass(), 1.0, 1e-12));
    }
}
