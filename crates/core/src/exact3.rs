//! EXACT3 — one interval tree, two stabbing queries (paper §2, the best
//! exact method).
//!
//! Every segment `g_{i,ℓ}` contributes a data entry keyed by its own span
//! `I⁻_{i,ℓ} = [t_{i,ℓ−1}, t_{i,ℓ}]` with value `(g_{i,ℓ}, σ_i(I_{i,ℓ}))`
//! — the segment geometry plus the prefix sum *through* the segment. All
//! `N` entries live in a single external interval tree. Because each
//! object's intervals partition its domain, a stabbing query at `t`
//! returns **exactly one entry per alive object**, and
//!
//! ```text
//! cum_i(t) = σ_i(I_{i,ℓ}) − ∫_t^{t_{i,ℓ}} g_{i,ℓ}      (Eq. (2) rearranged)
//! σ_i(t1, t2) = cum_i(t2) − cum_i(t1)
//! ```
//!
//! so two stabbing queries — `O(log_B N + m/B)` IOs each — compute every
//! object's aggregate, and a size-`k` heap finishes the query. This is 2–3
//! orders of magnitude fewer IOs than EXACT1/EXACT2 at large `m` (paper
//! Figures 13–14).
//!
//! Objects whose domain does not cover a stab time contribute `0` (before
//! their start) or their total mass (after their end); per-object
//! `(start, end, total)` triples are kept in memory, exactly as EXACT1
//! keeps its `m` running sums in memory.
//!
//! Updates append the new entry to the interval tree's tail
//! (`O(1)` amortized writes) and the tree reports when the amortized
//! rebuild is due ([`Exact3::needs_rebuild`] / [`Exact3::rebuild`]).

use crate::agg::AggKind;
use crate::error::Result;
use crate::object::{ObjectId, TemporalSet};
use crate::topk::{check_interval, top_k_from_scores, RankMethod, TopK};
use crate::IndexConfig;
use chronorank_curve::Segment;
use chronorank_index::{ExternalSorter, IntervalBulkLoader, IntervalTree};
use chronorank_storage::{Env, IoStats, PagedFile, StoreConfig};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::RwLock;

/// Entry payload: `obj u32 | v0 f64 | v1 f64 | prefix f64` (the interval
/// key holds `t0` / `t1`).
const PAYLOAD_LEN: usize = 4 + 8 + 8 + 8;

/// External-sort record for the bulk build: `lo f64 | hi f64 | payload`.
const SORT_RECORD_LEN: usize = 16 + PAYLOAD_LEN;
/// Records the build sort buffers in memory before spilling a run.
const SORT_MEM_RECORDS: usize = 1 << 16;

fn encode_payload(obj: ObjectId, v0: f64, v1: f64, prefix: f64) -> Vec<u8> {
    let mut p = Vec::with_capacity(PAYLOAD_LEN);
    p.extend_from_slice(&obj.to_le_bytes());
    p.extend_from_slice(&v0.to_le_bytes());
    p.extend_from_slice(&v1.to_le_bytes());
    p.extend_from_slice(&prefix.to_le_bytes());
    p
}

fn decode_payload(p: &[u8]) -> (ObjectId, f64, f64, f64) {
    let obj = u32::from_le_bytes(p[0..4].try_into().expect("4"));
    let v0 = f64::from_le_bytes(p[4..12].try_into().expect("8"));
    let v1 = f64::from_le_bytes(p[12..20].try_into().expect("8"));
    let prefix = f64::from_le_bytes(p[20..28].try_into().expect("8"));
    (obj, v0, v1, prefix)
}

/// Per-object metadata kept in memory (the analogue of EXACT1's in-memory
/// running sums).
#[derive(Debug, Clone, Copy)]
struct ObjMeta {
    start: f64,
    end: f64,
    total: f64,
}

/// The EXACT3 index (see module docs).
/// `Send + Sync`: a built index is an immutable snapshot any number of
/// threads may query concurrently (the per-object metadata is behind an
/// `RwLock` that queries only read). Appends take `&self` but require
/// external exclusivity, matching the underlying [`IntervalTree`]'s
/// contract.
pub struct Exact3 {
    env: Env,
    store: StoreConfig,
    tree: IntervalTree,
    meta: RwLock<Vec<ObjMeta>>,
    /// Counter used to give rebuilt trees fresh file names.
    generation: AtomicU32,
}

impl Exact3 {
    /// Build from a temporal set.
    pub fn build(set: &TemporalSet, config: IndexConfig) -> Result<Self> {
        let env = Env::mem(config.store);
        Self::build_in(env, config.store, set)
    }

    /// Build using a caller-supplied storage environment.
    pub fn build_in(env: Env, store: StoreConfig, set: &TemporalSet) -> Result<Self> {
        let tree = Self::build_tree(&env, set, 0)?;
        let meta = set
            .objects()
            .iter()
            .map(|o| ObjMeta { start: o.curve.start(), end: o.curve.end(), total: o.curve.total() })
            .collect();
        Ok(Self { env, store, tree, meta: RwLock::new(meta), generation: AtomicU32::new(0) })
    }

    /// Build from an object stream without materializing the dataset (the
    /// paper-scale path): same sort + leaf-fill-1.0 bulk load as
    /// [`Exact3::build_in`], with the sort run length taken from an
    /// explicit byte budget and the per-object `(start, end, total)`
    /// triples collected inside the push loop (`24·m` bytes — the only
    /// `O(m)` state this method keeps, same as the in-memory build).
    pub fn build_streaming<I>(
        env: Env,
        store: StoreConfig,
        objects: I,
        sort_budget_bytes: u64,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = crate::object::TemporalObject>,
    {
        let scratch = env.create_file("exact3_sort_gen0")?;
        let key = |rec: &[u8]| f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let mut sorter =
            ExternalSorter::with_byte_budget(scratch, SORT_RECORD_LEN, sort_budget_bytes, key)?;
        let mut rec = [0u8; SORT_RECORD_LEN];
        let mut meta: Vec<ObjMeta> = Vec::new();
        for o in objects {
            let mut prefix = 0.0f64;
            for seg in o.curve.segments() {
                prefix += seg.integral_full();
                rec[..8].copy_from_slice(&seg.t0.to_le_bytes());
                rec[8..16].copy_from_slice(&seg.t1.to_le_bytes());
                rec[16..].copy_from_slice(&encode_payload(o.id, seg.v0, seg.v1, prefix));
                sorter.push(&rec)?;
            }
            meta.push(ObjMeta {
                start: o.curve.start(),
                end: o.curve.end(),
                total: o.curve.total(),
            });
        }
        let mut stream = sorter.finish()?;
        let file = env.create_file("exact3_tree_gen0")?;
        let mut loader = IntervalBulkLoader::new(file, PAYLOAD_LEN)?;
        while stream.next_into(&mut rec)? {
            let lo = f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let hi = f64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            loader.push(lo, hi, &rec[16..])?;
        }
        let tree = loader.finish()?;
        Ok(Self { env, store, tree, meta: RwLock::new(meta), generation: AtomicU32::new(0) })
    }

    /// Bottom-up bulk build: stream all `N` entries through an external
    /// sort on `lo` (`O((N/B) log_B N)` IOs, the paper's construction
    /// preamble) and feed the sorted stream straight into the interval
    /// tree's leaf-fill-1.0 bulk loader. Peak memory is the sort buffer
    /// (`SORT_MEM_RECORDS` records) plus one fence per leaf — never the
    /// full entry set.
    fn build_tree(env: &Env, set: &TemporalSet, generation: u32) -> Result<IntervalTree> {
        let scratch = env.create_file(&format!("exact3_sort_gen{generation}"))?;
        let key = |rec: &[u8]| f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let mut sorter = ExternalSorter::new(scratch, SORT_RECORD_LEN, SORT_MEM_RECORDS, key)?;
        let mut rec = [0u8; SORT_RECORD_LEN];
        for o in set.objects() {
            let mut prefix = 0.0f64;
            for seg in o.curve.segments() {
                prefix += seg.integral_full();
                rec[..8].copy_from_slice(&seg.t0.to_le_bytes());
                rec[8..16].copy_from_slice(&seg.t1.to_le_bytes());
                rec[16..].copy_from_slice(&encode_payload(o.id, seg.v0, seg.v1, prefix));
                sorter.push(&rec)?;
            }
        }
        let mut stream = sorter.finish()?;
        let file = env.create_file(&format!("exact3_tree_gen{generation}"))?;
        let mut loader = IntervalBulkLoader::new(file, PAYLOAD_LEN)?;
        while stream.next_into(&mut rec)? {
            let lo = f64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let hi = f64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            loader.push(lo, hi, &rec[16..])?;
        }
        Ok(loader.finish()?)
    }

    /// Cumulative integrals of **all** objects at time `t` with one
    /// stabbing query; `out[i] = cum_i(t)`.
    fn cumulative_all(&self, t: f64, out: &mut [f64]) -> Result<()> {
        let meta = self.meta.read().expect("meta lock");
        for (i, m) in meta.iter().enumerate() {
            out[i] = if t < m.start {
                0.0
            } else if t >= m.end {
                m.total
            } else {
                f64::NAN // must be filled by the stab below
            };
        }
        drop(meta);
        self.tree.stab(t, &mut |lo, hi, p| {
            let (obj, v0, v1, prefix) = decode_payload(p);
            let seg = Segment { t0: lo, v0, t1: hi, v1 };
            // Both intervals at a shared endpoint yield the same value, so
            // no dedup is needed (∫ identity, see module docs).
            out[obj as usize] = prefix - seg.integral_clipped(t, hi);
        })?;
        // Objects alive at t but not stabbed cannot happen: intervals tile
        // each object's domain. Guard against NaN leakage anyway.
        debug_assert!(out.iter().all(|v| !v.is_nan()), "stab missed an alive object");
        Ok(())
    }

    /// Instant top-k (`top-k(t)` of the prior work \[15\]) ranked by `g_i(t)`
    /// — a single stabbing query. Objects not alive at `t` are excluded.
    pub fn instant_top_k(&self, t: f64, k: usize) -> Result<TopK> {
        check_interval(t, t)?;
        let mut values: Vec<(ObjectId, f64)> = Vec::new();
        self.tree.stab(t, &mut |lo, hi, p| {
            let (obj, v0, v1, _) = decode_payload(p);
            let seg = Segment { t0: lo, v0, t1: hi, v1 };
            values.push((obj, seg.eval(t)));
        })?;
        // Shared-endpoint stabs return two entries per object with equal
        // values; dedup keeps the first.
        values.sort_by_key(|&(id, _)| id);
        values.dedup_by_key(|&mut (id, _)| id);
        Ok(top_k_from_scores(values.into_iter(), k))
    }

    /// Append a new segment for `obj`: one tail write + in-memory metadata
    /// update (`O(log_B N)` in the paper's accounting).
    pub fn append_segment(&self, obj: ObjectId, seg: Segment) -> Result<()> {
        let mut meta = self.meta.write().expect("meta lock");
        let m = meta.get_mut(obj as usize).ok_or(crate::CoreError::NoSuchObject(obj))?;
        let prefix = m.total + seg.integral_full();
        self.tree.append(seg.t0, seg.t1, &encode_payload(obj, seg.v0, seg.v1, prefix))?;
        m.total = prefix;
        m.end = seg.t1;
        Ok(())
    }

    /// True when enough appends accumulated that the amortized rebuild
    /// (paper §4) is due.
    pub fn needs_rebuild(&self) -> bool {
        self.tree.needs_rebuild()
    }

    /// Rebuild the interval tree from the (updated) set, folding the append
    /// tail into the static structure.
    pub fn rebuild(&mut self, set: &TemporalSet) -> Result<()> {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        self.generation.store(generation, Ordering::Relaxed);
        self.tree = Self::build_tree(&self.env, set, generation)?;
        *self.meta.write().expect("meta lock") = set
            .objects()
            .iter()
            .map(|o| ObjMeta { start: o.curve.start(), end: o.curve.end(), total: o.curve.total() })
            .collect();
        Ok(())
    }

    /// Number of indexed entries (static + tail).
    pub fn num_entries(&self) -> u64 {
        self.tree.len()
    }

    /// The store configuration this index was built with.
    pub fn store_config(&self) -> StoreConfig {
        self.store
    }

    /// The interval tree's backing file — what a generation image captures
    /// page-for-page. Call [`Exact3::flush`] first so the pages are clean.
    pub fn tree_file(&self) -> &PagedFile {
        self.tree.file()
    }

    /// Persist tree metadata and flush dirty pages to the device.
    pub fn flush(&self) -> Result<()> {
        Ok(self.tree.flush()?)
    }

    /// Serialize the in-memory side state (rebuild generation + per-object
    /// `(start, end, total)` triples) for a generation image. All floats
    /// cross as raw bits, so a reopened index rescored bit-identically.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let meta = self.meta.read().expect("meta lock");
        let mut out = Vec::with_capacity(8 + 24 * meta.len());
        out.extend_from_slice(&self.generation.load(Ordering::Relaxed).to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        for m in meta.iter() {
            out.extend_from_slice(&m.start.to_bits().to_le_bytes());
            out.extend_from_slice(&m.end.to_bits().to_le_bytes());
            out.extend_from_slice(&m.total.to_bits().to_le_bytes());
        }
        out
    }

    /// Reopen from a page-captured tree file plus [`Exact3::meta_bytes`]
    /// — no set scan, no sort, no rebuild.
    pub fn open_parts(env: Env, store: StoreConfig, file: PagedFile, bytes: &[u8]) -> Result<Self> {
        let corrupt = || crate::CoreError::BadQuery("corrupt EXACT3 generation metadata".into());
        if bytes.len() < 8 {
            return Err(corrupt());
        }
        let generation = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let m = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if bytes.len() != 8 + 24 * m {
            return Err(corrupt());
        }
        let f = |at: usize| {
            f64::from_bits(u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")))
        };
        let meta = (0..m)
            .map(|i| {
                let at = 8 + 24 * i;
                ObjMeta { start: f(at), end: f(at + 8), total: f(at + 16) }
            })
            .collect();
        let tree = IntervalTree::open(file)?;
        Ok(Self {
            env,
            store,
            tree,
            meta: RwLock::new(meta),
            generation: AtomicU32::new(generation),
        })
    }
}

impl RankMethod for Exact3 {
    fn name(&self) -> String {
        "EXACT3".into()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        let m = self.meta.read().expect("meta lock").len();
        let mut cum1 = vec![0.0f64; m];
        let mut cum2 = vec![0.0f64; m];
        self.cumulative_all(t1, &mut cum1)?;
        self.cumulative_all(t2, &mut cum2)?;
        let top = top_k_from_scores(
            cum1.iter().zip(cum2.iter()).enumerate().map(|(i, (&a, &b))| (i as ObjectId, b - a)),
            k,
        );
        Ok(match agg {
            AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
            _ => top,
        })
    }

    fn size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        self.tree.file().drop_cache()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_same_answer, small_set};

    #[test]
    fn matches_bruteforce_on_small_set() {
        let set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        assert_eq!(idx.num_entries(), set.num_segments());
        for &(a, b) in crate::test_support::INTERVALS {
            let want = set.top_k_bruteforce(a, b, 4);
            let got = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, &format!("EXACT3 [{a},{b}]"));
        }
    }

    #[test]
    fn stab_boundary_times_are_consistent() {
        // Query endpoints exactly on segment boundaries exercise the
        // two-entries-per-object stab case.
        let set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        for &(a, b) in &[(3.0, 9.0), (5.0, 13.0), (0.0, 20.0), (6.0, 6.0)] {
            let want = set.top_k_bruteforce(a, b, 5);
            let got = idx.top_k(a, b, 5, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, &format!("EXACT3 boundary [{a},{b}]"));
        }
    }

    #[test]
    fn instant_top_k_ranks_by_value() {
        let set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        // At t = 6.0: o1 peaks at 8, o9 = 0.5, o0 = 1, o3 = 3.125, o6 ≈ 0.97,
        // o7 ≈ 1.857, o8 = 2 (o2 not alive, o4 gone, o5 zero).
        let top = idx.instant_top_k(6.0, 3).unwrap();
        assert_eq!(top.ids(), vec![1, 3, 8]);
        let (id0, v0) = top.rank(0);
        assert_eq!(id0, 1);
        assert!((v0 - 8.0).abs() < 1e-9);
        // Instant queries at a vertex time.
        let top = idx.instant_top_k(15.0, 1).unwrap();
        assert_eq!(top.ids(), vec![2]); // o2 reaches 5 at t=15
    }

    #[test]
    fn update_then_query_and_rebuild() {
        let mut set = small_set();
        let mut idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        let end = set.object(1).unwrap().curve.end();
        let v_end = set.object(1).unwrap().curve.eval(end).unwrap();
        set.append_segment(1, end + 5.0, 20.0).unwrap();
        idx.append_segment(1, Segment::new(end, v_end, end + 5.0, 20.0)).unwrap();
        let want = set.top_k_bruteforce(end, end + 5.0, 2);
        let got = idx.top_k(end, end + 5.0, 2, AggKind::Sum).unwrap();
        assert_same_answer(&want, &got, "EXACT3 after append");
        // Force the amortized rebuild and re-check everything.
        idx.rebuild(&set).unwrap();
        for &(a, b) in crate::test_support::INTERVALS {
            let want = set.top_k_bruteforce(a, b, 4);
            let got = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, &format!("EXACT3 rebuilt [{a},{b}]"));
        }
        assert!(idx.append_segment(99, Segment::new(0.0, 0.0, 1.0, 1.0)).is_err());
    }

    #[test]
    fn avg_agg() {
        let set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        let sum = idx.top_k(2.0, 10.0, 3, AggKind::Sum).unwrap();
        let avg = idx.top_k(2.0, 10.0, 3, AggKind::Avg).unwrap();
        assert_eq!(sum.ids(), avg.ids());
        assert!((avg.rank(0).1 - sum.rank(0).1 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn many_appends_trigger_rebuild_flag() {
        let mut set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        assert!(!idx.needs_rebuild());
        let mut t = set.t_max();
        for i in 0..300 {
            let end = set.object(0).unwrap().curve.end();
            let v = set.object(0).unwrap().curve.eval(end).unwrap();
            t += 1.0;
            set.append_segment(0, t, 1.0 + (i % 5) as f64).unwrap();
            idx.append_segment(0, Segment::new(end, v, t, 1.0 + (i % 5) as f64)).unwrap();
        }
        assert!(idx.needs_rebuild());
    }
}
