//! Approximation-quality metrics (paper §5, "Setup").
//!
//! The evaluation reports two quality measures for every approximate
//! method:
//!
//! * **precision/recall** between the approximate answer `Ã` and the exact
//!   answer `A` — equal by construction since both have `k` members;
//! * the **approximation ratio** `σ̃_i(t1,t2) / σ_i(t1,t2)` averaged over
//!   the objects returned in `Ã`.

use crate::object::TemporalSet;
use crate::topk::TopK;

/// `|A ∩ Ã| / |A|`. With both answers of size `k`, precision = recall
/// (paper: "the precision and the recall will have the same denominator").
pub fn precision(exact: &TopK, approx: &TopK) -> f64 {
    if exact.is_empty() {
        return if approx.is_empty() { 1.0 } else { 0.0 };
    }
    let exact_ids: std::collections::HashSet<_> = exact.ids().into_iter().collect();
    let hits = approx.ids().iter().filter(|id| exact_ids.contains(id)).count();
    hits as f64 / exact.len() as f64
}

/// Statistics of per-object approximation ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioStats {
    /// Mean of `σ̃/σ` over returned objects with `σ ≠ 0`.
    pub mean: f64,
    /// Smallest observed ratio.
    pub min: f64,
    /// Largest observed ratio.
    pub max: f64,
    /// Objects skipped because the true score was (numerically) zero.
    pub skipped: usize,
}

/// Approximation ratios `σ̃_i / σ_i` for every object the approximate
/// answer returned, with `σ_i` recomputed exactly from the set.
pub fn approximation_ratio(set: &TemporalSet, approx: &TopK, t1: f64, t2: f64) -> RatioStats {
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut skipped = 0usize;
    let scale = set.total_mass().max(1.0);
    for &(id, approx_score) in approx.entries() {
        let truth = set.score(id, t1, t2).unwrap_or(0.0);
        if truth.abs() <= 1e-12 * scale {
            skipped += 1;
            continue;
        }
        let ratio = approx_score / truth;
        sum += ratio;
        n += 1;
        min = min.min(ratio);
        max = max.max(ratio);
    }
    if n == 0 {
        return RatioStats { mean: 1.0, min: 1.0, max: 1.0, skipped };
    }
    RatioStats { mean: sum / n as f64, min, max, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_set;
    use crate::topk::TopK;

    #[test]
    fn precision_counts_overlap() {
        let a = TopK::from_ranked(vec![(0, 3.0), (1, 2.0), (2, 1.0)]);
        let b = TopK::from_ranked(vec![(0, 3.0), (2, 2.0), (5, 1.0)]);
        assert!((precision(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision(&a, &a), 1.0);
        let empty = TopK::from_ranked(vec![]);
        assert_eq!(precision(&empty, &empty), 1.0);
        assert_eq!(precision(&empty, &a), 0.0);
    }

    #[test]
    fn perfect_scores_give_unit_ratio() {
        let set = small_set();
        let exact = set.top_k_bruteforce(2.0, 10.0, 3);
        let stats = approximation_ratio(&set, &exact, 2.0, 10.0);
        assert!((stats.mean - 1.0).abs() < 1e-12);
        assert!((stats.min - 1.0).abs() < 1e-12);
        assert!((stats.max - 1.0).abs() < 1e-12);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn inflated_scores_show_in_ratio() {
        let set = small_set();
        let exact = set.top_k_bruteforce(2.0, 10.0, 2);
        let doubled =
            TopK::from_ranked(exact.entries().iter().map(|&(id, s)| (id, 2.0 * s)).collect());
        let stats = approximation_ratio(&set, &doubled, 2.0, 10.0);
        assert!((stats.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_truth_scores_are_skipped() {
        let set = small_set();
        // Object 5 is the all-zero curve.
        let fake = TopK::from_ranked(vec![(5, 0.5)]);
        let stats = approximation_ratio(&set, &fake, 2.0, 10.0);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.mean, 1.0);
    }
}
