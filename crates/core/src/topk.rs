//! Top-k answers and the common ranking interface.

use crate::agg::AggKind;
use crate::error::Result;
use crate::object::ObjectId;
use chronorank_storage::IoStats;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An ordered top-k answer `A(k, t1, t2)`: `(object, score)` pairs in
/// descending score order (ties broken by ascending object id, so answers
/// are deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    entries: Vec<(ObjectId, f64)>,
}

impl TopK {
    /// Wrap pre-ranked entries (descending score; used by index internals).
    pub fn from_ranked(entries: Vec<(ObjectId, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].1 >= w[1].1));
        Self { entries }
    }

    /// Number of returned objects (≤ requested `k`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no objects were returned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `j`-th ranked object and score (0-based; the paper's `A(j)`).
    pub fn rank(&self, j: usize) -> (ObjectId, f64) {
        self.entries[j]
    }

    /// Ranked `(object, score)` pairs.
    pub fn entries(&self) -> &[(ObjectId, f64)] {
        &self.entries
    }

    /// Ranked object ids.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|&(id, _)| id).collect()
    }

    /// Ranked scores.
    pub fn scores(&self) -> Vec<f64> {
        self.entries.iter().map(|&(_, s)| s).collect()
    }

    /// Divide every score by `len` — converts `sum` answers to `avg`
    /// answers (identical ordering for positive-length intervals).
    pub(crate) fn into_avg(mut self, len: f64) -> Self {
        debug_assert!(len > 0.0);
        for e in &mut self.entries {
            e.1 /= len;
        }
        self
    }
}

/// Heap item ordered so the **worst** retained candidate is at the top of a
/// `BinaryHeap` (max-heap): lower score = greater, and among equal scores a
/// *larger* id = greater (so ties keep the smallest ids).
#[derive(PartialEq)]
pub(crate) struct WorstFirst(pub(crate) f64, pub(crate) ObjectId);

impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0).then(self.1.cmp(&other.1))
    }
}

/// Select the top `k` scores from an iterator with a size-`k` min-heap —
/// the `O(x log k)` priority-queue step every method in the paper ends
/// with. Deterministic: score ties are broken by smaller object id.
pub(crate) fn top_k_from_scores(scores: impl Iterator<Item = (ObjectId, f64)>, k: usize) -> TopK {
    if k == 0 {
        return TopK { entries: Vec::new() };
    }
    let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
    for (id, s) in scores {
        if heap.len() < k {
            heap.push(WorstFirst(s, id));
        } else if let Some(top) = heap.peek() {
            // Replace the current worst if strictly better (or same score
            // with smaller id).
            if WorstFirst(s, id) < *top {
                heap.pop();
                heap.push(WorstFirst(s, id));
            }
        }
    }
    let mut entries: Vec<(ObjectId, f64)> =
        heap.into_iter().map(|WorstFirst(s, id)| (id, s)).collect();
    entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    TopK { entries }
}

/// Push into a size-capped top-k heap (used by the QUERY1/QUERY2 builders
/// to maintain one top-`kmax` list per materialized interval).
pub(crate) fn capped_push(heap: &mut BinaryHeap<WorstFirst>, cap: usize, score: f64, id: ObjectId) {
    if cap == 0 {
        return;
    }
    if heap.len() < cap {
        heap.push(WorstFirst(score, id));
    } else if let Some(top) = heap.peek() {
        if WorstFirst(score, id) < *top {
            heap.pop();
            heap.push(WorstFirst(score, id));
        }
    }
}

/// Drain a capped heap into `(id, score)` pairs sorted by descending score
/// (ties: ascending id).
pub(crate) fn heap_into_desc(heap: BinaryHeap<WorstFirst>) -> Vec<(ObjectId, f64)> {
    let mut v: Vec<(ObjectId, f64)> = heap.into_iter().map(|WorstFirst(s, id)| (id, s)).collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// The interface every ranking method implements — exact
/// ([`crate::Exact1`], [`crate::Exact2`], [`crate::Exact3`]) and
/// approximate ([`crate::ApproxIndex`]).
pub trait RankMethod {
    /// Short method name as used in the paper ("EXACT3", "APPX2+", …).
    fn name(&self) -> String;

    /// Answer `top-k(t1, t2, agg)`.
    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK>;

    /// Index size in bytes on the storage device.
    fn size_bytes(&self) -> u64;

    /// Cumulative block IOs performed by this method's storage.
    fn io_stats(&self) -> IoStats;

    /// Reset the IO counters (e.g. before measuring one query).
    fn reset_io(&self);

    /// Flush and empty all caches so the next query runs cold.
    fn drop_caches(&self) -> Result<()>;
}

/// Validate a query interval, shared by all methods.
pub(crate) fn check_interval(t1: f64, t2: f64) -> Result<()> {
    if !t1.is_finite() || !t2.is_finite() {
        return Err(crate::CoreError::BadQuery(format!(
            "query interval must be finite, got [{t1}, {t2}]"
        )));
    }
    if t2 < t1 {
        return Err(crate::CoreError::BadQuery(format!(
            "query interval reversed: t2 = {t2} < t1 = {t1}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_top_k_with_ties_by_id() {
        let scores = vec![(0u32, 5.0), (1, 7.0), (2, 5.0), (3, 9.0), (4, 7.0)];
        let top = top_k_from_scores(scores.into_iter(), 3);
        assert_eq!(top.entries(), &[(3, 9.0), (1, 7.0), (4, 7.0)]);
        assert_eq!(top.rank(0), (3, 9.0));
        assert_eq!(top.ids(), vec![3, 1, 4]);
        assert_eq!(top.scores(), vec![9.0, 7.0, 7.0]);
    }

    #[test]
    fn tie_at_cutoff_prefers_smaller_id() {
        let scores = vec![(9u32, 1.0), (2, 1.0), (5, 1.0), (1, 1.0)];
        let top = top_k_from_scores(scores.into_iter(), 2);
        assert_eq!(top.ids(), vec![1, 2]);
    }

    #[test]
    fn k_larger_than_m_returns_all() {
        let scores = vec![(0u32, 1.0), (1, 2.0)];
        let top = top_k_from_scores(scores.into_iter(), 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top.ids(), vec![1, 0]);
    }

    #[test]
    fn k_zero_is_empty() {
        let top = top_k_from_scores(vec![(0u32, 1.0)].into_iter(), 0);
        assert!(top.is_empty());
    }

    #[test]
    fn into_avg_divides_scores() {
        let top = TopK::from_ranked(vec![(0, 10.0), (1, 5.0)]).into_avg(5.0);
        assert_eq!(top.scores(), vec![2.0, 1.0]);
    }

    #[test]
    fn check_interval_validates() {
        assert!(check_interval(0.0, 1.0).is_ok());
        assert!(check_interval(1.0, 1.0).is_ok());
        assert!(check_interval(2.0, 1.0).is_err());
        assert!(check_interval(f64::NAN, 1.0).is_err());
        assert!(check_interval(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn negative_scores_rank_correctly() {
        let scores = vec![(0u32, -5.0), (1, -1.0), (2, -3.0)];
        let top = top_k_from_scores(scores.into_iter(), 2);
        assert_eq!(top.ids(), vec![1, 2]);
    }
}
