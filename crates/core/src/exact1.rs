//! EXACT1 — the improved baseline (paper §2).
//!
//! All `N` segments from all objects are indexed in **one B+-tree** keyed by
//! the left endpoint of the segment. A query `top-k(t1, t2, sum)` seeks the
//! first segment that can overlap `t1` and scans rightward until `t2`,
//! maintaining `m` running sums updated with the trapezoid formula Eq. (1),
//! then selects the top `k` with a size-`k` priority queue.
//!
//! Costs (paper Fig. 3): index `O(N/B)` blocks, construction
//! `O((N/B) log_B N)` IOs (external sort + bulk load), query
//! `O(log_B N + Σ_i q_i/B)` IOs where `q_i` counts `o_i`'s segments
//! overlapping the query window — `O(N/B)` in the worst case, which is
//! exactly the non-scalability the paper's Figure 16 shows.
//!
//! One honest deviation (DESIGN.md §5): a left-endpoint B+-tree alone cannot
//! find the segments *straddling* `t1` in `O(log_B N)` IOs when segment
//! spans are unbounded, so the scan starts at
//! `lower_bound(t1 − max_segment_duration)`; Eq. (1) contributes zero for
//! the non-overlapping prefix, preserving exactness.

use crate::agg::AggKind;
use crate::error::Result;
use crate::object::{ObjectId, TemporalSet};
use crate::topk::{check_interval, top_k_from_scores, RankMethod, TopK};
use crate::IndexConfig;
use chronorank_curve::Segment;
use chronorank_index::{BPlusTree, ExternalSorter};
use chronorank_storage::{Env, IoStats, PagedFile};
use std::sync::atomic::{AtomicU64, Ordering};

/// Segment record payload: `obj u32 | v0 f64 | t1 f64 | v1 f64`
/// (the key holds `t0`).
const PAYLOAD_LEN: usize = 4 + 8 + 8 + 8;
/// Sort record: key prefix + payload.
const RECORD_LEN: usize = 8 + PAYLOAD_LEN;

fn encode_payload(out: &mut [u8], obj: ObjectId, s: Segment) {
    out[0..4].copy_from_slice(&obj.to_le_bytes());
    out[4..12].copy_from_slice(&s.v0.to_le_bytes());
    out[12..20].copy_from_slice(&s.t1.to_le_bytes());
    out[20..28].copy_from_slice(&s.v1.to_le_bytes());
}

fn decode_payload(key: f64, p: &[u8]) -> (ObjectId, Segment) {
    let obj = u32::from_le_bytes(p[0..4].try_into().expect("4"));
    let v0 = f64::from_le_bytes(p[4..12].try_into().expect("8"));
    let t1 = f64::from_le_bytes(p[12..20].try_into().expect("8"));
    let v1 = f64::from_le_bytes(p[20..28].try_into().expect("8"));
    (obj, Segment { t0: key, v0, t1, v1 })
}

/// The EXACT1 index (see module docs).
pub struct Exact1 {
    env: Env,
    tree: BPlusTree,
    num_objects: usize,
    /// `f64` bits in a relaxed atomic: read by every query, raised by
    /// appends (which require external exclusivity, like the tree's).
    max_segment_duration: AtomicU64,
}

impl Exact1 {
    /// Build from a temporal set: external-sort all `N` segments by left
    /// endpoint, then bulk-load the B+-tree.
    pub fn build(set: &TemporalSet, config: IndexConfig) -> Result<Self> {
        let env = Env::mem(config.store);
        Self::build_in(env, set)
    }

    /// Build using a caller-supplied storage environment.
    pub fn build_in(env: Env, set: &TemporalSet) -> Result<Self> {
        let sort_file = env.create_file("exact1_sort")?;
        let mut sorter = ExternalSorter::new(sort_file, RECORD_LEN, 1 << 16, |rec| {
            f64::from_le_bytes(rec[..8].try_into().expect("8"))
        })?;
        let mut rec = [0u8; RECORD_LEN];
        for o in set.objects() {
            for seg in o.curve.segments() {
                rec[..8].copy_from_slice(&seg.t0.to_le_bytes());
                encode_payload(&mut rec[8..], o.id, seg);
                sorter.push(&rec)?;
            }
        }
        let mut stream = sorter.finish()?;
        let mut loader =
            chronorank_index::BPlusTree::bulk_loader(env.create_file("exact1_tree")?, PAYLOAD_LEN)?;
        while stream.next_into(&mut rec)? {
            let key = f64::from_le_bytes(rec[..8].try_into().expect("8"));
            loader.push(key, &rec[8..])?;
        }
        let tree = loader.finish()?;
        Ok(Self {
            env,
            tree,
            num_objects: set.num_objects(),
            max_segment_duration: AtomicU64::new(set.max_segment_duration().to_bits()),
        })
    }

    /// Build from an object stream without ever materializing the dataset
    /// (the paper-scale path). Identical sort + bulk load to
    /// [`Exact1::build_in`], but the external sorter's run length is derived
    /// from an explicit byte budget and `m` / `Δmax` are accumulated inside
    /// the push loop instead of read off a [`TemporalSet`].
    pub fn build_streaming<I>(env: Env, objects: I, sort_budget_bytes: u64) -> Result<Self>
    where
        I: IntoIterator<Item = crate::object::TemporalObject>,
    {
        let sort_file = env.create_file("exact1_sort")?;
        let mut sorter =
            ExternalSorter::with_byte_budget(sort_file, RECORD_LEN, sort_budget_bytes, |rec| {
                f64::from_le_bytes(rec[..8].try_into().expect("8"))
            })?;
        let mut rec = [0u8; RECORD_LEN];
        let mut num_objects = 0usize;
        let mut max_dur = 0.0f64;
        for o in objects {
            num_objects += 1;
            for seg in o.curve.segments() {
                max_dur = max_dur.max(seg.duration());
                rec[..8].copy_from_slice(&seg.t0.to_le_bytes());
                encode_payload(&mut rec[8..], o.id, seg);
                sorter.push(&rec)?;
            }
        }
        let mut stream = sorter.finish()?;
        let mut loader =
            chronorank_index::BPlusTree::bulk_loader(env.create_file("exact1_tree")?, PAYLOAD_LEN)?;
        while stream.next_into(&mut rec)? {
            let key = f64::from_le_bytes(rec[..8].try_into().expect("8"));
            loader.push(key, &rec[8..])?;
        }
        let tree = loader.finish()?;
        Ok(Self { env, tree, num_objects, max_segment_duration: AtomicU64::new(max_dur.to_bits()) })
    }

    /// Append a new segment for `obj` (the paper's §4 update:
    /// `O(log_B N)` IOs). The caller keeps the [`TemporalSet`] in sync via
    /// [`TemporalSet::append_segment`].
    pub fn append_segment(&self, obj: ObjectId, seg: Segment) -> Result<()> {
        let mut p = [0u8; PAYLOAD_LEN];
        encode_payload(&mut p, obj, seg);
        self.tree.insert(seg.t0, &p)?;
        if seg.duration() > f64::from_bits(self.max_segment_duration.load(Ordering::Relaxed)) {
            self.max_segment_duration.store(seg.duration().to_bits(), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Number of indexed segments.
    pub fn num_segments(&self) -> u64 {
        self.tree.len()
    }

    /// The B+-tree's backing file — what a generation image captures
    /// page-for-page. Call [`Exact1::flush`] first so the pages are clean.
    pub fn tree_file(&self) -> &PagedFile {
        self.tree.file()
    }

    /// Persist tree metadata and flush dirty pages to the device.
    pub fn flush(&self) -> Result<()> {
        Ok(self.tree.flush()?)
    }

    /// Serialize the in-memory side state (`m` + the max segment duration
    /// as exact bits) for a generation image.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.num_objects as u64).to_le_bytes());
        out.extend_from_slice(&self.max_segment_duration.load(Ordering::Relaxed).to_le_bytes());
        out
    }

    /// Reopen from a page-captured tree file plus [`Exact1::meta_bytes`]
    /// — no set scan, no sort, no rebuild.
    pub fn open_parts(env: Env, file: PagedFile, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != 16 {
            return Err(crate::CoreError::BadQuery("corrupt EXACT1 generation metadata".into()));
        }
        let num_objects = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let max_dur = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let tree = BPlusTree::open(file)?;
        Ok(Self { env, tree, num_objects, max_segment_duration: AtomicU64::new(max_dur) })
    }
}

impl RankMethod for Exact1 {
    fn name(&self) -> String {
        "EXACT1".into()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        let mut sums = vec![0.0f64; self.num_objects];
        // Segments overlapping [t1, t2] have t0 < t2 and t0 ≥ t1 − Δmax.
        let start = t1 - f64::from_bits(self.max_segment_duration.load(Ordering::Relaxed));
        let mut cur = self.tree.seek(start)?;
        while cur.valid() {
            let key = cur.key();
            if key >= t2 {
                break;
            }
            let (obj, seg) = decode_payload(key, cur.payload());
            sums[obj as usize] += seg.integral_clipped(t1, t2);
            cur.advance()?;
        }
        let top = top_k_from_scores(sums.iter().enumerate().map(|(i, &s)| (i as ObjectId, s)), k);
        Ok(match agg {
            AggKind::Sum => top,
            AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
            AggKind::Avg => top,
        })
    }

    fn size_bytes(&self) -> u64 {
        // The sort scratch is construction-only; the index is the tree.
        self.tree.size_bytes()
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        self.tree.file().drop_cache()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_same_answer, small_set};

    #[test]
    fn matches_bruteforce_on_small_set() {
        let set = small_set();
        let idx = Exact1::build(&set, IndexConfig::default()).unwrap();
        assert_eq!(idx.num_segments(), set.num_segments());
        for &(a, b) in crate::test_support::INTERVALS {
            let want = set.top_k_bruteforce(a, b, 3);
            let got = idx.top_k(a, b, 3, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, &format!("EXACT1 [{a},{b}]"));
        }
    }

    #[test]
    fn avg_divides_scores() {
        let set = small_set();
        let idx = Exact1::build(&set, IndexConfig::default()).unwrap();
        let sum = idx.top_k(1.0, 5.0, 2, AggKind::Sum).unwrap();
        let avg = idx.top_k(1.0, 5.0, 2, AggKind::Avg).unwrap();
        assert_eq!(sum.ids(), avg.ids());
        for (s, a) in sum.scores().iter().zip(avg.scores()) {
            assert!((s / 4.0 - a).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_intervals() {
        let set = small_set();
        let idx = Exact1::build(&set, IndexConfig::default()).unwrap();
        assert!(idx.top_k(5.0, 1.0, 3, AggKind::Sum).is_err());
        assert!(idx.top_k(f64::NAN, 1.0, 3, AggKind::Sum).is_err());
    }

    #[test]
    fn update_then_query_sees_new_segment() {
        let mut set = small_set();
        let idx = Exact1::build(&set, IndexConfig::default()).unwrap();
        // Extend object 0 far to the right with a tall segment.
        let end = set.object(0).unwrap().curve.end();
        let v_end = set.object(0).unwrap().curve.eval(end).unwrap();
        set.append_segment(0, end + 10.0, 100.0).unwrap();
        idx.append_segment(0, Segment::new(end, v_end, end + 10.0, 100.0)).unwrap();
        let want = set.top_k_bruteforce(end, end + 10.0, 1);
        let got = idx.top_k(end, end + 10.0, 1, AggKind::Sum).unwrap();
        assert_same_answer(&want, &got, "EXACT1 after update");
        assert_eq!(got.ids(), vec![0]);
    }

    #[test]
    fn query_outside_domain_returns_zero_scores() {
        let set = small_set();
        let idx = Exact1::build(&set, IndexConfig::default()).unwrap();
        let got = idx.top_k(1e9, 2e9, 2, AggKind::Sum).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.scores().iter().all(|&s| s == 0.0));
    }
}
