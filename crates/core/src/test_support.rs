//! Shared fixtures for core unit tests: a small deterministic temporal set
//! plus answer-comparison helpers that tolerate floating-point score noise
//! and permutations among exactly-tied ranks.

use crate::object::TemporalSet;
use crate::topk::TopK;
use chronorank_curve::PiecewiseLinear;

/// Query intervals exercised by every method's correctness test.
pub const INTERVALS: &[(f64, f64)] = &[
    (0.0, 20.0),
    (1.0, 5.0),
    (4.0, 8.0),
    (7.5, 12.5),
    (0.0, 0.5),
    (19.0, 25.0),
    (-5.0, 2.0),
    (3.0, 3.0),
    (10.0, 10.5),
];

/// Ten deterministic, intentionally awkward objects: unaligned domains,
/// differing segment counts, flats, spikes, and one all-zero curve.
pub fn small_set() -> TemporalSet {
    let curves = vec![
        // o0: constant 1 over [0, 20]
        PiecewiseLinear::from_points(&[(0.0, 1.0), (20.0, 1.0)]).unwrap(),
        // o1: triangle peaking at t=6
        PiecewiseLinear::from_points(&[(2.0, 0.0), (6.0, 8.0), (10.0, 0.0)]).unwrap(),
        // o2: late riser
        PiecewiseLinear::from_points(&[(10.0, 0.0), (15.0, 5.0), (20.0, 5.0)]).unwrap(),
        // o3: sawtooth
        PiecewiseLinear::from_points(&[
            (0.0, 2.0),
            (3.0, 0.5),
            (5.0, 4.0),
            (9.0, 0.5),
            (13.0, 4.0),
            (18.0, 1.0),
        ])
        .unwrap(),
        // o4: short early spike
        PiecewiseLinear::from_points(&[(0.5, 0.0), (1.0, 10.0), (1.5, 0.0)]).unwrap(),
        // o5: all zero
        PiecewiseLinear::from_points(&[(0.0, 0.0), (20.0, 0.0)]).unwrap(),
        // o6: gentle slope over the whole domain
        PiecewiseLinear::from_points(&[(0.0, 0.1), (20.0, 3.0)]).unwrap(),
        // o7: two humps, many segments
        PiecewiseLinear::from_points(&[
            (1.0, 0.0),
            (2.0, 3.0),
            (3.0, 0.2),
            (4.0, 0.2),
            (11.0, 6.0),
            (12.0, 0.0),
            (16.0, 0.0),
        ])
        .unwrap(),
        // o8: constant 2 on a sub-domain
        PiecewiseLinear::from_points(&[(5.0, 2.0), (12.0, 2.0)]).unwrap(),
        // o9: long flat then a late spike
        PiecewiseLinear::from_points(&[(0.0, 0.5), (17.0, 0.5), (18.0, 9.0), (19.0, 0.5)]).unwrap(),
    ];
    TemporalSet::from_curves(curves).unwrap()
}

/// Assert two top-k answers agree: same scores rank-by-rank (within slack)
/// and same ids wherever scores are not tied.
pub fn assert_same_answer(want: &TopK, got: &TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: answer lengths differ");
    for j in 0..want.len() {
        let (wid, ws) = want.rank(j);
        let (gid, gs) = got.rank(j);
        let scale = 1.0_f64.max(ws.abs());
        assert!(
            (ws - gs).abs() <= 1e-7 * scale,
            "{ctx}: rank {j} score mismatch: want {ws} ({wid}), got {gs} ({gid})"
        );
        // Ids must match unless the adjacent scores tie (permutations among
        // equal scores are legal).
        if wid != gid {
            let tied_in_want =
                want.entries().iter().any(|&(id, s)| id == gid && (s - ws).abs() <= 1e-7 * scale);
            assert!(
                tied_in_want,
                "{ctx}: rank {j} id mismatch without a tie: want {wid} ({ws}), got {gid} ({gs})"
            );
        }
    }
}
