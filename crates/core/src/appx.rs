//! The combined approximate methods (paper §3.3): APPX1-B, APPX2-B, APPX1,
//! APPX2, and APPX2+.
//!
//! A variant is a choice of breakpoint construction × query structure
//! (Figure 7's grid), plus the optional `+` exact re-scoring:
//!
//! | Variant | Breakpoints | Query | Guarantee |
//! |---------|-------------|-------|-----------|
//! | APPX1-B | B1 | QUERY1 | `(ε, 1)` |
//! | APPX2-B | B1 | QUERY2 | `(ε, 2 log r)` |
//! | APPX1   | B2 | QUERY1 | `(ε, 1)`, much smaller ε at equal r |
//! | APPX2   | B2 | QUERY2 | `(ε, 2 log r)`, 〃 |
//! | APPX2+  | B2 | QUERY2 + EXACT2 re-scoring | near-exact in practice |
//!
//! Updates follow the paper's §4 amortized policy: the structures are
//! built for a fixed threshold `τ = εM`; when the dataset's mass doubles,
//! [`ApproxIndex::maybe_rebuild`] rebuilds everything (amortizing to the
//! stated per-segment update bounds).

use crate::agg::AggKind;
use crate::breakpoints::{B2Construction, Breakpoints, BreakpointsKind};
use crate::error::{CoreError, Result};
use crate::exact2::Exact2;
use crate::object::TemporalSet;
use crate::query1::Query1Index;
use crate::query2::Query2Index;
use crate::topk::{check_interval, top_k_from_scores, RankMethod, TopK};
use chronorank_storage::{Env, IoStats, StoreConfig};

/// Which query structure a variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Nested B+-trees over all breakpoint pairs (QUERY1).
    Q1,
    /// Dyadic-interval lists (QUERY2).
    Q2,
}

/// One of the paper's five named approximate methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxVariant {
    /// Breakpoint family.
    pub breakpoints: BreakpointsKind,
    /// Query structure.
    pub query: QueryKind,
    /// Exact candidate re-scoring (APPX2+).
    pub plus: bool,
}

impl ApproxVariant {
    /// BREAKPOINTS1 + QUERY1 — the basic `(ε,1)` method.
    pub const APPX1_B: Self =
        Self { breakpoints: BreakpointsKind::B1, query: QueryKind::Q1, plus: false };
    /// BREAKPOINTS1 + QUERY2 — the basic `(ε, 2 log r)` method.
    pub const APPX2_B: Self =
        Self { breakpoints: BreakpointsKind::B1, query: QueryKind::Q2, plus: false };
    /// BREAKPOINTS2 + QUERY1 — the improved `(ε,1)` method.
    pub const APPX1: Self =
        Self { breakpoints: BreakpointsKind::B2, query: QueryKind::Q1, plus: false };
    /// BREAKPOINTS2 + QUERY2 — the improved `(ε, 2 log r)` method.
    pub const APPX2: Self =
        Self { breakpoints: BreakpointsKind::B2, query: QueryKind::Q2, plus: false };
    /// APPX2 + exact re-scoring of the candidate set against EXACT2.
    pub const APPX2_PLUS: Self =
        Self { breakpoints: BreakpointsKind::B2, query: QueryKind::Q2, plus: true };

    /// All five variants in the paper's presentation order.
    pub const ALL: [Self; 5] =
        [Self::APPX1_B, Self::APPX2_B, Self::APPX1, Self::APPX2, Self::APPX2_PLUS];

    /// The paper's name for this variant.
    pub fn name(&self) -> &'static str {
        match (self.breakpoints, self.query, self.plus) {
            (BreakpointsKind::B1, QueryKind::Q1, false) => "APPX1-B",
            (BreakpointsKind::B1, QueryKind::Q2, false) => "APPX2-B",
            (BreakpointsKind::B2, QueryKind::Q1, false) => "APPX1",
            (BreakpointsKind::B2, QueryKind::Q2, false) => "APPX2",
            (BreakpointsKind::B2, QueryKind::Q2, true) => "APPX2+",
            (BreakpointsKind::B1, QueryKind::Q1, true) => "APPX1-B+",
            (BreakpointsKind::B1, QueryKind::Q2, true) => "APPX2-B+",
            (BreakpointsKind::B2, QueryKind::Q1, true) => "APPX1+",
        }
    }
}

/// Parameters for building an [`ApproxIndex`].
#[derive(Debug, Clone, Copy)]
pub struct ApproxConfig {
    /// Breakpoint budget `r` (the paper's experiments fix `r`, defaulting
    /// to 500 at full scale; scaled default here).
    pub r: usize,
    /// Explicit `ε` — overrides `r` when set.
    pub eps: Option<f64>,
    /// Largest `k` the index will answer (paper default 200).
    pub kmax: usize,
    /// Which BREAKPOINTS2 construction to use (when applicable).
    pub b2: B2Construction,
    /// Storage settings.
    pub store: StoreConfig,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        Self {
            r: 128,
            eps: None,
            kmax: 64,
            b2: B2Construction::Efficient,
            store: StoreConfig::default(),
        }
    }
}

/// A built approximate index: breakpoints + query structure (+ optional
/// EXACT2 re-scorer). See module docs for the variant grid.
pub struct ApproxIndex {
    variant: ApproxVariant,
    config: ApproxConfig,
    env: Env,
    breakpoints: Breakpoints,
    q1: Option<Query1Index>,
    q2: Option<Query2Index>,
    rescorer: Option<Exact2>,
    /// `M` at build time: the §4 policy rebuilds when the live mass
    /// doubles.
    built_mass: f64,
}

impl ApproxIndex {
    /// Build the chosen variant over `set`.
    pub fn build(set: &TemporalSet, variant: ApproxVariant, config: ApproxConfig) -> Result<Self> {
        let env = Env::mem(config.store);
        Self::build_in(env, set, variant, config)
    }

    /// Build in a caller-supplied environment (all files share its IO
    /// counter).
    pub fn build_in(
        env: Env,
        set: &TemporalSet,
        variant: ApproxVariant,
        config: ApproxConfig,
    ) -> Result<Self> {
        let breakpoints = match (variant.breakpoints, config.eps) {
            (BreakpointsKind::B1, Some(eps)) => Breakpoints::b1_with_eps(set, eps)?,
            (BreakpointsKind::B1, None) => Breakpoints::b1_with_count(set, config.r)?,
            (BreakpointsKind::B2, Some(eps)) => Breakpoints::b2_with_eps(set, eps, config.b2)?,
            (BreakpointsKind::B2, None) => Breakpoints::b2_with_count(set, config.r, config.b2)?,
        };
        Self::build_with_breakpoints(env, set, variant, config, breakpoints)
    }

    /// Build with precomputed breakpoints (lets the bench harness reuse one
    /// breakpoint set across several variants, as the paper does when
    /// comparing at equal `r`).
    pub fn build_with_breakpoints(
        env: Env,
        set: &TemporalSet,
        variant: ApproxVariant,
        config: ApproxConfig,
        breakpoints: Breakpoints,
    ) -> Result<Self> {
        let (q1, q2) = match variant.query {
            QueryKind::Q1 => (
                Some(Query1Index::build(
                    env_clone_counter(&env, "q1", config.store)?,
                    set,
                    breakpoints.clone(),
                    config.kmax,
                )?),
                None,
            ),
            QueryKind::Q2 => (
                None,
                Some(Query2Index::build(
                    env_clone_counter(&env, "q2", config.store)?,
                    set,
                    breakpoints.clone(),
                    config.kmax,
                )?),
            ),
        };
        let rescorer = if variant.plus {
            Some(Exact2::build_in(env_clone_counter(&env, "e2", config.store)?, set)?)
        } else {
            None
        };
        Ok(Self {
            variant,
            config,
            env,
            breakpoints,
            q1,
            q2,
            rescorer,
            built_mass: set.total_mass(),
        })
    }

    /// Assemble an approximate index from a precomputed (typically
    /// streamed, see [`crate::b2_streaming`]) breakpoint set plus a fresh
    /// object stream for the query-structure fill — the paper-scale path:
    /// no [`TemporalSet`] ever materializes. `plus` variants are rejected;
    /// the EXACT2 re-scoring forest has no streaming bulk path.
    pub fn build_streaming<I>(
        env: Env,
        objects: I,
        variant: ApproxVariant,
        config: ApproxConfig,
        breakpoints: Breakpoints,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = crate::object::TemporalObject>,
    {
        if variant.plus {
            return Err(CoreError::BadQuery(
                "APPX2+ needs the EXACT2 forest, which has no streaming build".into(),
            ));
        }
        let built_mass = breakpoints.mass();
        let (q1, q2) = match variant.query {
            QueryKind::Q1 => (
                Some(Query1Index::build_streaming(
                    env_clone_counter(&env, "q1", config.store)?,
                    objects,
                    breakpoints.clone(),
                    config.kmax,
                )?),
                None,
            ),
            QueryKind::Q2 => (
                None,
                Some(Query2Index::build_streaming(
                    env_clone_counter(&env, "q2", config.store)?,
                    objects,
                    breakpoints.clone(),
                    config.kmax,
                )?),
            ),
        };
        Ok(Self { variant, config, env, breakpoints, q1, q2, rescorer: None, built_mass })
    }

    /// The variant built.
    pub fn variant(&self) -> ApproxVariant {
        self.variant
    }

    /// The breakpoints in use.
    pub fn breakpoints(&self) -> &Breakpoints {
        &self.breakpoints
    }

    /// Maximum `k` answerable.
    pub fn kmax(&self) -> usize {
        self.config.kmax
    }

    /// The paper's §4 amortized update policy: breakpoints were built for a
    /// fixed threshold `τ = εM`; once the live mass reaches `2M`, rebuild
    /// everything. Returns whether a rebuild happened.
    pub fn maybe_rebuild(&mut self, set: &TemporalSet) -> Result<bool> {
        if set.total_mass() < 2.0 * self.built_mass {
            return Ok(false);
        }
        let rebuilt = Self::build(set, self.variant, self.config)?;
        *self = rebuilt;
        Ok(true)
    }
}

/// Each sub-structure gets its own namespace but must share the master
/// environment's IO counter; `Env` files already share counters within one
/// env, so sub-envs reuse the same counter by construction through a child
/// env sharing the parent counter.
fn env_clone_counter(parent: &Env, _tag: &str, _store: StoreConfig) -> Result<Env> {
    Ok(parent.child())
}

impl RankMethod for ApproxIndex {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        if k > self.config.kmax {
            return Err(CoreError::BadQuery(format!(
                "k = {k} exceeds kmax = {}",
                self.config.kmax
            )));
        }
        if let Some(rescorer) = &self.rescorer {
            // APPX2+: candidates from QUERY2, exact scores from EXACT2.
            let q2 = self.q2.as_ref().expect("plus variants use QUERY2");
            let cand = match q2.candidates(t1, t2, k)? {
                Some(c) => c,
                None => return Ok(TopK::from_ranked(Vec::new())),
            };
            let mut scored = Vec::with_capacity(cand.len());
            for (&id, _) in cand.iter() {
                scored.push((id, rescorer.score_one(id, t1, t2)?));
            }
            let top = top_k_from_scores(scored.into_iter(), k);
            return Ok(match agg {
                AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
                _ => top,
            });
        }
        match self.variant.query {
            QueryKind::Q1 => self.q1.as_ref().expect("built").top_k(t1, t2, k, agg),
            QueryKind::Q2 => self.q2.as_ref().expect("built").top_k(t1, t2, k, agg),
        }
    }

    fn size_bytes(&self) -> u64 {
        let mut s = 0;
        if let Some(q1) = &self.q1 {
            s += q1.size_bytes();
        }
        if let Some(q2) = &self.q2 {
            s += q2.size_bytes();
        }
        if let Some(r) = &self.rescorer {
            s += r.size_bytes();
        }
        s
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        if let Some(q1) = &self.q1 {
            q1.drop_caches()?;
        }
        if let Some(q2) = &self.q2 {
            q2.drop_caches()?;
        }
        if let Some(r) = &self.rescorer {
            r.drop_caches()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::test_support::small_set;

    fn cfg(r: usize, kmax: usize) -> ApproxConfig {
        ApproxConfig { r, kmax, ..Default::default() }
    }

    #[test]
    fn all_variants_build_and_answer() {
        let set = small_set();
        for v in ApproxVariant::ALL {
            let idx = ApproxIndex::build(&set, v, cfg(20, 6)).unwrap();
            assert_eq!(idx.name(), v.name());
            let top = idx.top_k(2.0, 18.0, 4, AggKind::Sum).unwrap();
            assert_eq!(top.len(), 4, "{}", v.name());
            assert!(idx.size_bytes() > 0);
        }
    }

    #[test]
    fn appx1_is_eps1_accurate() {
        let set = small_set();
        let idx = ApproxIndex::build(&set, ApproxVariant::APPX1, cfg(24, 6)).unwrap();
        let em = idx.breakpoints().eps() * idx.breakpoints().mass();
        for &(a, b) in &[(1.0, 9.0), (0.0, 20.0), (3.0, 17.0)] {
            let approx = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            let exact = set.top_k_bruteforce(a, b, 4);
            for j in 0..4 {
                let d = (approx.rank(j).1 - exact.rank(j).1).abs();
                assert!(d <= em + 1e-9, "[{a},{b}] rank {j}: |Δ| = {d} > εM = {em}");
            }
        }
    }

    #[test]
    fn appx2_plus_matches_exact_ranking_in_practice() {
        let set = small_set();
        let idx = ApproxIndex::build(&set, ApproxVariant::APPX2_PLUS, cfg(24, 6)).unwrap();
        for &(a, b) in &[(1.0, 9.0), (0.0, 20.0), (4.0, 16.0)] {
            let approx = idx.top_k(a, b, 3, AggKind::Sum).unwrap();
            let exact = set.top_k_bruteforce(a, b, 3);
            let pr = metrics::precision(&exact, &approx);
            assert!(pr >= 2.0 / 3.0, "[{a},{b}] precision {pr}");
            // Scores of returned candidates are *exact*.
            for &(id, s) in approx.entries() {
                let truth = set.score(id, a, b).unwrap();
                assert!((s - truth).abs() <= 1e-9 * (1.0 + truth.abs()));
            }
        }
    }

    #[test]
    fn variants_share_one_io_counter() {
        let set = small_set();
        let idx = ApproxIndex::build(&set, ApproxVariant::APPX2_PLUS, cfg(16, 4)).unwrap();
        idx.drop_caches().unwrap();
        idx.reset_io();
        idx.top_k(2.0, 18.0, 4, AggKind::Sum).unwrap();
        let io = idx.io_stats();
        assert!(io.reads > 0, "query IOs must be visible on the shared counter");
    }

    #[test]
    fn rebuild_policy_triggers_on_mass_doubling() {
        let mut set = small_set();
        let mut idx = ApproxIndex::build(&set, ApproxVariant::APPX2, cfg(16, 4)).unwrap();
        assert!(!idx.maybe_rebuild(&set).unwrap());
        // Append enough mass to double M.
        let need = set.total_mass();
        let end = set.object(0).unwrap().curve.end();
        let dt = 10.0;
        let v = 2.0 * need / dt; // triangle-ish mass ≥ need
        set.append_segment(0, end + dt, v).unwrap();
        assert!(idx.maybe_rebuild(&set).unwrap(), "mass doubled, must rebuild");
        let top = idx.top_k(end, end + dt, 1, AggKind::Sum).unwrap();
        assert_eq!(top.ids(), vec![0]);
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(ApproxVariant::APPX1_B.name(), "APPX1-B");
        assert_eq!(ApproxVariant::APPX2_B.name(), "APPX2-B");
        assert_eq!(ApproxVariant::APPX1.name(), "APPX1");
        assert_eq!(ApproxVariant::APPX2.name(), "APPX2");
        assert_eq!(ApproxVariant::APPX2_PLUS.name(), "APPX2+");
    }
}
