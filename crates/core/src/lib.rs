//! # chronorank-core — ranking large temporal data
//!
//! The primary contribution of *"Ranking Large Temporal Data"* (Jestes,
//! Phillips, Li, Tang — PVLDB 5(11), 2012), reimplemented in Rust.
//!
//! Given a temporal database of `m` objects, the `i`-th represented by a
//! piecewise-linear function `g_i` with `n_i` segments (`N = Σ n_i` total),
//! the **aggregate top-k query** `top-k(t1, t2, σ)` returns the `k` objects
//! with the largest aggregate score `σ_i(t1, t2)`; for `σ = sum` that is
//! `∫_{t1}^{t2} g_i(t) dt`.
//!
//! ## Methods (paper section in parentheses)
//!
//! | Method | Type | Guarantee | Query IOs |
//! |--------|------|-----------|-----------|
//! | [`Exact1`] (§2) | B+-tree over all segments | exact | `O(log_B N + Σ q_i/B)` |
//! | [`Exact2`] (§2) | forest of `m` prefix-sum B+-trees | exact | `O(Σ log_B n_i)` |
//! | [`Exact3`] (§2) | one interval tree, two stabbing queries | exact | `O(log_B N + m/B)` |
//! | [`ApproxIndex`] APPX1-B/1 (§3) | breakpoints + nested B+-trees | `(ε, 1)` | `O(k/B + log_B r)` |
//! | [`ApproxIndex`] APPX2-B/2 (§3) | breakpoints + dyadic intervals | `(ε, 2 log r)` | `O(k log r)` |
//! | [`ApproxIndex`] APPX2+ (§3.3) | APPX2 + exact candidate re-scoring | `(ε, 2 log r)`, near-exact in practice | `O(k log r log_B n)` |
//!
//! Breakpoints come in the two flavours of §3.1 — [`Breakpoints::b1_with_eps`]
//! (global sum reaches `εM` per gap, `r = Θ(1/ε)`) and [`Breakpoints::b2_with_eps`]
//! (per-object max reaches `εM`, `r = O(1/ε)`, much smaller in practice) —
//! with both the baseline and the efficient §3.1 constructions for B2.
//!
//! Section 4 extensions included: right-edge **updates** with amortized
//! rebuilds, **negative scores** (absolute-value thresholds), `avg` and
//! instant top-k **aggregates**, and piecewise-**polynomial** data (via
//! `chronorank-curve`).
//!
//! ## Glossary (paper Table 1)
//!
//! | Symbol | Here |
//! |--------|------|
//! | `m` | [`TemporalSet::num_objects`] |
//! | `N` | [`TemporalSet::num_segments`] |
//! | `n_i` | `set.object(i).curve.num_segments()` |
//! | `M = Σ σ_i(0,T)` | [`TemporalSet::total_mass`] |
//! | `σ_i(t1,t2)` | [`TemporalSet::score`] |
//! | `A(k,t1,t2)` | [`TopK`] |
//! | `B`, `B(t)` | [`Breakpoints`], [`Breakpoints::snap`] |
//! | `r` | [`Breakpoints::len`] |
//! | `kmax` | [`ApproxConfig::kmax`] |

mod agg;
mod appx;
mod breakpoints;
pub mod cost_model;
mod error;
mod exact1;
mod exact2;
mod exact3;
mod method;
pub mod metrics;
mod object;
mod query1;
mod query2;
mod streambuild;
#[cfg(test)]
pub(crate) mod test_support;
mod topk;

pub use agg::AggKind;
pub use appx::{ApproxConfig, ApproxIndex, ApproxVariant, QueryKind};
pub use breakpoints::{B2Construction, Breakpoints, BreakpointsKind};
pub use error::{CoreError, Result};
pub use exact1::Exact1;
pub use exact2::Exact2;
pub use exact3::Exact3;
pub use method::{GenerationProfile, MethodProfile, SharedMethod, TopKMethod};
pub use object::{AppendRecord, ObjectId, TemporalObject, TemporalSet};
pub use query1::Query1Index;
pub use query2::Query2Index;
pub use streambuild::{b2_streaming, scan_stats, StreamStats, StreamedB2};
pub use topk::{RankMethod, TopK};

/// Default index configuration shared by all methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexConfig {
    /// Block size / buffer-pool settings for the method's storage.
    pub store: chronorank_storage::StoreConfig,
}
