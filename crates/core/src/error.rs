//! Core-layer errors.

use std::fmt;

/// Core-layer result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors from ranking methods.
#[derive(Debug)]
pub enum CoreError {
    /// Propagated storage failure.
    Storage(chronorank_storage::StorageError),
    /// Propagated index failure.
    Index(chronorank_index::IndexError),
    /// Propagated curve-model failure.
    Curve(chronorank_curve::CurveError),
    /// A query or build parameter was invalid.
    BadQuery(String),
    /// An object id was out of range.
    NoSuchObject(u32),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Index(e) => write!(f, "index: {e}"),
            CoreError::Curve(e) => write!(f, "curve: {e}"),
            CoreError::BadQuery(m) => write!(f, "bad query: {m}"),
            CoreError::NoSuchObject(id) => write!(f, "no such object: {id}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Index(e) => Some(e),
            CoreError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chronorank_storage::StorageError> for CoreError {
    fn from(e: chronorank_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<chronorank_index::IndexError> for CoreError {
    fn from(e: chronorank_index::IndexError) -> Self {
        CoreError::Index(e)
    }
}

impl From<chronorank_curve::CurveError> for CoreError {
    fn from(e: chronorank_curve::CurveError) -> Self {
        CoreError::Curve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::BadQuery("t2 < t1".into());
        assert!(e.to_string().contains("t2 < t1"));
        let e = CoreError::NoSuchObject(7);
        assert!(e.to_string().contains('7'));
        let e = CoreError::from(chronorank_curve::CurveError::TooFewPoints(0));
        assert!(std::error::Error::source(&e).is_some());
    }
}
