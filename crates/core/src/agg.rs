//! Aggregation functions `σ` (paper §1 and §4 "Other aggregates").
//!
//! The paper's methods are built for `σ = sum` (the time integral). `avg`
//! follows immediately (`sum / (t2 − t1)`, identical ranking for a fixed
//! interval), and with it "many other aggregations that can be expressed as
//! linear combinations of the sum". Holistic aggregates (quantiles/median)
//! are explicitly left open by the paper and are not provided.

/// Which aggregate a `top-k(t1, t2, σ)` query ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggKind {
    /// `σ_i(t1,t2) = ∫_{t1}^{t2} g_i(t) dt` — the paper's primary focus.
    #[default]
    Sum,
    /// `sum / (t2 − t1)`; for `t1 = t2` this degenerates to the instant
    /// value `g_i(t)` (the instant top-k of the prior work \[15\]).
    Avg,
}

impl AggKind {
    /// Convert a `sum` score over `[t1, t2]` into this aggregate's score.
    pub fn finalize(self, sum: f64, t1: f64, t2: f64) -> f64 {
        match self {
            AggKind::Sum => sum,
            AggKind::Avg => {
                let len = t2 - t1;
                if len > 0.0 {
                    sum / len
                } else {
                    sum // degenerate; instant queries are handled separately
                }
            }
        }
    }

    /// Method name suffix for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sum_is_identity() {
        assert_eq!(AggKind::Sum.finalize(42.0, 0.0, 10.0), 42.0);
    }

    #[test]
    fn finalize_avg_divides_by_length() {
        assert_eq!(AggKind::Avg.finalize(42.0, 0.0, 10.0), 4.2);
        // Degenerate interval doesn't divide by zero.
        assert_eq!(AggKind::Avg.finalize(42.0, 5.0, 5.0), 42.0);
    }

    #[test]
    fn labels() {
        assert_eq!(AggKind::Sum.label(), "sum");
        assert_eq!(AggKind::Avg.label(), "avg");
        assert_eq!(AggKind::default(), AggKind::Sum);
    }
}
