//! The paper's cost model (Figure 3) as executable formulas.
//!
//! Every method's asymptotic IO costs, instantiated with concrete
//! constants from this implementation's data layouts. The benchmark
//! harness and the validation tests use these predictions to check that
//! the *measured* IO counters scale the way the paper's table says they
//! should — an executable form of Figure 3.
//!
//! The predictions are upper-bound-flavoured estimates, not exact counts:
//! they ignore caching within a single query and round-robin block
//! boundaries, so validation compares within small constant factors.

/// Workload/layout parameters of a cost prediction.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Number of objects `m`.
    pub m: u64,
    /// Total segments `N`.
    pub n_total: u64,
    /// Average segments per object `n_avg`.
    pub n_avg: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Breakpoint count `r` (approximate methods).
    pub r: u64,
    /// `kmax` (approximate methods).
    pub kmax: u64,
    /// Query `k`.
    pub k: u64,
    /// Fraction of segments overlapping the query window (`Σ q_i / N`).
    pub overlap_frac: f64,
}

impl CostParams {
    fn log_b(&self, x: u64) -> f64 {
        // B+-tree fanout ≈ block / 16 bytes per separator+child.
        let fanout = (self.block as f64 / 16.0).max(2.0);
        (x.max(2) as f64).ln() / fanout.ln()
    }
}

/// Predicted cold query IOs (block reads) per method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCost {
    /// EXACT1: `log_B N + Σ q_i / B_entries`.
    pub exact1: f64,
    /// EXACT2: `Σ_i log_B n_i` ≈ `m · (1 + log_B n_avg)` (≥ 1 root read
    /// per object tree).
    pub exact2: f64,
    /// EXACT3: `2·(log₂ N + m/B_entries)` (two stabbing queries).
    pub exact3: f64,
    /// APPX1 (QUERY1): two tree descents + `k`-prefix of one list.
    pub appx1: f64,
    /// APPX2 (QUERY2): two snaps + ≤ `2 log r` list prefixes.
    pub appx2: f64,
    /// APPX2+: APPX2 + one EXACT2 lookup pair per candidate.
    pub appx2_plus: f64,
}

/// Entry sizes from this implementation's layouts (bytes).
mod entry {
    /// EXACT1 leaf entry: key + obj + v0 + t1 + v1.
    pub const EXACT1: u64 = 8 + 28;
    /// EXACT3 interval entry: lo + hi + payload(obj, v0, v1, prefix).
    pub const EXACT3: u64 = 16 + 28;
    /// QUERY1/2 list entry: id + score.
    pub const LIST: u64 = 12;
}

/// Predict cold query IOs for every method under `p`.
pub fn query_cost(p: &CostParams) -> QueryCost {
    let seg_per_block1 = (p.block / (entry::EXACT1)).max(1) as f64;
    let exact1 = p.log_b(p.n_total) + (p.overlap_frac * p.n_total as f64) / seg_per_block1;

    let exact2 = p.m as f64 * (1.0 + p.log_b(p.n_avg)) * 2.0;

    let ent_per_block3 = (p.block / entry::EXACT3).max(1) as f64;
    let exact3 = 2.0 * ((p.n_total.max(2) as f64).log2() + p.m as f64 / ent_per_block3);

    let list_blocks = |k: u64| ((k * entry::LIST) as f64 / p.block as f64).ceil().max(1.0);
    let appx1 = 2.0 * p.log_b(p.r).max(1.0) + list_blocks(p.k);
    let pieces = 2.0 * (p.r.max(2) as f64).log2();
    let appx2 = 2.0 * p.log_b(p.r).max(1.0) + pieces * list_blocks(p.k);
    // Candidate set ≤ k · 2 log r, each re-scored with two O(log_B n)
    // descents; overlapping candidates make this a loose upper bound.
    let appx2_plus = appx2 + (p.k as f64 * pieces).min(p.m as f64) * (1.0 + p.log_b(p.n_avg));
    QueryCost { exact1, exact2, exact3, appx1, appx2, appx2_plus }
}

impl QueryCost {
    /// Batch amortization: when `share` queries in one admitted window
    /// collapse onto the same probe — identical raw interval for the exact
    /// routes, identical snapped `(B(t1), B(t2))` pair for the
    /// breakpoint-based ones — the index is probed once and the answer
    /// shared, so the *per-query* cost of every route divides by its group
    /// size. `exact_share` amortizes the raw-keyed routes (EXACT*, APPX2+
    /// re-scores per raw interval), `snap_share` the snapped-keyed ones
    /// (APPX1/APPX2); `snap_share ≥ exact_share` whenever distinct raw
    /// intervals snap together. Within each comparison class the factor is
    /// uniform, so amortization never reorders a class — batch routing
    /// stays consistent with solo routing while the reported costs stay
    /// honest about what a batched execution actually pays.
    pub fn amortized(&self, exact_share: usize, snap_share: usize) -> QueryCost {
        let es = exact_share.max(1) as f64;
        let ss = snap_share.max(1) as f64;
        QueryCost {
            exact1: self.exact1 / es,
            exact2: self.exact2 / es,
            exact3: self.exact3 / es,
            appx1: self.appx1 / ss,
            appx2: self.appx2 / ss,
            appx2_plus: self.appx2_plus / es,
        }
    }
}

/// Predicted index sizes in blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeCost {
    /// EXACT1/2/3 are all `Θ(N/B)` with layout constants.
    pub exact1: f64,
    /// 〃 (forest overhead: ≥ 2 blocks per object).
    pub exact2: f64,
    /// 〃 (two sorted copies of every list entry).
    pub exact3: f64,
    /// QUERY1: `r(r−1)/2` lists of `kmax` entries.
    pub appx1: f64,
    /// QUERY2: < `2r` lists of `kmax` entries.
    pub appx2: f64,
}

/// Predict index sizes (in blocks) for every method under `p`.
pub fn size_cost(p: &CostParams) -> SizeCost {
    let b = p.block as f64;
    let exact1 = (p.n_total * entry::EXACT1) as f64 / b;
    let exact2 = (p.n_total * (8 + 32)) as f64 / b + 2.0 * p.m as f64;
    let exact3 = (2 * p.n_total * entry::EXACT3) as f64 / b;
    let list_blocks = ((p.kmax * entry::LIST) as f64 / b).ceil().max(1.0);
    let appx1 = (p.r * (p.r - 1) / 2) as f64 * list_blocks;
    let appx2 = (2 * p.r) as f64 * list_blocks;
    SizeCost { exact1, exact2, exact3, appx1, appx2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_set;
    use crate::{
        AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Exact3, IndexConfig, RankMethod,
    };

    fn params_for(set: &crate::TemporalSet, r: u64, kmax: u64, k: u64, frac: f64) -> CostParams {
        CostParams {
            m: set.num_objects() as u64,
            n_total: set.num_segments(),
            n_avg: (set.num_segments() / set.num_objects() as u64).max(1),
            block: 4096,
            r,
            kmax,
            k,
            overlap_frac: frac,
        }
    }

    #[test]
    fn ordering_matches_figure3() {
        // At paper-like proportions the model must reproduce the paper's
        // ordering: APPX1 < APPX2 < EXACT3 < EXACT1 < EXACT2 for queries.
        let p = CostParams {
            m: 50_000,
            n_total: 50_000_000,
            n_avg: 1000,
            block: 4096,
            r: 500,
            kmax: 200,
            k: 50,
            overlap_frac: 0.2,
        };
        let q = query_cost(&p);
        assert!(q.appx1 < q.appx2);
        assert!(q.appx2 < q.exact3);
        assert!(q.exact3 < q.exact1);
        assert!(q.exact1 < q.exact2);
        // EXACT3 at paper scale ≈ the >10³ IOs of the evaluation.
        assert!(q.exact3 > 500.0 && q.exact3 < 5000.0, "exact3 = {}", q.exact3);
        // Approximate queries are single-digit.
        assert!(q.appx1 < 10.0, "appx1 = {}", q.appx1);
        let s = size_cost(&p);
        assert!(s.appx2 < s.appx1, "dyadic ≪ all-pairs");
        assert!(s.appx1 < s.exact3, "appx1 smaller than data at paper params");
    }

    #[test]
    fn amortized_divides_by_group_size_and_preserves_class_order() {
        let p = CostParams {
            m: 50_000,
            n_total: 50_000_000,
            n_avg: 1000,
            block: 4096,
            r: 500,
            kmax: 200,
            k: 50,
            overlap_frac: 0.2,
        };
        let q = query_cost(&p);
        let a = q.amortized(4, 16);
        assert_eq!(a.exact1, q.exact1 / 4.0);
        assert_eq!(a.exact3, q.exact3 / 4.0);
        assert_eq!(a.appx2_plus, q.appx2_plus / 4.0);
        assert_eq!(a.appx1, q.appx1 / 16.0);
        assert_eq!(a.appx2, q.appx2 / 16.0);
        // Uniform per-class factors preserve each class's internal order.
        assert_eq!(a.exact1 < a.exact3, q.exact1 < q.exact3);
        assert_eq!(a.appx1 < a.appx2, q.appx1 < q.appx2);
        // share ≤ 1 is the solo cost.
        assert_eq!(q.amortized(0, 1), q);
    }

    #[test]
    fn exact3_prediction_tracks_measurement() {
        let set = small_set();
        let idx = Exact3::build(&set, IndexConfig::default()).unwrap();
        idx.drop_caches().unwrap();
        idx.reset_io();
        idx.top_k(2.0, 12.0, 4, AggKind::Sum).unwrap();
        let measured = idx.io_stats().reads as f64;
        let p = params_for(&set, 16, 8, 4, 0.5);
        let predicted = query_cost(&p).exact3;
        // Tiny trees make constants dominate; within 6× is the contract.
        assert!(
            measured <= predicted * 6.0 + 8.0 && predicted <= measured * 6.0 + 8.0,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn appx_prediction_tracks_measurement() {
        let set = small_set();
        let idx = ApproxIndex::build(
            &set,
            ApproxVariant::APPX2,
            ApproxConfig { r: 16, kmax: 8, ..Default::default() },
        )
        .unwrap();
        idx.drop_caches().unwrap();
        idx.reset_io();
        idx.top_k(2.0, 18.0, 4, AggKind::Sum).unwrap();
        let measured = idx.io_stats().reads as f64;
        let p = params_for(&set, idx.breakpoints().len() as u64, 8, 4, 0.8);
        let predicted = query_cost(&p).appx2;
        assert!(measured <= predicted * 4.0 + 4.0, "measured {measured} vs predicted {predicted}");
    }

    #[test]
    fn size_prediction_tracks_measurement() {
        let set = small_set();
        let idx = ApproxIndex::build(
            &set,
            ApproxVariant::APPX1,
            ApproxConfig { r: 16, kmax: 8, ..Default::default() },
        )
        .unwrap();
        let p = params_for(&set, idx.breakpoints().len() as u64, 8, 4, 0.5);
        let measured_blocks = idx.size_bytes() as f64 / 4096.0;
        let predicted = size_cost(&p).appx1;
        // Directory trees and meta blocks add overhead on tiny indexes.
        assert!(
            measured_blocks <= predicted * 4.0 + 64.0 && predicted <= measured_blocks * 4.0 + 64.0,
            "measured {measured_blocks} vs predicted {predicted}"
        );
    }
}
