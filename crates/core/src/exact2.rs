//! EXACT2 — a forest of per-object prefix-sum B+-trees (paper §2).
//!
//! For each object `o_i`, precompute the prefix sums
//! `σ_i(I_{i,ℓ}) = σ_i(t_{i,0}, t_{i,ℓ})` and bulk-load a B+-tree `T_i`
//! whose leaf entry `e_{i,ℓ}` is keyed by `t_{i,ℓ}` and stores
//! `(g_{i,ℓ}, σ_i(I_{i,ℓ}))`. A query computes each `σ_i(t1, t2)` with two
//! successor lookups and Eq. (2):
//!
//! ```text
//! σ_i(t1,t2) = σ_i(I_R) − σ_i(I_L) + σ_i(t1, t_L) − σ_i(t2, t_R)
//! ```
//!
//! Costs (Fig. 3): size `O(N/B)`, construction `O(Σ (n_i/B) log_B n_i)`,
//! query `O(Σ log_B n_i)` IOs, update `O(log_B n_i)`. The weakness the
//! paper calls out — and Figure 13 shows — is the `m` separate tree
//! traversals (and on a real filesystem, `m` file opens) per query, which
//! is why EXACT3 exists.

use crate::agg::AggKind;
use crate::error::Result;
use crate::object::{ObjectId, TemporalSet};
use crate::topk::{check_interval, top_k_from_scores, RankMethod, TopK};
use crate::IndexConfig;
use chronorank_curve::Segment;
use chronorank_index::BPlusTree;
use chronorank_storage::{Env, IoStats};

/// Leaf payload: `t_prev f64 | v_prev f64 | v_cur f64 | prefix f64`
/// (the key holds `t_cur`, the segment's right endpoint).
const PAYLOAD_LEN: usize = 32;

fn encode_payload(out: &mut [u8], t_prev: f64, v_prev: f64, v_cur: f64, prefix: f64) {
    out[0..8].copy_from_slice(&t_prev.to_le_bytes());
    out[8..16].copy_from_slice(&v_prev.to_le_bytes());
    out[16..24].copy_from_slice(&v_cur.to_le_bytes());
    out[24..32].copy_from_slice(&prefix.to_le_bytes());
}

fn decode_payload(key: f64, p: &[u8]) -> (Segment, f64) {
    let t_prev = f64::from_le_bytes(p[0..8].try_into().expect("8"));
    let v_prev = f64::from_le_bytes(p[8..16].try_into().expect("8"));
    let v_cur = f64::from_le_bytes(p[16..24].try_into().expect("8"));
    let prefix = f64::from_le_bytes(p[24..32].try_into().expect("8"));
    (Segment { t0: t_prev, v0: v_prev, t1: key, v1: v_cur }, prefix)
}

/// The EXACT2 index (see module docs).
pub struct Exact2 {
    env: Env,
    trees: Vec<BPlusTree>,
}

impl Exact2 {
    /// Build the forest: one prefix-sum B+-tree per object.
    pub fn build(set: &TemporalSet, config: IndexConfig) -> Result<Self> {
        // Per-object trees are small; a large shared pool would hide the
        // per-tree root IOs the paper's cost model charges. Give each file
        // a modest pool instead.
        let mut store = config.store;
        store.pool_capacity = store.pool_capacity.clamp(8, 64);
        let env = Env::mem(store);
        Self::build_in(env, set)
    }

    /// Build using a caller-supplied storage environment.
    pub fn build_in(env: Env, set: &TemporalSet) -> Result<Self> {
        let mut trees = Vec::with_capacity(set.num_objects());
        let mut payload = [0u8; PAYLOAD_LEN];
        for o in set.objects() {
            let file = env.create_file(&format!("exact2_{:08}", o.id))?;
            let mut loader = BPlusTree::bulk_loader(file, PAYLOAD_LEN)?;
            // One sweep computes prefix sums incrementally (the paper's
            // O(n_i/B) preprocessing).
            let mut prefix = 0.0f64;
            for seg in o.curve.segments() {
                prefix += seg.integral_full();
                encode_payload(&mut payload, seg.t0, seg.v0, seg.v1, prefix);
                loader.push(seg.t1, &payload)?;
            }
            trees.push(loader.finish()?);
        }
        Ok(Self { env, trees })
    }

    /// Cumulative integral of object `id` from its domain start to `t`
    /// (clamped), via one successor lookup + Eq. (1)'s clipped trapezoid.
    fn cumulative(&self, id: ObjectId, t: f64) -> Result<f64> {
        let tree = &self.trees[id as usize];
        let cur = tree.seek(t)?;
        if cur.valid() {
            let (seg, prefix) = decode_payload(cur.key(), cur.payload());
            // prefix = ∫ to seg.t1; subtract the part of the segment after t
            // (clipping handles t before the object's start: the whole
            // segment is subtracted, giving 0 together with prefix = area).
            Ok(prefix - seg.integral_clipped(t, seg.t1))
        } else {
            // t is past the object's end: cumulative = total mass, stored
            // in the last entry (O(log_B n_i) via the rightmost descent).
            match tree.last_entry()? {
                Some((_, p)) => Ok(f64::from_le_bytes(p[24..32].try_into().expect("8"))),
                None => Ok(0.0),
            }
        }
    }

    /// `σ_i(t1, t2)` for one object (Eq. (2)); public because APPX2+ uses
    /// exactly this per-candidate re-scoring.
    pub fn score_one(&self, id: ObjectId, t1: f64, t2: f64) -> Result<f64> {
        if id as usize >= self.trees.len() {
            return Err(crate::CoreError::NoSuchObject(id));
        }
        Ok(self.cumulative(id, t2)? - self.cumulative(id, t1)?)
    }

    /// Append a new segment for `obj`: fetches `σ_i(I_{i,n_i})` from the
    /// last entry and inserts the new one in `O(log_B n_i)` IOs.
    pub fn append_segment(&self, obj: ObjectId, seg: Segment) -> Result<()> {
        if obj as usize >= self.trees.len() {
            return Err(crate::CoreError::NoSuchObject(obj));
        }
        let tree = &self.trees[obj as usize];
        let prev_prefix = match tree.last_entry()? {
            Some((_, p)) => f64::from_le_bytes(p[24..32].try_into().expect("8")),
            None => 0.0,
        };
        let mut payload = [0u8; PAYLOAD_LEN];
        encode_payload(&mut payload, seg.t0, seg.v0, seg.v1, prev_prefix + seg.integral_full());
        tree.insert(seg.t1, &payload)?;
        Ok(())
    }

    /// Number of per-object trees (`m`).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl RankMethod for Exact2 {
    fn name(&self) -> String {
        "EXACT2".into()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        let mut scores = Vec::with_capacity(self.trees.len());
        for id in 0..self.trees.len() as ObjectId {
            scores.push((id, self.score_one(id, t1, t2)?));
        }
        let top = top_k_from_scores(scores.into_iter(), k);
        Ok(match agg {
            AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
            _ => top,
        })
    }

    fn size_bytes(&self) -> u64 {
        self.trees.iter().map(|t| t.size_bytes()).sum()
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        for t in &self.trees {
            t.file().drop_cache()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_same_answer, small_set};

    #[test]
    fn matches_bruteforce_on_small_set() {
        let set = small_set();
        let idx = Exact2::build(&set, IndexConfig::default()).unwrap();
        assert_eq!(idx.num_trees(), set.num_objects());
        for &(a, b) in crate::test_support::INTERVALS {
            let want = set.top_k_bruteforce(a, b, 4);
            let got = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, &format!("EXACT2 [{a},{b}]"));
        }
    }

    #[test]
    fn score_one_equals_direct_integral() {
        let set = small_set();
        let idx = Exact2::build(&set, IndexConfig::default()).unwrap();
        for id in 0..set.num_objects() as ObjectId {
            for &(a, b) in crate::test_support::INTERVALS {
                let want = set.score(id, a, b).unwrap();
                let got = idx.score_one(id, a, b).unwrap();
                assert!(
                    (want - got).abs() <= 1e-9 * 1.0_f64.max(want.abs()),
                    "object {id} [{a},{b}]: want {want}, got {got}"
                );
            }
        }
    }

    #[test]
    fn eq2_identity_on_interior_interval() {
        // Directly verify the paper's Eq. (2) decomposition on o3.
        let set = small_set();
        let idx = Exact2::build(&set, IndexConfig::default()).unwrap();
        let c = &set.object(3).unwrap().curve;
        let (t1, t2) = (2.0, 11.0);
        let got = idx.score_one(3, t1, t2).unwrap();
        assert!((got - c.integral(t1, t2)).abs() < 1e-9);
    }

    #[test]
    fn update_then_query() {
        let mut set = small_set();
        let idx = Exact2::build(&set, IndexConfig::default()).unwrap();
        let end = set.object(2).unwrap().curve.end();
        let v_end = set.object(2).unwrap().curve.eval(end).unwrap();
        set.append_segment(2, end + 4.0, 50.0).unwrap();
        idx.append_segment(2, Segment::new(end, v_end, end + 4.0, 50.0)).unwrap();
        for &(a, b) in &[(end - 1.0, end + 4.0), (0.0, 40.0)] {
            let want = set.top_k_bruteforce(a, b, 3);
            let got = idx.top_k(a, b, 3, AggKind::Sum).unwrap();
            assert_same_answer(&want, &got, "EXACT2 after update");
        }
        assert!(idx.append_segment(99, Segment::new(0.0, 0.0, 1.0, 1.0)).is_err());
        assert!(idx.score_one(99, 0.0, 1.0).is_err());
    }

    #[test]
    fn query_ios_scale_with_m_not_n() {
        // The defining property of EXACT2: ~2 descents per object per query.
        let set = small_set();
        let idx = Exact2::build(&set, IndexConfig::default()).unwrap();
        idx.drop_caches().unwrap();
        idx.reset_io();
        idx.top_k(4.0, 8.0, 3, AggKind::Sum).unwrap();
        let reads = idx.io_stats().reads;
        // 10 objects, tiny trees: ≥ 1 read per object, well under N.
        assert!(reads >= set.num_objects() as u64, "reads = {reads}");
    }
}
