//! Breakpoint construction (paper §3.1).
//!
//! Both approximate methods snap query endpoints to a set of breakpoints
//! `B = {b_0 = 0, …, b_r = T}` chosen so that **no object accumulates more
//! than `εM` between consecutive breakpoints** (`M = Σ_i σ_i(0,T)`), which
//! gives Lemma 2: `|σ_i(t1,t2) − σ_i(B(t1),B(t2))| ≤ εM` for every object
//! and every query.
//!
//! * [`Breakpoints::b1_with_eps`] — **BREAKPOINTS1**: sweep all segment
//!   vertices maintaining the *global* sum value `V(t) = Σ_i g_i(t)` and
//!   slope `W(t)`; close a gap when `Σ_i σ_i(b_j, t) = εM`. Exactly
//!   `r = Θ(1/ε)` breakpoints; one `O((N/B) log_B N)` sorted sweep.
//! * [`Breakpoints::b2_with_eps`] — **BREAKPOINTS2**: close a gap when
//!   `max_i σ_i(b_j, t) = εM`. `r = O(1/ε)` but *far* smaller in practice
//!   (paper Fig. 11(a): ε at equal r is orders of magnitude smaller). Two
//!   constructions, selected by [`B2Construction`]:
//!   [`B2Construction::Baseline`] re-bases every object's running integral
//!   at every breakpoint (`O(rm + N log N)` time — the paper's baseline),
//!   while [`B2Construction::Efficient`] re-bases lazily via per-object
//!   epochs and eagerly only for *dangerous* objects (those that already
//!   crossed the threshold), achieving the paper's Lemma 1
//!   `O(N log N)` bound. Both produce identical breakpoints.
//!
//! Negative scores (paper §4) are handled by running both sweeps over
//! `|g_i|`: curves are pre-split at zero crossings and mirrored, so `M`
//! and every threshold use absolute mass.

use crate::error::{CoreError, Result};
use crate::object::TemporalSet;
use chronorank_curve::numeric::accumulation_crossing;
use chronorank_curve::PiecewiseLinear;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which of the paper's two breakpoint families a [`Breakpoints`] set is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakpointsKind {
    /// BREAKPOINTS1: global-sum threshold, `r = Θ(1/ε)`.
    B1,
    /// BREAKPOINTS2: per-object-max threshold, `r = O(1/ε)`.
    B2,
}

/// Which construction algorithm to use for BREAKPOINTS2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum B2Construction {
    /// Reset all `m` running integrals at every breakpoint
    /// (`O(rm + N log N)`; the paper's "BREAKPOINTS2-B").
    Baseline,
    /// Lazy epoch-based re-basing (`O(N log N)`, Lemma 1; the paper's
    /// "BREAKPOINTS2-E").
    #[default]
    Efficient,
}

/// A constructed breakpoint set `B` (paper §3.1), with the `ε` that
/// generated it.
#[derive(Debug, Clone)]
pub struct Breakpoints {
    kind: BreakpointsKind,
    points: Vec<f64>,
    eps: f64,
    /// Total absolute mass `M` at construction time (the amortized-update
    /// rule rebuilds when the live mass doubles; see `ApproxIndex`).
    mass: f64,
}

impl Breakpoints {
    /// Assemble a breakpoint set from an already-run sweep. Used by the
    /// streaming construction (`streambuild`), which produces the same
    /// points as [`sweep_b2`] without materializing the dataset.
    pub(crate) fn from_sweep(kind: BreakpointsKind, points: Vec<f64>, eps: f64, mass: f64) -> Self {
        Self { kind, points, eps, mass }
    }

    /// BREAKPOINTS1 for a given `ε > 0`.
    pub fn b1_with_eps(set: &TemporalSet, eps: f64) -> Result<Self> {
        check_eps(eps)?;
        let points = sweep_b1(set, eps * set.total_mass())?;
        Ok(Self { kind: BreakpointsKind::B1, points, eps, mass: set.total_mass() })
    }

    /// BREAKPOINTS1 sized to approximately `r` breakpoints
    /// (`ε = 1/(r−1)`, per the paper's `r = ⌈1/ε + 1⌉`).
    pub fn b1_with_count(set: &TemporalSet, r: usize) -> Result<Self> {
        if r < 2 {
            return Err(CoreError::BadQuery(format!("need r ≥ 2 breakpoints, got {r}")));
        }
        Self::b1_with_eps(set, 1.0 / (r as f64 - 1.0))
    }

    /// BREAKPOINTS2 for a given `ε > 0`.
    pub fn b2_with_eps(set: &TemporalSet, eps: f64, construction: B2Construction) -> Result<Self> {
        check_eps(eps)?;
        let points = sweep_b2(set, eps * set.total_mass(), construction)?;
        Ok(Self { kind: BreakpointsKind::B2, points, eps, mass: set.total_mass() })
    }

    /// BREAKPOINTS2 sized to approximately `r` breakpoints: binary-search
    /// the `ε` whose sweep yields the closest count (this is how the paper
    /// compares B1 and B2 "given the same budget r", Fig. 11(a)).
    pub fn b2_with_count(
        set: &TemporalSet,
        r: usize,
        construction: B2Construction,
    ) -> Result<Self> {
        if r < 2 {
            return Err(CoreError::BadQuery(format!("need r ≥ 2 breakpoints, got {r}")));
        }
        // Start from B1's ε: B2(ε) produces at most as many breakpoints.
        let mut hi = 1.0 / (r as f64 - 1.0); // count(hi) ≤ r
        let mut candidate = Self::b2_with_eps(set, hi, construction)?;
        if candidate.len() >= r {
            return Ok(candidate);
        }
        // Exponentially shrink ε until we overshoot the target count.
        let mut lo = hi;
        loop {
            lo /= 4.0;
            let trial = Self::b2_with_eps(set, lo, construction)?;
            let done = trial.len() >= r;
            if trial_closer(&trial, &candidate, r) {
                candidate = trial;
            }
            if done || lo < 1e-15 {
                break;
            }
        }
        // Binary search between lo (too many / just enough) and hi (too few).
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            let trial = Self::b2_with_eps(set, mid, construction)?;
            if trial.len() >= r {
                lo = mid;
            } else {
                hi = mid;
            }
            let exact = trial.len() == r;
            if trial_closer(&trial, &candidate, r) {
                candidate = trial;
            }
            if exact {
                break;
            }
        }
        Ok(candidate)
    }

    /// Which family this set is.
    pub fn kind(&self) -> BreakpointsKind {
        self.kind
    }

    /// Number of breakpoints `r` (including both domain endpoints).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the set holds no breakpoints (cannot happen for valid
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted breakpoints `b_0 … b_{r−1}`.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The `ε` that generated this set.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Absolute mass `M` at construction time.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Serialize for a persistent generation image: kind tag, `ε` and `M`
    /// as exact bits, then every breakpoint time as exact bits — enough
    /// to rebuild the approximate indexes deterministically on reopen.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + 8 * self.points.len());
        out.push(match self.kind {
            BreakpointsKind::B1 => 1u8,
            BreakpointsKind::B2 => 2u8,
        });
        out.extend_from_slice(&self.eps.to_bits().to_le_bytes());
        out.extend_from_slice(&self.mass.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.points.len() as u32).to_le_bytes());
        for &p in &self.points {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        out
    }

    /// Inverse of [`Breakpoints::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let corrupt = || CoreError::BadQuery("corrupt breakpoint table".into());
        if bytes.len() < 21 {
            return Err(corrupt());
        }
        let kind = match bytes[0] {
            1 => BreakpointsKind::B1,
            2 => BreakpointsKind::B2,
            _ => return Err(corrupt()),
        };
        let f = |at: usize| {
            f64::from_bits(u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")))
        };
        let eps = f(1);
        let mass = f(9);
        let r = u32::from_le_bytes(bytes[17..21].try_into().expect("4 bytes")) as usize;
        if bytes.len() != 21 + 8 * r {
            return Err(corrupt());
        }
        let points: Vec<f64> = (0..r).map(|i| f(21 + 8 * i)).collect();
        if points.iter().any(|p| !p.is_finite()) || points.windows(2).any(|w| w[0] >= w[1]) {
            return Err(corrupt());
        }
        Ok(Self { kind, points, eps, mass })
    }

    /// `B(t)`: index of the smallest breakpoint ≥ `t` (paper Fig. 8),
    /// clamped into range (`t` beyond the last breakpoint snaps to it).
    pub fn snap_idx(&self, t: f64) -> usize {
        let idx = self.points.partition_point(|&b| b < t);
        idx.min(self.points.len() - 1)
    }

    /// `B(t)` as a time value.
    pub fn snap(&self, t: f64) -> f64 {
        self.points[self.snap_idx(t)]
    }

    /// Cumulative **signed** integral of `curve` from its own start up to
    /// every breakpoint, in one `O(n_i + r)` merge-walk. This is the
    /// per-object quantity the QUERY1/QUERY2 construction sweeps maintain:
    /// `σ_i(b_j, b_j') = out[j'] − out[j]`.
    pub fn cums_at(&self, curve: &PiecewiseLinear) -> Vec<f64> {
        let n = curve.num_segments();
        let mut out = Vec::with_capacity(self.points.len());
        let mut seg_j = 0usize;
        let mut cum_at_seg_start = 0.0f64;
        for &b in &self.points {
            while seg_j < n && curve.segment(seg_j).t1 <= b {
                cum_at_seg_start += curve.segment(seg_j).integral_full();
                seg_j += 1;
            }
            let c = if seg_j < n {
                let seg = curve.segment(seg_j);
                if b <= seg.t0 {
                    cum_at_seg_start
                } else {
                    cum_at_seg_start + seg.integral_clipped(seg.t0, b)
                }
            } else {
                cum_at_seg_start
            };
            out.push(c);
        }
        out
    }
}

pub(crate) fn check_eps(eps: f64) -> Result<()> {
    if eps <= 0.0 || !eps.is_finite() {
        return Err(CoreError::BadQuery(format!("ε must be positive and finite, got {eps}")));
    }
    Ok(())
}

/// Prefer the trial whose count is closest to the target (ties: keep
/// current).
fn trial_closer(trial: &Breakpoints, cur: &Breakpoints, r: usize) -> bool {
    let d = |b: &Breakpoints| (b.len() as i64 - r as i64).unsigned_abs();
    d(trial) < d(cur)
}

// ---------------------------------------------------------------------------
// Absolute-value curve view (negative-score handling, §4)
// ---------------------------------------------------------------------------

/// The curves the sweeps actually integrate: `|g_i|`, materialized only
/// when negatives exist.
enum AbsCurves<'a> {
    Borrowed(&'a TemporalSet),
    Owned(Vec<PiecewiseLinear>),
}

impl<'a> AbsCurves<'a> {
    fn new(set: &'a TemporalSet) -> Result<Self> {
        if !set.has_negative() {
            return Ok(AbsCurves::Borrowed(set));
        }
        let mut curves = Vec::with_capacity(set.num_objects());
        for o in set.objects() {
            curves.push(abs_curve(&o.curve)?);
        }
        Ok(AbsCurves::Owned(curves))
    }

    fn get(&self, i: usize) -> &PiecewiseLinear {
        match self {
            AbsCurves::Borrowed(set) => &set.objects()[i].curve,
            AbsCurves::Owned(curves) => &curves[i],
        }
    }

    fn len(&self) -> usize {
        match self {
            AbsCurves::Borrowed(set) => set.num_objects(),
            AbsCurves::Owned(curves) => curves.len(),
        }
    }
}

/// `|g|`: split each segment at its zero crossing and mirror negative
/// values. The result is again piecewise linear.
pub(crate) fn abs_curve(c: &PiecewiseLinear) -> Result<PiecewiseLinear> {
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(c.num_points() + 4);
    pts.push((c.start(), c.values()[0].abs()));
    for seg in c.segments() {
        if (seg.v0 < 0.0) != (seg.v1 < 0.0) && seg.v0 != 0.0 && seg.v1 != 0.0 {
            // Zero crossing strictly inside the segment.
            let tz = seg.t0 + (seg.t1 - seg.t0) * seg.v0.abs() / (seg.v0.abs() + seg.v1.abs());
            if tz > pts.last().expect("non-empty").0 && tz < seg.t1 {
                pts.push((tz, 0.0));
            }
        }
        pts.push((seg.t1, seg.v1.abs()));
    }
    Ok(PiecewiseLinear::from_points(&pts)?)
}

// ---------------------------------------------------------------------------
// BREAKPOINTS1: global V/W sweep
// ---------------------------------------------------------------------------

/// One sweep event: at `t`, the global slope changes by `dw` and the global
/// value jumps by `dv` (jumps only at object starts/ends).
#[derive(Debug, Clone, Copy)]
struct Event {
    t: f64,
    dw: f64,
    dv: f64,
}

fn b1_events(curves: &AbsCurves<'_>) -> Vec<Event> {
    let mut events: Vec<Event> = Vec::new();
    for i in 0..curves.len() {
        let c = curves.get(i);
        let first = c.segment(0);
        events.push(Event { t: c.start(), dw: first.slope(), dv: first.v0 });
        for j in 1..c.num_segments() {
            let prev = c.segment(j - 1);
            let cur = c.segment(j);
            events.push(Event { t: cur.t0, dw: cur.slope() - prev.slope(), dv: 0.0 });
        }
        let last = c.segment(c.num_segments() - 1);
        events.push(Event { t: c.end(), dw: -last.slope(), dv: -last.v1 });
    }
    events.sort_by(|a, b| a.t.total_cmp(&b.t));
    events
}

/// BREAKPOINTS1 sweep: emit a breakpoint whenever the global running
/// integral `I(t) = Σ_i σ_i(b_j, t)` reaches `τ = εM`.
fn sweep_b1(set: &TemporalSet, tau: f64) -> Result<Vec<f64>> {
    let curves = AbsCurves::new(set)?;
    let events = b1_events(&curves);
    let t_min = set.t_min();
    let t_max = set.t_max();
    let mut points = vec![t_min];
    if tau <= 0.0 || set.total_mass() <= 0.0 {
        points.push(t_max);
        return Ok(points);
    }
    let mut v = 0.0f64; // V(t) = Σ |g_i(t)|
    let mut w = 0.0f64; // W(t) = Σ slopes
    let mut acc = 0.0f64; // I(t) since the last breakpoint
    let mut t_cur = t_min;
    let mut e = 0usize;
    while e < events.len() {
        let te = events[e].t;
        // Advance continuously across [t_cur, te], emitting breakpoints.
        while t_cur < te {
            let remaining = te - t_cur;
            match accumulation_crossing(v.max(0.0), w, tau - acc) {
                Some(delta) if delta <= remaining => {
                    t_cur += delta;
                    v += w * delta;
                    points.push(t_cur);
                    acc = 0.0;
                }
                _ => {
                    acc += 0.5 * w * remaining * remaining + v * remaining;
                    v += w * remaining;
                    t_cur = te;
                }
            }
        }
        // Apply all events at this time.
        while e < events.len() && events[e].t == te {
            w += events[e].dw;
            v += events[e].dv;
            e += 1;
        }
    }
    if *points.last().expect("non-empty") < t_max {
        points.push(t_max);
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// BREAKPOINTS2: per-object max sweep (baseline and efficient)
// ---------------------------------------------------------------------------

/// Per-object sweep state.
struct ObjState {
    /// Running integral `σ_i(b_cur, frontier)`… relative to the breakpoint
    /// the object was last re-based at (`epoch`).
    integral: f64,
    /// Time up to which this object's segments have been consumed.
    frontier: f64,
    /// Index into the emitted breakpoint list at whose value `integral`
    /// was last re-based.
    epoch: usize,
    /// Whether the object currently has a crossing candidate queued.
    dangerous: bool,
    /// Lazy-invalidated generation for heap entries.
    generation: u64,
}

fn sweep_b2(set: &TemporalSet, tau: f64, construction: B2Construction) -> Result<Vec<f64>> {
    let curves = AbsCurves::new(set)?;
    let m = curves.len();
    let t_min = set.t_min();
    let t_max = set.t_max();
    let mut points = vec![t_min];
    if tau <= 0.0 || set.total_mass() <= 0.0 {
        points.push(t_max);
        return Ok(points);
    }

    // All segments sorted by left endpoint (the paper's queue Q).
    let mut segs: Vec<(f64, u32, u32)> = Vec::with_capacity(set.num_segments() as usize);
    for i in 0..m {
        let c = curves.get(i);
        for j in 0..c.num_segments() {
            segs.push((c.segment(j).t0, i as u32, j as u32));
        }
    }
    segs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut st: Vec<ObjState> = (0..m)
        .map(|i| ObjState {
            integral: 0.0,
            frontier: curves.get(i).start(),
            epoch: 0,
            dangerous: false,
            generation: 0,
        })
        .collect();
    // Min-heap of (candidate crossing time, object, generation).
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u64)>> = BinaryHeap::new();
    let mut b_cur = t_min;

    // Commit the earliest valid candidate; returns the breakpoint or None.
    // After a commit, dangerous objects are re-based eagerly (both
    // constructions); the baseline additionally re-bases *every* object.
    macro_rules! pop_valid {
        () => {{
            let mut found = None;
            while let Some(&Reverse((OrdF64(t), obj, gen))) = heap.peek() {
                let o = obj as usize;
                if st[o].dangerous && st[o].generation == gen {
                    found = Some((t, obj));
                    break;
                }
                heap.pop();
            }
            found
        }};
    }

    let commit = |b_star: f64,
                  st: &mut Vec<ObjState>,
                  heap: &mut BinaryHeap<Reverse<(OrdF64, u32, u64)>>,
                  points: &mut Vec<f64>,
                  b_cur: &mut f64| {
        points.push(b_star);
        *b_cur = b_star;
        let epoch = points.len() - 1;
        // Collect objects to re-base: dangerous ones always; under the
        // baseline construction, every object (the paper's O(rm) resets).
        let rebase_all = construction == B2Construction::Baseline;
        for (i, s) in st.iter_mut().enumerate() {
            if !rebase_all && !s.dangerous {
                continue;
            }
            let c = curves.get(i);
            s.integral = if s.frontier > b_star { c.integral(b_star, s.frontier) } else { 0.0 };
            s.epoch = epoch;
            s.generation += 1;
            s.dangerous = false;
            if s.integral >= tau {
                // Still over threshold: a further crossing exists within
                // the already-consumed region.
                if let Some(t_star) = c.time_to_accumulate(b_star, tau) {
                    s.dangerous = true;
                    heap.push(Reverse((OrdF64(t_star), i as u32, s.generation)));
                }
            }
        }
    };

    let mut k = 0usize;
    while k < segs.len() {
        let (t_l, obj, j) = segs[k];
        // Commit any breakpoints that must occur before this segment starts.
        loop {
            match pop_valid!() {
                Some((b_star, _)) if t_l > b_star => {
                    commit(b_star, &mut st, &mut heap, &mut points, &mut b_cur);
                }
                _ => break,
            }
        }
        // Lazily re-base this object if breakpoints advanced past its epoch.
        let o = obj as usize;
        let c = curves.get(o);
        if st[o].epoch != points.len() - 1 {
            st[o].integral =
                if st[o].frontier > b_cur { c.integral(b_cur, st[o].frontier) } else { 0.0 };
            st[o].epoch = points.len() - 1;
            debug_assert!(
                st[o].integral < tau * (1.0 + 1e-9) + 1e-12 || st[o].dangerous,
                "lazy rebase found an unnoticed crossing"
            );
        }
        // Consume the segment (only its part after the current breakpoint).
        let seg = c.segment(j as usize);
        let from = seg.t0.max(b_cur);
        let add = if from < seg.t1 { seg.integral_clipped(from, seg.t1) } else { 0.0 };
        if !st[o].dangerous && st[o].integral < tau && st[o].integral + add >= tau {
            if let Some(t_star) = seg.time_to_accumulate(from, tau - st[o].integral) {
                st[o].dangerous = true;
                st[o].generation += 1;
                heap.push(Reverse((OrdF64(t_star), obj, st[o].generation)));
            }
        }
        st[o].integral += add;
        st[o].frontier = seg.t1;
        k += 1;
    }
    // Drain remaining candidates.
    while let Some((b_star, _)) = pop_valid!() {
        if b_star >= t_max {
            break;
        }
        commit(b_star, &mut st, &mut heap, &mut points, &mut b_cur);
    }
    if *points.last().expect("non-empty") < t_max {
        points.push(t_max);
    }
    Ok(points)
}

/// Total-ordered f64 for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_set;
    use chronorank_curve::numeric::approx_eq;

    /// The defining property (Lemma 2 precondition): between consecutive
    /// breakpoints, no single object (B2) / the global sum (B1) exceeds τ.
    fn assert_gap_property(set: &TemporalSet, bp: &Breakpoints) {
        let tau = bp.eps() * bp.mass();
        let slack = 1.0 + 1e-6;
        for w in bp.points().windows(2) {
            let (a, b) = (w[0], w[1]);
            match bp.kind() {
                BreakpointsKind::B1 => {
                    let total: f64 = set.objects().iter().map(|o| o.curve.abs_integral(a, b)).sum();
                    assert!(total <= tau * slack, "B1 gap [{a},{b}] holds {total} > τ = {tau}");
                }
                BreakpointsKind::B2 => {
                    for o in set.objects() {
                        let s = o.curve.abs_integral(a, b);
                        assert!(
                            s <= tau * slack,
                            "B2 gap [{a},{b}] object {} holds {s} > τ = {tau}",
                            o.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn b1_count_matches_inverse_eps() {
        let set = small_set();
        for &r in &[5usize, 10, 25, 60] {
            let bp = Breakpoints::b1_with_count(&set, r).unwrap();
            assert!((bp.len() as i64 - r as i64).abs() <= 2, "requested {r}, got {}", bp.len());
            assert_gap_property(&set, &bp);
        }
    }

    #[test]
    fn b1_gaps_carry_equal_mass() {
        let set = small_set();
        let bp = Breakpoints::b1_with_eps(&set, 0.05).unwrap();
        let tau = 0.05 * set.total_mass();
        // All interior gaps carry exactly τ of global mass.
        let pts = bp.points();
        for w in pts.windows(2).take(pts.len() - 2) {
            let total: f64 = set.objects().iter().map(|o| o.curve.abs_integral(w[0], w[1])).sum();
            assert!(
                approx_eq(total, tau, 1e-6),
                "gap [{}, {}] carries {total}, want {tau}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn b2_has_fewer_breakpoints_than_b1_at_equal_eps() {
        let set = small_set();
        let eps = 0.02;
        let b1 = Breakpoints::b1_with_eps(&set, eps).unwrap();
        let b2 = Breakpoints::b2_with_eps(&set, eps, B2Construction::Efficient).unwrap();
        assert!(b2.len() <= b1.len(), "B2 ({}) must not exceed B1 ({})", b2.len(), b1.len());
        assert_gap_property(&set, &b1);
        assert_gap_property(&set, &b2);
    }

    #[test]
    fn b2_baseline_and_efficient_agree() {
        let set = small_set();
        for &eps in &[0.5, 0.1, 0.03, 0.01, 0.003] {
            let a = Breakpoints::b2_with_eps(&set, eps, B2Construction::Baseline).unwrap();
            let b = Breakpoints::b2_with_eps(&set, eps, B2Construction::Efficient).unwrap();
            assert_eq!(a.len(), b.len(), "eps={eps}");
            for (x, y) in a.points().iter().zip(b.points()) {
                assert!(approx_eq(*x, *y, 1e-9), "eps={eps}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn b2_with_count_hits_target_roughly() {
        let set = small_set();
        for &r in &[6usize, 12, 30] {
            let bp = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).unwrap();
            let got = bp.len() as i64;
            assert!(
                (got - r as i64).abs() as f64 <= 2.0 + 0.2 * r as f64,
                "requested {r}, got {got}"
            );
            assert_gap_property(&set, &bp);
        }
    }

    #[test]
    fn b2_eps_smaller_than_b1_at_equal_count() {
        // Fig. 11(a): at the same budget r, B2's ε is much smaller.
        let set = small_set();
        let r = 20;
        let b1 = Breakpoints::b1_with_count(&set, r).unwrap();
        let b2 = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).unwrap();
        assert!(b2.eps() < b1.eps(), "ε_B2 = {} must be below ε_B1 = {}", b2.eps(), b1.eps());
    }

    #[test]
    fn snapping_is_smallest_breakpoint_geq_t() {
        let set = small_set();
        let bp = Breakpoints::b1_with_count(&set, 10).unwrap();
        let pts = bp.points().to_vec();
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(bp.snap_idx(p), i, "exact hit must snap to itself");
        }
        // Between two breakpoints, snap right.
        let mid = 0.5 * (pts[1] + pts[2]);
        assert_eq!(bp.snap_idx(mid), 2);
        // Clamped at both ends.
        assert_eq!(bp.snap_idx(-1e9), 0);
        assert_eq!(bp.snap_idx(1e9), pts.len() - 1);
        assert_eq!(bp.snap(1e9), *pts.last().unwrap());
    }

    #[test]
    fn endpoints_are_always_present() {
        let set = small_set();
        for bp in [
            Breakpoints::b1_with_eps(&set, 0.3).unwrap(),
            Breakpoints::b2_with_eps(&set, 0.3, B2Construction::Efficient).unwrap(),
        ] {
            assert_eq!(bp.points()[0], set.t_min());
            assert_eq!(*bp.points().last().unwrap(), set.t_max());
            assert!(bp.points().windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        }
    }

    #[test]
    fn negative_scores_use_absolute_mass() {
        let c0 = PiecewiseLinear::from_points(&[(0.0, -4.0), (10.0, 4.0), (20.0, -4.0)]).unwrap();
        let c1 = PiecewiseLinear::from_points(&[(0.0, 1.0), (20.0, 1.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c0, c1]).unwrap();
        assert!(set.has_negative());
        for bp in [
            Breakpoints::b1_with_eps(&set, 0.1).unwrap(),
            Breakpoints::b2_with_eps(&set, 0.1, B2Construction::Efficient).unwrap(),
            Breakpoints::b2_with_eps(&set, 0.1, B2Construction::Baseline).unwrap(),
        ] {
            assert_gap_property(&set, &bp);
            assert!(bp.len() > 3);
        }
    }

    #[test]
    fn zero_mass_set_degenerates_to_endpoints() {
        let c = PiecewiseLinear::from_points(&[(0.0, 0.0), (5.0, 0.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c]).unwrap();
        let bp = Breakpoints::b1_with_eps(&set, 0.1).unwrap();
        assert_eq!(bp.points(), &[0.0, 5.0]);
        let bp = Breakpoints::b2_with_eps(&set, 0.1, B2Construction::Efficient).unwrap();
        assert_eq!(bp.points(), &[0.0, 5.0]);
    }

    #[test]
    fn bad_eps_rejected() {
        let set = small_set();
        assert!(Breakpoints::b1_with_eps(&set, 0.0).is_err());
        assert!(Breakpoints::b1_with_eps(&set, -0.1).is_err());
        assert!(Breakpoints::b1_with_eps(&set, f64::NAN).is_err());
        assert!(Breakpoints::b1_with_count(&set, 1).is_err());
        assert!(Breakpoints::b2_with_count(&set, 0, B2Construction::Efficient).is_err());
    }

    #[test]
    fn single_long_segment_spawns_multiple_breakpoints() {
        // One object, one segment carrying all the mass: B2 must cut it
        // repeatedly (the multiple-crossings-per-segment path).
        let c = PiecewiseLinear::from_points(&[(0.0, 10.0), (100.0, 10.0)]).unwrap();
        let set = TemporalSet::from_curves(vec![c]).unwrap();
        for constr in [B2Construction::Baseline, B2Construction::Efficient] {
            let bp = Breakpoints::b2_with_eps(&set, 0.1, constr).unwrap();
            // mass 1000, τ = 100 → cuts every 10 time units: 11 points.
            assert_eq!(bp.len(), 11, "{constr:?}: {:?}", bp.points());
            assert_gap_property(&set, &bp);
        }
    }
}
