//! Object-safe unification of all ranking methods for dynamic dispatch.
//!
//! [`RankMethod`] gives every method the same *query* interface; a serving
//! layer additionally needs to know, per built index, **what it is allowed
//! to route there**: is the method exact, what `(ε, α)` guarantee does it
//! carry, and up to which `k` can it answer. [`TopKMethod`] adds exactly
//! that — a [`MethodProfile`] — so a cost-based planner can hold a
//! heterogeneous `Box<dyn TopKMethod>` collection (EXACT1..3, any
//! [`crate::ApproxVariant`]) and dispatch per query.

use crate::appx::{ApproxIndex, QueryKind};
use crate::exact1::Exact1;
use crate::exact2::Exact2;
use crate::exact3::Exact3;
use crate::topk::RankMethod;

/// What a built method guarantees, in the paper's `(ε, α)` vocabulary
/// (Definition 2): answers are within additive error `εM` of the true
/// scores, and the `j`-th returned object ranks among the true top
/// `j + α − 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodProfile {
    /// `None` for exact methods; `Some(ε)` for `(ε, α)`-approximate ones
    /// (the *achieved* ε of the built breakpoints, not the requested one).
    pub eps: Option<f64>,
    /// True when every returned rank is individually `εM`-tight (`α = 1`):
    /// exact methods trivially, QUERY1-backed variants by Lemma 2, and the
    /// `+` variants through exact re-scoring (near-exact in practice,
    /// paper §3.3 / Fig. 12). Plain QUERY2 variants (`α = 2 log r`) are
    /// not.
    pub tight_ranks: bool,
    /// Largest answerable `k` (`None` = unbounded; approximate indexes are
    /// built for a fixed `kmax`).
    pub max_k: Option<usize>,
}

impl MethodProfile {
    /// Profile shared by all three exact methods.
    pub const EXACT: Self = Self { eps: None, tight_ranks: true, max_k: None };

    /// True for exact methods.
    pub fn is_exact(&self) -> bool {
        self.eps.is_none()
    }

    /// §4 ε re-validation: the breakpoints behind an approximate index were
    /// built for an *absolute* threshold `τ = ε·M_built`; once right-edge
    /// appends have grown the live mass to `M_live ≥ M_built`, that same
    /// absolute bound is the fraction `ε·M_built / M_live` of the current
    /// mass. Returns the profile restated against `live_mass`, which is
    /// what a planner must compare a client's ε-budget to. Exact profiles
    /// are unchanged; so is everything when `live_mass` is not a usable
    /// scale (≤ 0, or below the built mass — a shrunk mass would *loosen*
    /// the restated bound, and appends can only grow it).
    pub fn revalidate(self, built_mass: f64, live_mass: f64) -> Self {
        match self.eps {
            Some(eps) if live_mass > 0.0 && built_mass > 0.0 && live_mass >= built_mass => {
                Self { eps: Some(eps * built_mass / live_mass), ..self }
            }
            _ => self,
        }
    }
}

/// A [`MethodProfile`] pinned to one published index *generation* of a
/// live, append-receiving system: which epoch it belongs to and the total
/// mass `M` the structures were built over. [`GenerationProfile::current`]
/// restates the guarantee against the live mass (ε re-validation), which
/// is what makes cached approximate answers auditable between rebuilds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationProfile {
    /// Epoch counter: bumped on every epoch swap.
    pub generation: u64,
    /// `M` at build time (`TemporalSet::total_mass` of the snapshot).
    pub built_mass: f64,
    /// The built method's profile, stated against `built_mass`.
    pub profile: MethodProfile,
}

impl GenerationProfile {
    /// The profile restated against the current live mass (see
    /// [`MethodProfile::revalidate`]).
    pub fn current(&self, live_mass: f64) -> MethodProfile {
        self.profile.revalidate(self.built_mass, live_mass)
    }

    /// The absolute additive error bound `ε·M_built` carried by this
    /// generation's approximate answers (`0` for exact methods). Constant
    /// across appends — the quantity a staleness check adds appended mass
    /// on top of.
    pub fn eps_abs(&self) -> f64 {
        self.profile.eps.map_or(0.0, |e| e * self.built_mass)
    }
}

/// The object-safe interface a query planner dispatches through: the common
/// query surface of [`RankMethod`] plus the method's [`MethodProfile`].
///
/// Every built method in this workspace is `Send + Sync`, so serving
/// layers hold `Box<dyn TopKMethod + Send + Sync>` (or `Arc<dyn …>`) and
/// query one shared snapshot from many worker threads at once — the
/// storage layer underneath synchronizes block access and IO counting.
pub trait TopKMethod: RankMethod {
    /// The guarantee and limits of this built index.
    fn profile(&self) -> MethodProfile;
}

/// A heterogeneous, shareable built method — the unit serving layers
/// publish once and query from every worker.
pub type SharedMethod = Box<dyn TopKMethod + Send + Sync>;

// `Arc<M>` answers exactly like `M`, so a layer that keeps a concrete
// handle (e.g. for persistence) can publish `Box::new(Arc<M>)` as a
// [`SharedMethod`] without building the index twice.
impl<T: RankMethod + ?Sized> RankMethod for std::sync::Arc<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: crate::AggKind) -> crate::Result<crate::TopK> {
        (**self).top_k(t1, t2, k, agg)
    }
    fn size_bytes(&self) -> u64 {
        (**self).size_bytes()
    }
    fn io_stats(&self) -> chronorank_storage::IoStats {
        (**self).io_stats()
    }
    fn reset_io(&self) {
        (**self).reset_io()
    }
    fn drop_caches(&self) -> crate::Result<()> {
        (**self).drop_caches()
    }
}

impl<T: TopKMethod + ?Sized> TopKMethod for std::sync::Arc<T> {
    fn profile(&self) -> MethodProfile {
        (**self).profile()
    }
}

impl TopKMethod for Exact1 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for Exact2 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for Exact3 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for ApproxIndex {
    fn profile(&self) -> MethodProfile {
        let v = self.variant();
        MethodProfile {
            eps: Some(self.breakpoints().eps()),
            tight_ranks: v.query == QueryKind::Q1 || v.plus,
            max_k: Some(self.kmax()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_set;
    use crate::{AggKind, ApproxConfig, ApproxVariant, IndexConfig};

    #[test]
    fn all_built_methods_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Exact1>();
        assert_send_sync::<Exact2>();
        assert_send_sync::<Exact3>();
        assert_send_sync::<ApproxIndex>();
        assert_send_sync::<SharedMethod>();
    }

    #[test]
    fn one_shared_snapshot_answers_identically_from_eight_threads() {
        let set = small_set();
        let method: SharedMethod = Box::new(Exact3::build(&set, IndexConfig::default()).unwrap());
        let want = method.top_k(2.0, 12.0, 3, AggKind::Sum).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (method, want) = (&method, &want);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let got = method.top_k(2.0, 12.0, 3, AggKind::Sum).unwrap();
                        assert_eq!(got.ids(), want.ids());
                        for (a, b) in got.scores().iter().zip(want.scores()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical across threads");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn exact_methods_report_exact_profiles() {
        let set = small_set();
        let methods: Vec<Box<dyn TopKMethod>> = vec![
            Box::new(Exact1::build(&set, IndexConfig::default()).unwrap()),
            Box::new(Exact2::build(&set, IndexConfig::default()).unwrap()),
            Box::new(Exact3::build(&set, IndexConfig::default()).unwrap()),
        ];
        for m in &methods {
            let p = m.profile();
            assert!(p.is_exact(), "{}", m.name());
            assert!(p.tight_ranks && p.max_k.is_none(), "{}", m.name());
            // Dispatch through the trait object must keep answering.
            assert_eq!(m.top_k(2.0, 12.0, 2, AggKind::Sum).unwrap().len(), 2);
        }
    }

    #[test]
    fn revalidation_tightens_eps_as_mass_grows() {
        let p = MethodProfile { eps: Some(0.04), tight_ranks: false, max_k: Some(32) };
        // Mass doubled: the same absolute bound is half the fraction.
        let r = p.revalidate(100.0, 200.0);
        assert!((r.eps.unwrap() - 0.02).abs() < 1e-12);
        assert_eq!((r.tight_ranks, r.max_k), (false, Some(32)));
        // No growth → unchanged; degenerate masses → unchanged.
        assert_eq!(p.revalidate(100.0, 100.0), p);
        assert_eq!(p.revalidate(100.0, 50.0), p);
        assert_eq!(p.revalidate(0.0, 10.0), p);
        // Exact profiles are immune.
        assert_eq!(MethodProfile::EXACT.revalidate(1.0, 9.0), MethodProfile::EXACT);
    }

    #[test]
    fn generation_profiles_restate_against_live_mass() {
        let g = GenerationProfile {
            generation: 3,
            built_mass: 50.0,
            profile: MethodProfile { eps: Some(0.1), tight_ranks: true, max_k: Some(8) },
        };
        assert!((g.eps_abs() - 5.0).abs() < 1e-12);
        let now = g.current(100.0);
        assert!((now.eps.unwrap() - 0.05).abs() < 1e-12);
        let exact =
            GenerationProfile { generation: 0, built_mass: 50.0, profile: MethodProfile::EXACT };
        assert_eq!(exact.eps_abs(), 0.0);
        assert_eq!(exact.current(500.0), MethodProfile::EXACT);
    }

    #[test]
    fn approx_profiles_expose_eps_alpha_and_kmax() {
        let set = small_set();
        let cfg = ApproxConfig { r: 16, kmax: 4, ..Default::default() };
        for (v, tight) in [
            (ApproxVariant::APPX1, true),
            (ApproxVariant::APPX2, false),
            (ApproxVariant::APPX2_PLUS, true),
        ] {
            let idx = ApproxIndex::build(&set, v, cfg).unwrap();
            let p = idx.profile();
            assert!(!p.is_exact());
            assert!(p.eps.unwrap() > 0.0, "{}", v.name());
            assert_eq!(p.tight_ranks, tight, "{}", v.name());
            assert_eq!(p.max_k, Some(4));
        }
    }
}
