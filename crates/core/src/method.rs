//! Object-safe unification of all ranking methods for dynamic dispatch.
//!
//! [`RankMethod`] gives every method the same *query* interface; a serving
//! layer additionally needs to know, per built index, **what it is allowed
//! to route there**: is the method exact, what `(ε, α)` guarantee does it
//! carry, and up to which `k` can it answer. [`TopKMethod`] adds exactly
//! that — a [`MethodProfile`] — so a cost-based planner can hold a
//! heterogeneous `Box<dyn TopKMethod>` collection (EXACT1..3, any
//! [`crate::ApproxVariant`]) and dispatch per query.

use crate::appx::{ApproxIndex, QueryKind};
use crate::exact1::Exact1;
use crate::exact2::Exact2;
use crate::exact3::Exact3;
use crate::topk::RankMethod;

/// What a built method guarantees, in the paper's `(ε, α)` vocabulary
/// (Definition 2): answers are within additive error `εM` of the true
/// scores, and the `j`-th returned object ranks among the true top
/// `j + α − 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodProfile {
    /// `None` for exact methods; `Some(ε)` for `(ε, α)`-approximate ones
    /// (the *achieved* ε of the built breakpoints, not the requested one).
    pub eps: Option<f64>,
    /// True when every returned rank is individually `εM`-tight (`α = 1`):
    /// exact methods trivially, QUERY1-backed variants by Lemma 2, and the
    /// `+` variants through exact re-scoring (near-exact in practice,
    /// paper §3.3 / Fig. 12). Plain QUERY2 variants (`α = 2 log r`) are
    /// not.
    pub tight_ranks: bool,
    /// Largest answerable `k` (`None` = unbounded; approximate indexes are
    /// built for a fixed `kmax`).
    pub max_k: Option<usize>,
}

impl MethodProfile {
    /// Profile shared by all three exact methods.
    pub const EXACT: Self = Self { eps: None, tight_ranks: true, max_k: None };

    /// True for exact methods.
    pub fn is_exact(&self) -> bool {
        self.eps.is_none()
    }
}

/// The object-safe interface a query planner dispatches through: the common
/// query surface of [`RankMethod`] plus the method's [`MethodProfile`].
pub trait TopKMethod: RankMethod {
    /// The guarantee and limits of this built index.
    fn profile(&self) -> MethodProfile;
}

impl TopKMethod for Exact1 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for Exact2 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for Exact3 {
    fn profile(&self) -> MethodProfile {
        MethodProfile::EXACT
    }
}

impl TopKMethod for ApproxIndex {
    fn profile(&self) -> MethodProfile {
        let v = self.variant();
        MethodProfile {
            eps: Some(self.breakpoints().eps()),
            tight_ranks: v.query == QueryKind::Q1 || v.plus,
            max_k: Some(self.kmax()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_set;
    use crate::{AggKind, ApproxConfig, ApproxVariant, IndexConfig};

    #[test]
    fn exact_methods_report_exact_profiles() {
        let set = small_set();
        let methods: Vec<Box<dyn TopKMethod>> = vec![
            Box::new(Exact1::build(&set, IndexConfig::default()).unwrap()),
            Box::new(Exact2::build(&set, IndexConfig::default()).unwrap()),
            Box::new(Exact3::build(&set, IndexConfig::default()).unwrap()),
        ];
        for m in &methods {
            let p = m.profile();
            assert!(p.is_exact(), "{}", m.name());
            assert!(p.tight_ranks && p.max_k.is_none(), "{}", m.name());
            // Dispatch through the trait object must keep answering.
            assert_eq!(m.top_k(2.0, 12.0, 2, AggKind::Sum).unwrap().len(), 2);
        }
    }

    #[test]
    fn approx_profiles_expose_eps_alpha_and_kmax() {
        let set = small_set();
        let cfg = ApproxConfig { r: 16, kmax: 4, ..Default::default() };
        for (v, tight) in [
            (ApproxVariant::APPX1, true),
            (ApproxVariant::APPX2, false),
            (ApproxVariant::APPX2_PLUS, true),
        ] {
            let idx = ApproxIndex::build(&set, v, cfg).unwrap();
            let p = idx.profile();
            assert!(!p.is_exact());
            assert!(p.eps.unwrap() > 0.0, "{}", v.name());
            assert_eq!(p.tight_ranks, tight, "{}", v.name());
            assert_eq!(p.max_k, Some(4));
        }
    }
}
