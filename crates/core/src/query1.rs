//! QUERY1 — nested B+-tree queries over all breakpoint pairs (paper §3.2).
//!
//! For every pair of breakpoints `b_j < b_j'` (there are `r(r−1)/2`),
//! materialize the `kmax` objects with the largest `σ_i(b_j, b_j')`. A
//! top-level B+-tree indexes the left endpoint; each of its entries points
//! to a lower-level B+-tree over the right endpoints, whose entries point
//! to the stored list. A query snaps `[t1, t2]` to
//! `[B(t1), B(t2)]` with the two tree descents and reads the first
//! `⌈k·entry/B⌉` blocks of the list:
//!
//! * size `Θ(r² kmax / B)` blocks,
//! * `(ε, 1)`-approximate answers (the stored scores are *exact* on the
//!   snapped interval; Lemma 2 bounds the snapping error by `εM`),
//! * query cost `O(k/B + log_B r)` IOs — the 6–8 cold IOs of the paper's
//!   Figure 12(c).
//!
//! Construction streams objects in object-major order over a per-object
//! breakpoint-prefix row (`O(m·r)` space, `O(m·r²)` heap pushes), which
//! materializes exactly the lists the paper's `O(r)`-running-sums sweep
//! produces (DESIGN.md §5 note 4).

use crate::agg::AggKind;
use crate::breakpoints::Breakpoints;
use crate::error::{CoreError, Result};
use crate::object::{ObjectId, TemporalSet};
use crate::topk::{capped_push, check_interval, heap_into_desc, RankMethod, TopK, WorstFirst};
use chronorank_index::BPlusTree;
use chronorank_storage::{Env, IoStats, PagedFile};
use std::collections::BinaryHeap;

/// List entry: `id u32 | score f64`.
const ENTRY_LEN: usize = 12;
/// Padding id marking unused list slots (`m < kmax`).
const PAD_ID: u32 = u32::MAX;

/// The QUERY1 index (see module docs). Combined with BREAKPOINTS1 this is
/// the paper's **APPX1-B**; with BREAKPOINTS2, **APPX1**.
pub struct Query1Index {
    env: Env,
    breakpoints: Breakpoints,
    top_tree: BPlusTree,
    sub_trees: Vec<BPlusTree>,
    lists: PagedFile,
    kmax: usize,
    blocks_per_list: u64,
}

impl Query1Index {
    /// Build over `set` with the given breakpoints, storing the top-`kmax`
    /// list for each of the `r(r−1)/2` breakpoint pairs.
    pub fn build(
        env: Env,
        set: &TemporalSet,
        breakpoints: Breakpoints,
        kmax: usize,
    ) -> Result<Self> {
        if kmax == 0 {
            return Err(CoreError::BadQuery("kmax must be at least 1".into()));
        }
        let r = breakpoints.len();
        let m = set.num_objects();
        let block = env.block_size();
        let blocks_per_list = ((kmax * ENTRY_LEN) as u64).div_ceil(block as u64);

        // Per-object cumulative rows at the breakpoints (m × r doubles).
        let mut cums: Vec<f64> = Vec::with_capacity(m * r);
        for o in set.objects() {
            cums.extend(breakpoints.cums_at(&o.curve));
        }

        let lists = env.create_file("q1_lists")?;
        let mut list_buf = vec![0u8; block];
        let mut sub_trees = Vec::with_capacity(r.saturating_sub(1));
        // For each left endpoint j: one pass over all objects fills the
        // r−1−j heaps for its pairs, then the lists and sub-tree for j are
        // written out before moving on (peak memory O(r·kmax) per j).
        for j in 0..r.saturating_sub(1) {
            let npairs = r - 1 - j;
            let mut heaps: Vec<BinaryHeap<WorstFirst>> = Vec::with_capacity(npairs);
            heaps.resize_with(npairs, BinaryHeap::new);
            for i in 0..m {
                let row = &cums[i * r..(i + 1) * r];
                let base = row[j];
                for (p, &c) in row[j + 1..].iter().enumerate() {
                    capped_push(&mut heaps[p], kmax, c - base, i as ObjectId);
                }
            }
            // Write this j's lists and its sub-tree keyed by b_j'.
            let mut loader =
                BPlusTree::bulk_loader(env.create_file(&format!("q1_sub_{j:06}"))?, 8)?;
            for (p, heap) in heaps.into_iter().enumerate() {
                let jp = j + 1 + p;
                let entries = heap_into_desc(heap);
                let start = lists.allocate(blocks_per_list)?;
                write_list(&lists, &mut list_buf, start, kmax, &entries)?;
                loader.push(breakpoints.points()[jp], &start.to_le_bytes())?;
            }
            sub_trees.push(loader.finish()?);
        }
        drop(cums);

        // Top-level tree: left endpoints b_0 … b_{r−2} → sub-tree index.
        let mut loader = BPlusTree::bulk_loader(env.create_file("q1_top")?, 4)?;
        for (j, &b) in breakpoints.points()[..r.saturating_sub(1)].iter().enumerate() {
            loader.push(b, &(j as u32).to_le_bytes())?;
        }
        let top_tree = loader.finish()?;
        Ok(Self { env, breakpoints, top_tree, sub_trees, lists, kmax, blocks_per_list })
    }

    /// Build from an object stream without materializing the dataset (the
    /// paper-scale path). Where [`Query1Index::build`] keeps the full
    /// `m × r` cumulative matrix and passes over it `r−1` times, this makes
    /// **one** object-major pass holding all `r(r−1)/2` pair heaps
    /// (`O(r² kmax)` memory — the size of the final index, independent of
    /// `m` and `N`). Each heap sees the same objects in the same order as
    /// the in-memory build, so the resulting lists are identical.
    pub fn build_streaming<I>(
        env: Env,
        objects: I,
        breakpoints: Breakpoints,
        kmax: usize,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = crate::object::TemporalObject>,
    {
        if kmax == 0 {
            return Err(CoreError::BadQuery("kmax must be at least 1".into()));
        }
        let r = breakpoints.len();
        let block = env.block_size();
        let blocks_per_list = ((kmax * ENTRY_LEN) as u64).div_ceil(block as u64);

        // Flat heap table over all pairs: pair (j, j+1+p) lives at
        // pair_base(j) + p.
        let npairs_total = r * r.saturating_sub(1) / 2;
        let pair_base = |j: usize| j * (2 * r - 1 - j) / 2;
        let mut heaps: Vec<BinaryHeap<WorstFirst>> = Vec::with_capacity(npairs_total);
        heaps.resize_with(npairs_total, BinaryHeap::new);
        for o in objects {
            let row = breakpoints.cums_at(&o.curve);
            for j in 0..r.saturating_sub(1) {
                let base = row[j];
                let at = pair_base(j);
                for (p, &c) in row[j + 1..].iter().enumerate() {
                    capped_push(&mut heaps[at + p], kmax, c - base, o.id);
                }
            }
        }

        // Drain in j-major order — the same list/sub-tree layout the
        // in-memory build writes.
        let lists = env.create_file("q1_lists")?;
        let mut list_buf = vec![0u8; block];
        let mut sub_trees = Vec::with_capacity(r.saturating_sub(1));
        let mut heap_it = heaps.into_iter();
        for j in 0..r.saturating_sub(1) {
            let mut loader =
                BPlusTree::bulk_loader(env.create_file(&format!("q1_sub_{j:06}"))?, 8)?;
            for p in 0..(r - 1 - j) {
                let jp = j + 1 + p;
                let heap = heap_it.next().expect("pair table sized r(r-1)/2");
                let entries = heap_into_desc(heap);
                let start = lists.allocate(blocks_per_list)?;
                write_list(&lists, &mut list_buf, start, kmax, &entries)?;
                loader.push(breakpoints.points()[jp], &start.to_le_bytes())?;
            }
            sub_trees.push(loader.finish()?);
        }

        let mut loader = BPlusTree::bulk_loader(env.create_file("q1_top")?, 4)?;
        for (j, &b) in breakpoints.points()[..r.saturating_sub(1)].iter().enumerate() {
            loader.push(b, &(j as u32).to_le_bytes())?;
        }
        let top_tree = loader.finish()?;
        Ok(Self { env, breakpoints, top_tree, sub_trees, lists, kmax, blocks_per_list })
    }

    /// Maximum `k` this index can answer.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// The breakpoints this index snaps to.
    pub fn breakpoints(&self) -> &Breakpoints {
        &self.breakpoints
    }

    /// Storage environment (shared IO counter).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Read the top-`k` prefix of the list for the snapped interval; `None`
    /// when `t1` snaps past the last left endpoint (empty snapped interval).
    fn lookup(&self, t1: f64, t2: f64, k: usize) -> Result<Option<Vec<(ObjectId, f64)>>> {
        // Descent 1: B(t1) in the top-level tree.
        let cur = self.top_tree.seek(t1)?;
        if !cur.valid() {
            return Ok(None);
        }
        let j = u32::from_le_bytes(cur.payload().try_into().expect("4")) as usize;
        // Descent 2: B(t2) in the sub-tree (clamped to the last breakpoint
        // when t2 exceeds the domain, per B(t) = smallest breakpoint ≥ t,
        // which is T itself for t ≥ T).
        let sub = &self.sub_trees[j];
        let cur2 = sub.seek(t2)?;
        let start = if cur2.valid() {
            u64::from_le_bytes(cur2.payload().try_into().expect("8"))
        } else {
            match sub.last_entry()? {
                Some((_, p)) => u64::from_le_bytes(p.as_slice().try_into().expect("8")),
                None => return Ok(None),
            }
        };
        Ok(Some(read_list(&self.lists, start, self.blocks_per_list, k)?))
    }
}

/// Write one fixed-size list (`kmax` slots, unused slots padded).
pub(crate) fn write_list(
    lists: &PagedFile,
    buf: &mut [u8],
    start: u64,
    kmax: usize,
    entries: &[(ObjectId, f64)],
) -> Result<()> {
    let block = buf.len();
    let per_block = block / ENTRY_LEN;
    let blocks = ((kmax * ENTRY_LEN) as u64).div_ceil(block as u64);
    let mut it = entries.iter();
    for b in 0..blocks {
        buf.fill(0);
        for slot in 0..per_block {
            let global = b as usize * per_block + slot;
            if global >= kmax {
                break;
            }
            let off = slot * ENTRY_LEN;
            match it.next() {
                Some(&(id, score)) => {
                    buf[off..off + 4].copy_from_slice(&id.to_le_bytes());
                    buf[off + 4..off + 12].copy_from_slice(&score.to_le_bytes());
                }
                None => {
                    buf[off..off + 4].copy_from_slice(&PAD_ID.to_le_bytes());
                }
            }
        }
        lists.write(start + b, buf)?;
    }
    Ok(())
}

/// Read the first `k` real entries of a list.
pub(crate) fn read_list(
    lists: &PagedFile,
    start: u64,
    blocks_per_list: u64,
    k: usize,
) -> Result<Vec<(ObjectId, f64)>> {
    let block = lists.block_size();
    let per_block = block / ENTRY_LEN;
    let mut buf = vec![0u8; block];
    let mut out = Vec::with_capacity(k);
    let need_blocks = (k as u64).div_ceil(per_block as u64).min(blocks_per_list);
    'outer: for b in 0..need_blocks {
        lists.read(start + b, &mut buf)?;
        for slot in 0..per_block {
            if out.len() >= k {
                break 'outer;
            }
            let off = slot * ENTRY_LEN;
            let id = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4"));
            if id == PAD_ID {
                break 'outer;
            }
            let score = f64::from_le_bytes(buf[off + 4..off + 12].try_into().expect("8"));
            out.push((id, score));
        }
    }
    Ok(out)
}

impl RankMethod for Query1Index {
    fn name(&self) -> String {
        "QUERY1".into()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        if k > self.kmax {
            return Err(CoreError::BadQuery(format!(
                "k = {k} exceeds kmax = {} this index was built for",
                self.kmax
            )));
        }
        let entries = match self.lookup(t1, t2, k)? {
            Some(e) => e,
            None => return Ok(TopK::from_ranked(Vec::new())),
        };
        let top = TopK::from_ranked(entries);
        Ok(match agg {
            AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
            _ => top,
        })
    }

    fn size_bytes(&self) -> u64 {
        self.top_tree.size_bytes()
            + self.sub_trees.iter().map(|t| t.size_bytes()).sum::<u64>()
            + self.lists.size_bytes()
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        self.top_tree.file().drop_cache()?;
        for t in &self.sub_trees {
            t.file().drop_cache()?;
        }
        self.lists.drop_cache()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::B2Construction;
    use crate::test_support::small_set;
    use chronorank_storage::StoreConfig;

    fn build(r: usize, kmax: usize) -> (crate::TemporalSet, Query1Index) {
        let set = small_set();
        let bp = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).unwrap();
        let env = Env::mem(StoreConfig::default());
        let idx = Query1Index::build(env, &set, bp, kmax).unwrap();
        (set, idx)
    }

    #[test]
    fn snapped_scores_are_exact_on_snapped_interval() {
        let (set, idx) = build(24, 5);
        let bp = idx.breakpoints().clone();
        for &(a, b) in crate::test_support::INTERVALS {
            let got = idx.top_k(a, b, 3, AggKind::Sum).unwrap();
            // Reconstruct the snapped interval the same way lookup does.
            let b1 = bp.snap(a);
            let j1 = bp.snap_idx(a);
            if j1 >= bp.len() - 1 {
                assert!(got.is_empty());
                continue;
            }
            let mut b2 = bp.snap(b.max(b1));
            if bp.snap_idx(b) <= j1 {
                b2 = bp.points()[j1 + 1];
            }
            let want = set.top_k_bruteforce(b1, b2, 3);
            crate::test_support::assert_same_answer(&want, &got, &format!("Q1 [{a},{b}]"));
        }
    }

    #[test]
    fn epsilon_guarantee_holds() {
        // (ε,1): |σ̃_j − σ_A(j)| ≤ εM at every rank (Definition 2 via
        // Lemma 2 + appendix Lemma 6).
        let (set, idx) = build(24, 6);
        let em = idx.breakpoints().eps() * idx.breakpoints().mass();
        for &(a, b) in &[(1.0, 9.0), (0.0, 20.0), (4.0, 16.0), (2.5, 3.5)] {
            let approx = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            let exact = set.top_k_bruteforce(a, b, 4);
            for j in 0..approx.len() {
                let (_, sa) = approx.rank(j);
                let (_, se) = exact.rank(j);
                assert!(
                    (sa - se).abs() <= em * (1.0 + 1e-9) + 1e-9,
                    "[{a},{b}] rank {j}: approx {sa} vs exact {se}, εM = {em}"
                );
            }
        }
    }

    #[test]
    fn k_beyond_kmax_is_rejected() {
        let (_, idx) = build(12, 4);
        assert!(idx.top_k(0.0, 10.0, 5, AggKind::Sum).is_err());
        assert!(idx.top_k(0.0, 10.0, 4, AggKind::Sum).is_ok());
    }

    #[test]
    fn interval_past_domain_is_empty() {
        let (_, idx) = build(12, 4);
        let got = idx.top_k(1e9, 2e9, 3, AggKind::Sum).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn t2_past_domain_clamps_to_last_breakpoint() {
        let (set, idx) = build(16, 4);
        let got = idx.top_k(5.0, 1e9, 3, AggKind::Sum).unwrap();
        let b1 = idx.breakpoints().snap(5.0);
        let want = set.top_k_bruteforce(b1, set.t_max(), 3);
        crate::test_support::assert_same_answer(&want, &got, "Q1 clamped t2");
    }

    #[test]
    fn query_costs_constant_ios() {
        let (_, idx) = build(32, 8);
        idx.drop_caches().unwrap();
        idx.reset_io();
        idx.top_k(3.0, 15.0, 8, AggKind::Sum).unwrap();
        let reads = idx.io_stats().reads;
        assert!(reads <= 8, "QUERY1 cold query took {reads} reads (paper: 6-8)");
    }

    #[test]
    fn avg_agg_divides_by_true_length() {
        let (_, idx) = build(16, 4);
        let sum = idx.top_k(2.0, 12.0, 2, AggKind::Sum).unwrap();
        let avg = idx.top_k(2.0, 12.0, 2, AggKind::Avg).unwrap();
        assert_eq!(sum.ids(), avg.ids());
        assert!((avg.rank(0).1 - sum.rank(0).1 / 10.0).abs() < 1e-12);
    }
}
