//! QUERY2 — dyadic interval queries (paper §3.2).
//!
//! Instead of all `r(r−1)/2` breakpoint pairs, materialize top-`kmax`
//! lists only for the **dyadic intervals** over the `r−1` breakpoint gaps
//! (the spans of a balanced binary tree's nodes — fewer than `2r + log r`
//! of them). Any snapped query interval `[B(t1), B(t2)]` is the disjoint
//! union of at most `2 log r` dyadic intervals; the query unions their
//! top-k prefixes into a candidate set `K` (summing the scores of objects
//! appearing in several pieces) and returns the top `k` of `K`.
//!
//! * size `Θ(r·kmax/B)` blocks — **1–2 orders smaller than QUERY1**,
//! * `(ε, 2 log r)`-approximate (Lemma 4: an object may have only a
//!   `1/(2 log r)` fraction of its mass visible in any single piece, but
//!   in practice accuracy is close to QUERY1 — paper Fig. 12),
//! * query cost `O(k log r)` IOs.
//!
//! The `+` variant (APPX2+) re-scores each candidate in `K` exactly with an
//! EXACT2 lookup, trading `O(k log r log_B n)` extra IOs for near-exact
//! answers; see [`crate::ApproxIndex`].

use crate::agg::AggKind;
use crate::breakpoints::Breakpoints;
use crate::error::{CoreError, Result};
use crate::object::{ObjectId, TemporalSet};
use crate::topk::{
    capped_push, check_interval, heap_into_desc, top_k_from_scores, RankMethod, TopK, WorstFirst,
};
use chronorank_index::BPlusTree;
use chronorank_storage::{Env, IoStats, PagedFile};
use std::collections::{BinaryHeap, HashMap};

/// List entry: `id u32 | score f64`.
const ENTRY_LEN: usize = 12;
/// Directory sentinel for dead (fully padded-out) nodes.
const NO_LIST: u64 = u64::MAX;

/// One node of the implicit dyadic tree (heap order, root = 0).
#[derive(Debug, Clone, Copy)]
struct Node {
    /// First gap covered.
    lo: u32,
    /// One past the last *real* gap covered.
    hi: u32,
    /// First block of the node's top-`kmax` list (`NO_LIST` if dead).
    list_start: u64,
}

/// The QUERY2 index (see module docs). With BREAKPOINTS1 this is the
/// paper's **APPX2-B**; with BREAKPOINTS2, **APPX2**.
pub struct Query2Index {
    env: Env,
    breakpoints: Breakpoints,
    /// B+-tree over all `r` breakpoints (payload: index) used to snap
    /// query endpoints with real IOs.
    bp_tree: BPlusTree,
    /// Implicit binary tree over the padded gap range `[0, pad)`.
    nodes: Vec<Node>,
    /// Number of real gaps (`r − 1`).
    #[allow(dead_code)] // read by tests and diagnostics
    gaps: usize,
    /// Padded power-of-two leaf count.
    #[allow(dead_code)] // read by tests and diagnostics
    pad: usize,
    lists: PagedFile,
    kmax: usize,
    blocks_per_list: u64,
}

impl Query2Index {
    /// Build over `set` with the given breakpoints.
    pub fn build(
        env: Env,
        set: &TemporalSet,
        breakpoints: Breakpoints,
        kmax: usize,
    ) -> Result<Self> {
        if kmax == 0 {
            return Err(CoreError::BadQuery("kmax must be at least 1".into()));
        }
        let r = breakpoints.len();
        let gaps = r - 1;
        let pad = gaps.next_power_of_two().max(1);
        let total_nodes = 2 * pad - 1;
        let block = env.block_size();
        let blocks_per_list = ((kmax * ENTRY_LEN) as u64).div_ceil(block as u64);

        // Node spans in heap order.
        let mut nodes = Vec::with_capacity(total_nodes);
        build_spans(0, 0, pad as u32, gaps as u32, total_nodes, &mut nodes);

        // Top-kmax heaps for the live nodes, filled object-major from each
        // object's breakpoint-cumulative row (the single linear sweep of
        // the paper, recast; O(m · #nodes) pushes).
        let mut heaps: Vec<BinaryHeap<WorstFirst>> = Vec::with_capacity(total_nodes);
        heaps.resize_with(total_nodes, BinaryHeap::new);
        for o in set.objects() {
            let row = breakpoints.cums_at(&o.curve);
            for (ni, node) in nodes.iter().enumerate() {
                if node.lo >= node.hi {
                    continue; // dead padding node
                }
                let s = row[node.hi as usize] - row[node.lo as usize];
                capped_push(&mut heaps[ni], kmax, s, o.id);
            }
        }

        // Persist the lists.
        let lists = env.create_file("q2_lists")?;
        let mut buf = vec![0u8; block];
        for (ni, heap) in heaps.into_iter().enumerate() {
            if nodes[ni].lo >= nodes[ni].hi {
                nodes[ni].list_start = NO_LIST;
                continue;
            }
            let entries = heap_into_desc(heap);
            let start = lists.allocate(blocks_per_list)?;
            crate::query1::write_list(&lists, &mut buf, start, kmax, &entries)?;
            nodes[ni].list_start = start;
        }

        // Breakpoint directory tree (for IO-honest snapping).
        let mut loader = BPlusTree::bulk_loader(env.create_file("q2_bp")?, 4)?;
        for (j, &b) in breakpoints.points().iter().enumerate() {
            loader.push(b, &(j as u32).to_le_bytes())?;
        }
        let bp_tree = loader.finish()?;
        Ok(Self { env, breakpoints, bp_tree, nodes, gaps, pad, lists, kmax, blocks_per_list })
    }

    /// Build from an object stream without materializing the dataset (the
    /// paper-scale path). The in-memory build is already object-major —
    /// each object contributes its breakpoint-cumulative row to the tiny
    /// per-node heaps and is dropped — so this is the same loop over an
    /// iterator; peak memory is `O(r·kmax)` heaps plus one curve.
    pub fn build_streaming<I>(
        env: Env,
        objects: I,
        breakpoints: Breakpoints,
        kmax: usize,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = crate::object::TemporalObject>,
    {
        if kmax == 0 {
            return Err(CoreError::BadQuery("kmax must be at least 1".into()));
        }
        let r = breakpoints.len();
        let gaps = r - 1;
        let pad = gaps.next_power_of_two().max(1);
        let total_nodes = 2 * pad - 1;
        let block = env.block_size();
        let blocks_per_list = ((kmax * ENTRY_LEN) as u64).div_ceil(block as u64);

        let mut nodes = Vec::with_capacity(total_nodes);
        build_spans(0, 0, pad as u32, gaps as u32, total_nodes, &mut nodes);

        let mut heaps: Vec<BinaryHeap<WorstFirst>> = Vec::with_capacity(total_nodes);
        heaps.resize_with(total_nodes, BinaryHeap::new);
        for o in objects {
            let row = breakpoints.cums_at(&o.curve);
            for (ni, node) in nodes.iter().enumerate() {
                if node.lo >= node.hi {
                    continue;
                }
                let s = row[node.hi as usize] - row[node.lo as usize];
                capped_push(&mut heaps[ni], kmax, s, o.id);
            }
        }

        let lists = env.create_file("q2_lists")?;
        let mut buf = vec![0u8; block];
        for (ni, heap) in heaps.into_iter().enumerate() {
            if nodes[ni].lo >= nodes[ni].hi {
                nodes[ni].list_start = NO_LIST;
                continue;
            }
            let entries = heap_into_desc(heap);
            let start = lists.allocate(blocks_per_list)?;
            crate::query1::write_list(&lists, &mut buf, start, kmax, &entries)?;
            nodes[ni].list_start = start;
        }

        let mut loader = BPlusTree::bulk_loader(env.create_file("q2_bp")?, 4)?;
        for (j, &b) in breakpoints.points().iter().enumerate() {
            loader.push(b, &(j as u32).to_le_bytes())?;
        }
        let bp_tree = loader.finish()?;
        Ok(Self { env, breakpoints, bp_tree, nodes, gaps, pad, lists, kmax, blocks_per_list })
    }

    /// Maximum `k` this index can answer.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// The breakpoints this index snaps to.
    pub fn breakpoints(&self) -> &Breakpoints {
        &self.breakpoints
    }

    /// Storage environment (shared IO counter).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Number of dyadic nodes with materialized lists.
    pub fn num_live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.list_start != NO_LIST).count()
    }

    /// Snap `t` to a breakpoint index through the directory tree.
    fn snap_via_tree(&self, t: f64) -> Result<Option<usize>> {
        let cur = self.bp_tree.seek(t)?;
        if cur.valid() {
            Ok(Some(u32::from_le_bytes(cur.payload().try_into().expect("4")) as usize))
        } else {
            Ok(None)
        }
    }

    /// The candidate set `K` for a query: summed visible scores per object
    /// over the ≤ `2 log r` dyadic pieces (each contributing its top-`k`).
    /// Returns `None` when the snapped interval is empty. Public within the
    /// crate so APPX2+ can re-score the same candidates exactly.
    pub(crate) fn candidates(
        &self,
        t1: f64,
        t2: f64,
        k: usize,
    ) -> Result<Option<HashMap<ObjectId, f64>>> {
        let j1 = match self.snap_via_tree(t1)? {
            Some(j) => j,
            None => return Ok(None), // t1 beyond T
        };
        let j2 = match self.snap_via_tree(t2)? {
            Some(j) => j,
            None => self.breakpoints.len() - 1, // clamp: B(t2) = T
        };
        if j2 <= j1 {
            // Degenerate snapped interval: cover the single gap at j1 (both
            // endpoint changes stay within the εM bound; cf. QUERY1).
            if j1 + 1 >= self.breakpoints.len() {
                return Ok(None);
            }
            return self.gather(j1, j1 + 1, k).map(Some);
        }
        self.gather(j1, j2, k).map(Some)
    }

    /// Union the top-`k` prefixes of the canonical cover of gaps
    /// `[g1, g2)`, summing duplicate objects' scores.
    fn gather(&self, g1: usize, g2: usize, k: usize) -> Result<HashMap<ObjectId, f64>> {
        let mut pieces = Vec::new();
        canonical_cover(&self.nodes, 0, g1 as u32, g2 as u32, &mut pieces);
        let mut cand: HashMap<ObjectId, f64> = HashMap::new();
        for ni in pieces {
            let node = self.nodes[ni];
            if node.list_start == NO_LIST {
                continue;
            }
            let entries =
                crate::query1::read_list(&self.lists, node.list_start, self.blocks_per_list, k)?;
            for (id, s) in entries {
                *cand.entry(id).or_insert(0.0) += s;
            }
        }
        Ok(cand)
    }
}

/// Fill `nodes` (heap order) with each node's `[lo, hi)` real-gap span.
fn build_spans(idx: usize, lo: u32, width: u32, gaps: u32, total: usize, nodes: &mut Vec<Node>) {
    if nodes.len() <= idx {
        nodes.resize(total, Node { lo: 0, hi: 0, list_start: NO_LIST });
    }
    nodes[idx] = Node { lo: lo.min(gaps), hi: (lo + width).min(gaps), list_start: NO_LIST };
    if width > 1 {
        let half = width / 2;
        build_spans(2 * idx + 1, lo, half, gaps, total, nodes);
        build_spans(2 * idx + 2, lo + half, half, gaps, total, nodes);
    }
}

/// Canonical segment-tree cover of `[g1, g2)`: at most `2 log r` nodes.
fn canonical_cover(nodes: &[Node], idx: usize, g1: u32, g2: u32, out: &mut Vec<usize>) {
    let node = nodes[idx];
    // Use the *padded* span for descent decisions.
    let (a, b) = padded_span(nodes.len(), idx);
    if b <= g1 || a >= g2 {
        return;
    }
    if g1 <= a && b <= g2 {
        if node.lo < node.hi {
            out.push(idx);
        }
        return;
    }
    canonical_cover(nodes, 2 * idx + 1, g1, g2, out);
    canonical_cover(nodes, 2 * idx + 2, g1, g2, out);
}

/// The padded `[a, b)` gap span of heap node `idx` in a tree with
/// `total = 2·pad − 1` nodes.
fn padded_span(total: usize, idx: usize) -> (u32, u32) {
    let pad = total.div_ceil(2);
    // depth and offset of idx in the implicit heap
    let depth = (idx + 1).ilog2();
    let first_at_depth = (1usize << depth) - 1;
    let offset = idx - first_at_depth;
    let width = (pad >> depth) as u32;
    ((offset as u32) * width, (offset as u32 + 1) * width)
}

impl RankMethod for Query2Index {
    fn name(&self) -> String {
        "QUERY2".into()
    }

    fn top_k(&self, t1: f64, t2: f64, k: usize, agg: AggKind) -> Result<TopK> {
        check_interval(t1, t2)?;
        if k > self.kmax {
            return Err(CoreError::BadQuery(format!(
                "k = {k} exceeds kmax = {} this index was built for",
                self.kmax
            )));
        }
        let cand = match self.candidates(t1, t2, k)? {
            Some(c) => c,
            None => return Ok(TopK::from_ranked(Vec::new())),
        };
        let top = top_k_from_scores(cand.into_iter(), k);
        Ok(match agg {
            AggKind::Avg if t2 > t1 => top.into_avg(t2 - t1),
            _ => top,
        })
    }

    fn size_bytes(&self) -> u64 {
        self.bp_tree.size_bytes() + self.lists.size_bytes()
    }

    fn io_stats(&self) -> IoStats {
        self.env.io_stats()
    }

    fn reset_io(&self) {
        self.env.reset_io()
    }

    fn drop_caches(&self) -> Result<()> {
        self.bp_tree.file().drop_cache()?;
        self.lists.drop_cache()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::B2Construction;
    use crate::test_support::small_set;
    use chronorank_storage::StoreConfig;

    fn build(r: usize, kmax: usize) -> (crate::TemporalSet, Query2Index) {
        let set = small_set();
        let bp = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).unwrap();
        let env = Env::mem(StoreConfig::default());
        let idx = Query2Index::build(env, &set, bp, kmax).unwrap();
        (set, idx)
    }

    #[test]
    fn dyadic_node_count_is_linear_in_r() {
        let (_, idx) = build(24, 4);
        let r = idx.breakpoints().len();
        assert!(
            idx.num_live_nodes() <= 2 * r + (r as f64).log2() as usize + 2,
            "live nodes {} vs bound for r = {r}",
            idx.num_live_nodes()
        );
    }

    #[test]
    fn canonical_cover_is_disjoint_and_complete() {
        let (_, idx) = build(20, 4);
        let gaps = idx.gaps;
        for g1 in 0..gaps {
            for g2 in g1 + 1..=gaps {
                let mut pieces = Vec::new();
                canonical_cover(&idx.nodes, 0, g1 as u32, g2 as u32, &mut pieces);
                // Bound: ≤ 2 log2(pad) pieces.
                let bound = 2 * (idx.pad.max(2) as f64).log2().ceil() as usize + 2;
                assert!(pieces.len() <= bound, "[{g1},{g2}): {} pieces", pieces.len());
                // Disjoint and exactly covering [g1, g2).
                let mut covered: Vec<(u32, u32)> =
                    pieces.iter().map(|&ni| (idx.nodes[ni].lo, idx.nodes[ni].hi)).collect();
                covered.sort();
                let mut at = g1 as u32;
                for (lo, hi) in covered {
                    assert_eq!(lo, at, "gap in cover of [{g1},{g2})");
                    at = hi;
                }
                assert_eq!(at, g2 as u32, "cover of [{g1},{g2}) ends early");
            }
        }
    }

    #[test]
    fn finds_heavy_hitters() {
        // On [4, 8] object o1 carries ~4× the mass of the runner-up, so it
        // must be the top-1 of every dyadic piece it appears in and win.
        // (On wider windows QUERY2 may legitimately miss a diffuse winner —
        // that is exactly the 2 log r factor; see guarantee_eps_2logr.)
        let (set, idx) = build(24, 6);
        let exact = set.top_k_bruteforce(4.0, 8.0, 1);
        let approx = idx.top_k(4.0, 8.0, 1, AggKind::Sum).unwrap();
        assert_eq!(exact.ids(), approx.ids());
        assert_eq!(exact.ids(), vec![1]);
    }

    #[test]
    fn guarantee_eps_2logr() {
        // Definition 2 with α = 2 log r: σ̃_j ≥ σ_A(j)/α − εM and
        // σ̃_j ≤ σ_A(j) + εM at every rank.
        let (set, idx) = build(24, 6);
        let bp = idx.breakpoints();
        let em = bp.eps() * bp.mass();
        let alpha = 2.0 * (bp.len() as f64).log2().max(1.0);
        for &(a, b) in &[(1.0, 9.0), (0.0, 20.0), (4.0, 16.0), (2.0, 18.0)] {
            let approx = idx.top_k(a, b, 4, AggKind::Sum).unwrap();
            let exact = set.top_k_bruteforce(a, b, 4);
            for j in 0..approx.len().min(exact.len()) {
                let (_, sa) = approx.rank(j);
                let (_, se) = exact.rank(j);
                let slack = 1e-9 * (1.0 + se.abs());
                assert!(
                    sa >= se / alpha - em - slack,
                    "[{a},{b}] rank {j}: {sa} < {se}/{alpha} − εM({em})"
                );
                assert!(sa <= se + em + slack, "[{a},{b}] rank {j}: {sa} > {se} + εM({em})");
            }
        }
    }

    #[test]
    fn candidate_set_bounded_by_2klogr() {
        let (_, idx) = build(24, 8);
        let k = 4;
        let cand = idx.candidates(1.0, 19.0, k).unwrap().unwrap();
        let bound = 2 * k * (idx.pad.max(2) as f64).log2().ceil() as usize + 2 * k;
        assert!(cand.len() <= bound, "|K| = {} exceeds 2k log r ≈ {bound}", cand.len());
    }

    #[test]
    fn interval_past_domain_is_empty() {
        let (_, idx) = build(12, 4);
        assert!(idx.top_k(1e9, 2e9, 3, AggKind::Sum).unwrap().is_empty());
    }

    #[test]
    fn k_beyond_kmax_is_rejected() {
        let (_, idx) = build(12, 4);
        assert!(idx.top_k(0.0, 10.0, 9, AggKind::Sum).is_err());
    }

    #[test]
    fn index_is_much_smaller_than_query1() {
        let set = small_set();
        let bp = Breakpoints::b2_with_count(&set, 32, B2Construction::Efficient).unwrap();
        let q1 =
            Query1Index::build(Env::mem(StoreConfig::default()), &set, bp.clone(), 16).unwrap();
        let q2 = Query2Index::build(Env::mem(StoreConfig::default()), &set, bp, 16).unwrap();
        assert!(
            q2.size_bytes() * 2 < q1.size_bytes(),
            "Q2 ({}) should be far smaller than Q1 ({})",
            q2.size_bytes(),
            q1.size_bytes()
        );
    }

    use crate::query1::Query1Index;
}
