//! Neutral random-walk dataset, including the **negative-score** variant
//! used to exercise the paper's §4 extension.

use crate::util::gaussian;
use crate::DatasetGenerator;
use chronorank_core::{ObjectId, TemporalObject};
use chronorank_curve::PiecewiseLinear;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`RandomWalkGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkConfig {
    /// Number of objects.
    pub objects: usize,
    /// Segments per object.
    pub segments: usize,
    /// Step volatility.
    pub volatility: f64,
    /// Allow the walk to cross below zero (negative scores, §4).
    pub allow_negative: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        Self { objects: 100, segments: 100, volatility: 1.0, allow_negative: false, seed: 42 }
    }
}

/// Generates mean-reverting random walks.
#[derive(Debug, Clone)]
pub struct RandomWalkGenerator {
    config: RandomWalkConfig,
}

impl RandomWalkGenerator {
    /// Create a generator for `config`.
    pub fn new(config: RandomWalkConfig) -> Self {
        assert!(config.objects > 0);
        assert!(config.segments >= 1);
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> RandomWalkConfig {
        self.config
    }
}

impl DatasetGenerator for RandomWalkGenerator {
    fn generate(&self) -> Vec<TemporalObject> {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut out = Vec::with_capacity(c.objects);
        for id in 0..c.objects {
            let mut level = if c.allow_negative { 0.0 } else { 10.0 };
            let jitter = rng.random_range(0.0..0.5);
            let mut points = Vec::with_capacity(c.segments + 1);
            for s in 0..=c.segments {
                let t = s as f64 + jitter;
                points.push((t, level));
                level += c.volatility * gaussian(&mut rng) - 0.02 * level;
                if !c.allow_negative {
                    level = level.max(0.0);
                }
            }
            let curve = PiecewiseLinear::from_points(&points).expect("increasing times");
            out.push(TemporalObject { id: id as ObjectId, curve });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = RandomWalkConfig { objects: 10, segments: 50, ..Default::default() };
        let set = RandomWalkGenerator::new(cfg).generate_set();
        assert_eq!(set.num_objects(), 10);
        assert_eq!(set.num_segments(), 500);
        assert!(!set.has_negative());
        assert_eq!(
            RandomWalkGenerator::new(cfg).generate(),
            RandomWalkGenerator::new(cfg).generate()
        );
    }

    #[test]
    fn negative_variant_crosses_zero() {
        let cfg = RandomWalkConfig {
            objects: 20,
            segments: 100,
            allow_negative: true,
            ..Default::default()
        };
        let set = RandomWalkGenerator::new(cfg).generate_set();
        assert!(set.has_negative(), "walks starting at 0 must dip below");
        assert!(set.total_mass() > 0.0);
    }
}
