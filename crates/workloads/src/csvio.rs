//! CSV import/export for temporal datasets.
//!
//! The bridge for running `chronorank` on *real* data (e.g. an actual
//! MesoWest export): a minimal, dependency-free reader/writer for the
//! three-column format
//!
//! ```csv
//! object_id,time,value
//! 0,0.0,281.5
//! 0,3600.0,282.1
//! 1,120.0,279.9
//! ```
//!
//! Rows may arrive grouped by object in any object order; within an
//! object, times must be strictly increasing (the paper's preprocessing —
//! "connect all consecutive readings" — is applied verbatim). Object ids
//! are remapped densely in first-appearance order; the mapping is
//! returned so answers can be translated back.

use crate::DatasetGenerator;
use chronorank_core::{ObjectId, TemporalObject};
use chronorank_curve::PiecewiseLinear;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};

/// Errors raised while parsing a dataset CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed row (message includes the 1-based line number).
    Parse(String),
    /// A structurally invalid object (too few points, non-increasing
    /// times).
    BadObject(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io: {e}"),
            CsvError::Parse(m) => write!(f, "csv parse: {m}"),
            CsvError::BadObject(m) => write!(f, "csv object: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// A dataset parsed from CSV, with the original→dense id mapping.
#[derive(Debug)]
pub struct CsvDataset {
    /// The parsed objects (dense ids).
    pub objects: Vec<TemporalObject>,
    /// `original id string → dense ObjectId`.
    pub id_map: HashMap<String, ObjectId>,
}

impl DatasetGenerator for CsvDataset {
    fn generate(&self) -> Vec<TemporalObject> {
        self.objects.clone()
    }
}

/// Read a `object_id,time,value` CSV (header optional) from any reader.
pub fn read_csv(reader: impl BufRead) -> Result<CsvDataset, CsvError> {
    let mut per_object: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut id_map: HashMap<String, ObjectId> = HashMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let (id_s, t_s, v_s) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(c)) => (a.trim(), b.trim(), c.trim()),
            _ => {
                return Err(CsvError::Parse(format!(
                    "line {}: expected 3 comma-separated fields, got {line:?}",
                    lineno + 1
                )))
            }
        };
        // Skip a header row.
        if lineno == 0 && t_s.parse::<f64>().is_err() {
            continue;
        }
        let t: f64 = t_s
            .parse()
            .map_err(|_| CsvError::Parse(format!("line {}: bad time {t_s:?}", lineno + 1)))?;
        let v: f64 = v_s
            .parse()
            .map_err(|_| CsvError::Parse(format!("line {}: bad value {v_s:?}", lineno + 1)))?;
        let next_id = per_object.len() as ObjectId;
        let dense = *id_map.entry(id_s.to_string()).or_insert(next_id);
        if dense as usize == per_object.len() {
            per_object.push(Vec::new());
        }
        per_object[dense as usize].push((t, v));
    }
    let mut objects = Vec::with_capacity(per_object.len());
    for (i, pts) in per_object.into_iter().enumerate() {
        let curve = PiecewiseLinear::from_points(&pts)
            .map_err(|e| CsvError::BadObject(format!("object #{i}: {e}")))?;
        objects.push(TemporalObject { id: i as ObjectId, curve });
    }
    if objects.is_empty() {
        return Err(CsvError::BadObject("no data rows found".into()));
    }
    Ok(CsvDataset { objects, id_map })
}

/// Read a dataset CSV from a file path.
pub fn read_csv_file(path: &std::path::Path) -> Result<CsvDataset, CsvError> {
    read_csv(std::io::BufReader::new(std::fs::File::open(path)?))
}

/// Write objects as `object_id,time,value` rows (with header).
pub fn write_csv(objects: &[TemporalObject], writer: impl Write) -> Result<(), CsvError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "object_id,time,value")?;
    for o in objects {
        for j in 0..o.curve.num_points() {
            let (t, v) = o.curve.point(j);
            writeln!(w, "{},{t},{v}", o.id)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write objects to a CSV file.
pub fn write_csv_file(objects: &[TemporalObject], path: &std::path::Path) -> Result<(), CsvError> {
    write_csv(objects, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TempConfig, TempGenerator};

    #[test]
    fn parse_simple_csv_with_header() {
        let data = "object_id,time,value\n\
                    st-7,0.0,1.0\n\
                    st-7,1.0,2.0\n\
                    st-9,0.5,5.0\n\
                    # comment line\n\
                    st-9,2.5,5.0\n";
        let ds = read_csv(data.as_bytes()).unwrap();
        assert_eq!(ds.objects.len(), 2);
        assert_eq!(ds.id_map["st-7"], 0);
        assert_eq!(ds.id_map["st-9"], 1);
        let set = ds.generate_set();
        assert_eq!(set.num_segments(), 2);
        assert!((set.score(1, 0.5, 2.5).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn parse_headerless_csv() {
        let data = "0,0.0,1.0\n0,2.0,3.0\n";
        let ds = read_csv(data.as_bytes()).unwrap();
        assert_eq!(ds.objects.len(), 1);
        assert_eq!(ds.objects[0].curve.num_segments(), 1);
    }

    #[test]
    fn rejects_malformed_rows() {
        // Line 1 may be a header, so malformed rows are probed on line 2.
        let hdr = "object_id,time,value\n";
        assert!(matches!(read_csv(format!("{hdr}only,two\n").as_bytes()), Err(CsvError::Parse(_))));
        assert!(matches!(read_csv(format!("{hdr}0,abc,1\n").as_bytes()), Err(CsvError::Parse(_))));
        assert!(matches!(
            read_csv(format!("{hdr}0,1.0,xyz\n").as_bytes()),
            Err(CsvError::Parse(_))
        ));
        assert!(matches!(read_csv("".as_bytes()), Err(CsvError::BadObject(_))));
        // Non-increasing times within an object.
        assert!(matches!(
            read_csv("0,5.0,1.0\n0,4.0,1.0\n".as_bytes()),
            Err(CsvError::BadObject(_))
        ));
    }

    #[test]
    fn roundtrip_generated_dataset() {
        let objs =
            TempGenerator::new(TempConfig { objects: 5, avg_segments: 20, seed: 77, dropout: 0.0 })
                .generate();
        let mut buf = Vec::new();
        write_csv(&objs, &mut buf).unwrap();
        let ds = read_csv(buf.as_slice()).unwrap();
        assert_eq!(ds.objects.len(), objs.len());
        for (a, b) in objs.iter().zip(&ds.objects) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.curve.num_points(), b.curve.num_points());
            for j in 0..a.curve.num_points() {
                let (ta, va) = a.curve.point(j);
                let (tb, vb) = b.curve.point(j);
                assert!((ta - tb).abs() < 1e-9 && (va - vb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("chronorank-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        let objs =
            TempGenerator::new(TempConfig { objects: 3, avg_segments: 10, seed: 5, dropout: 0.0 })
                .generate();
        write_csv_file(&objs, &path).unwrap();
        let ds = read_csv_file(&path).unwrap();
        assert_eq!(ds.objects.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
