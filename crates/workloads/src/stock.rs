//! Stock transaction-volume dataset — the introduction's second motivating
//! example ("find the top-20 stocks having the largest total transaction
//! volumes from 02/05/2011 to 02/07/2011").
//!
//! Objects are tickers; the curve is intraday trading volume: lognormal
//! per-stock base liquidity, a U-shaped intraday profile (busy open/close),
//! day-to-day volume persistence, and occasional news-driven volume spikes.

use crate::util::gaussian;
use crate::DatasetGenerator;
use chronorank_core::{ObjectId, TemporalObject};
use chronorank_curve::PiecewiseLinear;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`StockGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct StockConfig {
    /// Number of tickers.
    pub objects: usize,
    /// Number of trading days.
    pub days: usize,
    /// Readings per day (e.g. 8 = hourly during the session).
    pub readings_per_day: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        Self { objects: 500, days: 30, readings_per_day: 8, seed: 42 }
    }
}

/// Generates the stock-volume dataset (see module docs).
#[derive(Debug, Clone)]
pub struct StockGenerator {
    config: StockConfig,
}

impl StockGenerator {
    /// Create a generator for `config`.
    pub fn new(config: StockConfig) -> Self {
        assert!(config.objects > 0);
        assert!(config.days >= 1);
        assert!(config.readings_per_day >= 2);
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> StockConfig {
        self.config
    }

    /// Time stamp of the start of trading day `d` (1 unit = 1 day).
    pub fn day_start(d: usize) -> f64 {
        d as f64
    }
}

impl DatasetGenerator for StockGenerator {
    fn generate(&self) -> Vec<TemporalObject> {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut out = Vec::with_capacity(c.objects);
        for id in 0..c.objects {
            // Lognormal base liquidity: a few mega-caps dominate.
            let base = (10.0 + 1.8 * gaussian(&mut rng)).exp() / 1e3;
            let mut daily_level = 1.0f64;
            let mut points: Vec<(f64, f64)> = Vec::with_capacity(c.days * c.readings_per_day + 1);
            for day in 0..c.days {
                // Volume persistence + occasional news spike.
                daily_level = (0.8 * daily_level + 0.2 * (1.0 + 0.3 * gaussian(&mut rng))).abs();
                let spike = if rng.random_range(0.0..1.0) < 0.03 {
                    rng.random_range(2.0..8.0)
                } else {
                    1.0
                };
                for r in 0..c.readings_per_day {
                    let frac = r as f64 / (c.readings_per_day - 1) as f64;
                    // U-shape: high at open and close, low midday.
                    let u = 1.0 + 1.2 * (2.0 * frac - 1.0).powi(2);
                    let t = day as f64 + 0.3 + 0.5 * frac; // session 0.3–0.8 of the day
                    let noise = (1.0 + 0.2 * gaussian(&mut rng)).max(0.05);
                    let v = base * daily_level * spike * u * noise;
                    points.push((t, v.max(0.0)));
                }
            }
            let curve = PiecewiseLinear::from_points(&points).expect("increasing times");
            out.push(TemporalObject { id: id as ObjectId, curve });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = StockGenerator::new(StockConfig {
            objects: 40,
            days: 10,
            readings_per_day: 8,
            seed: 3,
        });
        let set = g.generate_set();
        assert_eq!(set.num_objects(), 40);
        // 80 points per object → 79 segments.
        assert_eq!(set.num_segments(), 40 * 79);
        assert!(!set.has_negative());
        assert!(set.span() <= 10.0);
    }

    #[test]
    fn liquidity_is_heavy_tailed_across_tickers() {
        let g = StockGenerator::new(StockConfig::default());
        let set = g.generate_set();
        let mut totals: Vec<f64> = set.objects().iter().map(|o| o.curve.total()).collect();
        totals.sort_by(f64::total_cmp);
        let median = totals[totals.len() / 2];
        let top = totals[totals.len() - 1];
        assert!(top > 20.0 * median, "top {top} vs median {median}");
    }

    #[test]
    fn intraday_u_shape_visible() {
        let g =
            StockGenerator::new(StockConfig { objects: 1, days: 1, readings_per_day: 9, seed: 11 });
        let objs = g.generate();
        let c = &objs[0].curve;
        // Open and close readings should on average beat midday.
        let open = c.values()[0];
        let close = *c.values().last().unwrap();
        let mid = c.values()[4];
        assert!(open > mid * 0.8 && close > mid * 0.8, "U-shape too weak");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = StockConfig { objects: 5, days: 3, readings_per_day: 4, seed: 77 };
        assert_eq!(StockGenerator::new(cfg).generate(), StockGenerator::new(cfg).generate());
    }
}
