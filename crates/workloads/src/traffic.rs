//! Multi-client traffic plans for closed-loop load generation.
//!
//! A network serving tier is not driven by one query stream but by `C`
//! concurrent **closed-loop clients**: each keeps a bounded number of
//! requests in flight and issues the next one only as answers return, so
//! offered load adapts to service capacity instead of queueing without
//! bound (the classic closed-loop load-generator model).
//!
//! [`ClosedLoopTraffic`] produces the *plan* for such a fleet: one
//! deterministic query stream per client, dealt round-robin from a single
//! [`QueryWorkload`] — so the fleet as a whole asks exactly the workload's
//! query population (hotspots stay shared across clients, which is what
//! makes a server-side result cache see realistic cross-client reuse),
//! while each client holds a different interleaving of it. The driver
//! (e.g. `paper_bench net`) maps each stream onto one connection.

use crate::query::{QueryInterval, QueryWorkload, QueryWorkloadConfig};

/// Configuration for [`ClosedLoopTraffic`].
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Concurrent closed-loop clients `C` (≥ 1).
    pub clients: usize,
    /// Queries *per client* (the fleet issues `clients ×` this).
    pub queries_per_client: usize,
    /// The shared query population all clients draw from.
    pub workload: QueryWorkloadConfig,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self { clients: 4, queries_per_client: 100, workload: QueryWorkloadConfig::default() }
    }
}

/// A deterministic per-client split of one query workload (see module
/// docs).
#[derive(Debug, Clone)]
pub struct ClosedLoopTraffic {
    streams: Vec<Vec<QueryInterval>>,
    hotspots: Vec<QueryInterval>,
}

impl ClosedLoopTraffic {
    /// Build the plan over the data domain `[t_min, t_max]`.
    pub fn new(config: TrafficConfig, t_min: f64, t_max: f64) -> Self {
        assert!(config.clients >= 1, "need at least one client");
        let workload = QueryWorkload::new(
            QueryWorkloadConfig {
                count: config.clients * config.queries_per_client,
                ..config.workload
            },
            t_min,
            t_max,
        );
        let all = workload.generate();
        let mut streams = vec![Vec::with_capacity(config.queries_per_client); config.clients];
        for (i, q) in all.into_iter().enumerate() {
            streams[i % config.clients].push(q);
        }
        Self { streams, hotspots: workload.hotspots() }
    }

    /// One query stream per client, client order. Every stream has
    /// exactly `queries_per_client` entries.
    pub fn streams(&self) -> &[Vec<QueryInterval>] {
        &self.streams
    }

    /// Consume the plan into its per-client streams.
    pub fn into_streams(self) -> Vec<Vec<QueryInterval>> {
        self.streams
    }

    /// The hotspot intervals shared by every client's stream (empty for a
    /// uniform workload) — warm these once for steady-state measurements.
    pub fn hotspots(&self) -> &[QueryInterval] {
        &self.hotspots
    }

    /// Total queries across the fleet.
    pub fn total_queries(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::IntervalPattern;

    fn config(clients: usize, per: usize) -> TrafficConfig {
        TrafficConfig {
            clients,
            queries_per_client: per,
            workload: QueryWorkloadConfig {
                span_fraction: 0.2,
                k: 5,
                seed: 13,
                pattern: IntervalPattern::Zipf { hotspots: 4, exponent: 1.0, background: 0.1 },
                ..Default::default()
            },
        }
    }

    #[test]
    fn deals_the_whole_population_round_robin() {
        let plan = ClosedLoopTraffic::new(config(3, 20), 0.0, 1000.0);
        assert_eq!(plan.streams().len(), 3);
        assert!(plan.streams().iter().all(|s| s.len() == 20));
        assert_eq!(plan.total_queries(), 60);
        // The union of the streams is exactly the underlying workload.
        let workload = QueryWorkload::new(
            QueryWorkloadConfig { count: 60, ..config(3, 20).workload },
            0.0,
            1000.0,
        );
        let all = workload.generate();
        for (i, q) in all.iter().enumerate() {
            assert_eq!(plan.streams()[i % 3][i / 3], *q);
        }
    }

    #[test]
    fn clients_share_hotspots_but_not_orderings() {
        let plan = ClosedLoopTraffic::new(config(2, 200), 0.0, 500.0);
        assert_eq!(plan.hotspots().len(), 4);
        let hits = |stream: &[QueryInterval]| {
            stream.iter().filter(|q| plan.hotspots().contains(q)).count()
        };
        // Both clients hammer the same hot intervals...
        assert!(hits(&plan.streams()[0]) > 100);
        assert!(hits(&plan.streams()[1]) > 100);
        // ...but hold different interleavings of the population.
        assert_ne!(plan.streams()[0], plan.streams()[1]);
    }

    #[test]
    fn plan_is_deterministic() {
        let a = ClosedLoopTraffic::new(config(4, 25), 0.0, 100.0);
        let b = ClosedLoopTraffic::new(config(4, 25), 0.0, 100.0);
        assert_eq!(a.streams(), b.streams());
    }
}
