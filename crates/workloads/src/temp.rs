//! MesoWest-style temperature dataset (the paper's **Temp**).
//!
//! Each object is one station-year of temperature readings connected into a
//! piecewise-linear curve (exactly the paper's preprocessing). Curves are
//! smooth, positive, strongly autocorrelated, and near-aligned in time —
//! the properties the paper's Temp experiments exercise. Components per
//! station: a latitude-dependent base level, an annual sinusoid, a diurnal
//! sinusoid, and an Ornstein–Uhlenbeck "weather front" noise process;
//! readings are hourly with jitter and dropout gaps (Figure 1's texture).

use crate::util::gaussian;
use crate::DatasetGenerator;
use chronorank_core::{ObjectId, TemporalObject};
use chronorank_curve::PiecewiseLinear;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`TempGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct TempConfig {
    /// Number of objects `m` (paper default 50,000; scaled here).
    pub objects: usize,
    /// Average segments per object `n_avg` (paper default 1,000).
    pub avg_segments: usize,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Reading dropout probability (sensor gaps).
    pub dropout: f64,
}

impl Default for TempConfig {
    fn default() -> Self {
        Self { objects: 1000, avg_segments: 200, seed: 42, dropout: 0.02 }
    }
}

/// Generates the Temp-like dataset (see module docs).
#[derive(Debug, Clone)]
pub struct TempGenerator {
    config: TempConfig,
}

impl TempGenerator {
    /// Create a generator for `config`.
    pub fn new(config: TempConfig) -> Self {
        assert!(config.objects > 0, "need at least one object");
        assert!(config.avg_segments >= 2, "need at least two segments per object");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> TempConfig {
        self.config
    }
}

impl DatasetGenerator for TempGenerator {
    fn generate(&self) -> Vec<TemporalObject> {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        // Time unit: hours. The shared domain spans n_avg hours so that
        // hourly readings yield ~n_avg segments per object.
        let span = c.avg_segments as f64;
        let mut out = Vec::with_capacity(c.objects);
        for id in 0..c.objects {
            // Station character.
            let base = 288.0 + 12.0 * gaussian(&mut rng); // Kelvin-ish
            let annual_amp = (8.0 + 3.0 * gaussian(&mut rng)).abs();
            let annual_phase = rng.random_range(0.0..std::f64::consts::TAU);
            let diurnal_amp = (4.0 + 1.5 * gaussian(&mut rng)).abs();
            let diurnal_phase = rng.random_range(0.0..std::f64::consts::TAU);
            // OU noise state.
            let mut front = 0.0f64;
            let theta = 0.05; // mean reversion per hour
            let vol = 0.8;

            let n_target =
                ((c.avg_segments as f64) * (0.8 + 0.4 * rng.random_range(0.0..1.0))) as usize;
            let n_target = n_target.max(2);
            let start_jitter = rng.random_range(0.0..2.0);
            let mut points: Vec<(f64, f64)> = Vec::with_capacity(n_target + 1);
            let mut t = start_jitter;
            let step = (span - start_jitter - 1.0).max(1.0) / n_target as f64;
            while points.len() <= n_target && t < span {
                front += theta * (-front) + vol * gaussian(&mut rng);
                if points.is_empty() || rng.random_range(0.0..1.0) >= c.dropout {
                    let annual =
                        annual_amp * (std::f64::consts::TAU * t / span + annual_phase).sin();
                    let diurnal =
                        diurnal_amp * (std::f64::consts::TAU * t / 24.0 + diurnal_phase).sin();
                    let v = (base + annual + diurnal + front).max(1.0);
                    points.push((t, v));
                }
                t += step * rng.random_range(0.7..1.3);
            }
            // Guarantee a valid curve even under extreme dropout.
            if points.len() < 2 {
                points.push((points[0].0 + 1.0, points[0].1));
            }
            let curve = PiecewiseLinear::from_points(&points).expect("strictly increasing times");
            out.push(TemporalObject { id: id as ObjectId, curve });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = TempGenerator::new(TempConfig {
            objects: 50,
            avg_segments: 100,
            seed: 1,
            dropout: 0.02,
        });
        let set = g.generate_set();
        assert_eq!(set.num_objects(), 50);
        let navg = set.num_segments() as f64 / 50.0;
        assert!((navg - 100.0).abs() < 25.0, "n_avg = {navg}, wanted ≈ 100");
        assert!(!set.has_negative(), "temperatures are positive");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = TempConfig { objects: 5, avg_segments: 30, seed: 9, dropout: 0.05 };
        let a = TempGenerator::new(cfg).generate();
        let b = TempGenerator::new(cfg).generate();
        assert_eq!(a, b);
        let c = TempGenerator::new(TempConfig { seed: 10, ..cfg }).generate();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn values_look_like_temperatures() {
        let g = TempGenerator::new(TempConfig::default());
        let set = g.generate_set();
        for o in set.objects().iter().take(20) {
            let lo = o.curve.min_value();
            let hi = o.curve.max_value();
            assert!(lo > 150.0 && hi < 400.0, "object {} range [{lo}, {hi}]", o.id);
        }
    }

    #[test]
    fn domains_are_near_aligned_but_jittered() {
        let g = TempGenerator::new(TempConfig { objects: 30, ..Default::default() });
        let set = g.generate_set();
        let starts: Vec<f64> = set.objects().iter().map(|o| o.curve.start()).collect();
        let min = starts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = starts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.01, "starts must be jittered");
        assert!(max < 2.5, "starts stay near the domain origin");
    }
}
