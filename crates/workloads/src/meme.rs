//! Memetracker-style dataset (the paper's **Meme**).
//!
//! Objects are URLs whose score at a record time is the number of memes
//! observed on the page. The defining properties the paper's Figure 19/20
//! exercise: *huge m, tiny n_avg (67), bursty short-lived scores, heavy-
//! tailed popularity* ("how different quotes compete for coverage every day
//! and how some quickly fade while others persist"). Each object is a
//! spike-and-decay burst train: a Pareto-distributed peak, exponential
//! decay, and occasional secondary bursts.

use crate::util::{gaussian, object_seed, pareto};
use crate::{DatasetGenerator, StreamingGenerator};
use chronorank_core::{ObjectId, TemporalObject};
use chronorank_curve::PiecewiseLinear;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`MemeGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct MemeConfig {
    /// Number of objects `m` (paper: ~1.5M; scaled here).
    pub objects: usize,
    /// Average records per object (paper: 67).
    pub avg_segments: usize,
    /// Total time domain length (arbitrary units, think hours).
    pub span: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MemeConfig {
    fn default() -> Self {
        Self { objects: 5000, avg_segments: 67, span: 10_000.0, seed: 42 }
    }
}

/// Generates the Meme-like dataset (see module docs).
#[derive(Debug, Clone)]
pub struct MemeGenerator {
    config: MemeConfig,
}

impl MemeGenerator {
    /// Create a generator for `config`.
    pub fn new(config: MemeConfig) -> Self {
        assert!(config.objects > 0);
        assert!(config.avg_segments >= 2);
        assert!(config.span > 1.0);
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> MemeConfig {
        self.config
    }

    /// Generate object `id` alone. The RNG is seeded per object from
    /// `(seed, id)` (see [`crate::StreamingGenerator`]), so this is a pure
    /// function: paper-scale builds call it `m` times in id order without
    /// ever materializing the whole dataset, and a resumed or parallel
    /// build regenerates any object bit-identically.
    fn object_at(&self, id: usize) -> TemporalObject {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(object_seed(c.seed, id as u64));
        // Heavy-tailed popularity: most pages hold a couple of memes,
        // a few hold hundreds.
        let peak = pareto(&mut rng, 2.0, 1.3);
        // Lifetime: bursts fade fast; persistent objects are rare.
        let lifetime = (c.span * 0.01 * pareto(&mut rng, 1.0, 1.2)).min(c.span * 0.9);
        let birth = rng.random_range(0.0..(c.span - lifetime).max(1.0));
        let n = ((c.avg_segments as f64) * (0.5 + rng.random_range(0.0..1.0))) as usize;
        let n = n.max(2);
        let decay = 3.0 / lifetime;
        // Records denser right after birth (burst coverage), sparser in
        // the tail; occasional secondary bursts rekindle the score.
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(n + 1);
        let mut t = birth;
        let mut secondary = 0.0f64;
        for i in 0..=n {
            let frac = i as f64 / n as f64;
            // Quadratic spacing: early records close together.
            let next_t = birth + lifetime * frac * frac;
            t = t.max(next_t);
            if rng.random_range(0.0..1.0) < 0.02 {
                secondary += peak * rng.random_range(0.1..0.6);
            }
            secondary *= (-(decay * 4.0) * lifetime / n as f64).exp();
            let base = peak * (-(decay) * (t - birth)).exp();
            let noise = (1.0 + 0.15 * gaussian(&mut rng)).max(0.2);
            let v = ((base + secondary) * noise).max(0.0);
            if points.last().is_none_or(|&(pt, _)| t > pt) {
                points.push((t, v));
            }
        }
        if points.len() < 2 {
            let (t0, v0) = points[0];
            points.push((t0 + 1.0, v0 * 0.5));
        }
        let curve = PiecewiseLinear::from_points(&points).expect("increasing times");
        TemporalObject { id: id as ObjectId, curve }
    }
}

impl DatasetGenerator for MemeGenerator {
    fn generate(&self) -> Vec<TemporalObject> {
        (0..self.config.objects).map(|id| self.object_at(id)).collect()
    }
}

impl StreamingGenerator for MemeGenerator {
    fn num_objects(&self) -> usize {
        self.config.objects
    }

    fn object(&self, id: ObjectId) -> TemporalObject {
        self.object_at(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g =
            MemeGenerator::new(MemeConfig { objects: 200, avg_segments: 67, ..Default::default() });
        let set = g.generate_set();
        assert_eq!(set.num_objects(), 200);
        let navg = set.num_segments() as f64 / 200.0;
        assert!((navg - 67.0).abs() < 25.0, "n_avg = {navg}");
        assert!(!set.has_negative());
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let g = MemeGenerator::new(MemeConfig { objects: 2000, ..Default::default() });
        let set = g.generate_set();
        let mut peaks: Vec<f64> = set.objects().iter().map(|o| o.curve.max_value()).collect();
        peaks.sort_by(f64::total_cmp);
        let median = peaks[peaks.len() / 2];
        let p99 = peaks[peaks.len() * 99 / 100];
        assert!(p99 > 8.0 * median, "p99 {p99} should dwarf median {median} (heavy tail)");
    }

    #[test]
    fn objects_are_short_lived_relative_to_domain() {
        let g = MemeGenerator::new(MemeConfig { objects: 500, ..Default::default() });
        let set = g.generate_set();
        let span = set.span();
        let mut short = 0;
        for o in set.objects() {
            let life = o.curve.end() - o.curve.start();
            if life < span * 0.25 {
                short += 1;
            }
        }
        assert!(short > 350, "most memes must be short-lived, got {short}/500");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = MemeConfig { objects: 20, ..Default::default() };
        assert_eq!(MemeGenerator::new(cfg).generate(), MemeGenerator::new(cfg).generate());
    }

    #[test]
    fn streaming_access_matches_batch_generation() {
        // The StreamingGenerator contract: object(id) alone reproduces the
        // batch output bit-for-bit, in any order (here: reverse).
        let g = MemeGenerator::new(MemeConfig { objects: 30, ..Default::default() });
        let batch = g.generate();
        assert_eq!(StreamingGenerator::num_objects(&g), 30);
        for id in (0..30u32).rev() {
            assert_eq!(g.object(id), batch[id as usize], "object {id}");
        }
        let streamed: Vec<_> = g.objects().collect();
        assert_eq!(streamed, batch);
    }
}
