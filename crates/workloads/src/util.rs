//! Small shared sampling helpers (kept local to avoid extra dependencies).

use rand::RngExt;

/// Standard normal via Box–Muller (two uniforms → one gaussian).
pub(crate) fn gaussian(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Pareto sample with shape `alpha` and minimum `x_min` (heavy-tailed
/// popularity, used by the Meme generator).
pub(crate) fn pareto(rng: &mut impl RngExt, x_min: f64, alpha: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    x_min / u.powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut above10 = 0;
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 2.0, 1.5);
            assert!(x >= 2.0);
            if x > 10.0 {
                above10 += 1;
            }
        }
        // P(X > 10) = (2/10)^1.5 ≈ 0.089.
        assert!(above10 > 500 && above10 < 1400, "tail count {above10}");
    }
}
