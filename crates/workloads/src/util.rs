//! Small shared sampling helpers (kept local to avoid extra dependencies).

use rand::RngExt;

/// Standard normal via Box–Muller (two uniforms → one gaussian).
pub(crate) fn gaussian(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Pareto sample with shape `alpha` and minimum `x_min` (heavy-tailed
/// popularity, used by the Meme generator).
pub(crate) fn pareto(rng: &mut impl RngExt, x_min: f64, alpha: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Derive the per-object RNG seed from a dataset seed and an object id
/// (splitmix64 finalizer over their sum). Every object's stream is a pure
/// function of `(seed, id)`, which is what makes paper-scale generation
/// resumable: any object can be re-generated independently, in any order,
/// on any worker, without replaying its predecessors. Arithmetic is
/// entirely in `u64` so ids beyond 2³² keep distinct seeds.
pub(crate) fn object_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed.wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn object_seeds_stay_distinct_past_u32_boundary() {
        // Ids straddling 2³² must map to distinct seeds: the old sequential
        // seeding silently lost resumability there; the splitmix derivation
        // is pure u64.
        let ids =
            [0u64, 1, u32::MAX as u64 - 1, u32::MAX as u64, u32::MAX as u64 + 1, u64::MAX / 2];
        let seeds: Vec<u64> = ids.iter().map(|&id| object_seed(42, id)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "ids {} and {} collide", ids[i], ids[j]);
            }
        }
        // And the derivation itself is deterministic.
        assert_eq!(object_seed(42, 7), object_seed(42, 7));
        assert_ne!(object_seed(42, 7), object_seed(43, 7));
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut above10 = 0;
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 2.0, 1.5);
            assert!(x >= 2.0);
            if x > 10.0 {
                above10 += 1;
            }
        }
        // P(X > 10) = (2/10)^1.5 ≈ 0.089.
        assert!(above10 > 500 && above10 < 1400, "tail count {above10}");
    }
}
