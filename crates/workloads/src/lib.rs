//! # chronorank-workloads — synthetic datasets and query workloads
//!
//! The paper evaluates on two large real datasets that are not
//! redistributable:
//!
//! * **Temp** — MesoWest temperature readings (26,383 stations, ~2.6·10⁹
//!   readings, 1997–2011), preprocessed into one object per station-year
//!   (`m = 145,628`, `n_avg = 17,833`), piecewise-linear by connecting
//!   consecutive readings;
//! * **Meme** — Memetracker phrase/URL records (`m ≈ 1.5·10⁶` URLs,
//!   `N = 10⁸` records, `n_avg = 67`), scores = number of memes on a page,
//!   bursty with fast decay.
//!
//! This crate generates faithful *synthetic* equivalents (see DESIGN.md §4
//! for the substitution argument): [`TempGenerator`] produces smooth
//! seasonal+diurnal curves with weather-front noise; [`MemeGenerator`]
//! produces short-lived, heavy-tailed burst curves. Both expose the knobs
//! the paper sweeps (`m`, `n_avg`) and are fully deterministic under a
//! seed. [`StockGenerator`] supports the introduction's stock-volume
//! example, and [`RandomWalkGenerator`] is the neutral fallback.
//!
//! [`QueryWorkload`] generates the paper's query mix: random intervals of
//! a given length fraction (default 20 % of `T`) with random `k`.
//!
//! [`AppendStream`] replays any generator as a §4 right-edge append trace
//! (base prefix + time-ordered [`chronorank_core::AppendRecord`]s, with
//! configurable batch size and arrival skew), and
//! [`AppendStream::hotspot`] interleaves a query workload between batches
//! — the live ingest traffic shape.
//!
//! [`ClosedLoopTraffic`] deals one query workload round-robin into `C`
//! per-client streams for closed-loop network load generation (shared
//! hotspots, per-client interleavings) — the traffic shape the
//! wire-protocol tier (`chronorank-net`) is benchmarked with.
//!
//! ## Streaming generation (paper scale)
//!
//! At the paper's Meme scale (`m ≈ 1.5·10⁶`, `N ≈ 10⁸`) a materialized
//! `Vec` of all objects does not fit a sane memory budget, so generators
//! that also implement [`StreamingGenerator`] expose their dataset
//! **object-at-a-time** under a three-part contract:
//!
//! 1. **deterministic under seed** — `object(id)` is a pure function of
//!    `(config, id)`; the per-object RNG is seeded by a splitmix64
//!    derivation of `(seed, id)` (pure `u64` arithmetic, so ids past 2³²
//!    stay distinct);
//! 2. **sorted ids, sorted segments** — [`StreamingGenerator::objects`]
//!    yields ids `0..m` in order, and every curve's segments are emitted
//!    in nondecreasing `t0` order, which is exactly the order the
//!    external-sort build pipelines consume;
//! 3. **resumable** — because of (1), any id range can be re-generated
//!    independently (restart after a crash, partition across workers,
//!    or make a second pass for a later build phase) with bit-identical
//!    output; no generator state needs checkpointing.
//!
//! [`DatasetGenerator::generate`] is required to agree with the streaming
//! view: it is the same `object(id)` loop, collected.

mod append;
pub mod csvio;
mod meme;
mod query;
mod randomwalk;
mod stock;
mod temp;
mod traffic;
mod util;

pub use append::{AppendStream, AppendStreamConfig, LiveOp};
pub use csvio::{read_csv, read_csv_file, write_csv, write_csv_file, CsvDataset, CsvError};
pub use meme::{MemeConfig, MemeGenerator};
pub use query::{IntervalPattern, QueryInterval, QueryWorkload, QueryWorkloadConfig};
pub use randomwalk::{RandomWalkConfig, RandomWalkGenerator};
pub use stock::{StockConfig, StockGenerator};
pub use temp::{TempConfig, TempGenerator};
pub use traffic::{ClosedLoopTraffic, TrafficConfig};

use chronorank_core::{ObjectId, TemporalObject, TemporalSet};

/// Common interface of all dataset generators.
pub trait DatasetGenerator {
    /// Generate the configured objects (ids dense from 0).
    fn generate(&self) -> Vec<TemporalObject>;

    /// Convenience: generate and wrap into a [`TemporalSet`].
    fn generate_set(&self) -> TemporalSet {
        TemporalSet::from_objects(self.generate()).expect("generator produced a valid set")
    }
}

/// Object-at-a-time access for paper-scale builds (see the crate docs'
/// *Streaming generation* section for the full contract: sorted,
/// deterministic under seed, resumable).
pub trait StreamingGenerator {
    /// Number of objects `m` this generator will produce.
    fn num_objects(&self) -> usize;

    /// Generate exactly one object — a pure function of the generator's
    /// configuration and `id`, independent of any other object.
    fn object(&self, id: ObjectId) -> TemporalObject;

    /// All objects in id order, generated lazily. Peak memory is a single
    /// object's curve; the `N`-segment dataset never materializes.
    fn objects(&self) -> impl Iterator<Item = TemporalObject> + '_ {
        (0..self.num_objects()).map(|id| self.object(id as ObjectId))
    }
}
