//! Append traces: replay any dataset generator as a live ingest stream.
//!
//! The paper's §4 update model receives segments at each object's right
//! time edge. [`AppendStream`] turns the output of *any*
//! [`DatasetGenerator`] (temp / stock / meme / randomwalk / CSV) into that
//! shape deterministically: each object keeps its first points as the
//! **base** (the state a live system is bootstrapped from) and the
//! remaining points become a time-ordered trace of
//! [`AppendRecord`]s — so a streamed-ingest run over the trace must end in
//! *exactly* the set the generator would have produced in bulk, which is
//! what `tests/live_agreement.rs` exploits.
//!
//! Knobs: the base fraction, the **batch size** (records per durable
//! group-commit), and an **arrival skew** — `0` replays in strict global
//! time order, larger values interleave objects Zipf-burstily (hot objects
//! flood first), always preserving each object's own time order so every
//! prefix of the trace is a valid temporal set.
//!
//! [`AppendStream::hotspot`] additionally interleaves a query workload
//! between batches, producing the mixed read/write [`LiveOp`] traffic a
//! live serving system actually faces.

use crate::query::{QueryInterval, QueryWorkload, QueryWorkloadConfig};
use crate::DatasetGenerator;
use chronorank_core::{AppendRecord, TemporalObject, TemporalSet};
use chronorank_curve::PiecewiseLinear;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`AppendStream`].
#[derive(Debug, Clone, Copy)]
pub struct AppendStreamConfig {
    /// Fraction of each object's points kept in the base set (clamped so
    /// every base curve keeps at least 2 points).
    pub base_fraction: f64,
    /// Records per batch (one durable group-commit each).
    pub batch: usize,
    /// Arrival skew: `0` = strict global time order; larger values draw
    /// the next record from object queues Zipf-weighted by object id
    /// (`weight ∝ (id+1)^-skew`), modelling bursty per-object arrival.
    pub skew: f64,
    /// Seed for the skewed interleaving (unused when `skew == 0`).
    pub seed: u64,
}

impl Default for AppendStreamConfig {
    fn default() -> Self {
        Self { base_fraction: 0.5, batch: 32, skew: 0.0, seed: 11 }
    }
}

/// One operation of a mixed live trace (see [`AppendStream::hotspot`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LiveOp {
    /// One batch of appends (a single durable group-commit).
    Appends(Vec<AppendRecord>),
    /// One `top-k(t1, t2, k)` query.
    Query(QueryInterval),
}

/// A deterministic append trace over a generated dataset (see module docs).
#[derive(Debug, Clone)]
pub struct AppendStream {
    base: Vec<TemporalObject>,
    full: Vec<TemporalObject>,
    records: Vec<AppendRecord>,
    config: AppendStreamConfig,
}

impl AppendStream {
    /// Split `generator`'s dataset into a base set plus an append trace.
    pub fn from_generator(generator: &impl DatasetGenerator, config: AppendStreamConfig) -> Self {
        Self::new(generator.generate(), config)
    }

    /// Split explicit objects into a base set plus an append trace.
    pub fn new(full: Vec<TemporalObject>, config: AppendStreamConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.base_fraction), "base fraction in [0,1]");
        assert!(config.batch >= 1, "batch size must be at least 1");
        assert!(config.skew >= 0.0, "skew must be non-negative");
        // Per-object split: base prefix (≥ 2 points) + pending tail queue.
        let mut base = Vec::with_capacity(full.len());
        let mut queues: Vec<Vec<AppendRecord>> = Vec::with_capacity(full.len());
        for o in &full {
            let n = o.curve.num_points();
            let keep = ((n as f64 * config.base_fraction).ceil() as usize).clamp(2, n);
            let pts: Vec<(f64, f64)> = (0..keep).map(|j| o.curve.point(j)).collect();
            let curve = PiecewiseLinear::from_points(&pts).expect("prefix of a valid curve");
            base.push(TemporalObject { id: o.id, curve });
            queues.push(
                (keep..n)
                    .map(|j| {
                        let (t, v) = o.curve.point(j);
                        AppendRecord { object: o.id, t, v }
                    })
                    .collect(),
            );
        }
        let records = interleave(queues, &config);
        Self { base, full, records, config }
    }

    /// The bootstrap state: every object truncated to its base prefix.
    pub fn base_set(&self) -> TemporalSet {
        TemporalSet::from_objects(self.base.clone()).expect("base objects are valid")
    }

    /// The final state (identical to the generator's bulk output).
    pub fn full_set(&self) -> TemporalSet {
        TemporalSet::from_objects(self.full.clone()).expect("full objects are valid")
    }

    /// The whole trace in arrival order.
    pub fn records(&self) -> &[AppendRecord] {
        &self.records
    }

    /// The trace chunked into batches of the configured size (the last may
    /// be short).
    pub fn batches(&self) -> impl Iterator<Item = &[AppendRecord]> {
        self.records.chunks(self.config.batch)
    }

    /// The configuration in use.
    pub fn config(&self) -> AppendStreamConfig {
        self.config
    }

    /// A mixed read/write trace: every append batch followed by
    /// `queries_per_batch` queries drawn from `query_cfg` (typically a
    /// [`crate::IntervalPattern::Zipf`] hotspot pattern) over the *full*
    /// data domain — right-edge queries keep landing on freshly appended
    /// data. `query_cfg.count` is ignored; the trace sizes it.
    pub fn hotspot(&self, query_cfg: QueryWorkloadConfig, queries_per_batch: usize) -> Vec<LiveOp> {
        let full = self.full_set();
        let n_batches = self.records.len().div_ceil(self.config.batch);
        let workload = QueryWorkload::new(
            QueryWorkloadConfig { count: n_batches * queries_per_batch, ..query_cfg },
            full.t_min(),
            full.t_max(),
        );
        let mut queries = workload.generate().into_iter();
        let mut ops = Vec::with_capacity(n_batches * (1 + queries_per_batch));
        for batch in self.batches() {
            ops.push(LiveOp::Appends(batch.to_vec()));
            for _ in 0..queries_per_batch {
                if let Some(q) = queries.next() {
                    ops.push(LiveOp::Query(q));
                }
            }
        }
        ops
    }
}

/// Merge per-object queues into one arrival order (see
/// [`AppendStreamConfig::skew`]). Every queue is already time-ascending,
/// so any interleaving keeps per-object monotonicity.
fn interleave(queues: Vec<Vec<AppendRecord>>, config: &AppendStreamConfig) -> Vec<AppendRecord> {
    let total: usize = queues.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    if config.skew == 0.0 {
        // Strict global time order (ties: smaller object id first) via a
        // k-way min-heap over queue heads.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut cursors = vec![0usize; queues.len()];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, q)| Reverse((ordered_bits(q[0].t), i as u32)))
            .collect();
        while let Some(Reverse((_, i))) = heap.pop() {
            let i = i as usize;
            out.push(queues[i][cursors[i]]);
            cursors[i] += 1;
            if let Some(rec) = queues[i].get(cursors[i]) {
                heap.push(Reverse((ordered_bits(rec.t), i as u32)));
            }
        }
    } else {
        // Zipf-weighted object draws among the non-empty queues.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut cursors = vec![0usize; queues.len()];
        let mut alive: Vec<usize> = (0..queues.len()).filter(|&i| !queues[i].is_empty()).collect();
        while !alive.is_empty() {
            let weights: Vec<f64> =
                alive.iter().map(|&i| ((i + 1) as f64).powf(-config.skew)).collect();
            let total_w: f64 = weights.iter().sum();
            let mut u = rng.random_unit() * total_w;
            let mut pick = alive.len() - 1;
            for (slot, w) in weights.iter().enumerate() {
                if u < *w {
                    pick = slot;
                    break;
                }
                u -= w;
            }
            let i = alive[pick];
            out.push(queues[i][cursors[i]]);
            cursors[i] += 1;
            if cursors[i] == queues[i].len() {
                alive.swap_remove(pick);
            }
        }
    }
    out
}

/// Map a finite time to a sort key preserving order (times are generator
/// outputs: finite, and non-negative in practice; the bit trick handles
/// negatives too).
fn ordered_bits(t: f64) -> u64 {
    let b = t.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntervalPattern, StockConfig, StockGenerator, TempConfig, TempGenerator};

    fn stream(skew: f64) -> AppendStream {
        let generator =
            TempGenerator::new(TempConfig { objects: 12, avg_segments: 20, seed: 3, dropout: 0.0 });
        AppendStream::from_generator(
            &generator,
            AppendStreamConfig { base_fraction: 0.4, batch: 16, skew, seed: 5 },
        )
    }

    #[test]
    fn replaying_the_trace_reproduces_the_bulk_set() {
        for skew in [0.0, 1.2] {
            let s = stream(skew);
            let mut live = s.base_set();
            assert!(live.num_segments() < s.full_set().num_segments());
            for &rec in s.records() {
                live.apply(rec).unwrap();
            }
            let full = s.full_set();
            assert_eq!(live.num_segments(), full.num_segments(), "skew {skew}");
            // Mass is maintained incrementally during appends, so it only
            // agrees up to floating-point association; the curves (and
            // therefore all answers) must agree exactly.
            let (ml, mf) = (live.total_mass(), full.total_mass());
            assert!((ml - mf).abs() <= 1e-9 * (1.0 + mf.abs()), "skew {skew}: {ml} vs {mf}");
            for (a, b) in live.objects().iter().zip(full.objects()) {
                assert_eq!(a, b, "skew {skew}");
            }
        }
    }

    #[test]
    fn zero_skew_is_globally_time_ordered() {
        let s = stream(0.0);
        for w in s.records().windows(2) {
            assert!(w[0].t <= w[1].t, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn any_skew_preserves_per_object_order_and_multiset() {
        let flat = stream(0.0);
        let skewed = stream(2.0);
        assert_eq!(flat.records().len(), skewed.records().len());
        let mut last_t = [f64::NEG_INFINITY; 12];
        for rec in skewed.records() {
            assert!(rec.t > last_t[rec.object as usize], "per-object order broken");
            last_t[rec.object as usize] = rec.t;
        }
        // Same records, different order (with high skew, object 0 floods
        // early — the orders genuinely differ).
        let key = |r: &AppendRecord| (r.object, r.t.to_bits(), r.v.to_bits());
        let mut a: Vec<_> = flat.records().iter().map(key).collect();
        let mut b: Vec<_> = skewed.records().iter().map(key).collect();
        assert_ne!(a, b, "skew must change the interleaving");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "skew must not change the record multiset");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = stream(1.0);
        let b = stream(1.0);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn batches_cover_the_trace() {
        let s = stream(0.0);
        let n: usize = s.batches().map(<[AppendRecord]>::len).sum();
        assert_eq!(n, s.records().len());
        assert!(s.batches().all(|b| b.len() <= 16));
        assert!(s.batches().count() >= 2);
    }

    #[test]
    fn hotspot_interleaves_queries_between_batches() {
        let generator =
            StockGenerator::new(StockConfig { objects: 8, days: 6, readings_per_day: 4, seed: 9 });
        let s = AppendStream::from_generator(
            &generator,
            AppendStreamConfig { base_fraction: 0.5, batch: 10, ..Default::default() },
        );
        let qcfg = QueryWorkloadConfig {
            span_fraction: 0.3,
            k: 4,
            seed: 13,
            pattern: IntervalPattern::Zipf { hotspots: 3, exponent: 1.0, background: 0.2 },
            ..Default::default()
        };
        let ops = s.hotspot(qcfg, 2);
        let n_batches = s.batches().count();
        let appends = ops.iter().filter(|op| matches!(op, LiveOp::Appends(_))).count();
        let queries = ops.iter().filter(|op| matches!(op, LiveOp::Query(_))).count();
        assert_eq!(appends, n_batches);
        assert_eq!(queries, 2 * n_batches);
        assert!(matches!(ops[0], LiveOp::Appends(_)), "trace starts with data");
        // Deterministic.
        assert_eq!(ops, s.hotspot(qcfg, 2));
        // Appended records inside ops reproduce the trace.
        let replayed: Vec<AppendRecord> = ops
            .iter()
            .filter_map(|op| match op {
                LiveOp::Appends(b) => Some(b.clone()),
                LiveOp::Query(_) => None,
            })
            .flatten()
            .collect();
        assert_eq!(replayed.as_slice(), s.records());
    }
}
