//! Query workload generation (paper §5 setup: "we generated 100 random
//! queries and report the average", with query span `(t2 − t1) = 20%·T` by
//! default).
//!
//! Besides the paper's uniform placement, [`IntervalPattern::Zipf`]
//! generates a skewed stream in which a few *hotspot* intervals are asked
//! over and over — the traffic shape a serving layer's result cache is
//! built for (see `chronorank-serve`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One `top-k(t1, t2, sum)` query instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryInterval {
    /// Query start.
    pub t1: f64,
    /// Query end.
    pub t2: f64,
    /// Requested answer size.
    pub k: usize,
}

/// How query intervals are placed over the data domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalPattern {
    /// Independent uniform placement — the paper's §5 workload.
    Uniform,
    /// Zipf-skewed hotspots: `hotspots` fixed popular intervals are drawn
    /// once (uniformly, from the seed), then each query repeats hotspot
    /// `j` with probability ∝ `1/(j+1)^exponent` — except that with
    /// probability `background` it is a fresh uniform interval instead.
    /// Models the repeated popular time ranges of real traffic.
    Zipf {
        /// Number of distinct hot intervals (≥ 1).
        hotspots: usize,
        /// Skew `s` of the Zipf law (`0` = uniform over the hotspots;
        /// typical web traffic ≈ 1).
        exponent: f64,
        /// Probability in `[0, 1]` of an unskewed background query.
        background: f64,
    },
}

/// Configuration for [`QueryWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Number of queries (paper: 100).
    pub count: usize,
    /// Query interval length as a fraction of the data span (paper: 0.2).
    pub span_fraction: f64,
    /// The `k` of every query (paper default 50).
    pub k: usize,
    /// RNG seed (the stream is fully deterministic given the config).
    pub seed: u64,
    /// Interval placement: uniform or Zipf-skewed hotspots.
    pub pattern: IntervalPattern,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        Self { count: 100, span_fraction: 0.2, k: 50, seed: 7, pattern: IntervalPattern::Uniform }
    }
}

/// Deterministic random query generator over a given time domain.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    config: QueryWorkloadConfig,
    t_min: f64,
    t_max: f64,
}

impl QueryWorkload {
    /// Workload over `[t_min, t_max]`.
    pub fn new(config: QueryWorkloadConfig, t_min: f64, t_max: f64) -> Self {
        assert!(t_max > t_min, "empty data domain");
        assert!((0.0..=1.0).contains(&config.span_fraction), "fraction in [0,1]");
        if let IntervalPattern::Zipf { hotspots, exponent, background } = config.pattern {
            assert!(hotspots >= 1, "need at least one hotspot");
            assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
            assert!((0.0..=1.0).contains(&background), "background prob in [0,1]");
        }
        Self { config, t_min, t_max }
    }

    /// The hotspot intervals a [`IntervalPattern::Zipf`] stream repeats, in
    /// popularity order (empty for [`IntervalPattern::Uniform`]). Exposed
    /// so cache tests and benches can assert on reuse.
    pub fn hotspots(&self) -> Vec<QueryInterval> {
        match self.config.pattern {
            IntervalPattern::Uniform => Vec::new(),
            IntervalPattern::Zipf { hotspots, .. } => {
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                (0..hotspots).map(|_| self.uniform(&mut rng)).collect()
            }
        }
    }

    /// Generate the configured queries.
    pub fn generate(&self) -> Vec<QueryInterval> {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        match c.pattern {
            IntervalPattern::Uniform => (0..c.count).map(|_| self.uniform(&mut rng)).collect(),
            IntervalPattern::Zipf { hotspots, exponent, background } => {
                // Hotspots are drawn first so `hotspots()` (fresh RNG, same
                // seed) reproduces them exactly.
                let hot: Vec<QueryInterval> =
                    (0..hotspots).map(|_| self.uniform(&mut rng)).collect();
                let mut cum = Vec::with_capacity(hotspots);
                let mut total = 0.0;
                for j in 0..hotspots {
                    total += ((j + 1) as f64).powf(-exponent);
                    cum.push(total);
                }
                (0..c.count)
                    .map(|_| {
                        if rng.random_unit() < background {
                            self.uniform(&mut rng)
                        } else {
                            let u = rng.random_unit() * total;
                            let j = cum.partition_point(|&w| w < u).min(hotspots - 1);
                            hot[j]
                        }
                    })
                    .collect()
            }
        }
    }

    /// Chunk the generated stream into admission windows of `window`
    /// queries (the last window may be shorter) — the unit a batching
    /// execution layer (`query_batch`) admits at once. A Zipf-skewed
    /// stream chunked this way yields windows that repeat hotspot
    /// intervals, exactly the shape shared-probe batch execution
    /// amortizes.
    pub fn windows(&self, window: usize) -> Vec<Vec<QueryInterval>> {
        assert!(window >= 1, "window must hold at least one query");
        self.generate().chunks(window).map(<[QueryInterval]>::to_vec).collect()
    }

    /// One uniformly placed interval of the configured length.
    fn uniform(&self, rng: &mut StdRng) -> QueryInterval {
        let c = self.config;
        let span = self.t_max - self.t_min;
        let len = span * c.span_fraction;
        let slack = (span - len).max(0.0);
        let t1 = self.t_min + if slack > 0.0 { rng.random_range(0.0..slack) } else { 0.0 };
        QueryInterval { t1, t2: t1 + len, k: c.k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn queries_stay_inside_domain_with_exact_length() {
        let w = QueryWorkload::new(
            QueryWorkloadConfig {
                count: 50,
                span_fraction: 0.2,
                k: 10,
                seed: 1,
                ..Default::default()
            },
            100.0,
            200.0,
        );
        let qs = w.generate();
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!(q.t1 >= 100.0 && q.t2 <= 200.0 + 1e-9);
            assert!((q.t2 - q.t1 - 20.0).abs() < 1e-9);
            assert_eq!(q.k, 10);
        }
        // Not all identical.
        assert!(qs.iter().any(|q| (q.t1 - qs[0].t1).abs() > 1e-6));
    }

    #[test]
    fn full_span_fraction_yields_whole_domain() {
        let w = QueryWorkload::new(
            QueryWorkloadConfig {
                count: 3,
                span_fraction: 1.0,
                k: 5,
                seed: 2,
                ..Default::default()
            },
            0.0,
            10.0,
        );
        for q in w.generate() {
            assert_eq!((q.t1, q.t2), (0.0, 10.0));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = QueryWorkloadConfig::default();
        let a = QueryWorkload::new(cfg, 0.0, 1000.0).generate();
        let b = QueryWorkload::new(cfg, 0.0, 1000.0).generate();
        assert_eq!(a, b);
        let zipf = QueryWorkloadConfig {
            pattern: IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.2 },
            ..Default::default()
        };
        let a = QueryWorkload::new(zipf, 0.0, 1000.0).generate();
        let b = QueryWorkload::new(zipf, 0.0, 1000.0).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn windows_chunk_the_stream_in_order() {
        let cfg = QueryWorkloadConfig { count: 10, ..Default::default() };
        let w = QueryWorkload::new(cfg, 0.0, 1000.0);
        let flat = w.generate();
        let windows = w.windows(4);
        assert_eq!(windows.iter().map(Vec::len).collect::<Vec<_>>(), vec![4, 4, 2]);
        assert_eq!(windows.concat(), flat);
    }

    #[test]
    fn zipf_stream_reuses_hotspots_in_popularity_order() {
        let cfg = QueryWorkloadConfig {
            count: 2000,
            pattern: IntervalPattern::Zipf { hotspots: 5, exponent: 1.0, background: 0.0 },
            ..Default::default()
        };
        let w = QueryWorkload::new(cfg, 0.0, 500.0);
        let hot = w.hotspots();
        assert_eq!(hot.len(), 5);
        let qs = w.generate();
        // Every query is one of the hotspots (background = 0)…
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for q in &qs {
            assert!(hot.contains(q), "non-hotspot query in a pure Zipf stream");
            *counts.entry(q.t1.to_bits()).or_default() += 1;
        }
        // …and popularity follows the Zipf order: #1 strictly beats #5,
        // and is within loose bounds of its 1/H_5 ≈ 0.438 share.
        let c0 = counts[&hot[0].t1.to_bits()];
        let c4 = counts[&hot[4].t1.to_bits()];
        assert!(c0 > c4, "hotspot 0 ({c0}) must beat hotspot 4 ({c4})");
        let share = c0 as f64 / qs.len() as f64;
        assert!((0.3..0.6).contains(&share), "top-hotspot share {share}");
    }

    #[test]
    fn zipf_background_mixes_in_fresh_intervals() {
        let cfg = QueryWorkloadConfig {
            count: 1000,
            pattern: IntervalPattern::Zipf { hotspots: 3, exponent: 1.0, background: 0.5 },
            ..Default::default()
        };
        let w = QueryWorkload::new(cfg, 0.0, 500.0);
        let hot = w.hotspots();
        let qs = w.generate();
        let bg = qs.iter().filter(|q| !hot.contains(q)).count();
        let frac = bg as f64 / qs.len() as f64;
        assert!((0.4..0.6).contains(&frac), "background fraction {frac}");
        for q in &qs {
            assert!(q.t1 >= 0.0 && q.t2 <= 500.0 + 1e-9);
        }
    }
}
