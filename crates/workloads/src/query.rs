//! Query workload generation (paper §5 setup: "we generated 100 random
//! queries and report the average", with query span `(t2 − t1) = 20%·T` by
//! default).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One `top-k(t1, t2, sum)` query instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryInterval {
    /// Query start.
    pub t1: f64,
    /// Query end.
    pub t2: f64,
    /// Requested answer size.
    pub k: usize,
}

/// Configuration for [`QueryWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Number of queries (paper: 100).
    pub count: usize,
    /// Query interval length as a fraction of the data span (paper: 0.2).
    pub span_fraction: f64,
    /// The `k` of every query (paper default 50).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        Self { count: 100, span_fraction: 0.2, k: 50, seed: 7 }
    }
}

/// Deterministic random query generator over a given time domain.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    config: QueryWorkloadConfig,
    t_min: f64,
    t_max: f64,
}

impl QueryWorkload {
    /// Workload over `[t_min, t_max]`.
    pub fn new(config: QueryWorkloadConfig, t_min: f64, t_max: f64) -> Self {
        assert!(t_max > t_min, "empty data domain");
        assert!((0.0..=1.0).contains(&config.span_fraction), "fraction in [0,1]");
        Self { config, t_min, t_max }
    }

    /// Generate the configured queries.
    pub fn generate(&self) -> Vec<QueryInterval> {
        let c = self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let span = self.t_max - self.t_min;
        let len = span * c.span_fraction;
        let slack = (span - len).max(0.0);
        (0..c.count)
            .map(|_| {
                let t1 = self.t_min + if slack > 0.0 { rng.random_range(0.0..slack) } else { 0.0 };
                QueryInterval { t1, t2: t1 + len, k: c.k }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_stay_inside_domain_with_exact_length() {
        let w = QueryWorkload::new(
            QueryWorkloadConfig { count: 50, span_fraction: 0.2, k: 10, seed: 1 },
            100.0,
            200.0,
        );
        let qs = w.generate();
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!(q.t1 >= 100.0 && q.t2 <= 200.0 + 1e-9);
            assert!((q.t2 - q.t1 - 20.0).abs() < 1e-9);
            assert_eq!(q.k, 10);
        }
        // Not all identical.
        assert!(qs.iter().any(|q| (q.t1 - qs[0].t1).abs() > 1e-6));
    }

    #[test]
    fn full_span_fraction_yields_whole_domain() {
        let w = QueryWorkload::new(
            QueryWorkloadConfig { count: 3, span_fraction: 1.0, k: 5, seed: 2 },
            0.0,
            10.0,
        );
        for q in w.generate() {
            assert_eq!((q.t1, q.t2), (0.0, 10.0));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = QueryWorkloadConfig::default();
        let a = QueryWorkload::new(cfg, 0.0, 1000.0).generate();
        let b = QueryWorkload::new(cfg, 0.0, 1000.0).generate();
        assert_eq!(a, b);
    }
}
