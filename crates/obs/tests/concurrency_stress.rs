//! Concurrency stress for the observability plane's shared structures:
//! the flight recorder's record/snapshot/drain triangle and the span
//! sink's lock-free emit/drain ring. Writers hammer from several
//! threads while readers snapshot and drain; the invariants checked are
//! conservation (nothing double-reported, nothing lost unaccounted) and
//! absence of panics/deadlocks under contention.

use chronorank_obs::{
    CacheOutcome, FlightRecorder, IoDelta, QueryTrace, SloObjective, SloTracker, SpanSink, TraceId,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn trace(total_us: u64) -> QueryTrace {
    QueryTrace {
        route: "EXACT3",
        t1: 0.0,
        t2: 1.0,
        k: 4,
        total_us,
        cache: CacheOutcome::Bypass,
        shards: Vec::new(),
        io: IoDelta::default(),
    }
}

#[test]
fn recorder_survives_concurrent_record_snapshot_drain() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    let rec = FlightRecorder::new(32, 0);
    let stop = Arc::new(AtomicBool::new(false));
    let drained_total = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let rec = rec.clone();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record(trace(w as u64 * PER_WRITER + i + 1));
                }
            });
        }
        // One snapshotter: every observed snapshot must be internally
        // consistent (bounded by capacity, monotone totals).
        {
            let rec = rec.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = rec.snapshot();
                    assert!(snap.len() <= 32, "snapshot exceeds ring capacity");
                    assert!(snap.iter().all(|t| t.total_us >= 1));
                    std::hint::spin_loop();
                }
            });
        }
        // One drainer: counts everything it takes out.
        {
            let rec = rec.clone();
            let stop = stop.clone();
            let drained_total = drained_total.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let got = rec.drain();
                    assert!(got.len() <= 32);
                    drained_total.fetch_add(got.len() as u64, Ordering::Relaxed);
                }
            });
        }
        // Scope joins the writers; then release the readers.
        // (The writer spawns above return when done; signal stop after
        // they complete by joining via a monitor thread.)
        let rec2 = rec.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            // Wait until all writers' records are accounted for.
            while rec2.recorded() < (WRITERS as u64) * PER_WRITER {
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    // Final drain picks up whatever the background drainer missed.
    drained_total.fetch_add(rec.drain().len() as u64, Ordering::Relaxed);
    let expected = (WRITERS as u64) * PER_WRITER;
    assert_eq!(rec.recorded(), expected, "every record call was counted");
    let drained = drained_total.load(Ordering::Relaxed);
    assert!(
        drained <= expected,
        "drains never invent traces: drained {drained} > recorded {expected}"
    );
    assert!(rec.is_empty(), "final drain left the ring empty");
    // The ring evicts under pressure, but the last `capacity` records
    // written after the final concurrent drain must surface somewhere —
    // with a final drain after all writers joined, at least one trace
    // must have been seen overall.
    assert!(drained > 0, "at least some traces must survive to a drain");
}

#[test]
fn span_sink_emit_and_drain_conserve_spans() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    const CAPACITY: usize = 64;
    let sink = SpanSink::new(CAPACITY);
    let stop = Arc::new(AtomicBool::new(false));
    let drained_total = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let sink = sink.clone();
            s.spawn(move || {
                let trace = TraceId::next();
                for _ in 0..PER_WRITER {
                    sink.root(trace, "stress").finish();
                }
            });
        }
        {
            let sink = sink.clone();
            let stop = stop.clone();
            let drained_total = drained_total.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let got = sink.drain();
                    assert!(got.len() <= CAPACITY);
                    // Drained batches are seq-sorted and duplicate-free.
                    assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
                    drained_total.fetch_add(got.len() as u64, Ordering::Relaxed);
                }
            });
        }
        let sink2 = sink.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            while sink2.emitted() < (WRITERS as u64) * PER_WRITER {
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    drained_total.fetch_add(sink.drain().len() as u64, Ordering::Relaxed);
    let expected = (WRITERS as u64) * PER_WRITER;
    assert_eq!(sink.emitted(), expected);
    let drained = drained_total.load(Ordering::Relaxed);
    // Conservation: every emitted span is either drained or counted
    // dropped (overwritten). Nothing is double-reported, nothing leaks.
    assert_eq!(
        drained + sink.dropped(),
        expected,
        "drained ({drained}) + dropped ({}) must equal emitted ({expected})",
        sink.dropped()
    );
    assert!(sink.drain().is_empty());
}

#[test]
fn slo_tracker_observe_is_safe_under_contention() {
    let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: 0.01 });
    std::thread::scope(|s| {
        for w in 0..4 {
            let t = t.clone();
            s.spawn(move || {
                for i in 0..5_000u64 {
                    t.observe(if (i + w) % 2 == 0 { 10 } else { 5_000 }, false);
                }
            });
        }
        let t2 = t.clone();
        s.spawn(move || {
            for _ in 0..200 {
                let status = t2.status();
                for w in &status.windows {
                    assert!(w.slow + w.errors <= w.total + 64, "window sums stay sane");
                    assert!(w.burn_rate >= 0.0);
                }
            }
        });
    });
    let status = t.status();
    // Half the observations are 50× over target against a 1% budget:
    // unless the test stalled across a bucket boundary race, this must
    // be deeply out of compliance.
    assert!(status.windows.iter().any(|w| w.total > 0), "observations landed");
}
