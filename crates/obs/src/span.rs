//! Explicit span trees for end-to-end distributed tracing.
//!
//! A [`Span`] is one timed operation: a [`TraceId`] naming the query it
//! belongs to, its own [`SpanId`], an optional parent link, a static
//! name, typed attributes, and a monotonic start offset + duration. The
//! ids are process-seeded (time ⊕ pid, mixed), so spans minted on a
//! client and on a server join into **one** tree when the trace id
//! crosses the wire — which is exactly what the net tier's trace-context
//! extension does.
//!
//! Finished spans land in a [`SpanSink`]: a *lock-free bounded* ring of
//! `AtomicPtr` slots. Emitting is one `fetch_add` (sequence / slot claim)
//! plus one pointer `swap`; an overwritten span is dropped and counted,
//! never blocked on. [`SpanSink::drain`] takes-and-clears by swapping
//! every slot to null, so scrapers never re-report a span. The noop
//! variant follows the same cost discipline as [`crate::Registry::noop`]:
//! every operation on a noop sink is a branch on `None`.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identifies one end-to-end query across processes. `0` is reserved for
/// "absent" (a wire frame without trace context).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace. `0` is reserved for "no parent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Mint a fresh, process-seeded trace id (never 0).
    pub fn next() -> Self {
        TraceId(next_id())
    }

    /// Render as the fixed-width hex string the trace JSON uses.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl SpanId {
    /// Mint a fresh, process-seeded span id (never 0).
    pub fn next() -> Self {
        SpanId(next_id())
    }

    /// Render as the fixed-width hex string the trace JSON uses.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Process-unique id stream: a shared counter seeded from wall time ⊕
/// pid, passed through a 64-bit finalizer so two processes started in
/// the same instant still diverge after one step. Never yields 0.
fn next_id() -> u64 {
    static STATE: OnceLock<AtomicU64> = OnceLock::new();
    let state = STATE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        AtomicU64::new(t ^ (u64::from(std::process::id()) << 32))
    });
    loop {
        let id = mix64(state.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// SplitMix64 finalizer — full-avalanche, so sequential counter values
/// become well-spread ids.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned count (reads, k, queue depth, …).
    U64(u64),
    /// A float (ε budgets, rates).
    F64(f64),
    /// A flag (cache_hit, …).
    Bool(bool),
    /// Free text (error messages and other dynamic strings). Boxed so
    /// the variant does not widen every inline attribute slot.
    Str(Box<str>),
    /// Static text (route names, op names) — no allocation on the hot
    /// path; tracing must stay nearly free when the sink is live.
    Sym(&'static str),
}

/// The most attributes one span can carry. Everything past the cap is
/// silently dropped — spans are diagnostics, and a fixed inline array
/// keeps attribute attachment allocation-free on the serving hot path
/// (a heap `Vec` here measurably moved the obs bench's overhead gate).
/// Kept tight: every slot widens every `Span`, and emission cost at
/// serving scale is dominated by the cache lines a span touches.
pub const MAX_ATTRS: usize = 4;

/// Inline, fixed-capacity attribute list — see [`MAX_ATTRS`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttrList {
    len: u8,
    slots: [Option<(&'static str, AttrValue)>; MAX_ATTRS],
}

impl AttrList {
    /// Attach one attribute; silently dropped past [`MAX_ATTRS`].
    pub fn push(&mut self, key: &'static str, value: AttrValue) {
        if let Some(slot) = self.slots.get_mut(self.len as usize) {
            *slot = Some((key, value));
            self.len += 1;
        }
    }

    /// Attributes in attachment order.
    pub fn iter(&self) -> impl Iterator<Item = &(&'static str, AttrValue)> {
        self.slots[..self.len as usize].iter().filter_map(Option::as_ref)
    }

    /// Number of attached attributes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no attribute is attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<const K: usize> From<[(&'static str, AttrValue); K]> for AttrList {
    fn from(items: [(&'static str, AttrValue); K]) -> Self {
        let mut out = Self::default();
        for (key, value) in items {
            out.push(key, value);
        }
        out
    }
}

/// One finished, timed operation in a trace tree.
#[derive(Clone, Debug)]
pub struct Span {
    /// The end-to-end query this span belongs to.
    pub trace: TraceId,
    /// This span's own id.
    pub id: SpanId,
    /// Parent span, `None` for a root.
    pub parent: Option<SpanId>,
    /// What the span measures (`"client.topk"`, `"server.request"`, …).
    pub name: &'static str,
    /// Admission order within the sink (drain sort key).
    pub seq: u64,
    /// Monotonic start offset from the sink's epoch, µs.
    pub start_us: u64,
    /// Wall duration, µs.
    pub duration_us: u64,
    /// Typed attributes, emission order.
    pub attrs: AttrList,
}

struct SinkInner {
    epoch: Instant,
    /// Spans ever admitted (also the sequence source).
    emitted: AtomicU64,
    /// Spans overwritten before any drain saw them.
    dropped: AtomicU64,
    /// The bounded ring. A non-null pointer is owned by its slot; `swap`
    /// transfers that ownership atomically, so emit and drain never alias.
    slots: Box<[AtomicPtr<Span>]>,
}

impl Drop for SinkInner {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: the swap took sole ownership of the pointer.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// A lock-free bounded ring of finished [`Span`]s (see module docs).
#[derive(Clone, Default)]
pub struct SpanSink(Option<Arc<SinkInner>>);

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("noop", &self.0.is_none())
            .field("emitted", &self.emitted())
            .finish()
    }
}

impl SpanSink {
    /// A sink holding at most `capacity` spans (oldest overwritten).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanSink(Some(Arc::new(SinkInner {
            epoch: Instant::now(),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: std::iter::repeat_with(|| AtomicPtr::new(std::ptr::null_mut()))
                .take(capacity)
                .collect(),
        })))
    }

    /// A sink that drops everything; every operation is a branch on `None`.
    pub fn noop() -> Self {
        SpanSink(None)
    }

    /// The process-wide sink the net tier emits into by default (the one
    /// the `TRACE` wire op drains).
    pub fn global() -> &'static SpanSink {
        static GLOBAL: OnceLock<SpanSink> = OnceLock::new();
        GLOBAL.get_or_init(|| SpanSink::new(512))
    }

    /// Whether this is a [`SpanSink::noop`] handle.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Spans ever admitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.emitted.load(Ordering::Relaxed))
    }

    /// Spans overwritten before a drain collected them.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Open a root span (no parent) on `trace`.
    pub fn root(&self, trace: TraceId, name: &'static str) -> ActiveSpan {
        self.start_span(trace, None, name)
    }

    /// Open a child span under `parent`. A `parent` of `SpanId(0)` (a
    /// peer that traced nothing locally) degrades to a root.
    pub fn child(&self, trace: TraceId, parent: SpanId, name: &'static str) -> ActiveSpan {
        self.start_span(trace, (parent.0 != 0).then_some(parent), name)
    }

    fn start_span(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> ActiveSpan {
        let timing = self.0.as_ref().map(|inner| {
            let t0 = Instant::now();
            (t0, us_since(inner.epoch, t0))
        });
        let attrs = AttrList::default();
        ActiveSpan { sink: self.clone(), trace, id: SpanId::next(), parent, name, timing, attrs }
    }

    /// Emit a span whose duration was measured elsewhere (per-shard probe
    /// timings arrive as µs from the worker threads). The start offset is
    /// back-dated by the duration.
    pub fn emit_measured(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        duration_us: u64,
        attrs: impl Into<AttrList>,
    ) {
        if self.0.is_none() {
            return;
        }
        self.emit_measured_as(SpanId::next(), trace, parent, name, duration_us, attrs);
    }

    /// [`SpanSink::emit_measured`] with a caller-minted span id, so a
    /// caller can hand the id to children *before* the span itself is
    /// emitted (the serve engine parents its shard probes on the
    /// `engine.query` span it emits last, from an already-measured
    /// duration — no second clock read).
    pub fn emit_measured_as(
        &self,
        id: SpanId,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        duration_us: u64,
        attrs: impl Into<AttrList>,
    ) {
        self.emit_at(id, trace, parent, name, self.now_us(), duration_us, attrs);
    }

    /// Microseconds since this sink's epoch. Pair with
    /// [`SpanSink::emit_at`] so a caller emitting several spans measured
    /// against the same instant (the serve engine's probes plus its own
    /// span) pays one clock read, not one per span. `0` on a noop sink.
    pub fn now_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| us_since(inner.epoch, Instant::now()))
    }

    /// [`SpanSink::emit_measured_as`] with the clock read hoisted out:
    /// the span ends at `end_us` (a [`SpanSink::now_us`] reading) and is
    /// back-dated by `duration_us`.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_at(
        &self,
        id: SpanId,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        end_us: u64,
        duration_us: u64,
        attrs: impl Into<AttrList>,
    ) {
        if self.0.is_none() {
            return;
        }
        self.push(Span {
            trace,
            id,
            parent,
            name,
            seq: 0,
            start_us: end_us.saturating_sub(duration_us),
            duration_us,
            attrs: attrs.into(),
        });
    }

    fn push(&self, mut span: Span) {
        let Some(inner) = &self.0 else { return };
        let seq = inner.emitted.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        let slot = &inner.slots[(seq % inner.slots.len() as u64) as usize];
        let old = slot.swap(Box::into_raw(Box::new(span)), Ordering::AcqRel);
        if !old.is_null() {
            // Safety: the swap took sole ownership of the pointer.
            drop(unsafe { Box::from_raw(old) });
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Take-and-clear: every held span, admission order, and the ring is
    /// left empty. Concurrent emitters keep working — each slot's `swap`
    /// hands exactly one owner the span, so nothing is reported twice and
    /// nothing leaks.
    pub fn drain(&self) -> Vec<Span> {
        let Some(inner) = &self.0 else { return Vec::new() };
        let mut out: Vec<Span> = Vec::new();
        for slot in inner.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: the swap took sole ownership of the pointer.
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out.sort_by_key(|s| s.seq);
        out
    }
}

fn us_since(epoch: Instant, now: Instant) -> u64 {
    u64::try_from(now.duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// A span being timed. Finish it with [`ActiveSpan::finish`] to compute
/// the duration and hand it to the sink; dropping it unfinished discards
/// it (deliberate: an errored path that forgets to finish must not emit a
/// half-timed span).
#[derive(Debug)]
pub struct ActiveSpan {
    sink: SpanSink,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    /// `(start instant, start offset µs)`; `None` on a noop sink.
    timing: Option<(Instant, u64)>,
    attrs: AttrList,
}

impl ActiveSpan {
    /// This span's id — what children (local or across the wire) link to.
    /// Real even on a noop sink, so trace context can still propagate.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Attach one typed attribute (dropped on a noop sink).
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        if self.timing.is_some() {
            self.attrs.push(key, value);
        }
    }

    /// Close the span: duration = now − start, then emit into the sink.
    pub fn finish(self) {
        let ActiveSpan { sink, trace, id, parent, name, timing, attrs } = self;
        let Some((t0, start_us)) = timing else { return };
        let duration_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        sink.push(Span { trace, id, parent, name, seq: 0, start_us, duration_us, attrs });
    }
}

/// Render spans as one structured JSON array (the payload of the net
/// tier's `TRACE` wire op, parseable by the bench harness's JSON reader).
/// Ids are fixed-width hex **strings** — a u64 does not survive an `f64`
/// JSON number — and every attribute keeps its type.
pub fn spans_json(spans: &[Span]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":{},\"name\":",
            s.trace.hex(),
            s.id.hex(),
            match s.parent {
                Some(p) => format!("\"{}\"", p.hex()),
                None => "null".to_string(),
            },
        ));
        write_json_str(s.name, &mut out);
        out.push_str(&format!(
            ",\"seq\":{},\"start_us\":{},\"duration_us\":{},\"attrs\":{{",
            s.seq, s.start_us, s.duration_us
        ));
        for (j, (k, v)) in s.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_json_str(k, &mut out);
            out.push(':');
            match v {
                AttrValue::U64(n) => out.push_str(&n.to_string()),
                AttrValue::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
                AttrValue::F64(_) => out.push_str("null"),
                AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                AttrValue::Str(s) => write_json_str(s, &mut out),
                AttrValue::Sym(s) => write_json_str(s, &mut out),
            }
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

pub(crate) fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn spans_link_into_a_tree_and_drain_in_order() {
        let sink = SpanSink::new(16);
        let trace = TraceId::next();
        let mut root = sink.root(trace, "server.request");
        root.attr("op", AttrValue::Str("topk".into()));
        let mut child = sink.child(trace, root.id(), "engine.query");
        child.attr("k", AttrValue::U64(8));
        sink.emit_measured(
            trace,
            Some(child.id()),
            "shard.probe",
            250,
            [("shard", AttrValue::U64(0)), ("cache_hit", AttrValue::Bool(false))],
        );
        let (root_id, child_id) = (root.id(), child.id());
        child.finish();
        root.finish();

        let spans = sink.drain();
        assert_eq!(spans.len(), 3);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq), "drain is seq-ordered");
        let shard = spans.iter().find(|s| s.name == "shard.probe").unwrap();
        assert_eq!(shard.parent, Some(child_id));
        assert_eq!(shard.duration_us, 250);
        let engine = spans.iter().find(|s| s.name == "engine.query").unwrap();
        assert_eq!(engine.parent, Some(root_id));
        let server = spans.iter().find(|s| s.name == "server.request").unwrap();
        assert_eq!(server.parent, None);
        assert!(spans.iter().all(|s| s.trace == trace));
        // Take-and-clear: a second drain is empty.
        assert!(sink.drain().is_empty());
        assert_eq!(sink.emitted(), 3);
    }

    #[test]
    fn ring_is_bounded_and_counts_overwrites() {
        let sink = SpanSink::new(4);
        let trace = TraceId::next();
        for _ in 0..10 {
            sink.root(trace, "s").finish();
        }
        assert_eq!(sink.emitted(), 10);
        assert_eq!(sink.dropped(), 6);
        let spans = sink.drain();
        assert_eq!(spans.len(), 4, "only the newest capacity spans remain");
        assert_eq!(spans.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn noop_sink_costs_a_branch_and_keeps_real_ids() {
        let sink = SpanSink::noop();
        let trace = TraceId::next();
        let mut span = sink.root(trace, "s");
        span.attr("k", AttrValue::U64(1));
        assert_ne!(span.id().0, 0, "ids stay real so trace context can still propagate");
        span.finish();
        assert!(sink.drain().is_empty());
        assert_eq!(sink.emitted(), 0);
        assert!(sink.is_noop());
    }

    #[test]
    fn zero_parent_degrades_to_root() {
        let sink = SpanSink::new(4);
        sink.child(TraceId::next(), SpanId(0), "s").finish();
        assert_eq!(sink.drain()[0].parent, None);
    }

    #[test]
    fn unfinished_spans_are_discarded() {
        let sink = SpanSink::new(4);
        let span = sink.root(TraceId::next(), "s");
        drop(span);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn json_escapes_and_types_attributes() {
        let sink = SpanSink::new(4);
        let trace = TraceId::next();
        let mut span = sink.root(trace, "server.request");
        span.attr("route", AttrValue::Str("EXACT\"1\"".into()));
        span.attr("reads", AttrValue::U64(7));
        span.attr("eps", AttrValue::F64(0.25));
        span.attr("hit", AttrValue::Bool(true));
        let mut child = sink.child(trace, span.id(), "probe");
        child.attr("nan", AttrValue::F64(f64::NAN));
        child.finish();
        span.finish();
        let json = spans_json(&sink.drain());
        assert!(json.contains(&format!("\"trace\":\"{}\"", trace.hex())));
        assert!(json.contains("\"parent\":null"));
        assert!(json.contains("\"route\":\"EXACT\\\"1\\\"\""));
        assert!(json.contains("\"reads\":7"));
        assert!(json.contains("\"eps\":0.25"));
        assert!(json.contains("\"hit\":true"));
        assert!(json.contains("\"nan\":null"));
        assert_eq!(spans_json(&[]), "[]");
    }
}
