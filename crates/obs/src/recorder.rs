//! The slow-query flight recorder: a fixed-capacity ring of structured
//! per-query traces.
//!
//! The recorder sits *off* the hot path by construction: callers first
//! compare a query's elapsed time against [`FlightRecorder::threshold_us`]
//! (one relaxed atomic load) and only a qualifying slow query pays the
//! ring's mutex — a push and maybe a pop, never an index probe.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a query interacted with the shard result caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Every shard answered from its cache.
    Hit,
    /// No shard answered from its cache (cacheable route, cold keys).
    Miss,
    /// Some shards hit, some missed.
    Partial,
    /// The route is not cacheable (exact routes) or no cache exists.
    Bypass,
}

impl CacheOutcome {
    /// Stable lowercase name (trace rendering and tests).
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Partial => "partial",
            CacheOutcome::Bypass => "bypass",
        }
    }

    /// Fold one shard's hit/miss into a query-level outcome.
    pub fn fold(self, shard_hit: bool) -> CacheOutcome {
        match (self, shard_hit) {
            (CacheOutcome::Bypass, true) => CacheOutcome::Hit,
            (CacheOutcome::Bypass, false) => CacheOutcome::Miss,
            (CacheOutcome::Hit, true) => CacheOutcome::Hit,
            (CacheOutcome::Miss, false) => CacheOutcome::Miss,
            _ => CacheOutcome::Partial,
        }
    }
}

/// IO a query caused, as a plain counter delta (mirrors
/// `chronorank_storage::IoStats` without the dependency).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoDelta {
    /// Block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// WAL appends.
    pub wal_writes: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
}

/// One shard's contribution to a query's fan-out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSpan {
    /// Shard index.
    pub shard: usize,
    /// Wall time the shard's probe took, in µs.
    pub elapsed_us: u64,
    /// Block reads the probe performed (thread-attributed).
    pub reads: u64,
    /// Whether this shard answered from its result cache.
    pub cache_hit: bool,
}

/// A structured record of one (slow) query.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Route name the planner chose (`"EXACT1"`, `"APPX2"`, …).
    pub route: &'static str,
    /// Query interval.
    pub t1: f64,
    /// Query interval.
    pub t2: f64,
    /// Requested k.
    pub k: usize,
    /// End-to-end latency in µs (for streams: the slowest shard span).
    pub total_us: u64,
    /// Query-level cache outcome folded over all shards.
    pub cache: CacheOutcome,
    /// Per-shard fan-out timings, shard order.
    pub shards: Vec<ShardSpan>,
    /// IO the query caused across all shards.
    pub io: IoDelta,
}

struct RecorderInner {
    capacity: usize,
    threshold_us: AtomicU64,
    recorded: AtomicU64,
    ring: Mutex<VecDeque<QueryTrace>>,
}

/// Fixed-capacity ring buffer of [`QueryTrace`]s (see module docs).
#[derive(Clone, Default)]
pub struct FlightRecorder(Option<Arc<RecorderInner>>);

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("len", &self.len())
            .field("threshold_us", &self.threshold_us())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` qualifying traces; queries
    /// at or above `threshold_us` qualify.
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        FlightRecorder(Some(Arc::new(RecorderInner {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            recorded: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        })))
    }

    /// A recorder that drops everything (no-op instrumentation).
    pub fn noop() -> Self {
        FlightRecorder(None)
    }

    /// The current slow-query threshold in µs.
    pub fn threshold_us(&self) -> u64 {
        self.0.as_ref().map_or(u64::MAX, |r| r.threshold_us.load(Ordering::Relaxed))
    }

    /// Re-arm the slow-query threshold (µs). `0` records every query.
    pub fn set_threshold_us(&self, us: u64) {
        if let Some(r) = &self.0 {
            r.threshold_us.store(us, Ordering::Relaxed);
        }
    }

    /// Whether a query of `total_us` qualifies — the hot-path gate, one
    /// relaxed load.
    #[inline]
    pub fn qualifies(&self, total_us: u64) -> bool {
        match &self.0 {
            Some(r) => total_us >= r.threshold_us.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Record a trace (caller has already checked [`Self::qualifies`];
    /// re-checked here so direct calls stay correct).
    pub fn record(&self, trace: QueryTrace) {
        let Some(r) = &self.0 else { return };
        if trace.total_us < r.threshold_us.load(Ordering::Relaxed) {
            return;
        }
        r.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = r.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == r.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Traces currently held, oldest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        match &self.0 {
            Some(r) => r
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |r| r.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever recorded (including ones the ring has evicted).
    pub fn recorded(&self) -> u64 {
        self.0.as_ref().map_or(0, |r| r.recorded.load(Ordering::Relaxed))
    }

    /// Drop every held trace (counters keep their totals).
    pub fn clear(&self) {
        if let Some(r) = &self.0 {
            r.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
    }

    /// Take-and-clear: every held trace, oldest first, leaving the ring
    /// empty. A scraper that drains never re-reports the same slow
    /// query; `recorded()` keeps its lifetime total.
    pub fn drain(&self) -> Vec<QueryTrace> {
        match &self.0 {
            Some(r) => {
                let mut ring = r.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                std::mem::take(&mut *ring).into()
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(total_us: u64) -> QueryTrace {
        QueryTrace {
            route: "EXACT3",
            t1: 0.0,
            t2: 1.0,
            k: 5,
            total_us,
            cache: CacheOutcome::Bypass,
            shards: vec![ShardSpan { shard: 0, elapsed_us: total_us, reads: 2, cache_hit: false }],
            io: IoDelta { reads: 2, ..Default::default() },
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_capacity_traces() {
        let rec = FlightRecorder::new(3, 0);
        for us in 1..=5u64 {
            rec.record(trace(us));
        }
        let kept: Vec<u64> = rec.snapshot().iter().map(|t| t.total_us).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn threshold_filters_fast_queries() {
        let rec = FlightRecorder::new(8, 100);
        assert!(!rec.qualifies(99));
        assert!(rec.qualifies(100));
        rec.record(trace(99));
        rec.record(trace(250));
        assert_eq!(rec.len(), 1);
        rec.set_threshold_us(0);
        rec.record(trace(1));
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn noop_recorder_drops_everything() {
        let rec = FlightRecorder::noop();
        assert!(!rec.qualifies(u64::MAX));
        rec.record(trace(u64::MAX));
        assert!(rec.is_empty());
        assert_eq!(rec.threshold_us(), u64::MAX);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn drain_takes_and_clears() {
        let rec = FlightRecorder::new(4, 0);
        rec.record(trace(1));
        rec.record(trace(2));
        let drained: Vec<u64> = rec.drain().iter().map(|t| t.total_us).collect();
        assert_eq!(drained, vec![1, 2], "oldest first");
        assert!(rec.is_empty(), "drain leaves the ring empty");
        assert!(rec.drain().is_empty(), "second drain sees nothing");
        assert_eq!(rec.recorded(), 2, "lifetime total survives the drain");
        rec.record(trace(3));
        assert_eq!(rec.len(), 1, "recorder keeps working after a drain");
    }

    #[test]
    fn cache_outcome_folds_across_shards() {
        use CacheOutcome::*;
        assert_eq!(Bypass.fold(true).fold(true), Hit);
        assert_eq!(Bypass.fold(false).fold(false), Miss);
        assert_eq!(Bypass.fold(true).fold(false), Partial);
        assert_eq!(Partial.fold(true), Partial);
    }
}
