//! The three metric primitives: counter, gauge, log-bucketed histogram.
//!
//! Every handle is a cheap clone around an `Option<Arc<_>>`: a `Some`
//! handle updates shared atomics with `Relaxed` ordering, a `None` handle
//! (from [`crate::Registry::noop`]) is a no-op whose cost is one branch.
//! That makes "instrumented vs. uninstrumented" an A/B the bench harness
//! can run against identical code.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A real counter, unattached to any registry (mostly for tests).
    pub fn new() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A handle whose operations do nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A value that can go up and down (signed, set/add semantics).
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// A real gauge, unattached to any registry (mostly for tests).
    pub fn new() -> Self {
        Gauge(Some(Arc::new(AtomicI64::new(0))))
    }

    /// A handle whose operations do nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Saturating overwrite from an unsigned source (counters mirrored as
    /// point-in-time views).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(i64::try_from(v).unwrap_or(i64::MAX));
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Sub-bucket precision: 2^5 = 32 sub-buckets per power of two, so any
/// recorded value lands in a bucket within ~3% of its true magnitude —
/// tight enough that the p50/p95/p99 snapshots are honest at the
/// single-digit-percent level the overhead gate cares about.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values below `SUB_COUNT` get exact unit buckets; above, 32 log
/// sub-buckets per power of two up to `u64::MAX`.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// Bucket index of `v` (HDR-style: exact below 32, log-linear above).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let major = (msb - SUB_BITS + 1) as usize;
    let minor = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    major * SUB_COUNT as usize + minor
}

/// Lower bound of bucket `idx` — the representative value quantile
/// queries report.
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        return idx;
    }
    let major = idx / SUB_COUNT;
    let minor = idx % SUB_COUNT;
    (SUB_COUNT + minor) << (major - 1)
}

pub(crate) struct HistogramInner {
    buckets: Vec<AtomicU64>, // BUCKETS cells
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// microseconds, batch sizes, …).
///
/// Recording touches three relaxed atomics and one `fetch_max` — no
/// mutex anywhere, so any number of worker threads can record into one
/// shared histogram without serialising (the "sharding" is the atomic
/// bucket array itself: concurrent recorders only contend when they hit
/// the very same bucket, and even then only on a relaxed RMW).
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramInner>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.p50)
            .field("p99", &snap.p99)
            .field("max", &snap.max)
            .finish()
    }
}

impl Histogram {
    /// A real histogram, unattached to any registry (mostly for tests).
    pub fn new() -> Self {
        Histogram(Some(Arc::new(HistogramInner {
            buckets: std::iter::repeat_with(|| AtomicU64::new(0)).take(BUCKETS).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        })))
    }

    /// A handle whose operations do nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(inner) = &self.0 {
            inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
            inner.sum.fetch_add(v, Ordering::Relaxed);
            inner.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time view with p50/p95/p99/max.
    /// (Concurrent recorders may land between the bucket walk and the
    /// counter loads; quantiles are clamped to recorded data.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let Some(inner) = &self.0 else { return HistogramSnapshot::default() };
        let counts: Vec<u64> = inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let mut rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            for (idx, c) in counts.iter().enumerate() {
                if *c >= rank {
                    return bucket_floor(idx);
                }
                rank -= c;
            }
            bucket_floor(BUCKETS - 1)
        };
        HistogramSnapshot {
            count: total,
            sum: inner.sum.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// What [`Histogram::snapshot`] reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (same unit as the samples).
    pub sum: u64,
    /// Median (bucket lower bound, within ~3%).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample ever recorded (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
        g.set_u64(u64::MAX);
        assert_eq!(g.get(), i64::MAX);
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.add(99);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.record(123);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn buckets_are_monotone_and_within_tolerance() {
        // Every value maps to a bucket whose floor is <= the value and
        // within ~2^-SUB_BITS relative error; bucket indexes never
        // regress as values grow.
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            last = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            if v >= SUB_COUNT {
                let rel = (v - floor) as f64 / v as f64;
                assert!(rel <= 1.0 / SUB_COUNT as f64 + 1e-12, "error {rel} at {v}");
            }
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
    }

    #[test]
    fn snapshot_quantiles_track_uniform_data() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        // Log buckets: quantiles within ~4% below the true value.
        for (got, want) in [(s.p50, 5_000.0), (s.p95, 9_500.0), (s.p99, 9_900.0)] {
            let got = got as f64;
            assert!(got <= want && got >= want * 0.95, "quantile {got} vs {want}");
        }
    }

    #[test]
    fn snapshot_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4_000);
    }
}
