//! The metric registry and its Prometheus-style text exposition.
//!
//! A [`Registry`] maps family names to typed series (one per label set).
//! Registration takes a mutex — it happens at engine construction or on
//! a cold sync path — but the handles it returns update lock-free
//! atomics. Registering the same `(name, labels)` twice returns a handle
//! to the *same* underlying series, so independent tiers can share one
//! process-wide registry without coordination.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// What a metric family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-bucketed distribution, exposed as a summary with
    /// p50/p95/p99 quantiles plus `_sum`, `_count` and `_max`.
    Histogram,
}

impl MetricKind {
    fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: MetricKind,
    help: String,
    /// Rendered label block (`""` or `{k="v",…}`) → series.
    series: BTreeMap<String, Metric>,
}

#[derive(Default)]
struct RegistryInner {
    families: Mutex<BTreeMap<String, Family>>,
}

/// A collection of named metric families (see module docs).
///
/// Cloning is cheap (`Arc`); [`Registry::noop`] yields a registry whose
/// handles never touch memory and whose [`Registry::render`] is empty.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.as_ref().map_or(0, |i| {
            i.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
        });
        f.debug_struct("Registry")
            .field("noop", &self.inner.is_none())
            .field("families", &n)
            .finish()
    }
}

impl Registry {
    /// A fresh, private registry.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(RegistryInner::default())) }
    }

    /// A registry whose handles are all no-ops — the uninstrumented side
    /// of the overhead A/B bench.
    pub fn noop() -> Self {
        Registry { inner: None }
    }

    /// The process-wide registry every tier instruments by default, and
    /// the one the wire `METRICS` op renders.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Whether this is a [`Registry::noop`] handle.
    pub fn is_noop(&self) -> bool {
        self.inner.is_none()
    }

    /// Register (or look up) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labelled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self
            .series(name, help, labels, MetricKind::Counter, || Metric::Counter(Counter::new()))
        {
            Some(Metric::Counter(c)) => c,
            Some(_) => unreachable!("kind checked in series()"),
            None => Counter::noop(),
        }
    }

    /// Register (or look up) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labelled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, MetricKind::Gauge, || Metric::Gauge(Gauge::new())) {
            Some(Metric::Gauge(g)) => g,
            Some(_) => unreachable!("kind checked in series()"),
            None => Gauge::noop(),
        }
    }

    /// Register (or look up) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a labelled histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, labels, MetricKind::Histogram, || {
            Metric::Histogram(Histogram::new())
        }) {
            Some(Metric::Histogram(h)) => h,
            Some(_) => unreachable!("kind checked in series()"),
            None => Histogram::noop(),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
    ) -> Option<Metric> {
        let inner = self.inner.as_ref()?;
        let mut families = inner.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric family {name:?} registered twice with different kinds"
        );
        Some(family.series.entry(render_labels(labels)).or_insert_with(make).clone())
    }

    /// Render every family as Prometheus-style text exposition:
    /// `# HELP` / `# TYPE` headers, then one sample line per series
    /// (histograms as summaries with `quantile` labels plus `_sum`,
    /// `_count` and `_max` lines). Deterministic order (sorted names,
    /// sorted label blocks); empty for a no-op registry.
    pub fn render(&self) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let families = inner.families.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition_type()));
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Metric::Histogram(h) => {
                        let s = h.snapshot();
                        for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                            out.push_str(&format!(
                                "{name}{} {v}\n",
                                with_label(labels, "quantile", q)
                            ));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", s.sum));
                        out.push_str(&format!("{name}_count{labels} {}\n", s.count));
                        out.push_str(&format!("{name}_max{labels} {}\n", s.max));
                    }
                }
            }
        }
        out
    }
}

/// Render a label set as its exposition block (`""` when empty),
/// keys sorted for determinism.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> =
        sorted.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// Append one more label to an already-rendered block.
fn with_label(block: &str, key: &str, value: &str) -> String {
    if block.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &block[..block.len() - 1])
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Validate Prometheus-style exposition text and return the set of
/// family names it declares.
///
/// The checks are structural — every non-comment line must parse as
/// `name[{labels}] <number>`, every sample's base family must have a
/// preceding `# TYPE` line, the text must end with a newline, and a
/// family re-declared with **conflicting** `# HELP` or `# TYPE` text is
/// rejected (consistent re-declarations pass — concatenated scrapes are
/// fine, silent meaning changes are not). This is what the CI
/// `obs-smoke` stage runs against a live `METRICS` scrape, so a
/// malformed encoder (or a truncated payload) fails loudly.
pub fn validate_exposition(text: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut families = std::collections::BTreeSet::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();
    if text.is_empty() {
        return Ok(families);
    }
    if !text.ends_with('\n') {
        return Err("exposition does not end with a newline".into());
    }
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {ln}: TYPE without a name"))?;
            let kind = parts.next().ok_or(format!("line {ln}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(format!("line {ln}: unknown TYPE kind {kind:?}"));
            }
            if let Some(prev) = kinds.insert(name.to_string(), kind.to_string()) {
                if prev != kind {
                    return Err(format!(
                        "line {ln}: family {name:?} re-declared as TYPE {kind} \
                         (was {prev}) — conflicting registration"
                    ));
                }
            }
            families.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            if name.is_empty() {
                return Err(format!("line {ln}: HELP without a name"));
            }
            if let Some(prev) = helps.insert(name.to_string(), help.to_string()) {
                if prev != help {
                    return Err(format!(
                        "line {ln}: family {name:?} re-declared with different HELP \
                         ({help:?}, was {prev:?}) — conflicting registration"
                    ));
                }
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: sample line without a value: {line:?}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: non-numeric sample value {value:?}"));
        }
        let name = series.split('{').next().unwrap_or(series);
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {ln}: unterminated label block: {series:?}"));
        }
        let base = ["_sum", "_count", "_max", "_bucket"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf))
            .unwrap_or(name);
        if !families.contains(base) && !families.contains(name) {
            return Err(format!("line {ln}: sample {name:?} has no preceding # TYPE"));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("chronorank_test_total", "help");
        let b = r.counter("chronorank_test_total", "help");
        a.add(3);
        assert_eq!(b.get(), 3, "same name must alias the same series");
        let l1 = r.counter_with("chronorank_routed_total", "h", &[("route", "exact1")]);
        let l2 = r.counter_with("chronorank_routed_total", "h", &[("route", "appx2")]);
        l1.inc();
        assert_eq!(l2.get(), 0, "distinct label sets are distinct series");
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("chronorank_x", "h");
        let _ = r.gauge("chronorank_x", "h");
    }

    #[test]
    fn noop_registry_renders_empty() {
        let r = Registry::noop();
        r.counter("chronorank_y", "h").add(5);
        assert!(r.render().is_empty());
        assert!(r.is_noop());
    }

    #[test]
    fn render_is_valid_exposition() {
        let r = Registry::new();
        r.counter("chronorank_queries_total", "queries served").add(7);
        r.gauge_with("chronorank_live_mass", "live mass", &[("shard", "0")]).set(42);
        let h = r.histogram_with("chronorank_latency_us", "query latency", &[("route", "exact3")]);
        h.record(10);
        h.record(1000);
        let text = r.render();
        let families = validate_exposition(&text).expect("render must validate");
        for want in ["chronorank_queries_total", "chronorank_live_mass", "chronorank_latency_us"] {
            assert!(families.contains(want), "missing family {want}: \n{text}");
        }
        assert!(text.contains("chronorank_queries_total 7"));
        assert!(text.contains("chronorank_live_mass{shard=\"0\"} 42"));
        assert!(text.contains("chronorank_latency_us{route=\"exact3\",quantile=\"0.5\"}"));
        assert!(text.contains("chronorank_latency_us_count{route=\"exact3\"} 2"));
        assert!(text.contains("chronorank_latency_us_max{route=\"exact3\"} 1000"));
    }

    #[test]
    fn validate_rejects_malformed_text() {
        assert!(validate_exposition("no_type_header 1\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na notanumber\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na 1").is_err(), "missing newline");
        assert!(validate_exposition("# TYPE a counter\na{open 1\n").is_err());
        assert!(validate_exposition("# TYPE a wat\n").is_err());
    }

    #[test]
    fn validate_accepts_consistent_redeclarations() {
        // Two scrape chunks concatenated: same family, same HELP, same
        // TYPE — benign and accepted.
        let text = "# HELP a counts things\n# TYPE a counter\na 1\n\
                    # HELP a counts things\n# TYPE a counter\na 2\n";
        let families = validate_exposition(text).expect("consistent re-declaration is fine");
        assert!(families.contains("a"));
    }

    #[test]
    fn validate_rejects_conflicting_redeclarations() {
        // Same name, different TYPE: a counter silently becoming a gauge.
        let err = validate_exposition("# TYPE a counter\na 1\n# TYPE a gauge\na 2\n")
            .expect_err("conflicting TYPE must be rejected");
        assert!(err.contains("conflicting registration"), "{err}");
        // Same name, different HELP text.
        let err = validate_exposition(
            "# HELP a counts things\n# TYPE a counter\na 1\n\
             # HELP a counts other things\n# TYPE a counter\na 2\n",
        )
        .expect_err("conflicting HELP must be rejected");
        assert!(err.contains("different HELP"), "{err}");
        // HELP with no name at all is malformed.
        assert!(validate_exposition("# HELP \n").is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("chronorank_esc", "h", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.render();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""), "escaping failed:\n{text}");
        validate_exposition(&text).expect("escaped labels still validate");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = Registry::global().counter("chronorank_global_probe_total", "probe");
        let before = c.get();
        Registry::global().counter("chronorank_global_probe_total", "probe").inc();
        assert_eq!(c.get(), before + 1);
    }
}
