//! `chronorank-obs` — the dependency-free observability plane.
//!
//! Every serving tier of chronorank keeps its own ad-hoc numbers
//! (`IoStats`, `LiveReport`, the wire STATS body). This crate gives them
//! one shared vocabulary and one scrape point:
//!
//! * [`Counter`] / [`Gauge`] — single atomic cells, `Relaxed` ordering,
//!   safe to bump from any hot path.
//! * [`Histogram`] — a log-bucketed (HDR-style) latency histogram whose
//!   buckets are plain atomics; recording is two relaxed RMWs plus a
//!   `fetch_max`, never a lock. Snapshots report p50/p95/p99/max.
//! * [`Registry`] — a process-wide (or private) collection of named
//!   metric families with labels, rendered as Prometheus-style text
//!   exposition by [`Registry::render`]. [`Registry::noop`] hands out
//!   handles whose operations compile to a branch on `None` — the
//!   baseline side of the instrumentation-overhead A/B bench.
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of structured
//!   [`QueryTrace`] records for queries slower than a settable
//!   threshold: route, per-shard fan-out timings, cache outcome, and the
//!   IO delta the query caused.
//! * [`SpanSink`] / [`ActiveSpan`] — explicit span trees for end-to-end
//!   distributed tracing: [`TraceId`]s cross the wire, parent links join
//!   client, server, engine and shard timings into one tree, and the
//!   sink is a lock-free bounded ring with take-and-clear
//!   [`SpanSink::drain`].
//! * [`SloTracker`] — multi-window (1 s / 10 s / 60 s) burn-rate
//!   tracking over a latency objective ([`SloObjective`]), exposed as
//!   registry gauges and as structured JSON for the wire `TRACE` op.
//!
//! The crate depends on `std` only, so every tier (including `storage`)
//! can use it without a cycle.

mod metrics;
mod recorder;
mod registry;
mod slo;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{CacheOutcome, FlightRecorder, IoDelta, QueryTrace, ShardSpan};
pub use registry::{validate_exposition, MetricKind, Registry};
pub use slo::{SloObjective, SloStatus, SloTracker, WindowStatus, SLO_WINDOWS_S};
pub use span::{
    spans_json, ActiveSpan, AttrList, AttrValue, Span, SpanId, SpanSink, TraceId, MAX_ATTRS,
};

/// Elapsed microseconds of an [`std::time::Instant`], saturated into `u64`.
///
/// The one conversion every instrumented tier needs; centralised so each
/// call site is a single expression.
pub fn elapsed_us(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}
