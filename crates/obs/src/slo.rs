//! Multi-window SLO burn-rate tracking over latency objectives.
//!
//! An [`SloObjective`] states what "good" means — a latency target
//! (every request over `p99_target_us` burns budget) and an error budget
//! (the fraction of requests allowed to be bad). An [`SloTracker`]
//! watches a live request stream through per-second buckets and reports,
//! for each of three sliding windows (1 s / 10 s / 60 s), the **burn
//! rate**: the observed bad fraction divided by the budget. A burn rate
//! of 1.0 means the budget is being consumed exactly as fast as it
//! accrues; above 1.0 the window is out of compliance. The multi-window
//! shape is the standard alerting trick — the short window catches a
//! cliff within a second, the long window filters one-off blips.
//!
//! [`SloTracker::observe`] is lock-free (a few relaxed atomics on a
//! time-sliced ring) so it can sit on the wire tier's per-request path;
//! the noop variant follows the [`crate::Registry::noop`] cost
//! discipline — every operation is a branch on `None`.

use crate::registry::Registry;
use crate::span::write_json_str;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The sliding windows a tracker reports, in seconds.
pub const SLO_WINDOWS_S: [u64; 3] = [1, 10, 60];

/// Ring size: must exceed the longest window so a full 60 s of buckets
/// is always resident alongside the bucket being written.
const BUCKETS: usize = 64;

/// What "meeting the objective" means for a request stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloObjective {
    /// A request slower than this burns budget (the "p99 ≤ N µs" target).
    pub p99_target_us: u64,
    /// Allowed bad fraction, in `(0, 1]` — e.g. `0.01` tolerates 1% of
    /// requests slow or errored before the burn rate crosses 1.0.
    pub error_budget: f64,
}

impl Default for SloObjective {
    fn default() -> Self {
        // Generous serving default: p99 ≤ 50 ms with a 1% budget. Tight
        // enough to flip under an injected-latency device, loose enough
        // that loopback tests never trip it by accident.
        SloObjective { p99_target_us: 50_000, error_budget: 0.01 }
    }
}

/// One second of request outcomes. `sec` tags which wall second the
/// counts belong to; a writer that finds a stale tag re-tags and resets.
struct Bucket {
    sec: AtomicU64,
    total: AtomicU64,
    slow: AtomicU64,
    errors: AtomicU64,
}

struct TrackerInner {
    objective: SloObjective,
    epoch: Instant,
    buckets: [Bucket; BUCKETS],
}

/// Lock-free multi-window burn-rate tracker (see module docs).
#[derive(Clone, Default)]
pub struct SloTracker(Option<Arc<TrackerInner>>);

impl std::fmt::Debug for SloTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloTracker")
            .field("noop", &self.0.is_none())
            .field("objective", &self.0.as_ref().map(|i| i.objective))
            .finish()
    }
}

impl SloTracker {
    /// A tracker enforcing `objective`. A non-positive or non-finite
    /// budget is clamped into `(0, 1]` so burn rates stay meaningful.
    pub fn new(objective: SloObjective) -> Self {
        let budget = if objective.error_budget.is_finite() && objective.error_budget > 0.0 {
            objective.error_budget.min(1.0)
        } else {
            0.01
        };
        SloTracker(Some(Arc::new(TrackerInner {
            objective: SloObjective { error_budget: budget, ..objective },
            epoch: Instant::now(),
            buckets: std::array::from_fn(|_| Bucket {
                // u64::MAX never matches a real second, so untouched
                // buckets are excluded from every window sum.
                sec: AtomicU64::new(u64::MAX),
                total: AtomicU64::new(0),
                slow: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            }),
        })))
    }

    /// A tracker that observes nothing; every operation is a branch on
    /// `None`.
    pub fn noop() -> Self {
        SloTracker(None)
    }

    /// Whether this is a [`SloTracker::noop`] handle.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// The objective being tracked (`None` for a noop tracker).
    pub fn objective(&self) -> Option<SloObjective> {
        self.0.as_ref().map(|i| i.objective)
    }

    /// Record one finished request. `error` marks a request that failed
    /// outright (decode error, BUSY rejection) — it burns budget
    /// regardless of latency.
    pub fn observe(&self, latency_us: u64, error: bool) {
        let Some(inner) = &self.0 else { return };
        let sec = inner.epoch.elapsed().as_secs();
        let bucket = &inner.buckets[(sec % BUCKETS as u64) as usize];
        let tagged = bucket.sec.load(Ordering::Acquire);
        if tagged != sec {
            // First writer of this wall second claims the bucket and
            // resets it. A racing observe between the claim and the
            // resets can be under-counted — the windows are a telemetry
            // signal, not an audit log, so best-effort is the right
            // trade for a lock-free hot path.
            if bucket.sec.compare_exchange(tagged, sec, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                bucket.total.store(0, Ordering::Relaxed);
                bucket.slow.store(0, Ordering::Relaxed);
                bucket.errors.store(0, Ordering::Relaxed);
            }
        }
        bucket.total.fetch_add(1, Ordering::Relaxed);
        if error {
            bucket.errors.fetch_add(1, Ordering::Relaxed);
        } else if latency_us > inner.objective.p99_target_us {
            bucket.slow.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot every window's burn rate. Empty (all-zero, compliant)
    /// for a noop tracker.
    pub fn status(&self) -> SloStatus {
        let Some(inner) = &self.0 else {
            return SloStatus { objective: SloObjective::default(), windows: Vec::new() };
        };
        let now_sec = inner.epoch.elapsed().as_secs();
        let windows = SLO_WINDOWS_S
            .iter()
            .map(|&window_s| {
                let oldest = now_sec.saturating_sub(window_s - 1);
                let (mut total, mut slow, mut errors) = (0u64, 0u64, 0u64);
                for bucket in &inner.buckets {
                    let sec = bucket.sec.load(Ordering::Acquire);
                    if sec >= oldest && sec <= now_sec {
                        total += bucket.total.load(Ordering::Relaxed);
                        slow += bucket.slow.load(Ordering::Relaxed);
                        errors += bucket.errors.load(Ordering::Relaxed);
                    }
                }
                let bad = slow + errors;
                let burn_rate = if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / inner.objective.error_budget
                };
                WindowStatus {
                    window_s,
                    total,
                    slow,
                    errors,
                    burn_rate,
                    compliant: burn_rate <= 1.0,
                }
            })
            .collect();
        SloStatus { objective: inner.objective, windows }
    }

    /// Push the current status into `registry` as gauges, one series per
    /// window. [`crate::Gauge`] is integer-valued, so burn rates are
    /// exposed in **milli-units** (`1000` = burning exactly at budget).
    pub fn sync_gauges(&self, registry: &Registry) {
        let status = self.status();
        if self.0.is_none() {
            return;
        }
        for w in &status.windows {
            let window = format!("{}s", w.window_s);
            let labels: &[(&str, &str)] = &[("window", &window)];
            let burn_milli = (w.burn_rate * 1000.0).min(i64::MAX as f64) as i64;
            registry
                .gauge_with(
                    "chronorank_slo_burn_rate_milli",
                    "SLO burn rate per window, milli-units (1000 = at budget)",
                    labels,
                )
                .set(burn_milli);
            registry
                .gauge_with(
                    "chronorank_slo_compliant",
                    "1 when the window burn rate is within budget, else 0",
                    labels,
                )
                .set(i64::from(w.compliant));
            registry
                .gauge_with(
                    "chronorank_slo_window_requests",
                    "requests observed in the SLO window",
                    labels,
                )
                .set_u64(w.total);
            registry
                .gauge_with(
                    "chronorank_slo_window_bad",
                    "slow + errored requests observed in the SLO window",
                    labels,
                )
                .set_u64(w.slow + w.errors);
        }
    }
}

/// One window's burn-rate summary.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStatus {
    /// Window length, seconds.
    pub window_s: u64,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests over the latency target.
    pub slow: u64,
    /// Requests that failed outright.
    pub errors: u64,
    /// `((slow + errors) / total) / error_budget`; 0 when empty.
    pub burn_rate: f64,
    /// `burn_rate <= 1.0`.
    pub compliant: bool,
}

/// A tracker snapshot: the objective plus every window's status.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// The objective the windows are measured against.
    pub objective: SloObjective,
    /// One entry per [`SLO_WINDOWS_S`] window (empty for noop trackers).
    pub windows: Vec<WindowStatus>,
}

impl SloStatus {
    /// Whether every window is within budget.
    pub fn healthy(&self) -> bool {
        self.windows.iter().all(|w| w.compliant)
    }

    /// Render as a structured JSON object (the `slo` half of the wire
    /// `TRACE` op payload).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"objective\":{{\"p99_target_us\":{},\"error_budget\":{}}},\"healthy\":{},\"windows\":[",
            self.objective.p99_target_us,
            json_num(self.objective.error_budget),
            self.healthy(),
        );
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut name = String::new();
            write_json_str(&format!("{}s", w.window_s), &mut name);
            out.push_str(&format!(
                "{{\"window\":{name},\"window_s\":{},\"total\":{},\"slow\":{},\"errors\":{},\
                 \"burn_rate\":{},\"compliant\":{}}}",
                w.window_s,
                w.total,
                w.slow,
                w.errors,
                json_num(w.burn_rate),
                w.compliant,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_num(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_compliant() {
        let t = SloTracker::new(SloObjective::default());
        let status = t.status();
        assert!(status.healthy());
        assert_eq!(status.windows.len(), SLO_WINDOWS_S.len());
        assert!(status.windows.iter().all(|w| w.total == 0 && w.burn_rate == 0.0));
    }

    #[test]
    fn fast_traffic_stays_within_budget() {
        let t = SloTracker::new(SloObjective { p99_target_us: 1_000, error_budget: 0.01 });
        for _ in 0..1_000 {
            t.observe(10, false);
        }
        let status = t.status();
        assert!(status.healthy(), "{status:?}");
        assert_eq!(status.windows[0].total, 1_000);
        assert_eq!(status.windows[0].slow, 0);
    }

    #[test]
    fn slow_traffic_burns_through_the_budget() {
        let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: 0.01 });
        for _ in 0..90 {
            t.observe(10, false);
        }
        for _ in 0..10 {
            t.observe(5_000, false); // 10% slow against a 1% budget
        }
        let status = t.status();
        assert!(!status.healthy(), "{status:?}");
        let w = &status.windows[0];
        assert_eq!(w.total, 100);
        assert_eq!(w.slow, 10);
        assert!((w.burn_rate - 10.0).abs() < 1e-9, "burn={}", w.burn_rate);
        assert!(!w.compliant);
    }

    #[test]
    fn errors_burn_budget_regardless_of_latency() {
        let t = SloTracker::new(SloObjective { p99_target_us: 1_000_000, error_budget: 0.05 });
        for _ in 0..9 {
            t.observe(10, false);
        }
        t.observe(0, true);
        let w = &t.status().windows[0];
        assert_eq!(w.errors, 1);
        assert!((w.burn_rate - 2.0).abs() < 1e-9, "10% errors / 5% budget = 2.0");
        assert!(!w.compliant);
    }

    #[test]
    fn gauges_land_in_the_registry_and_flip() {
        let r = Registry::new();
        let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: 0.01 });
        t.sync_gauges(&r);
        let text = r.render();
        assert!(text.contains("chronorank_slo_burn_rate_milli{window=\"1s\"} 0"), "{text}");
        assert!(text.contains("chronorank_slo_compliant{window=\"60s\"} 1"), "{text}");
        for _ in 0..10 {
            t.observe(50_000, false); // 100% slow
        }
        t.sync_gauges(&r);
        let text = r.render();
        // 100% bad / 1% budget = burn 100.0 → 100000 milli.
        assert!(text.contains("chronorank_slo_burn_rate_milli{window=\"1s\"} 100000"), "{text}");
        assert!(text.contains("chronorank_slo_compliant{window=\"1s\"} 0"), "{text}");
        crate::validate_exposition(&text).expect("slo gauges must render valid exposition");
    }

    #[test]
    fn noop_tracker_observes_nothing() {
        let t = SloTracker::noop();
        t.observe(u64::MAX, true);
        assert!(t.status().windows.is_empty());
        assert!(t.status().healthy());
        assert!(t.is_noop());
        let r = Registry::new();
        t.sync_gauges(&r);
        assert!(r.render().is_empty(), "noop tracker must not register gauges");
    }

    #[test]
    fn json_shape_is_stable() {
        let t = SloTracker::new(SloObjective { p99_target_us: 2_500, error_budget: 0.02 });
        t.observe(10, false);
        let json = t.status().to_json();
        assert!(json.starts_with("{\"objective\":{\"p99_target_us\":2500,\"error_budget\":0.02}"));
        assert!(json.contains("\"window\":\"1s\""));
        assert!(json.contains("\"compliant\":true"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn degenerate_budget_is_clamped() {
        let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: 0.0 });
        assert_eq!(t.objective().unwrap().error_budget, 0.01);
        let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: f64::NAN });
        assert_eq!(t.objective().unwrap().error_budget, 0.01);
        let t = SloTracker::new(SloObjective { p99_target_us: 100, error_budget: 7.0 });
        assert_eq!(t.objective().unwrap().error_budget, 1.0);
    }
}
