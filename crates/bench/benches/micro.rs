//! Criterion micro-benchmarks for the hot kernels every paper method is
//! built from, plus end-to-end query benchmarks per method (one bench
//! group per paper table/figure family; the full parameter sweeps live in
//! the `paper-bench` binary).

use chronorank_bench::{meme_dataset, temp_dataset};
use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, B2Construction, Breakpoints, Exact1, Exact2,
    Exact3, IndexConfig, RankMethod,
};
use chronorank_curve::{PiecewiseLinear, Segment};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn curve_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve");
    let seg = Segment::new(0.0, 2.0, 10.0, 6.0);
    g.bench_function("segment_integral_clipped", |b| {
        b.iter(|| black_box(seg.integral_clipped(black_box(2.5), black_box(8.5))))
    });
    let pts: Vec<(f64, f64)> =
        (0..1000).map(|i| (i as f64, 5.0 + (i as f64 * 0.1).sin())).collect();
    let curve = PiecewiseLinear::from_points(&pts).unwrap();
    g.bench_function("pwl_integral_1k_segments", |b| {
        b.iter(|| black_box(curve.integral(black_box(100.3), black_box(800.7))))
    });
    let prefix = curve.prefix_sums();
    g.bench_function("pwl_integral_prefix_1k_segments", |b| {
        b.iter(|| black_box(curve.integral_prefix(&prefix, black_box(100.3), black_box(800.7))))
    });
    g.finish();
}

fn breakpoint_construction(c: &mut Criterion) {
    let set = temp_dataset(100, 100, 1);
    let mut g = c.benchmark_group("breakpoints");
    g.sample_size(10);
    g.bench_function("b1_eps_0.01", |b| {
        b.iter(|| black_box(Breakpoints::b1_with_eps(&set, 0.01).unwrap()))
    });
    g.bench_function("b2_baseline_eps_0.01", |b| {
        b.iter(|| {
            black_box(Breakpoints::b2_with_eps(&set, 0.01, B2Construction::Baseline).unwrap())
        })
    });
    g.bench_function("b2_efficient_eps_0.01", |b| {
        b.iter(|| {
            black_box(Breakpoints::b2_with_eps(&set, 0.01, B2Construction::Efficient).unwrap())
        })
    });
    g.finish();
}

fn query_methods(c: &mut Criterion) {
    let set = temp_dataset(300, 120, 2);
    let (t1, t2) = (set.t_min() + 0.3 * set.span(), set.t_min() + 0.5 * set.span());
    let k = 10;
    let mut g = c.benchmark_group("query");
    g.sample_size(20);

    let e1 = Exact1::build(&set, IndexConfig::default()).unwrap();
    g.bench_function("exact1_topk_cold", |b| {
        b.iter(|| {
            e1.drop_caches().unwrap();
            black_box(e1.top_k(t1, t2, k, AggKind::Sum).unwrap())
        })
    });
    let e2 = Exact2::build(&set, IndexConfig::default()).unwrap();
    g.bench_function("exact2_topk_cold", |b| {
        b.iter(|| {
            e2.drop_caches().unwrap();
            black_box(e2.top_k(t1, t2, k, AggKind::Sum).unwrap())
        })
    });
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    g.bench_function("exact3_topk_cold", |b| {
        b.iter(|| {
            e3.drop_caches().unwrap();
            black_box(e3.top_k(t1, t2, k, AggKind::Sum).unwrap())
        })
    });
    for variant in [ApproxVariant::APPX1, ApproxVariant::APPX2, ApproxVariant::APPX2_PLUS] {
        let idx = ApproxIndex::build(
            &set,
            variant,
            ApproxConfig { r: 32, kmax: 16, ..Default::default() },
        )
        .unwrap();
        g.bench_function(format!("{}_topk_cold", variant.name().to_lowercase()), |b| {
            b.iter(|| {
                idx.drop_caches().unwrap();
                black_box(idx.top_k(t1, t2, k, AggKind::Sum).unwrap())
            })
        });
    }
    g.finish();
}

fn meme_query(c: &mut Criterion) {
    let set = meme_dataset(2000, 40, 3);
    let (t1, t2) = (set.t_min() + 0.3 * set.span(), set.t_min() + 0.5 * set.span());
    let mut g = c.benchmark_group("meme");
    g.sample_size(20);
    let e3 = Exact3::build(&set, IndexConfig::default()).unwrap();
    g.bench_function("exact3_topk_cold", |b| {
        b.iter(|| {
            e3.drop_caches().unwrap();
            black_box(e3.top_k(t1, t2, 10, AggKind::Sum).unwrap())
        })
    });
    let idx = ApproxIndex::build(
        &set,
        ApproxVariant::APPX2,
        ApproxConfig { r: 32, kmax: 16, ..Default::default() },
    )
    .unwrap();
    g.bench_function("appx2_topk_cold", |b| {
        b.iter(|| {
            idx.drop_caches().unwrap();
            black_box(idx.top_k(t1, t2, 10, AggKind::Sum).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, curve_kernels, breakpoint_construction, query_methods, meme_query);
criterion_main!(benches);
