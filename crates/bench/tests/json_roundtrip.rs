//! Property suite for the bench JSON codec (ISSUE 7 satellite): the
//! hand-rolled writer must be an exact inverse of the hand-rolled parser
//! for arbitrary finite documents — nesting, hostile strings (quotes,
//! backslashes, control characters, multi-byte UTF-8), and integers up
//! to the 2^53 exact-f64 boundary. Case counts honour `PROPTEST_CASES`
//! like every property suite in the workspace.

use chronorank_bench::json::{encode, flatten, parse, Json};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Characters chosen to stress every escaping path plus plain ASCII and
/// multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '_', '.', '/', '"', '\\', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}',
    '\u{1f}', 'é', '雪', '🛰',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.usize_in(0, 12);
    (0..len).map(|_| PALETTE[rng.usize_in(0, PALETTE.len() - 1)]).collect()
}

fn gen_number(rng: &mut TestRng) -> f64 {
    match rng.usize_in(0, 3) {
        // Integers across the full exactly-representable span.
        0 => rng.sample(-(1i64 << 53)..=(1i64 << 53)) as f64,
        // Small decimals like the bench rates and hit-ratios.
        1 => rng.unit_f64(),
        // Large magnitudes (prints without an exponent, still finite).
        2 => (rng.unit_f64() - 0.5) * 1e18,
        // Tiny magnitudes.
        _ => (rng.unit_f64() - 0.5) * 1e-9,
    }
}

fn gen_json(rng: &mut TestRng, depth: usize) -> Json {
    // Past the depth budget only leaves remain, so documents terminate.
    let kinds = if depth == 0 { 4 } else { 6 };
    match rng.usize_in(0, kinds - 1) {
        0 => Json::Null,
        1 => Json::Bool(rng.usize_in(0, 1) == 1),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.usize_in(0, 4);
            Json::Arr((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.usize_in(0, 4);
            Json::Obj((0..n).map(|_| (gen_string(rng), gen_json(rng, depth - 1))).collect())
        }
    }
}

/// Arbitrary finite JSON documents, up to four levels of nesting.
struct ArbJson;

impl Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, 4)
    }
}

proptest! {
    /// encode ∘ parse = id: whatever document the generator dreams up,
    /// parsing its encoding reproduces it exactly (f64 equality is exact
    /// because Rust prints shortest round-trip decimals).
    #[test]
    fn encode_then_parse_is_identity(doc in ArbJson) {
        let text = encode(&doc);
        let back = parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(&back, &doc, "text was {}", text);
        // And encoding is deterministic: one more round is a fixed point.
        prop_assert_eq!(encode(&back), text);
    }

    /// The flattened leaf view (what the regression gate actually
    /// compares) is also preserved across a codec round trip.
    #[test]
    fn flatten_is_stable_across_roundtrip(doc in ArbJson) {
        let back = parse(&encode(&doc)).unwrap();
        prop_assert_eq!(flatten(&back), flatten(&doc));
    }

    /// Hostile strings alone: every palette combination survives as an
    /// object key AND as a value (keys exercise the same writer).
    #[test]
    fn strings_roundtrip_as_keys_and_values(doc in ArbJson) {
        let (key, val) = match &doc {
            Json::Str(s) => (s.clone(), s.clone()),
            other => (encode(other), String::new()),
        };
        let wrapped = Json::Obj(vec![(key, Json::Str(val))]);
        prop_assert_eq!(parse(&encode(&wrapped)).unwrap(), wrapped);
    }
}
