//! `paper-bench` — regenerate every table and figure of the paper's
//! evaluation (Section 5) at laptop scale.
//!
//! ```text
//! paper-bench <figure> [options]
//!
//! figures: fig3 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20
//!          ablation serve live coldstart net obs paperscale rescore all
//! check-regression --pair BASELINE.json=CURRENT.json [--pair ...]
//!                  [--tolerance N]        compare bench JSON shapes/rates
//! options:
//!   --m N         base object count            (default 800)
//!   --navg N      base segments per object     (default 250)
//!   --r N         base breakpoint budget       (default 64)
//!   --kmax N      base kmax                    (default 64)
//!   --k N         base query k                 (default 20)
//!   --queries N   queries per data point       (default 40)
//!   --meme-m N    meme object count            (default 20000)
//!   --out DIR     CSV output directory         (default results)
//!   --quick       quarter-scale everything (CI smoke)
//!   --budget-mb N paperscale memory budget in MiB (default 256)
//!   --paper       paperscale: append the full m ≈ 1.5M / N ≈ 10⁸ rung
//! ```
//!
//! Every figure prints the same rows/series the paper reports and writes a
//! CSV under `--out`. Paper-scale absolute numbers are not the goal — the
//! *shapes* are (who wins, by how much, where crossovers happen); see
//! EXPERIMENTS.md for the recorded comparison.

use chronorank_bench::{
    build_approx, build_exact, build_exact_with, fmt_bytes, ground_truth, measure_queries,
    meme_dataset, queries, temp_dataset, Built, Table,
};
use chronorank_core::{
    ApproxConfig, ApproxIndex, ApproxVariant, B2Construction, Breakpoints, IndexConfig, RankMethod,
    TemporalSet, TopK,
};
use chronorank_storage::Env;
use chronorank_storage::StoreConfig;
use chronorank_workloads::QueryInterval;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Opts {
    m: usize,
    navg: usize,
    r: usize,
    kmax: usize,
    k: usize,
    queries: usize,
    meme_m: usize,
    out: PathBuf,
    quick: bool,
    budget_mb: usize,
    paper: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            m: 800,
            navg: 250,
            r: 64,
            kmax: 64,
            k: 20,
            queries: 40,
            meme_m: 20_000,
            out: PathBuf::from("results"),
            quick: false,
            budget_mb: 256,
            paper: false,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: paper-bench <fig3|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|fig20|ablation|serve|live|coldstart|net|obs|paperscale|rescore|all> \
             [--m N] [--navg N] [--r N] [--kmax N] [--k N] [--queries N] [--meme-m N] [--out DIR] [--quick] [--budget-mb N] [--paper]\n\
             \x20      paper-bench check-regression --pair BASELINE.json=CURRENT.json [--pair ...] [--tolerance N]"
        );
        std::process::exit(2);
    }
    let fig = args[0].clone();
    if fig == "check-regression" {
        check_regression_cli(&args[1..]);
        return;
    }
    let mut opts = Opts::default();
    let mut i = 1;
    while i < args.len() {
        let take = |i: &mut usize| -> usize {
            *i += 1;
            match args.get(*i).and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("missing/invalid value for {}", args[*i - 1]);
                    std::process::exit(2);
                }
            }
        };
        match args[i].as_str() {
            "--m" => opts.m = take(&mut i),
            "--navg" => opts.navg = take(&mut i),
            "--r" => opts.r = take(&mut i),
            "--kmax" => opts.kmax = take(&mut i),
            "--k" => opts.k = take(&mut i),
            "--queries" => opts.queries = take(&mut i),
            "--meme-m" => opts.meme_m = take(&mut i),
            "--budget-mb" => opts.budget_mb = take(&mut i),
            "--paper" => opts.paper = true,
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(args.get(i).cloned().unwrap_or_default());
            }
            "--quick" => {
                opts.m = 200;
                opts.navg = 80;
                opts.r = 24;
                opts.kmax = 16;
                opts.k = 8;
                opts.queries = 8;
                opts.meme_m = 2000;
                opts.quick = true;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let t0 = Instant::now();
    match fig.as_str() {
        "fig3" => fig3(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "fig13" => fig13_14_15(&opts, SweepAxis::Objects),
        "fig14" => fig13_14_15(&opts, SweepAxis::Segments),
        "fig15" => {
            fig13_14_15(&opts, SweepAxis::Objects);
            fig13_14_15(&opts, SweepAxis::Segments);
        }
        "fig16" => fig16(&opts),
        "fig17" => fig17(&opts),
        "fig18" => fig18(&opts),
        "fig19" | "fig20" => fig19_20(&opts),
        "ablation" => ablation(&opts),
        "serve" => serve(&opts),
        "live" => live(&opts),
        "coldstart" => coldstart(&opts),
        "net" => net(&opts),
        "obs" => obs(&opts),
        "paperscale" => paperscale(&opts),
        "rescore" => rescore(&opts),
        "all" => {
            fig3(&opts);
            fig11(&opts);
            fig12(&opts);
            fig13_14_15(&opts, SweepAxis::Objects);
            fig13_14_15(&opts, SweepAxis::Segments);
            fig16(&opts);
            fig17(&opts);
            fig18(&opts);
            fig19_20(&opts);
            ablation(&opts);
            serve(&opts);
            live(&opts);
            coldstart(&opts);
            net(&opts);
            obs(&opts);
            rescore(&opts);
        }
        other => {
            eprintln!("unknown figure {other}");
            std::process::exit(2);
        }
    }
    eprintln!("\n[paper-bench {fig} finished in {:.1}s]", t0.elapsed().as_secs_f64());
}

/// The five approximate variants in presentation order.
const APPROX_ALL: [ApproxVariant; 5] = ApproxVariant::ALL;
/// The three variants kept after Figure 12 ("we only use APPX1, APPX2 and
/// APPX2+ for the remaining experiments").
const APPROX_MAIN: [ApproxVariant; 3] =
    [ApproxVariant::APPX1, ApproxVariant::APPX2, ApproxVariant::APPX2_PLUS];

/// Build one approximate variant reusing precomputed breakpoints (the
/// paper compares variants at one fixed r).
fn build_approx_shared(
    variant: ApproxVariant,
    set: &TemporalSet,
    b1: &Breakpoints,
    b2: &Breakpoints,
    kmax: usize,
) -> Built {
    let bp = match variant.breakpoints {
        chronorank_core::BreakpointsKind::B1 => b1.clone(),
        chronorank_core::BreakpointsKind::B2 => b2.clone(),
    };
    let cfg = ApproxConfig { r: bp.len(), kmax, ..Default::default() };
    let t0 = Instant::now();
    let idx = ApproxIndex::build_with_breakpoints(Env::mem(cfg.store), set, variant, cfg, bp)
        .expect("build approx");
    Built {
        name: variant.name().to_string(),
        build_secs: t0.elapsed().as_secs_f64(),
        size_bytes: idx.size_bytes(),
        method: Box::new(idx),
    }
}

// ---------------------------------------------------------------------------
// Figure 3: the cost-bound table + an empirical scaling check
// ---------------------------------------------------------------------------

fn fig3(opts: &Opts) {
    let mut t = Table::new(
        "Figure 3 — theoretical IO bounds (B = block size)",
        &["method", "index size", "construction", "query", "update", "approximation"],
    );
    for row in [
        ["EXACT1", "O(N/B)", "O(N/B logB N)", "O(logB N + sum qi/B)", "O(logB N)", "(0,1)"],
        ["EXACT2", "O(N/B)", "O(sum ni/B logB ni)", "O(sum logB ni)", "O(logB n)", "(0,1)"],
        ["EXACT3", "O(N/B)", "O(N/B logB N)", "O(logB N + m/B)", "O(logB N)", "(0,1)"],
        [
            "APPX1",
            "O(r^2 kmax/B)",
            "O(N/B (logB N + r))",
            "O(k/B + logB r)",
            "O((logB N + r)/B)",
            "(eps;1)",
        ],
        [
            "APPX2",
            "O(r kmax/B)",
            "O(N/B (logB N + log r))",
            "O(k log r)",
            "O((logB N + log r)/B)",
            "(eps;2 log r)",
        ],
    ] {
        t.row(row.iter().map(|s| s.to_string()).collect());
    }
    t.print();
    t.write_csv(&opts.out, "fig3_theory").expect("csv");

    // Empirical check: EXACT3 query IOs grow ~linearly with m (the m/B
    // term); APPX2 query IOs stay flat.
    let m_lo = (opts.m / 2).max(8);
    let mut e = Table::new(
        "Figure 3 (empirical) — query-IO scaling when m doubles",
        &["method", "IOs @ m/2", "IOs @ m", "ratio"],
    );
    let mut per_m = Vec::new();
    for m in [m_lo, opts.m] {
        let set = temp_dataset(m, opts.navg, 42);
        let qs = queries(&set, opts.queries.min(16), 0.2, opts.k);
        let e3 = build_exact("EXACT3", &set);
        let s3 = measure_queries(&e3, &set, &qs, None);
        let a2 = build_approx(ApproxVariant::APPX2, &set, opts.r, opts.kmax);
        let s2 = measure_queries(&a2, &set, &qs, None);
        per_m.push((s3.avg_ios, s2.avg_ios));
    }
    for (name, a, b) in [
        ("EXACT3 (expect ~2.0)", per_m[0].0, per_m[1].0),
        ("APPX2  (expect ~1.0)", per_m[0].1, per_m[1].1),
    ] {
        e.row(vec![name.into(), format!("{a:.1}"), format!("{b:.1}"), format!("{:.2}", b / a)]);
    }
    e.print();
    e.write_csv(&opts.out, "fig3_empirical").expect("csv");
}

// ---------------------------------------------------------------------------
// Figures 11 & 12: vary the number of breakpoints r
// ---------------------------------------------------------------------------

fn r_values(base: usize) -> Vec<usize> {
    [base / 4, base / 2, base, base * 2, base * 4].into_iter().filter(|&r| r >= 8).collect()
}

fn fig11(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    println!(
        "# Temp-like dataset: m = {}, N = {} (paper scale: m = 50k, N = 5e7)",
        set.num_objects(),
        set.num_segments()
    );
    let mut ta = Table::new("Figure 11(a) — eps vs r", &["r", "eps(B1)", "eps(B2)"]);
    let mut tb = Table::new(
        "Figure 11(b) — breakpoint build time (s)",
        &["r", "B1", "B2-Baseline", "B2-Efficient"],
    );
    let mut tc = Table::new(
        "Figure 11(c) — index size",
        &["r", "APPX1-B", "APPX2-B", "APPX1", "APPX2", "APPX2+", "EXACT3"],
    );
    let mut td = Table::new(
        "Figure 11(d) — index build time (s)",
        &["r", "APPX1-B", "APPX2-B", "APPX1", "APPX2", "APPX2+", "EXACT3"],
    );
    let e3 = build_exact("EXACT3", &set);
    for r in r_values(opts.r) {
        let t0 = Instant::now();
        let b1 = Breakpoints::b1_with_count(&set, r).expect("b1");
        let b1_secs = t0.elapsed().as_secs_f64();
        // Calibrate eps for B2 at this r, then time each construction alone.
        let b2 = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).expect("b2");
        let eps2 = b2.eps();
        let t0 = Instant::now();
        let _ = Breakpoints::b2_with_eps(&set, eps2, B2Construction::Baseline).expect("b2b");
        let b2b_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = Breakpoints::b2_with_eps(&set, eps2, B2Construction::Efficient).expect("b2e");
        let b2e_secs = t0.elapsed().as_secs_f64();
        ta.row(vec![r.to_string(), format!("{:.3e}", b1.eps()), format!("{:.3e}", eps2)]);
        tb.row(vec![
            r.to_string(),
            format!("{b1_secs:.3}"),
            format!("{b2b_secs:.3}"),
            format!("{b2e_secs:.3}"),
        ]);

        let mut sizes = vec![r.to_string()];
        let mut times = vec![r.to_string()];
        for v in APPROX_ALL {
            let built = build_approx_shared(v, &set, &b1, &b2, opts.kmax);
            sizes.push(fmt_bytes(built.size_bytes));
            times.push(format!("{:.2}", built.build_secs));
        }
        sizes.push(fmt_bytes(e3.size_bytes));
        times.push(format!("{:.2}", e3.build_secs));
        tc.row(sizes);
        td.row(times);
    }
    for (t, n) in
        [(&ta, "fig11a_eps"), (&tb, "fig11b_bp_time"), (&tc, "fig11c_size"), (&td, "fig11d_build")]
    {
        t.print();
        t.write_csv(&opts.out, n).expect("csv");
    }
}

fn fig12(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    let qs = queries(&set, opts.queries, 0.2, opts.k);
    let truth = ground_truth(&set, &qs);
    let names: Vec<&str> = APPROX_ALL.iter().map(|v| v.name()).chain(["EXACT3"]).collect();
    let mut tp = Table::new("Figure 12(a) — precision/recall vs r", &prepend("r", &names));
    let mut tr = Table::new("Figure 12(b) — approximation ratio vs r", &prepend("r", &names));
    let mut ti = Table::new("Figure 12(c) — query IOs vs r", &prepend("r", &names));
    let mut tt = Table::new("Figure 12(d) — query time (ms) vs r", &prepend("r", &names));
    let e3 = build_exact("EXACT3", &set);
    let e3_stats = measure_queries(&e3, &set, &qs, None);
    for r in r_values(opts.r) {
        let b1 = Breakpoints::b1_with_count(&set, r).expect("b1");
        let b2 = Breakpoints::b2_with_count(&set, r, B2Construction::Efficient).expect("b2");
        let mut precs = vec![r.to_string()];
        let mut ratios = vec![r.to_string()];
        let mut ioses = vec![r.to_string()];
        let mut times = vec![r.to_string()];
        for v in APPROX_ALL {
            let built = build_approx_shared(v, &set, &b1, &b2, opts.kmax);
            let s = measure_queries(&built, &set, &qs, Some(&truth));
            precs.push(format!("{:.3}", s.precision));
            ratios.push(format!("{:.4}", s.ratio));
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
        }
        precs.push("1.000".into());
        ratios.push("1.0000".into());
        ioses.push(format!("{:.1}", e3_stats.avg_ios));
        times.push(format!("{:.3}", e3_stats.avg_ms));
        tp.row(precs);
        tr.row(ratios);
        ti.row(ioses);
        tt.row(times);
    }
    for (t, n) in [
        (&tp, "fig12a_precision"),
        (&tr, "fig12b_ratio"),
        (&ti, "fig12c_ios"),
        (&tt, "fig12d_time"),
    ] {
        t.print();
        t.write_csv(&opts.out, n).expect("csv");
    }
}

// ---------------------------------------------------------------------------
// Figures 13–15: vary m / n_avg (scalability + quality)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum SweepAxis {
    Objects,
    Segments,
}

fn fig13_14_15(opts: &Opts, axis: SweepAxis) {
    let (fig, axis_name, values): (&str, &str, Vec<(usize, usize)>) = match axis {
        SweepAxis::Objects => (
            "13",
            "m",
            [opts.m / 4, opts.m / 2, opts.m, opts.m * 2, opts.m * 4]
                .iter()
                .map(|&m| (m.max(8), opts.navg))
                .collect(),
        ),
        SweepAxis::Segments => (
            "14",
            "navg",
            [opts.navg / 4, opts.navg / 2, opts.navg, opts.navg * 2, opts.navg * 4]
                .iter()
                .map(|&n| (opts.m, n.max(4)))
                .collect(),
        ),
    };
    let methods = ["EXACT1", "EXACT2", "EXACT3"];
    let names: Vec<&str> =
        methods.iter().copied().chain(APPROX_MAIN.iter().map(|v| v.name())).collect();
    let mut ts = Table::new(
        &format!("Figure {fig}(a) — index size vs {axis_name}"),
        &prepend(axis_name, &names),
    );
    let mut tb = Table::new(
        &format!("Figure {fig}(b) — build time (s) vs {axis_name}"),
        &prepend(axis_name, &names),
    );
    let mut ti = Table::new(
        &format!("Figure {fig}(c) — query IOs vs {axis_name}"),
        &prepend(axis_name, &names),
    );
    let mut tt = Table::new(
        &format!("Figure {fig}(d) — query time (ms) vs {axis_name}"),
        &prepend(axis_name, &names),
    );
    // Figure 15: quality of the approximate methods along the same sweep.
    let quality_header: Vec<String> = std::iter::once(axis_name.to_string())
        .chain(
            APPROX_MAIN
                .iter()
                .flat_map(|v| [format!("{} prec", v.name()), format!("{} ratio", v.name())]),
        )
        .collect();
    let quality_header_refs: Vec<&str> = quality_header.iter().map(|s| s.as_str()).collect();
    let mut tq =
        Table::new(&format!("Figure 15 — precision & ratio vs {axis_name}"), &quality_header_refs);
    for (m, navg) in values {
        let set = temp_dataset(m, navg, 42);
        let qs = queries(&set, opts.queries, 0.2, opts.k);
        let truth = ground_truth(&set, &qs);
        let label = match axis {
            SweepAxis::Objects => m.to_string(),
            SweepAxis::Segments => navg.to_string(),
        };
        let mut sizes = vec![label.clone()];
        let mut builds = vec![label.clone()];
        let mut ioses = vec![label.clone()];
        let mut times = vec![label.clone()];
        let mut quality = vec![label.clone()];
        for name in methods {
            let built = build_exact(name, &set);
            let s = measure_queries(&built, &set, &qs, None);
            sizes.push(fmt_bytes(built.size_bytes));
            builds.push(format!("{:.2}", built.build_secs));
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
        }
        for v in APPROX_MAIN {
            let built = build_approx(v, &set, opts.r, opts.kmax);
            let s = measure_queries(&built, &set, &qs, Some(&truth));
            sizes.push(fmt_bytes(built.size_bytes));
            builds.push(format!("{:.2}", built.build_secs));
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
            quality.push(format!("{:.3}", s.precision));
            quality.push(format!("{:.4}", s.ratio));
        }
        ts.row(sizes);
        tb.row(builds);
        ti.row(ioses);
        tt.row(times);
        tq.row(quality);
    }
    let prefix = format!("fig{fig}");
    for (t, suffix) in [(&ts, "a_size"), (&tb, "b_build"), (&ti, "c_ios"), (&tt, "d_time")] {
        t.print();
        t.write_csv(&opts.out, &format!("{prefix}{suffix}")).expect("csv");
    }
    tq.print();
    tq.write_csv(&opts.out, &format!("fig15_quality_vs_{axis_name}")).expect("csv");
}

// ---------------------------------------------------------------------------
// Figure 16: vary the query interval length
// ---------------------------------------------------------------------------

fn fig16(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    let spans = [0.02, 0.10, 0.20, 0.30, 0.50];
    let workloads = spans
        .iter()
        .map(|&f| (format!("{:.0}", f * 100.0), queries(&set, opts.queries, f, opts.k)))
        .collect();
    run_query_sweep(opts, &set, "16", "span%", workloads);
}

// ---------------------------------------------------------------------------
// Figure 17: vary k
// ---------------------------------------------------------------------------

fn fig17(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    let ks: Vec<usize> = [opts.k / 4, opts.k / 2, opts.k, opts.k * 2, opts.kmax]
        .iter()
        .map(|&k| k.clamp(1, opts.kmax))
        .collect();
    let workloads =
        ks.iter().map(|&k| (k.to_string(), queries(&set, opts.queries, 0.2, k))).collect();
    run_query_sweep(opts, &set, "17", "k", workloads);
}

/// Shared machinery for figures 16 & 17: all six methods, one workload per
/// sweep value; prints IOs, time, precision and ratio tables.
fn run_query_sweep(
    opts: &Opts,
    set: &TemporalSet,
    fig: &str,
    axis: &str,
    workloads: Vec<(String, Vec<QueryInterval>)>,
) {
    let exacts = ["EXACT1", "EXACT2", "EXACT3"];
    let names: Vec<&str> =
        exacts.iter().copied().chain(APPROX_MAIN.iter().map(|v| v.name())).collect();
    let mut ti =
        Table::new(&format!("Figure {fig}(a) — query IOs vs {axis}"), &prepend(axis, &names));
    let mut tt =
        Table::new(&format!("Figure {fig}(b) — query time (ms) vs {axis}"), &prepend(axis, &names));
    let approx_names: Vec<&str> = APPROX_MAIN.iter().map(|v| v.name()).collect();
    let mut tp = Table::new(
        &format!("Figure {fig}(c) — precision/recall vs {axis}"),
        &prepend(axis, &approx_names),
    );
    let mut tr = Table::new(
        &format!("Figure {fig}(d) — approximation ratio vs {axis}"),
        &prepend(axis, &approx_names),
    );
    let built_exact: Vec<Built> = exacts.iter().map(|n| build_exact(n, set)).collect();
    let built_approx: Vec<Built> =
        APPROX_MAIN.iter().map(|&v| build_approx(v, set, opts.r, opts.kmax)).collect();
    for (label, qs) in workloads {
        let truth: Vec<TopK> = ground_truth(set, &qs);
        let mut ioses = vec![label.clone()];
        let mut times = vec![label.clone()];
        let mut precs = vec![label.clone()];
        let mut ratios = vec![label.clone()];
        for b in &built_exact {
            let s = measure_queries(b, set, &qs, None);
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
        }
        for b in &built_approx {
            let s = measure_queries(b, set, &qs, Some(&truth));
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
            precs.push(format!("{:.3}", s.precision));
            ratios.push(format!("{:.4}", s.ratio));
        }
        ti.row(ioses);
        tt.row(times);
        tp.row(precs);
        tr.row(ratios);
    }
    for (t, n) in [
        (&ti, format!("fig{fig}a_ios")),
        (&tt, format!("fig{fig}b_time")),
        (&tp, format!("fig{fig}c_precision")),
        (&tr, format!("fig{fig}d_ratio")),
    ] {
        t.print();
        t.write_csv(&opts.out, &n).expect("csv");
    }
}

// ---------------------------------------------------------------------------
// Figure 18: vary kmax
// ---------------------------------------------------------------------------

fn fig18(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    let k = opts.k.min(opts.kmax / 4).max(1);
    let qs = queries(&set, opts.queries, 0.2, k);
    let names: Vec<&str> = APPROX_MAIN.iter().map(|v| v.name()).chain(["EXACT3"]).collect();
    let mut ts = Table::new("Figure 18(a) — index size vs kmax", &prepend("kmax", &names));
    let mut tb = Table::new("Figure 18(b) — build time (s) vs kmax", &prepend("kmax", &names));
    let mut ti = Table::new("Figure 18(c) — query IOs vs kmax", &prepend("kmax", &names));
    let mut tt = Table::new("Figure 18(d) — query time (ms) vs kmax", &prepend("kmax", &names));
    let e3 = build_exact("EXACT3", &set);
    let e3s = measure_queries(&e3, &set, &qs, None);
    // Sweep past the one-block boundary (kmax*12 B vs the 4 KiB block) so
    // the linear index growth of the paper's Figure 18(a) is visible in
    // block-rounded sizes.
    for kmax in [opts.kmax, opts.kmax * 4, opts.kmax * 8, opts.kmax * 16, opts.kmax * 32] {
        let kmax = kmax.max(k);
        let mut sizes = vec![kmax.to_string()];
        let mut builds = vec![kmax.to_string()];
        let mut ioses = vec![kmax.to_string()];
        let mut times = vec![kmax.to_string()];
        for v in APPROX_MAIN {
            let built = build_approx(v, &set, opts.r, kmax);
            let s = measure_queries(&built, &set, &qs, None);
            sizes.push(fmt_bytes(built.size_bytes));
            builds.push(format!("{:.2}", built.build_secs));
            ioses.push(format!("{:.1}", s.avg_ios));
            times.push(format!("{:.3}", s.avg_ms));
        }
        sizes.push(fmt_bytes(e3.size_bytes));
        builds.push(format!("{:.2}", e3.build_secs));
        ioses.push(format!("{:.1}", e3s.avg_ios));
        times.push(format!("{:.3}", e3s.avg_ms));
        ts.row(sizes);
        tb.row(builds);
        ti.row(ioses);
        tt.row(times);
    }
    for (t, n) in
        [(&ts, "fig18a_size"), (&tb, "fig18b_build"), (&ti, "fig18c_ios"), (&tt, "fig18d_time")]
    {
        t.print();
        t.write_csv(&opts.out, n).expect("csv");
    }
}

// ---------------------------------------------------------------------------
// Figures 19 & 20: the Meme dataset
// ---------------------------------------------------------------------------

fn fig19_20(opts: &Opts) {
    let set = meme_dataset(opts.meme_m, 67, 42);
    println!(
        "# Meme-like dataset: m = {}, N = {} (paper scale: m = 1.5M, N = 1e8)",
        set.num_objects(),
        set.num_segments()
    );
    let qs = queries(&set, opts.queries, 0.2, opts.k);
    let truth = ground_truth(&set, &qs);
    let mut t19 = Table::new(
        "Figure 19 — Meme dataset: size / build / IOs / time per method",
        &["method", "index size", "build (s)", "query IOs", "query ms"],
    );
    let mut t20 = Table::new(
        "Figure 20 — Meme dataset: approximation quality",
        &["method", "precision", "ratio"],
    );
    for name in ["EXACT1", "EXACT2", "EXACT3"] {
        let built = build_exact(name, &set);
        let s = measure_queries(&built, &set, &qs, None);
        t19.row(vec![
            built.name.clone(),
            fmt_bytes(built.size_bytes),
            format!("{:.2}", built.build_secs),
            format!("{:.1}", s.avg_ios),
            format!("{:.3}", s.avg_ms),
        ]);
    }
    let b1 = Breakpoints::b1_with_count(&set, opts.r).expect("b1");
    let b2 = Breakpoints::b2_with_count(&set, opts.r, B2Construction::Efficient).expect("b2");
    for v in APPROX_ALL {
        let built = build_approx_shared(v, &set, &b1, &b2, opts.kmax);
        let s = measure_queries(&built, &set, &qs, Some(&truth));
        t19.row(vec![
            built.name.clone(),
            fmt_bytes(built.size_bytes),
            format!("{:.2}", built.build_secs),
            format!("{:.1}", s.avg_ios),
            format!("{:.3}", s.avg_ms),
        ]);
        t20.row(vec![built.name.clone(), format!("{:.3}", s.precision), format!("{:.4}", s.ratio)]);
    }
    t19.print();
    t19.write_csv(&opts.out, "fig19_meme").expect("csv");
    t20.print();
    t20.write_csv(&opts.out, "fig20_meme_quality").expect("csv");
}

// ---------------------------------------------------------------------------
// Ablations: the substrate design knobs (DESIGN.md §5)
// ---------------------------------------------------------------------------

/// Two ablations over the storage substrate: the block size `B` (the free
/// parameter of every Figure-3 bound) and the buffer-pool capacity (cold vs
/// warm query IOs — the paper measures cold).
fn ablation(opts: &Opts) {
    let set = temp_dataset(opts.m, opts.navg, 42);
    let qs = queries(&set, opts.queries.min(16), 0.2, opts.k);

    // (a) Block size sweep: EXACT3's m/B output term and APPX2's list
    // reads both shrink as B grows; tree heights shrink too.
    let mut ta = Table::new(
        "Ablation (a) — block size vs cold query IOs",
        &["block", "EXACT3 IOs", "EXACT3 size", "APPX2 IOs", "APPX2 size"],
    );
    for block_size in [1024usize, 4096, 16384] {
        let store = StoreConfig { block_size, pool_capacity: 1024 };
        let e3 = build_exact_with("EXACT3", &set, IndexConfig { store });
        let s3 = measure_queries(&e3, &set, &qs, None);
        let t0 = Instant::now();
        let appx = ApproxIndex::build(
            &set,
            ApproxVariant::APPX2,
            ApproxConfig { r: opts.r, kmax: opts.kmax, store, ..Default::default() },
        )
        .expect("build");
        let built = Built {
            name: "APPX2".into(),
            build_secs: t0.elapsed().as_secs_f64(),
            size_bytes: appx.size_bytes(),
            method: Box::new(appx),
        };
        let sa = measure_queries(&built, &set, &qs, None);
        ta.row(vec![
            block_size.to_string(),
            format!("{:.1}", s3.avg_ios),
            fmt_bytes(e3.size_bytes),
            format!("{:.1}", sa.avg_ios),
            fmt_bytes(built.size_bytes),
        ]);
    }
    ta.print();
    ta.write_csv(&opts.out, "ablation_block_size").expect("csv");

    // (b) Pool capacity: cold queries (the paper methodology, caches
    // dropped per query) vs warm (repeat the same query, caches kept).
    let mut tb = Table::new(
        "Ablation (b) — buffer pool: cold vs warm EXACT3 query IOs",
        &["pool frames", "cold IOs", "warm IOs"],
    );
    for pool in [8usize, 128, 4096] {
        let store = StoreConfig { block_size: 4096, pool_capacity: pool };
        let e3 = build_exact_with("EXACT3", &set, IndexConfig { store });
        let q = qs[0];
        e3.method.drop_caches().expect("drop");
        e3.method.reset_io();
        e3.method.top_k(q.t1, q.t2, q.k, chronorank_core::AggKind::Sum).expect("query");
        let cold = e3.method.io_stats().reads;
        e3.method.reset_io();
        e3.method.top_k(q.t1, q.t2, q.k, chronorank_core::AggKind::Sum).expect("query");
        let warm = e3.method.io_stats().reads;
        tb.row(vec![pool.to_string(), cold.to_string(), warm.to_string()]);
    }
    tb.print();
    tb.write_csv(&opts.out, "ablation_pool").expect("csv");
}

// ---------------------------------------------------------------------------
// Serve: the sharded, cost-routed serving engine (BENCH_SERVE.json)
// ---------------------------------------------------------------------------

/// Benchmark `chronorank-serve` at W ∈ {1, 2, 4} on a skewed stream.
///
/// Three measurements per W:
///
/// * **io-bound** — exact-routed Zipf stream under an emulated SSD
///   (`simulated_read_latency` per block read, the paper's cost unit made
///   wall time). Sharding multiplies aggregate buffer-pool memory, so
///   from some W the per-shard working set fits its pool and queries stop
///   touching the device: throughput scales superlinearly even on one
///   core. This is the headline serving number.
/// * **in-memory** — the same stream with no device model: reported for
///   transparency (single-core hosts cannot overlap pure CPU work).
/// * **zipf-cache** — an approximate-tolerance hot stream: shard-local
///   result caches answer repeated snapped intervals without touching any
///   index.
///
/// A fourth measurement, **parallel_speedup**, exists because the whole
/// index stack is now `Send + Sync`: the partitions are built ONCE and
/// published as `Arc<Shard>` snapshots, then the *same* shards are served
/// by worker pools of W ∈ {1, 2, 4, 8} threads. Per-query work genuinely
/// overlaps — under the emulated device the sleeps overlap even on a
/// single core, and on multi-core hosts the in-memory column scales too.
/// Before the shared-snapshot refactor this experiment was impossible:
/// every worker had to build and privately own its partition.
///
/// Writes `BENCH_SERVE.json` (cwd, or `$CHRONORANK_SERVE_JSON`) plus a
/// CSV under `--out`.
fn serve(opts: &Opts) {
    use chronorank_serve::{ServeConfig, ServeEngine, ServeQuery};
    use chronorank_workloads::{IntervalPattern, QueryWorkload, QueryWorkloadConfig};
    use std::time::Duration;

    // Workload shapes, named once so the emitted JSON metadata can never
    // drift from the streams actually generated.
    const EXACT_PATTERN: IntervalPattern =
        IntervalPattern::Zipf { hotspots: 64, exponent: 1.0, background: 0.05 };
    const ZIPF_PATTERN: IntervalPattern =
        IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 };
    const EPS_BUDGET: f64 = 0.2;

    // Scenario scale: the full index must overflow one worker's pool while
    // a quarter shard fits (see the doc comment); `--quick` shrinks
    // everything proportionally.
    let (m, navg, exact_count, zipf_count, latency_us, pool) =
        if opts.quick { (600, 40, 120, 240, 50, 128) } else { (2000, 60, 400, 800, 100, 1024) };
    let k = 20.min(opts.kmax.max(8));
    let set = temp_dataset(m, navg, 42);
    let store = StoreConfig { block_size: 4096, pool_capacity: pool };
    println!(
        "# serve scenario: m = {m}, N = {} segments, pool = {} frames × {} B, \
         emulated device = {latency_us} µs/block read",
        set.num_segments(),
        store.pool_capacity,
        store.block_size
    );

    // Exact-routed skewed stream: 64 hotspots spread the block working set
    // past one worker's pool; 5% uniform background keeps it honest.
    let exact_workload = QueryWorkload::new(
        QueryWorkloadConfig {
            count: exact_count,
            span_fraction: 0.2,
            k,
            seed: 7,
            pattern: EXACT_PATTERN,
        },
        set.t_min(),
        set.t_max(),
    );
    let exact_stream: Vec<ServeQuery> =
        exact_workload.generate().iter().map(|q| ServeQuery::exact(q.t1, q.t2, q.k)).collect();
    // Approximate hot stream for the result cache: few hotspots, loose ε.
    let zipf_workload = QueryWorkload::new(
        QueryWorkloadConfig {
            count: zipf_count,
            span_fraction: 0.2,
            k,
            seed: 9,
            pattern: ZIPF_PATTERN,
        },
        set.t_min(),
        set.t_max(),
    );
    let zipf_stream: Vec<ServeQuery> = zipf_workload
        .generate()
        .iter()
        .map(|q| ServeQuery::approx(q.t1, q.t2, q.k, EPS_BUDGET))
        .collect();
    // Warmup stream: every hotspot once (steady-state serving).
    let warmup: Vec<ServeQuery> =
        exact_workload.hotspots().iter().map(|q| ServeQuery::exact(q.t1, q.t2, q.k)).collect();

    let mut table = Table::new(
        "Serve — sharded engine at W workers (skewed stream)",
        &["W", "io-bound q/s", "reads/q", "in-memory q/s", "zipf q/s", "cache hit %", "route"],
    );
    let mut rows_json = Vec::new();
    let mut io_qps_by_w = Vec::new();
    for workers in [1usize, 2, 4] {
        // One engine per W: measured in-memory first, then switched to the
        // emulated device with the live latency toggle (same indexes, same
        // warm pools — only the device model changes).
        let cfg =
            ServeConfig { workers, store, simulated_read_latency: None, ..Default::default() };
        let engine = ServeEngine::new(&set, cfg).expect("build engine");
        let route = engine.route_for(&exact_stream[0]).name();
        engine.run_stream(&warmup).expect("warmup");

        // (a) In-memory: no device model.
        let mem_qps = engine.run_stream(&exact_stream).expect("exact stream").qps();

        // (b) Cache: the approximate hot stream.
        let zipf_outcome = engine.run_stream(&zipf_stream).expect("zipf stream");
        let hit_rate = engine.report().cache_hit_rate();

        // (c) IO-bound: emulated device latency per block read.
        engine.set_simulated_read_latency(Some(Duration::from_micros(latency_us))).expect("toggle");
        let before = engine.report().io;
        let outcome = engine.run_stream(&exact_stream).expect("exact stream");
        let reads_per_query =
            engine.report().io.since(before).reads as f64 / exact_stream.len() as f64;
        let io_qps = outcome.qps();

        table.row(vec![
            workers.to_string(),
            format!("{io_qps:.0}"),
            format!("{reads_per_query:.1}"),
            format!("{mem_qps:.0}"),
            format!("{:.0}", zipf_outcome.qps()),
            format!("{:.1}", 100.0 * hit_rate),
            route.to_string(),
        ]);
        io_qps_by_w.push((workers, io_qps));
        rows_json.push(format!(
            "    {{\"workers\": {workers}, \"io_bound_qps\": {io_qps:.1}, \
             \"reads_per_query\": {reads_per_query:.2}, \"in_memory_qps\": {mem_qps:.1}, \
             \"zipf_qps\": {:.1}, \"cache_hit_rate\": {hit_rate:.4}, \
             \"exact_route\": \"{route}\"}}",
            zipf_outcome.qps(),
        ));
    }
    table.print();
    table.write_csv(&opts.out, "serve_scaling").expect("csv");

    // --- parallel speedup over ONE shared snapshot -----------------------
    // Build 4 partitions once, with pools far smaller than the hot working
    // set so exact probes keep reading; then serve the SAME Arc<Shard>
    // snapshots with pools of 1/2/4/8 workers. Under the emulated device
    // the per-read sleeps overlap across workers, so throughput scales
    // with W even on one core; the in-memory column additionally scales on
    // multi-core hosts.
    const PAR_SHARDS: usize = 4;
    let par_pool = if opts.quick { 32 } else { 64 };
    let par_store = StoreConfig { block_size: 4096, pool_capacity: par_pool };
    let par_cfg = ServeConfig {
        workers: PAR_SHARDS,
        store: par_store,
        simulated_read_latency: None,
        ..Default::default()
    };
    let base = ServeEngine::new(&set, par_cfg).expect("build shared snapshot");
    let shards = base.shards();
    drop(base);
    let mut par_table = Table::new(
        "Serve — parallel speedup: pool workers over ONE shared 4-shard snapshot",
        &["pool workers", "io-bound q/s", "in-memory q/s", "speedup vs W=1 (io)"],
    );
    let mut par_rows = Vec::new();
    let mut par_io_qps = Vec::new();
    for pool_workers in [1usize, 2, 4, 8] {
        let engine = ServeEngine::from_shards(shards.clone(), pool_workers)
            .expect("engine over shared shards");
        engine.set_simulated_read_latency(None).expect("toggle");
        engine.run_stream(&warmup).expect("warmup");
        let mem_qps = engine.run_stream(&exact_stream).expect("exact stream").qps();
        engine.set_simulated_read_latency(Some(Duration::from_micros(latency_us))).expect("toggle");
        let io_qps = engine.run_stream(&exact_stream).expect("exact stream").qps();
        engine.set_simulated_read_latency(None).expect("toggle");
        let speedup = io_qps / par_io_qps.first().copied().unwrap_or(io_qps).max(1e-9);
        par_table.row(vec![
            pool_workers.to_string(),
            format!("{io_qps:.0}"),
            format!("{mem_qps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        par_rows.push(format!(
            "      {{\"pool_workers\": {pool_workers}, \"io_bound_qps\": {io_qps:.1}, \"in_memory_qps\": {mem_qps:.1}}}"
        ));
        par_io_qps.push(io_qps);
    }
    par_table.print();
    par_table.write_csv(&opts.out, "serve_parallel_speedup").expect("csv");
    let par_speedup = par_io_qps[2] / par_io_qps[0].max(1e-9);
    println!("\nparallel speedup over one shared snapshot, W=4 vs W=1: {par_speedup:.2}x");

    let pattern_json = |p: IntervalPattern, count: usize| match p {
        IntervalPattern::Uniform => format!("{{\"queries\": {count}, \"pattern\": \"uniform\"}}"),
        IntervalPattern::Zipf { hotspots, exponent, background } => format!(
            "{{\"queries\": {count}, \"hotspots\": {hotspots}, \"exponent\": {exponent}, \
             \"background\": {background}}}"
        ),
    };
    let speedup = io_qps_by_w[2].1 / io_qps_by_w[0].1.max(1e-9);
    println!("\nW=4 over W=1 io-bound speedup: {speedup:.2}x");
    let json = format!(
        "{{\n  \"harness\": \"chronorank-serve-bench\",\n  \"quick\": {},\n  \"scenario\": {{\n    \
         \"dataset\": \"temp\", \"m\": {m}, \"n_segments\": {}, \"k\": {k},\n    \
         \"pool_frames\": {}, \"block_bytes\": {},\n    \
         \"emulated_read_latency_us\": {latency_us},\n    \
         \"exact_stream\": {},\n    \
         \"zipf_stream\": {{\"eps_budget\": {EPS_BUDGET}, \"base\": {}}}\n  }},\n  \
         \"note\": \"io_bound emulates the paper's cost unit (one block read = {latency_us} us); sharding multiplies aggregate pool memory, so shards fit and stop reading. in_memory shows the same stream without a device model. parallel_speedup serves ONE shared Arc-published 4-shard snapshot (small pools, so probes keep reading) with pools of 1/2/4/8 worker threads: the whole index stack is Send+Sync, so workers overlap on shared state — under the emulated device the sleeps overlap even on one core, and the in-memory column scales too on multi-core hosts. This replaces the old 'in-memory scatter-gather does not scale' caveat: it could not scale while every worker privately rebuilt its partition.\",\n  \
         \"results\": [\n{}\n  ],\n  \"speedup_w4_over_w1_io_bound\": {speedup:.2},\n  \
         \"parallel_speedup\": {{\n    \"shards\": {PAR_SHARDS}, \"pool_frames\": {par_pool},\n    \"emulated_read_latency_us\": {latency_us},\n    \"series\": [\n{}\n    ],\n    \"speedup_w4_over_w1\": {par_speedup:.2}\n  }}\n}}\n",
        opts.quick,
        set.num_segments(),
        store.pool_capacity,
        store.block_size,
        pattern_json(EXACT_PATTERN, exact_stream.len()),
        pattern_json(ZIPF_PATTERN, zipf_stream.len()),
        rows_json.join(",\n"),
        par_rows.join(",\n"),
    );
    write_bench_json("SERVE", &json);
}

// ---------------------------------------------------------------------------
// Live: WAL-backed streaming ingestion under query traffic (BENCH_LIVE.json)
// ---------------------------------------------------------------------------

/// Benchmark `chronorank-live` at W ∈ {1, 2, 4}: replay a stock-volume
/// dataset's second half as a durable append stream with hot-spot queries
/// interleaved after every batch.
///
/// Per W, two passes over the same trace:
///
/// * **exact** — every query demands exactness (frozen candidates ∪ tail,
///   exactly rescored). Reports ingest throughput, query QPS *during*
///   ingest, completed rebuilds with the swap-pause histogram, and the
///   queries answered while a rebuild was in flight — the non-blocking
///   readers evidence.
/// * **tolerance** — the same trace with an ε-budget, exercising the
///   snapped approximate routes and the staleness-audited result cache
///   (hits vs ε-invalidations).
///
/// Staleness is reported as the final mass growth past the built
/// generations (`ΔM/M_built` — what §4's doubling policy bounds) plus the
/// tail length at the end of the run.
///
/// Writes `BENCH_LIVE.json` (cwd, or `$CHRONORANK_LIVE_JSON`) plus a CSV
/// under `--out`.
fn live(opts: &Opts) {
    use chronorank_live::{IngestEngine, LiveConfig, RebuildPolicy};
    use chronorank_workloads::{
        AppendStream, AppendStreamConfig, IntervalPattern, QueryWorkloadConfig, StockConfig,
        StockGenerator,
    };

    const EPS_BUDGET: f64 = 0.2;
    let (tickers, days, batch, queries_per_batch) =
        if opts.quick { (120, 10, 32, 1) } else { (600, 24, 64, 2) };
    let generator =
        StockGenerator::new(StockConfig { objects: tickers, days, readings_per_day: 8, seed: 42 });
    let stream = AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch, skew: 0.0, seed: 7 },
    );
    let seed = stream.base_set();
    let query_cfg = QueryWorkloadConfig {
        span_fraction: 0.15,
        k: opts.k.min(opts.kmax),
        seed: 9,
        pattern: IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 },
        ..Default::default()
    };
    let ops = stream.hotspot(query_cfg, queries_per_batch);
    println!(
        "# live scenario: {} tickers, {} base segments, {} appends in batches of {}, \
         {} interleaved hot-spot queries",
        seed.num_objects(),
        seed.num_segments(),
        stream.records().len(),
        batch,
        ops.len() - stream.records().len().div_ceil(batch),
    );

    let mut table = Table::new(
        "Live — WAL-backed ingest under query traffic at W workers",
        &[
            "W",
            "ticks/s",
            "q/s",
            "rebuilds",
            "max pause µs",
            "q mid-rebuild",
            "wal flushes",
            "tol q/s",
            "cache hit %",
            "ε-invalid",
        ],
    );
    let mut rows_json = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = LiveConfig {
            workers,
            rebuild: RebuildPolicy { mass_factor: 1.5, max_tail_segments: 4096 },
            ..Default::default()
        };
        // Pass 1: exact queries.
        let mut engine = IngestEngine::new(&seed, config.clone()).expect("build live engine");
        let outcome = engine.run_ops(&ops).expect("exact trace");
        // Drain: steady-state traffic keeps flowing until the in-flight
        // generation builds publish — this is where the swap-pause
        // histogram fills and rebuild completion becomes observable.
        let full = stream.full_set();
        let drain_q = chronorank_serve::ServeQuery::exact(
            full.t_min() + 0.2 * full.span(),
            full.t_min() + 0.4 * full.span(),
            query_cfg.k,
        );
        let drain_t0 = Instant::now();
        let mut drain_queries = 0u64;
        while engine.report().rebuilds_in_flight > 0 && drain_t0.elapsed().as_secs_f64() < 60.0 {
            engine.query(drain_q).expect("drain query");
            drain_queries += 1;
        }
        let drain_secs = drain_t0.elapsed().as_secs_f64();
        let report = engine.report();
        drop(engine);
        // Pass 2: ε-tolerance queries (fresh engine, same trace).
        let mut engine = IngestEngine::new(&seed, config).expect("build live engine");
        let tol = engine.run_ops_with_tolerance(&ops, EPS_BUDGET).expect("tolerance trace");
        let tol_report = engine.report();
        drop(engine);

        table.row(vec![
            workers.to_string(),
            format!("{:.0}", outcome.ingest_rate()),
            format!("{:.0}", outcome.qps()),
            report.rebuilds.to_string(),
            report.swap_pause.max_us.to_string(),
            report.queries_during_rebuild.to_string(),
            report.wal.wal_writes.to_string(),
            format!("{:.0}", tol.qps()),
            format!("{:.1}", 100.0 * tol_report.cache_hit_rate()),
            tol_report.cache_invalidations.to_string(),
        ]);
        let buckets: Vec<String> =
            report.swap_pause.buckets.iter().map(|b| b.to_string()).collect();
        rows_json.push(format!(
            "    {{\"workers\": {workers}, \"ingest_ticks_per_sec\": {:.1}, \
             \"query_qps_during_ingest\": {:.1}, \"rebuilds\": {}, \
             \"rebuild_build_secs\": {:.3}, \
             \"swap_pause_histogram_us\": {{\"bounds\": [50, 200, 1000, 5000, 20000], \
             \"counts\": [{}], \"max_us\": {}}}, \
             \"queries_during_rebuild\": {}, \
             \"drain\": {{\"queries\": {drain_queries}, \"secs\": {drain_secs:.3}}}, \
             \"wal_writes\": {}, \"wal_bytes\": {}, \
             \"staleness\": {{\"final_mass_growth\": {:.4}, \"final_tail_segments\": {}}}, \
             \"tolerance\": {{\"eps\": {EPS_BUDGET}, \"qps\": {:.1}, \
             \"cache_hit_rate\": {:.4}, \"eps_invalidations\": {}}}}}",
            outcome.ingest_rate(),
            outcome.qps(),
            report.rebuilds,
            report.build_secs,
            buckets.join(", "),
            report.swap_pause.max_us,
            report.queries_during_rebuild,
            report.wal.wal_writes,
            report.wal.wal_bytes,
            report.mass_growth(),
            report.tail_segments,
            tol.qps(),
            tol_report.cache_hit_rate(),
            tol_report.cache_invalidations,
        ));
    }
    table.print();
    table.write_csv(&opts.out, "live_ingest").expect("csv");

    let json = format!(
        "{{\n  \"harness\": \"chronorank-live-bench\",\n  \"quick\": {},\n  \"scenario\": {{\n    \
         \"dataset\": \"stock\", \"tickers\": {tickers}, \"days\": {days},\n    \
         \"base_segments\": {}, \"appended_ticks\": {}, \"batch\": {batch},\n    \
         \"queries_per_batch\": {queries_per_batch}, \"k\": {}, \
         \"rebuild_mass_factor\": 1.5\n  }},\n  \
         \"note\": \"queries_during_rebuild > 0 with nonzero query_qps_during_ingest is the \
         non-blocking-reader evidence: generation builds run off-thread and publish via an \
         epoch swap whose pause histogram is in microseconds. The drain phase keeps the \
         query stream flowing after the trace until in-flight builds publish (steady-state \
         serving), which is where swaps land. wal_writes/wal_bytes attribute the ingest \
         path's own IO separately from index reads.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        opts.quick,
        seed.num_segments(),
        stream.records().len(),
        query_cfg.k,
        rows_json.join(",\n"),
    );
    write_bench_json("LIVE", &json);
}

// ---------------------------------------------------------------------------
// Cold start: bulk load + image-backed recovery (BENCH_COLDSTART.json)
// ---------------------------------------------------------------------------

/// Benchmark the persistence stack: bottom-up bulk loading against
/// top-down insertion at the index layer, and an image-backed cold start
/// against full WAL replay at the engine layer.
///
/// **Build path** — N sorted entries go once through the fill-1.0
/// [`chronorank_index::BulkLoader`] (sequential leaves, inner layers
/// stacked bottom-up, no splits) and once through the `insert` path it
/// replaces on the frozen side. Both trees are checked for agreement
/// before any timing is reported.
///
/// **Cold-start path** — one stock ingest run is checkpointed and
/// restarted: the frozen generations reopen page-for-page from the
/// on-disk image and only the (empty) WAL suffix past the image's epoch
/// stamp replays. A second identical run is killed *without* a
/// checkpoint and restarted: full WAL replay plus fresh index builds.
/// Both boots must answer the pre-restart probe bit-identically; the
/// image boot must preload every shard, the replay boot none.
///
/// Writes `BENCH_COLDSTART.json` (cwd, or `$CHRONORANK_COLDSTART_JSON`)
/// plus a CSV under `--out`.
fn coldstart(opts: &Opts) {
    use chronorank_index::{BPlusTree, BulkLoader};
    use chronorank_live::{IngestEngine, LiveConfig};
    use chronorank_workloads::{AppendStream, AppendStreamConfig, StockConfig, StockGenerator};

    // --- index layer: bulk load vs insert build over identical data ---
    let n = if opts.quick { 20_000usize } else { 120_000 };
    let env = Env::mem(StoreConfig::default());

    let t0 = Instant::now();
    let mut loader = BulkLoader::new(env.create_file("cs-bulk").expect("file"), 8).expect("loader");
    for i in 0..n {
        loader.push(i as f64, &(i as u64).to_le_bytes()).expect("push");
    }
    let bulk_tree = loader.finish().expect("finish");
    let bulk_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = Instant::now();
    let insert_tree = BPlusTree::create(env.create_file("cs-ins").expect("file"), 8).expect("tree");
    for i in 0..n {
        insert_tree.insert(i as f64, &(i as u64).to_le_bytes()).expect("insert");
    }
    let insert_secs = t0.elapsed().as_secs_f64().max(1e-9);

    assert_eq!(bulk_tree.len(), insert_tree.len(), "bulk and insert builds must agree");
    assert_eq!(
        bulk_tree.last_entry().expect("last"),
        insert_tree.last_entry().expect("last"),
        "bulk and insert builds must agree on the last entry"
    );

    // --- engine layer: image-backed cold start vs full WAL replay ---
    let (tickers, days, batch) = if opts.quick { (120, 10, 32) } else { (600, 24, 64) };
    let generator =
        StockGenerator::new(StockConfig { objects: tickers, days, readings_per_day: 8, seed: 42 });
    let stream = AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch, skew: 0.0, seed: 7 },
    );
    let seed_set = stream.base_set();
    let full = stream.full_set();
    let live_segments = full.num_segments() as usize;
    let workers = 2usize;
    let probe = chronorank_serve::ServeQuery::exact(
        full.t_min() + 0.25 * full.span(),
        full.t_max(),
        opts.k.min(opts.kmax),
    );
    let base_dir =
        std::env::temp_dir().join(format!("chronorank-coldstart-{}", std::process::id()));

    // One ingest run per boot mode: identical trace, then a restart timed
    // from `IngestEngine::new` to first serviceable state. Returns
    // (boot seconds, preloaded shard count).
    let boot = |name: &str, take_checkpoint: bool| -> (f64, u64) {
        let dir = base_dir.join(name);
        std::fs::remove_dir_all(&dir).ok();
        let config = LiveConfig { workers, wal_dir: Some(dir.clone()), ..Default::default() };
        let want;
        {
            let mut engine = IngestEngine::new(&seed_set, config.clone()).expect("build engine");
            for b in stream.batches() {
                engine.append_batch(b).expect("append");
            }
            if take_checkpoint {
                engine.checkpoint().expect("checkpoint");
            }
            want = engine.query(probe).expect("pre-restart probe");
            // Engine dropped here: a crash for the replay run, a clean
            // restart for the checkpointed one.
        }
        let t0 = Instant::now();
        let recovered = IngestEngine::new(&seed_set, config).expect("recover engine");
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let got = recovered.query(probe).expect("post-restart probe");
        assert_eq!(want.ids(), got.ids(), "{name}: restart changed the answer ids");
        for (j, (ws, gs)) in want.scores().iter().zip(got.scores()).enumerate() {
            assert_eq!(ws.to_bits(), gs.to_bits(), "{name}: restart changed score at rank {j}");
        }
        let preloaded = recovered.report().preloaded_shards;
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
        (secs, preloaded)
    };

    let (image_secs, image_preloaded) = boot("image", true);
    let (replay_secs, replay_preloaded) = boot("replay", false);
    assert_eq!(image_preloaded, workers as u64, "image boot must preload every shard");
    assert_eq!(replay_preloaded, 0, "replay boot must not find an image");

    let mut table = Table::new(
        "Cold start — bulk load vs insert build, image boot vs WAL replay",
        &["series", "mode", "items", "secs", "items/s"],
    );
    let rate = |items: usize, secs: f64| items as f64 / secs;
    for (series, mode, items, secs) in [
        ("btree build", "bulk", n, bulk_secs),
        ("btree build", "insert", n, insert_secs),
        ("engine boot", "image", live_segments, image_secs),
        ("engine boot", "replay", live_segments, replay_secs),
    ] {
        table.row(vec![
            series.to_string(),
            mode.to_string(),
            items.to_string(),
            format!("{secs:.4}"),
            format!("{:.0}", rate(items, secs)),
        ]);
    }
    table.print();
    table.write_csv(&opts.out, "coldstart").expect("csv");
    println!(
        "bulk load {:.2}x over insert; image cold start {:.2}x over WAL replay",
        insert_secs / bulk_secs,
        replay_secs / image_secs
    );

    let json = format!(
        "{{\n  \"harness\": \"chronorank-coldstart-bench\",\n  \"quick\": {},\n  \
         \"scenario\": {{\n    \"bulk_entries\": {n}, \"dataset\": \"stock\", \
         \"tickers\": {tickers}, \"days\": {days},\n    \"batch\": {batch}, \
         \"workers\": {workers}, \"ingested_records\": {}, \
         \"live_segments\": {live_segments}\n  }},\n  \
         \"note\": \"bulk_load times the fill-1.0 bottom-up B+-tree loader against the \
         top-down insert path over identical sorted data (both products are checked for \
         agreement first). cold_start restarts the same ingest run twice: once from a \
         checkpoint image (generations reopen page-for-page, only the empty WAL suffix \
         past the epoch stamp replays) and once from the bare WAL (full replay + fresh \
         builds). Both boots must answer the pre-restart probe bit-identically; \
         preloaded_shards is the image-boot evidence.\",\n  \
         \"bulk_load\": {{\n    \"entries\": {n},\n    \
         \"bulk\": {{\"secs\": {bulk_secs:.4}, \"entries_per_sec\": {:.1}}},\n    \
         \"insert\": {{\"secs\": {insert_secs:.4}, \"entries_per_sec\": {:.1}}},\n    \
         \"bulk_over_insert_speedup\": {:.3}\n  }},\n  \
         \"cold_start\": {{\n    \"workers\": {workers}, \"segments\": {live_segments},\n    \
         \"image\": {{\"secs\": {image_secs:.4}, \"boot_segments_per_sec\": {:.1}, \
         \"preloaded_shards\": {image_preloaded}}},\n    \
         \"replay\": {{\"secs\": {replay_secs:.4}, \"boot_segments_per_sec\": {:.1}, \
         \"preloaded_shards\": {replay_preloaded}}},\n    \
         \"image_over_replay_speedup\": {:.3}\n  }}\n}}\n",
        opts.quick,
        stream.records().len(),
        rate(n, bulk_secs),
        rate(n, insert_secs),
        insert_secs / bulk_secs,
        rate(live_segments, image_secs),
        rate(live_segments, replay_secs),
        replay_secs / image_secs,
    );
    write_bench_json("COLDSTART", &json);
}

// ---------------------------------------------------------------------------
// Net: wire-protocol serving over a real socket (BENCH_NET.json)
// ---------------------------------------------------------------------------

/// Benchmark `chronorank-net` against a real TCP socket on loopback.
///
/// **Read path** — a serve-backend server (4 shards); `C` concurrent
/// closed-loop clients (each its own connection and OS thread) sweep a
/// shared-hotspot Zipf stream at pipeline depths `D`. Reported per
/// `(C, D)`: aggregate throughput and client-observed latency
/// percentiles. Depth is the lever the frame protocol exists for: at
/// `D = 1` every query pays a full socket round trip, at `D = 16` the
/// connection stays busy and the protocol overhead amortizes.
///
/// **Write path** — a live-backend server; `A` appender connections
/// stream a stock-ticker append trace (records partitioned by object so
/// each object's timeline stays on one connection) while one query
/// client runs hotspot queries concurrently. Reported: durable wire
/// ingest rate, concurrent query throughput, and the final
/// `appends_applied` freshness check.
///
/// Writes `BENCH_NET.json` (cwd, or `$CHRONORANK_NET_JSON`) plus CSVs
/// under `--out`.
fn net(opts: &Opts) {
    use chronorank_bench::Table;
    use chronorank_net::{NetClient, NetConfig, NetServer};
    use chronorank_serve::{ServeConfig, ServeQuery};
    use chronorank_workloads::{
        AppendStream, AppendStreamConfig, ClosedLoopTraffic, IntervalPattern, QueryWorkloadConfig,
        StockConfig, StockGenerator, TrafficConfig,
    };

    const EPS_BUDGET: f64 = 0.2;
    const PATTERN: IntervalPattern =
        IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 };
    let (m, navg, per_client, clients_sweep, depth_sweep, tickers, days, append_batch): (
        usize,
        usize,
        usize,
        &[usize],
        &[usize],
        usize,
        usize,
        usize,
    ) = if opts.quick {
        (400, 30, 80, &[1, 2, 4], &[1, 8], 120, 10, 32)
    } else {
        (1200, 50, 250, &[1, 2, 4, 8], &[1, 4, 16], 400, 20, 64)
    };
    let k = opts.k.min(opts.kmax).max(1);
    let set = temp_dataset(m, navg, 42);
    println!(
        "# net scenario: m = {m}, N = {} segments, loopback TCP, server W = 4, \
         {per_client} queries/client",
        set.num_segments()
    );

    // --- read path -------------------------------------------------------
    let server = NetServer::start_serve(
        set.clone(),
        ServeConfig { workers: 4, ..Default::default() },
        NetConfig { max_in_flight: 1024, max_connections: 64, ..Default::default() },
    )
    .expect("start serve-backend server");
    let addr = server.local_addr();

    let mut table = Table::new(
        "Net — closed-loop clients vs pipeline depth (loopback TCP, serve backend)",
        &["clients", "depth", "q/s", "p50 µs", "p95 µs", "p99 µs", "busy retries"],
    );
    let mut read_rows = Vec::new();
    for &clients in clients_sweep {
        let plan = ClosedLoopTraffic::new(
            TrafficConfig {
                clients,
                queries_per_client: per_client,
                workload: QueryWorkloadConfig {
                    span_fraction: 0.2,
                    k,
                    seed: 7,
                    pattern: PATTERN,
                    ..Default::default()
                },
            },
            set.t_min(),
            set.t_max(),
        );
        // Mixed exact / ε-budget traffic, the serve scenario's shape.
        let streams: Vec<Vec<ServeQuery>> = plan
            .streams()
            .iter()
            .map(|s| {
                s.iter()
                    .enumerate()
                    .map(|(i, q)| {
                        if i % 2 == 0 {
                            ServeQuery::exact(q.t1, q.t2, q.k)
                        } else {
                            ServeQuery::approx(q.t1, q.t2, q.k, EPS_BUDGET)
                        }
                    })
                    .collect()
            })
            .collect();
        for &depth in depth_sweep {
            let t0 = Instant::now();
            let outcomes: Vec<(Vec<std::time::Duration>, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = streams
                    .iter()
                    .map(|stream| {
                        scope.spawn(move || {
                            let mut client =
                                NetClient::connect(addr).expect("bench client connects");
                            let outcome =
                                client.pipeline_topk(stream, depth).expect("pipelined stream");
                            (outcome.latencies, outcome.busy_retries)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread")).collect()
            });
            let elapsed = t0.elapsed().as_secs_f64();
            let total_queries = clients * per_client;
            let qps = total_queries as f64 / elapsed;
            let mut lat_us: Vec<u64> = outcomes
                .iter()
                .flat_map(|(lat, _)| lat.iter().map(|d| d.as_micros() as u64))
                .collect();
            lat_us.sort_unstable();
            let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
            let busy: u64 = outcomes.iter().map(|(_, b)| b).sum();
            table.row(vec![
                clients.to_string(),
                depth.to_string(),
                format!("{qps:.0}"),
                pct(0.50).to_string(),
                pct(0.95).to_string(),
                pct(0.99).to_string(),
                busy.to_string(),
            ]);
            read_rows.push(format!(
                "    {{\"clients\": {clients}, \"depth\": {depth}, \"qps\": {qps:.1}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"busy_retries\": {busy}}}",
                pct(0.50),
                pct(0.95),
                pct(0.99),
            ));
        }
    }
    table.print();
    table.write_csv(&opts.out, "net_read_path").expect("csv");
    server.shutdown();

    // --- write path ------------------------------------------------------
    let generator =
        StockGenerator::new(StockConfig { objects: tickers, days, readings_per_day: 8, seed: 42 });
    let stream = AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch: append_batch, skew: 0.0, seed: 7 },
    );
    let seed_set = stream.base_set();
    let records = stream.records();
    let mut table = Table::new(
        "Net — durable wire ingest with concurrent queries (live backend)",
        &["appenders", "ticks/s", "concurrent q/s", "appends", "queries"],
    );
    // Mirrored into the emitted JSON's write_dataset.live_workers so the
    // committed artifact documents the experiment it actually ran.
    const LIVE_WORKERS: usize = 2;
    let mut write_rows = Vec::new();
    for &appenders in if opts.quick { &[1usize, 2][..] } else { &[1usize, 2, 4][..] } {
        let server = NetServer::start_live(
            seed_set.clone(),
            chronorank_live::LiveConfig { workers: LIVE_WORKERS, ..Default::default() },
            NetConfig { max_in_flight: 1024, ..Default::default() },
        )
        .expect("start live-backend server");
        let addr = server.local_addr();
        // Partition the trace by object so each object's timeline stays
        // on one connection (appends must be per-object monotone).
        let partitions: Vec<Vec<chronorank_core::AppendRecord>> = (0..appenders)
            .map(|a| {
                records.iter().filter(|r| r.object as usize % appenders == a).copied().collect()
            })
            .collect();
        let full = stream.full_set();
        let hot = ClosedLoopTraffic::new(
            TrafficConfig {
                clients: 1,
                queries_per_client: 4096,
                workload: QueryWorkloadConfig {
                    span_fraction: 0.15,
                    k,
                    seed: 9,
                    pattern: PATTERN,
                    ..Default::default()
                },
            },
            full.t_min(),
            full.t_max(),
        );
        let queries: Vec<ServeQuery> =
            hot.streams()[0].iter().map(|q| ServeQuery::exact(q.t1, q.t2, q.k)).collect();
        let done = std::sync::atomic::AtomicBool::new(false);
        let t0 = Instant::now();
        let (applied, wire_queries, ingest_secs) = std::thread::scope(|scope| {
            let done = &done;
            let append_handles: Vec<_> = partitions
                .iter()
                .map(|part| {
                    scope.spawn(move || {
                        let mut client = NetClient::connect(addr).expect("appender connects");
                        let mut applied = 0u64;
                        for batch in part.chunks(append_batch) {
                            applied += client.append_batch(batch).expect("wire append").accepted;
                        }
                        applied
                    })
                })
                .collect();
            let query_handle = scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("query client connects");
                let mut served = 0u64;
                for q in queries.iter().cycle() {
                    if done.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    client.topk(*q).expect("concurrent query");
                    served += 1;
                }
                served
            });
            let applied: u64 =
                append_handles.into_iter().map(|h| h.join().expect("appender")).sum();
            let ingest_secs = t0.elapsed().as_secs_f64();
            done.store(true, std::sync::atomic::Ordering::Relaxed);
            (applied, query_handle.join().expect("query client"), ingest_secs)
        });
        assert_eq!(applied as usize, records.len(), "every record durably applied");
        let ticks_per_sec = applied as f64 / ingest_secs;
        let qps = wire_queries as f64 / ingest_secs;
        table.row(vec![
            appenders.to_string(),
            format!("{ticks_per_sec:.0}"),
            format!("{qps:.0}"),
            applied.to_string(),
            wire_queries.to_string(),
        ]);
        write_rows.push(format!(
            "    {{\"appenders\": {appenders}, \"ingest_ticks_per_sec\": {ticks_per_sec:.1}, \
             \"concurrent_query_qps\": {qps:.1}, \"appends\": {applied}, \
             \"queries\": {wire_queries}}}"
        ));
        server.shutdown();
    }
    table.print();
    table.write_csv(&opts.out, "net_write_path").expect("csv");

    let json = format!(
        "{{\n  \"harness\": \"chronorank-net-bench\",\n  \"quick\": {},\n  \"scenario\": {{\n    \
         \"dataset\": \"temp\", \"m\": {m}, \"n_segments\": {}, \"k\": {k},\n    \
         \"server_workers\": 4, \"per_client_queries\": {per_client},\n    \
         \"zipf\": {{\"hotspots\": 8, \"exponent\": 1.0, \"background\": 0.1}},\n    \
         \"eps_budget\": {EPS_BUDGET},\n    \
         \"write_dataset\": {{\"tickers\": {tickers}, \"days\": {days}, \
         \"appended_ticks\": {}, \"batch\": {append_batch}, \"live_workers\": {LIVE_WORKERS}}}\n  }},\n  \
         \"note\": \"All traffic crosses a real loopback TCP socket through the framed wire \
         protocol; answers are bit-identical to in-process engines (tests/net_agreement.rs). \
         Read path: closed-loop clients, shared Zipf hotspots, mixed exact/eps traffic; depth \
         is the request-pipelining window per connection — depth 1 measures per-query round \
         trips, deeper windows amortize protocol overhead. Write path: durable APPEND_BATCH \
         ingest (one WAL group-commit per batch) with concurrent exact queries on a second \
         connection.\",\n  \
         \"read_path\": [\n{}\n  ],\n  \"write_path\": [\n{}\n  ]\n}}\n",
        opts.quick,
        set.num_segments(),
        records.len(),
        read_rows.join(",\n"),
        write_rows.join(",\n"),
    );
    write_bench_json("NET", &json);
}

// ---------------------------------------------------------------------------
// Obs: telemetry overhead gate (BENCH_OBS.json)
// ---------------------------------------------------------------------------

/// Measure what the telemetry plane costs on the serving read path and
/// fail if it is not (nearly) free.
///
/// Two identical serve engines answer the same mixed exact/ε Zipf stream:
/// one wired to the process-global registry (per-route latency
/// histograms, cache counters, flight-recorder admission on every query —
/// the default), one detached onto [`chronorank_obs::Registry::noop`],
/// where every handle is `None` and each record is a dead branch. Trials
/// interleave A/B so both arms share warmup, thermal and cache
/// conditions, and the best trial per arm is compared: **if instrumented
/// throughput lands more than [`OBS_GATE_PCT`]% below no-op, the run
/// exits nonzero** — the CI gate that keeps telemetry off the hot path.
/// A second series measures full distributed tracing the same way: a
/// span tree (client root, engine child, per-shard probes) plus an SLO
/// observation per query on a cache-off engine, under the same gate.
///
/// A microbench of the raw primitives (counter inc, histogram record;
/// live and no-op) is reported alongside for context.
///
/// Writes `BENCH_OBS.json` (cwd, or `$CHRONORANK_OBS_JSON`) plus a CSV
/// under `--out`.
const OBS_GATE_PCT: f64 = 3.0;

fn obs(opts: &Opts) {
    use chronorank_obs::{
        AttrList, Counter, Histogram, Registry, SloObjective, SloTracker, SpanId, SpanSink, TraceId,
    };
    use chronorank_serve::{ServeConfig, ServeEngine, ServeQuery};
    use chronorank_workloads::{IntervalPattern, QueryWorkload, QueryWorkloadConfig};

    const PATTERN: IntervalPattern =
        IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 };
    const EPS_BUDGET: f64 = 0.2;
    let (m, navg, count, trials) = if opts.quick { (400, 30, 400, 3) } else { (1200, 50, 2000, 5) };
    let k = opts.k.min(opts.kmax).max(1);
    let set = temp_dataset(m, navg, 42);
    let workload = QueryWorkload::new(
        QueryWorkloadConfig { count, span_fraction: 0.2, k, seed: 7, pattern: PATTERN },
        set.t_min(),
        set.t_max(),
    );
    let stream: Vec<ServeQuery> = workload
        .generate()
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                ServeQuery::exact(q.t1, q.t2, q.k)
            } else {
                ServeQuery::approx(q.t1, q.t2, q.k, EPS_BUDGET)
            }
        })
        .collect();
    // Interleaved A/B trials with best-of comparison: contention noise
    // is one-sided (it only slows a trial), so more trials tighten the
    // estimate of both arms' true rate.
    let rp_trials = trials * 3;
    println!(
        "# obs scenario: m = {m}, N = {} segments, {} queries/trial × {rp_trials} interleaved \
         trials, instrumented (global registry) vs no-op registry",
        set.num_segments(),
        stream.len()
    );

    // Arm A: the default — handles resolved against the global registry.
    let instrumented =
        ServeEngine::new(&set, ServeConfig { workers: 2, ..Default::default() }).expect("engine");
    // Arm B: same engine shape, every metric handle a no-op.
    let mut noop =
        ServeEngine::new(&set, ServeConfig { workers: 2, ..Default::default() }).expect("engine");
    noop.set_registry(&Registry::noop());

    instrumented.run_stream(&stream).expect("warmup");
    noop.run_stream(&stream).expect("warmup");
    let mut on_qps = Vec::new();
    let mut off_qps = Vec::new();
    for t in 0..rp_trials {
        // Alternate which arm goes first: under decaying background
        // load a fixed order systematically penalises the same arm.
        if t % 2 == 0 {
            on_qps.push(instrumented.run_stream(&stream).expect("instrumented trial").qps());
            off_qps.push(noop.run_stream(&stream).expect("noop trial").qps());
        } else {
            off_qps.push(noop.run_stream(&stream).expect("noop trial").qps());
            on_qps.push(instrumented.run_stream(&stream).expect("instrumented trial").qps());
        }
    }
    let best = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (best_on, best_off) = (best(&on_qps), best(&off_qps));
    // Best-vs-best, deliberately: background load inflates BOTH the
    // noise and the true cost of the loaded arm (slow-query admissions
    // fire more often on a contended box), so mid-distribution
    // statistics measure the box, not the instrumentation. The cleanest
    // trial per arm is the only load-free observation available.
    // Negative = instrumented measured faster; pure noise either way.
    let overhead_pct = 100.0 * (1.0 - best_on / best_off.max(1e-9));

    // Tracing series (ISSUE 8): the same closed query loop with and
    // without a full span tree per query — root span, `engine.query`
    // child with per-shard `shard.probe` children, SLO burn-rate
    // observation, all against a server-sized bounded sink. Serial loops
    // on both arms so the comparison isolates the tracing plane (the
    // batched `run_stream` pipeline above has different concurrency).
    // Both arms share one engine with the result cache off: a span tree
    // documents shard probes, so the series traces queries that probe —
    // a cache hit would measure tracing against a memcpy.
    // Deliberately small: a ring big enough to hold a whole trial's
    // spans keeps thousands of boxed spans live and blows the cache —
    // measured 2-3× slower emission than a 512-slot ring, whose
    // overwrite-and-free path recycles the same warm allocator bins.
    let sink = SpanSink::new(512);
    let slo = SloTracker::new(SloObjective::default());
    // Several passes per timed trial: one pass is ~10 ms and scheduler
    // noise at that scale dwarfs the sub-µs effect under test. Quick
    // mode doubles the passes — its queries are cheaper, so the same
    // absolute cost is a larger fraction and needs a steadier clock.
    let serial_passes: usize = if opts.quick { 8 } else { 4 };
    let serial_qps = |f: &mut dyn FnMut(usize, ServeQuery)| -> f64 {
        let t0 = Instant::now();
        for pass in 0..serial_passes {
            for (i, q) in stream.iter().enumerate() {
                f(pass * stream.len() + i, *q);
            }
        }
        (serial_passes * stream.len()) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut traced_qps = Vec::new();
    let mut untraced_qps = Vec::new();
    // Serial trials are cheap (a few passes over the stream each); run
    // many so best-of converges — per-trial noise exceeds the sub-µs
    // effect under test, and noise is one-sided (contention only ever
    // slows a trial), so the max over trials estimates the true rate
    // from below.
    let serial_trials = trials * if opts.quick { 6 } else { 3 };
    let serial_engine =
        ServeEngine::new(&set, ServeConfig { workers: 2, cache_capacity: 0, ..Default::default() })
            .expect("engine");
    serial_qps(&mut |_, q| {
        serial_engine.query_routed(q).expect("serial warmup");
    });
    for trial in 0..serial_trials {
        traced_qps.push(serial_qps(&mut |i, q| {
            let trace = TraceId((trial * serial_passes * stream.len() + i + 1) as u64);
            // One clock pair serves both the SLO observation and the
            // root span's duration (a real client does the same — it
            // times the request once and reports that number twice).
            let root_id = SpanId::next();
            let t0 = Instant::now();
            let ok = serial_engine.query_spanned(q, trace, root_id, &sink).is_ok();
            let lat_us = t0.elapsed().as_micros() as u64;
            slo.observe(lat_us, !ok);
            sink.emit_measured_as(root_id, trace, None, "client.topk", lat_us, AttrList::default());
        }));
        untraced_qps.push(serial_qps(&mut |_, q| {
            // The untraced server still times every request (latency
            // histograms predate this plane), so the baseline pays the
            // same clock reads and only the span/SLO work is compared.
            let t0 = Instant::now();
            serial_engine.query_routed(q).expect("untraced trial");
            std::hint::black_box(t0.elapsed());
        }));
        sink.drain(); // the scrape side of the real server's TRACE op
    }
    let (best_traced, best_untraced) = (best(&traced_qps), best(&untraced_qps));
    let traced_overhead_pct = 100.0 * (1.0 - best_traced / best_untraced.max(1e-9));

    // Primitive costs, for the table: what one increment/record buys.
    let private = Registry::new();
    let live_counter = private.counter("obs_bench_counter", "microbench");
    let live_hist = private.histogram("obs_bench_hist", "microbench");
    let ns_per = |op: &dyn Fn(u64)| -> f64 {
        const OPS: u64 = 1_000_000;
        let t0 = Instant::now();
        for i in 0..OPS {
            op(i);
        }
        t0.elapsed().as_nanos() as f64 / OPS as f64
    };
    let noop_counter = Counter::noop();
    let noop_hist = Histogram::noop();
    let prim_sink = SpanSink::new(512);
    let noop_sink = SpanSink::noop();
    let prim_slo = SloTracker::new(SloObjective::default());
    let prim = [
        ("counter_inc", ns_per(&|_| std::hint::black_box(&live_counter).inc())),
        ("histogram_record", ns_per(&|i| std::hint::black_box(&live_hist).record(i))),
        ("noop_counter_inc", ns_per(&|_| std::hint::black_box(&noop_counter).inc())),
        ("noop_histogram_record", ns_per(&|i| std::hint::black_box(&noop_hist).record(i))),
        (
            "span_emit",
            ns_per(&|i| std::hint::black_box(&prim_sink).root(TraceId(i + 1), "bench").finish()),
        ),
        (
            "noop_span_emit",
            ns_per(&|i| std::hint::black_box(&noop_sink).root(TraceId(i + 1), "bench").finish()),
        ),
        ("slo_observe", ns_per(&|i| std::hint::black_box(&prim_slo).observe(i % 1000, false))),
    ];

    let mut table = Table::new(
        "Obs — read-path throughput with telemetry on vs off (best of trials)",
        &["arm", "best q/s", "per-trial q/s"],
    );
    let fmt_trials =
        |v: &[f64]| v.iter().map(|q| format!("{q:.0}")).collect::<Vec<_>>().join(" / ");
    table.row(vec!["instrumented".into(), format!("{best_on:.0}"), fmt_trials(&on_qps)]);
    table.row(vec!["noop".into(), format!("{best_off:.0}"), fmt_trials(&off_qps)]);
    table.row(vec!["traced (serial)".into(), format!("{best_traced:.0}"), fmt_trials(&traced_qps)]);
    table.row(vec![
        "untraced (serial)".into(),
        format!("{best_untraced:.0}"),
        fmt_trials(&untraced_qps),
    ]);
    table.print();
    let mut tp = Table::new("Obs — primitive cost (ns/op)", &["primitive", "ns"]);
    for (name, ns) in prim {
        tp.row(vec![name.into(), format!("{ns:.1}")]);
    }
    tp.print();
    tp.write_csv(&opts.out, "obs_primitives").expect("csv");
    table.write_csv(&opts.out, "obs_overhead").expect("csv");
    println!("\ntelemetry overhead on the read path: {overhead_pct:.2}% (gate: < {OBS_GATE_PCT}%)");
    println!(
        "tracing overhead on the serial read path: {traced_overhead_pct:.2}% \
         (gate: < {OBS_GATE_PCT}%)"
    );

    let trial_rows: Vec<String> = on_qps
        .iter()
        .zip(&off_qps)
        .map(|(on, off)| format!("      {{\"instrumented_qps\": {on:.1}, \"noop_qps\": {off:.1}}}"))
        .collect();
    let traced_rows: Vec<String> = traced_qps
        .iter()
        .zip(&untraced_qps)
        .map(|(on, off)| format!("      {{\"traced_qps\": {on:.1}, \"untraced_qps\": {off:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"harness\": \"chronorank-obs-bench\",\n  \"quick\": {},\n  \"scenario\": {{\n    \
         \"dataset\": \"temp\", \"m\": {m}, \"n_segments\": {}, \"k\": {k},\n    \
         \"queries_per_trial\": {}, \"trials\": {rp_trials}, \"workers\": 2,\n    \
         \"zipf\": {{\"hotspots\": 8, \"exponent\": 1.0, \"background\": 0.1}},\n    \
         \"eps_budget\": {EPS_BUDGET}\n  }},\n  \
         \"note\": \"Two identical serve engines answer the same mixed exact/eps Zipf stream; \
         one records per-route latency histograms, cache counters and flight-recorder \
         admission against the global registry, the other holds no-op handles (every record \
         a dead branch). Trials interleave A/B; the best trial per arm is compared, and the \
         bench exits nonzero if instrumentation costs more than {OBS_GATE_PCT}% of read-path \
         throughput. primitives_ns times the raw atomic ops one query's telemetry is made \
         of.\",\n  \
         \"read_path\": {{\n    \"instrumented_qps\": {best_on:.1},\n    \
         \"noop_qps\": {best_off:.1},\n    \"overhead_pct\": {overhead_pct:.3},\n    \
         \"gate_pct\": {OBS_GATE_PCT},\n    \"trials\": [\n{}\n    ]\n  }},\n  \
         \"traced_path\": {{\n    \"traced_qps\": {best_traced:.1},\n    \
         \"untraced_qps\": {best_untraced:.1},\n    \
         \"overhead_pct\": {traced_overhead_pct:.3},\n    \
         \"gate_pct\": {OBS_GATE_PCT},\n    \"trials\": [\n{}\n    ]\n  }},\n  \
         \"primitives_ns\": {{\n    \"counter_inc\": {:.1},\n    \"histogram_record\": {:.1},\n    \
         \"noop_counter_inc\": {:.1},\n    \"noop_histogram_record\": {:.1},\n    \
         \"span_emit\": {:.1},\n    \"noop_span_emit\": {:.1},\n    \
         \"slo_observe\": {:.1}\n  }}\n}}\n",
        opts.quick,
        set.num_segments(),
        stream.len(),
        trial_rows.join(",\n"),
        traced_rows.join(",\n"),
        prim[0].1,
        prim[1].1,
        prim[2].1,
        prim[3].1,
        prim[4].1,
        prim[5].1,
        prim[6].1,
    );
    write_bench_json("OBS", &json);

    if overhead_pct >= OBS_GATE_PCT {
        eprintln!(
            "obs overhead gate FAILED: instrumented read path is {overhead_pct:.2}% slower \
             than no-op (gate: < {OBS_GATE_PCT}%)"
        );
        std::process::exit(1);
    }
    if traced_overhead_pct >= OBS_GATE_PCT {
        eprintln!(
            "obs tracing gate FAILED: traced read path is {traced_overhead_pct:.2}% slower \
             than untraced (gate: < {OBS_GATE_PCT}%)"
        );
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Paperscale: out-of-core builds on a geometric N ladder (BENCH_PAPERSCALE.json)
// ---------------------------------------------------------------------------

/// One rung of the paperscale ladder: everything `BENCH_PAPERSCALE.json`
/// records per method.
struct RungMethod {
    name: &'static str,
    build_secs: f64,
    size_bytes: u64,
    avg_ios: f64,
    avg_ms: f64,
}

/// Reproduce the paper's headline ordering — EXACT3 ≪ EXACT1 and
/// APPX ≪ EXACT3 in per-query I/O — at dataset sizes that cannot be built
/// in memory.
///
/// Every rung regenerates a Memetracker-shaped dataset (n_avg = 67, the
/// paper's §5.1 Meme figure) **as a stream**: the `N`-segment dataset never
/// materializes. Builds go through the streaming constructors
/// (`Exact1::build_streaming`, `Exact3::build_streaming`,
/// `b2_streaming` + `ApproxIndex::build_streaming`), every sorter and
/// buffer pool sized from one [`chronorank_storage::ScaleBudget`]
/// (`--budget-mb`, default 256 MiB). Indexes live in directory-backed [`Env`]s under
/// `--out/paperscale_scratch`, torn down rung by rung.
///
/// Committed ladder: `N ≈ 10⁵, 10⁶, 10⁷` (the 10⁷ rung exceeds the default
/// budget — `out_of_core` is 1 there). `--paper` appends the full
/// m ≈ 1.5M / N ≈ 10⁸ rung (~3 GB of segments plus sort scratch; expect
/// tens of minutes on one core — see README "Running at scale").
/// `--quick` runs one small rung for CI.
///
/// The binary **self-gates**: it exits nonzero unless EXACT3 beats EXACT1
/// in mean cold-cache I/O on every rung, and the best APPX beats EXACT3 on
/// every rung with `N ≥ 10⁵`. Writes `BENCH_PAPERSCALE.json` (cwd, or
/// `$CHRONORANK_PAPERSCALE_JSON`) plus a CSV under `--out`.
fn paperscale(opts: &Opts) {
    use chronorank_core::{b2_streaming, scan_stats, AggKind};
    use chronorank_storage::ScaleBudget;
    use chronorank_workloads::{
        MemeConfig, MemeGenerator, QueryWorkload, QueryWorkloadConfig, StreamingGenerator,
    };

    let budget = ScaleBudget::new((opts.budget_mb as u64) << 20);
    let navg = 67usize; // paper's Meme n_avg; N = m · n_avg
    let r = opts.r;
    let kmax = opts.kmax;
    let k = opts.k.min(kmax);
    let span_frac = 0.25;
    let mut ladder: Vec<u64> =
        if opts.quick { vec![20_000] } else { vec![100_000, 1_000_000, 10_000_000] };
    if opts.paper {
        ladder.push(100_000_000); // m ≈ 1.5M: the paper's full Meme scale
    }
    let scratch_root = opts.out.join("paperscale_scratch");

    // Cold-cache measurement (paper methodology): empty pools and a zeroed
    // IO counter before every query. Ground truth is skipped — brute force
    // at these scales would dwarf the builds; precision is covered by
    // fig12/fig16 at matched shapes.
    let measure = |built: &Built, qs: &[chronorank_workloads::QueryInterval]| -> (f64, f64) {
        let mut ios = 0u64;
        let mut secs = 0.0f64;
        for q in qs {
            built.method.drop_caches().expect("drop caches");
            built.method.reset_io();
            let t0 = Instant::now();
            built.method.top_k(q.t1, q.t2, q.k, AggKind::Sum).expect("query");
            secs += t0.elapsed().as_secs_f64();
            ios += built.method.io_stats().reads;
        }
        let n = qs.len().max(1) as f64;
        (ios as f64 / n, secs * 1000.0 / n)
    };

    let mut table = Table::new(
        "Paperscale — per-query cold IO on the N ladder (streamed out-of-core builds)",
        &["N", "method", "build s", "size", "avg IOs", "avg ms"],
    );
    let mut rung_jsons: Vec<String> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();

    for &n_target in &ladder {
        let m = (n_target / navg as u64).max(1) as usize;
        let generator = MemeGenerator::new(MemeConfig {
            objects: m,
            avg_segments: navg,
            span: 10_000.0,
            seed: 42,
        });
        let t0 = Instant::now();
        let stats = scan_stats(generator.objects());
        let scan_secs = t0.elapsed().as_secs_f64();
        let n_segments = stats.num_segments;
        let dataset_bytes = n_segments * 32; // four f64 per segment
        let out_of_core = !budget.holds_dataset(dataset_bytes);
        println!(
            "\n[paperscale] rung N={n_segments} (m={m}), dataset {}, budget {} → {} \
             (streamed stats scan {scan_secs:.1}s)",
            fmt_bytes(dataset_bytes),
            fmt_bytes(budget.total_bytes()),
            if out_of_core { "out-of-core" } else { "in-budget" },
        );
        let queries_here =
            if n_segments >= 10_000_000 { opts.queries.min(12) } else { opts.queries };
        let qs = QueryWorkload::new(
            QueryWorkloadConfig {
                count: queries_here,
                span_fraction: span_frac,
                k,
                seed: 7,
                ..Default::default()
            },
            stats.t_min,
            stats.t_max,
        )
        .generate();

        let rung_dir = scratch_root.join(format!("n{n_target}"));
        std::fs::remove_dir_all(&rung_dir).ok();
        let mut methods: Vec<RungMethod> = Vec::new();
        let mut record =
            |name: &'static str, built: &Built, qs: &[chronorank_workloads::QueryInterval]| {
                let (avg_ios, avg_ms) = measure(built, qs);
                methods.push(RungMethod {
                    name,
                    build_secs: built.build_secs,
                    size_bytes: built.size_bytes,
                    avg_ios,
                    avg_ms,
                });
            };

        // EXACT1: one tree over all N segments; queries scan every alive segment.
        {
            let env = Env::dir(rung_dir.join("exact1"), budget.store_config(2)).expect("env");
            let t0 = Instant::now();
            let idx = chronorank_core::Exact1::build_streaming(
                env,
                generator.objects(),
                budget.sort_bytes(),
            )
            .expect("EXACT1 streaming build");
            let built = Built {
                name: "EXACT1".into(),
                build_secs: t0.elapsed().as_secs_f64(),
                size_bytes: idx.size_bytes(),
                method: Box::new(idx),
            };
            record("EXACT1", &built, &qs);
            drop(built);
            std::fs::remove_dir_all(rung_dir.join("exact1")).ok();
        }

        // EXACT3: one interval tree, two stabbing queries.
        {
            let store = budget.store_config(2);
            let env = Env::dir(rung_dir.join("exact3"), store).expect("env");
            let t0 = Instant::now();
            let idx = chronorank_core::Exact3::build_streaming(
                env,
                store,
                generator.objects(),
                budget.sort_bytes(),
            )
            .expect("EXACT3 streaming build");
            let built = Built {
                name: "EXACT3".into(),
                build_secs: t0.elapsed().as_secs_f64(),
                size_bytes: idx.size_bytes(),
                method: Box::new(idx),
            };
            record("EXACT3", &built, &qs);
            drop(built);
            std::fs::remove_dir_all(rung_dir.join("exact3")).ok();
        }

        // Shared BREAKPOINTS2 for both APPX variants: one streaming sweep at
        // eps = 1/(r-1), never holding a per-object curve set in memory.
        let eps = 1.0 / (r.max(2) - 1) as f64;
        let b2_env = Env::dir(rung_dir.join("b2"), budget.store_config(1)).expect("env");
        let t0 = Instant::now();
        let streamed = b2_streaming(
            &b2_env,
            generator.objects(),
            &stats,
            eps,
            B2Construction::Efficient,
            budget.sort_bytes(),
        )
        .expect("streaming BREAKPOINTS2");
        let b2_secs = t0.elapsed().as_secs_f64();
        let peak_pending = streamed.peak_pending_segments;
        let breakpoints = streamed.breakpoints;
        drop(b2_env);
        std::fs::remove_dir_all(rung_dir.join("b2")).ok();
        println!(
            "[paperscale]   BREAKPOINTS2 sweep: {} points in {b2_secs:.1}s, \
             peak pending window {peak_pending} segments ({} of N)",
            breakpoints.len(),
            if n_segments > 0 {
                format!("{:.3}%", 100.0 * peak_pending as f64 / n_segments as f64)
            } else {
                "-".into()
            },
        );

        for (variant, name, sub) in
            [(ApproxVariant::APPX1, "APPX1", "appx1"), (ApproxVariant::APPX2, "APPX2", "appx2")]
        {
            // QUERY1 keeps r+1 files alive (lists + r-1 sub-trees + top).
            let store = budget.store_config(r + 1);
            let env = Env::dir(rung_dir.join(sub), store).expect("env");
            let cfg = ApproxConfig {
                r: breakpoints.len(),
                kmax,
                eps: None,
                b2: B2Construction::Efficient,
                store,
            };
            let t0 = Instant::now();
            let idx = ApproxIndex::build_streaming(
                env,
                generator.objects(),
                variant,
                cfg,
                breakpoints.clone(),
            )
            .expect("APPX streaming build");
            let built = Built {
                // Charge the shared sweep to both variants: the paper's
                // construction cost includes breakpoint computation.
                build_secs: t0.elapsed().as_secs_f64() + b2_secs,
                name: name.into(),
                size_bytes: idx.size_bytes(),
                method: Box::new(idx),
            };
            record(name, &built, &qs);
            drop(built);
            std::fs::remove_dir_all(rung_dir.join(sub)).ok();
        }
        std::fs::remove_dir_all(&rung_dir).ok();

        // Headline ordering gates (the point of the ladder).
        let ios_of = |name: &str| {
            methods.iter().find(|m| m.name == name).map(|m| m.avg_ios).unwrap_or(f64::NAN)
        };
        let (e1, e3) = (ios_of("EXACT1"), ios_of("EXACT3"));
        let appx_best = ios_of("APPX1").min(ios_of("APPX2"));
        // `partial_cmp != Less` (not `>=`): a missing method yields NaN,
        // which must fail the gate rather than slip past it.
        let below = |a: f64, b: f64| a.partial_cmp(&b) == Some(std::cmp::Ordering::Less);
        if !below(e3, e1) {
            gate_failures
                .push(format!("N={n_segments}: EXACT3 avg IOs {e3:.1} not below EXACT1 {e1:.1}"));
        }
        if n_segments >= 100_000 && !below(appx_best, e3) {
            gate_failures.push(format!(
                "N={n_segments}: best APPX avg IOs {appx_best:.1} not below EXACT3 {e3:.1}"
            ));
        }

        for mrec in &methods {
            table.row(vec![
                n_segments.to_string(),
                mrec.name.to_string(),
                format!("{:.2}", mrec.build_secs),
                fmt_bytes(mrec.size_bytes),
                format!("{:.1}", mrec.avg_ios),
                format!("{:.3}", mrec.avg_ms),
            ]);
        }

        // Cost-model reference terms (paper Fig. 3, B = entries per block):
        // EXACT1 queries pay O(log_B N + scanned/B), EXACT3 O(log_B N + m/B).
        let b_entries = (budget.block_size() / 16).max(2) as f64;
        let logb_n = (n_segments.max(2) as f64).ln() / b_entries.ln();
        let method_rows: Vec<String> = methods
            .iter()
            .map(|mr| {
                format!(
                    "        {{\"name\": \"{}\", \"build_secs\": {:.3}, \
                     \"build_throughput_sps\": {:.1}, \"size_bytes\": {}, \
                     \"avg_ios\": {:.2}, \"avg_ms\": {:.4}}}",
                    mr.name,
                    mr.build_secs,
                    n_segments as f64 / mr.build_secs.max(1e-9),
                    mr.size_bytes,
                    mr.avg_ios,
                    mr.avg_ms,
                )
            })
            .collect();
        rung_jsons.push(format!(
            "    {{\n      \"n_target\": {n_target}, \"m\": {m}, \"n_segments\": {n_segments},\n      \
             \"dataset_bytes\": {dataset_bytes}, \"out_of_core\": {},\n      \
             \"queries\": {queries_here}, \"b2_secs\": {b2_secs:.3}, \
             \"b2_points\": {}, \"peak_pending_segments\": {peak_pending},\n      \
             \"cost_model\": {{\"logb_n\": {logb_n:.3}, \"n_over_b\": {:.1}, \"m_over_b\": {:.1}}},\n      \
             \"methods\": [\n{}\n      ],\n      \
             \"ordering\": {{\"exact3_over_exact1_io\": {:.4}, \"appx_over_exact3_io\": {:.4}}}\n    }}",
            if out_of_core { 1 } else { 0 },
            breakpoints.len(),
            n_segments as f64 / b_entries,
            m as f64 / b_entries,
            method_rows.join(",\n"),
            e3 / e1,
            appx_best / e3,
        ));
    }
    std::fs::remove_dir_all(&scratch_root).ok();

    table.print();
    table.write_csv(&opts.out, "paperscale").expect("csv");

    let json = format!(
        "{{\n  \"harness\": \"chronorank-paperscale-bench\",\n  \"quick\": {},\n  \
         \"budget\": {{\"total_bytes\": {}, \"pool_bytes\": {}, \"sort_bytes\": {}, \
         \"block_size\": {}}},\n  \
         \"scenario\": {{\"dataset\": \"meme\", \"navg\": {navg}, \"span\": 10000.0, \
         \"seed\": 42, \"r\": {r}, \"kmax\": {kmax}, \"k\": {k}, \
         \"span_fraction\": {span_frac}}},\n  \
         \"note\": \"Streamed out-of-core builds on a geometric N ladder: datasets are \
         generated object-at-a-time (never materialized), sorted externally under the sort \
         budget, and bulk-loaded through pools sized from the same budget. avg_ios is mean \
         cold-cache block reads per query (pools dropped + counter zeroed per query). The \
         bench exits nonzero unless EXACT3 < EXACT1 on every rung and best-APPX < EXACT3 on \
         every rung with N >= 1e5 — the paper's Section 5 headline ordering. \
         peak_pending_segments is the streaming BREAKPOINTS2 sweep's working-set high-water \
         mark.\",\n  \
         \"rungs\": [\n{}\n  ]\n}}\n",
        opts.quick,
        budget.total_bytes(),
        budget.pool_bytes(),
        budget.sort_bytes(),
        budget.block_size(),
        rung_jsons.join(",\n"),
    );
    write_bench_json("PAPERSCALE", &json);

    if !gate_failures.is_empty() {
        eprintln!("paperscale ordering gate FAILED:");
        for g in &gate_failures {
            eprintln!("  - {g}");
        }
        std::process::exit(1);
    }
    println!("paperscale ordering gate OK: EXACT3 < EXACT1 and APPX < EXACT3 where gated");
}

// ---------------------------------------------------------------------------
// Rescore: columnar kernels + shared-probe batch execution (BENCH_RESCORE.json)
// ---------------------------------------------------------------------------

/// Benchmark the two batching layers of the read path and self-gate them
/// by exit code:
///
/// * **kernel** — every object of a Temp dataset rescored over the
///   paper's random query windows, scalar (`PiecewiseLinear::integral`,
///   one pointer-chased curve at a time) against columnar
///   (`ColumnarTail::integral_batch` streaming the PAX `t`/`v` arrays).
///   The two checksums must agree to the last bit (the agreement suites
///   prove the same per element), so the contest is purely throughput.
/// * **execution** — one Zipf-skewed approximate stream served solo
///   (`query`) and in admission windows of W ∈ {1, 8, 64}
///   (`query_batch`) with result caches **off**, so the windows' repeated
///   hotspots are amortized by shared probes alone, never by cache hits.
///
/// Gates, checked after `BENCH_RESCORE.json` is written: columnar kernel
/// throughput ≥ scalar, and batched W=64 QPS ≥ solo QPS.
fn rescore(opts: &Opts) {
    use chronorank_serve::{ServeConfig, ServeEngine, ServeQuery};
    use chronorank_workloads::{IntervalPattern, QueryWorkload, QueryWorkloadConfig};

    const EPS_BUDGET: f64 = 0.2;
    const WINDOW_SIZES: [usize; 3] = [1, 8, 64];

    // --- kernel: scalar vs columnar batch rescoring ----------------------
    // Kernel sizing is decoupled from --m: the point columns must overflow
    // L2 (a couple of MiB) so the schedule contrast is visible — the
    // row-path loop re-streams every curve once per window, the columnar
    // object-major traversal loads each candidate's run once and scores
    // all windows against it while it is cache-hot.
    let kernel_m = 1600;
    let kset = temp_dataset(kernel_m, opts.navg, 42);
    let columns = kset.to_columnar();
    let windows = queries(&kset, opts.queries.max(8), 0.2, opts.k);
    let ids: Vec<u32> = (0..columns.num_objects()).map(|i| i as u32).collect();
    let reps = if opts.quick { 2 } else { 3 };
    println!(
        "# rescore kernel: m = {kernel_m}, N = {} segments, {} windows × {} reps (best-of)",
        kset.num_segments(),
        windows.len(),
        reps,
    );

    let mut scalar_secs = f64::INFINITY;
    let mut scalar_sum = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        for q in &windows {
            for o in kset.objects() {
                acc += o.curve.integral(q.t1, q.t2);
            }
        }
        scalar_secs = scalar_secs.min(t0.elapsed().as_secs_f64());
        scalar_sum = acc;
    }
    let wins: Vec<(f64, f64)> = windows.iter().map(|q| (q.t1, q.t2)).collect();
    let mut columnar_secs = f64::INFINITY;
    let mut columnar_sum = 0.0f64;
    let mut scores = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        scores.clear();
        columns.integral_multi(&ids, &wins, &mut scores);
        // Row-major output summed in index order = the scalar loop's
        // window-major add order, so the checksums must collide exactly.
        let mut acc = 0.0f64;
        for &s in &scores {
            acc += s;
        }
        columnar_secs = columnar_secs.min(t0.elapsed().as_secs_f64());
        columnar_sum = acc;
    }
    // Same per-element bits and the same left-to-right add order, so the
    // checksums must collide exactly — this doubles as the end-to-end
    // bit-identity assertion at bench scale.
    assert_eq!(
        scalar_sum.to_bits(),
        columnar_sum.to_bits(),
        "columnar kernel drifted from the scalar path"
    );
    let rescans = (kset.objects().len() * windows.len()) as f64;
    let scalar_per_sec = rescans / scalar_secs.max(1e-9);
    let columnar_per_sec = rescans / columnar_secs.max(1e-9);
    let kernel_speedup = columnar_per_sec / scalar_per_sec.max(1e-9);
    println!(
        "kernel: scalar {scalar_per_sec:.0} rescans/s, columnar {columnar_per_sec:.0} rescans/s \
         ({kernel_speedup:.2}x), checksums bit-identical"
    );

    // --- execution: solo vs batched admission windows --------------------
    let set = temp_dataset(opts.m, opts.navg, 42);
    let count = if opts.quick { 256 } else { 1024 };
    let k = opts.k.min(opts.kmax);
    println!(
        "# rescore batch: m = {}, N = {} segments, {} Zipf queries",
        set.objects().len(),
        set.num_segments(),
        count,
    );
    let workload = QueryWorkload::new(
        QueryWorkloadConfig {
            count,
            span_fraction: 0.2,
            k,
            seed: 11,
            pattern: IntervalPattern::Zipf { hotspots: 8, exponent: 1.0, background: 0.1 },
        },
        set.t_min(),
        set.t_max(),
    );
    let as_query = |q: &QueryInterval| ServeQuery::approx(q.t1, q.t2, q.k, EPS_BUDGET);
    // Caches OFF: solo repeats may not hide behind the result cache, so
    // batching has to win on shared probes and amortized scatter alone.
    let engine =
        ServeEngine::new(&set, ServeConfig { workers: 2, cache_capacity: 0, ..Default::default() })
            .expect("build engine");
    let stream: Vec<ServeQuery> = workload.generate().iter().map(as_query).collect();
    // One warmup pass so every timed pass reads hot buffer pools.
    for q in &stream {
        engine.query(*q).expect("warmup");
    }
    let t0 = Instant::now();
    for q in &stream {
        engine.query(*q).expect("solo query");
    }
    let solo_qps = stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    let mut table = Table::new(
        "Rescore — shared-probe batch execution (Zipf stream, caches off)",
        &["window W", "q/s", "speedup vs solo"],
    );
    table.row(vec!["solo".to_string(), format!("{solo_qps:.0}"), "1.00x".to_string()]);
    let mut series = Vec::new();
    let mut qps_by_window = Vec::new();
    for w in WINDOW_SIZES {
        let batches: Vec<Vec<ServeQuery>> =
            workload.windows(w).iter().map(|win| win.iter().map(as_query).collect()).collect();
        let t0 = Instant::now();
        for win in &batches {
            engine.query_batch(win).expect("batch query");
        }
        let qps = stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let speedup = qps / solo_qps.max(1e-9);
        table.row(vec![w.to_string(), format!("{qps:.0}"), format!("{speedup:.2}x")]);
        series.push(format!(
            "      {{\"window\": {w}, \"qps\": {qps:.1}, \"speedup_vs_solo\": {speedup:.3}}}"
        ));
        qps_by_window.push(qps);
    }
    table.print();
    table.write_csv(&opts.out, "rescore_batch").expect("csv");
    let batch64_qps = qps_by_window[WINDOW_SIZES.len() - 1];
    let batch64_speedup = batch64_qps / solo_qps.max(1e-9);

    let columnar_ok = columnar_per_sec >= scalar_per_sec;
    let batch_ok = batch64_qps >= solo_qps;
    let json = format!(
        "{{\n  \"harness\": \"chronorank-rescore-bench\",\n  \"quick\": {},\n  \"scenario\": {{\n    \
         \"dataset\": \"temp\", \"m\": {}, \"n_segments\": {}, \"k\": {k},\n    \
         \"kernel_m\": {kernel_m}, \"kernel_windows\": {}, \"kernel_reps\": {reps},\n    \
         \"zipf_stream\": {{\"queries\": {count}, \"hotspots\": 8, \"exponent\": 1.0, \
         \"background\": 0.1, \"eps_budget\": {EPS_BUDGET}}}\n  }},\n  \
         \"note\": \"kernel rescans every object over every window: scalar walks one PiecewiseLinear at a time, columnar streams the PAX t/v arrays through integral_batch; the checksums are asserted bit-identical before any timing counts. batch serves the same Zipf stream with result caches OFF, so W=64 windows win by probing each snapped group once per shard and fanning the shared answer out — one scatter per shard per window instead of per query.\",\n  \
         \"kernel\": {{\n    \"scalar_rescans_per_sec\": {scalar_per_sec:.1},\n    \
         \"columnar_rescans_per_sec\": {columnar_per_sec:.1},\n    \
         \"columnar_speedup\": {kernel_speedup:.3},\n    \"bit_identical\": true\n  }},\n  \
         \"batch\": {{\n    \"workers\": 2, \"solo_qps\": {solo_qps:.1},\n    \"series\": [\n{}\n    ],\n    \
         \"batch64_speedup_over_solo\": {batch64_speedup:.3}\n  }},\n  \
         \"gates\": {{\"columnar_ge_scalar\": {columnar_ok}, \"batch64_ge_solo\": {batch_ok}}}\n}}\n",
        opts.quick,
        set.objects().len(),
        set.num_segments(),
        windows.len(),
        series.join(",\n"),
    );
    write_bench_json("RESCORE", &json);
    if !(columnar_ok && batch_ok) {
        eprintln!(
            "rescore gate FAILED: columnar_ge_scalar = {columnar_ok} ({kernel_speedup:.2}x), \
             batch64_ge_solo = {batch_ok} ({batch64_speedup:.2}x)"
        );
        std::process::exit(1);
    }
    println!(
        "rescore gates OK: columnar {kernel_speedup:.2}x scalar, batch-64 {batch64_speedup:.2}x solo"
    );
}

// ---------------------------------------------------------------------------
// check-regression: the CI bench gate
// ---------------------------------------------------------------------------

/// Emit one bench JSON artifact the way every figure does: resolve the
/// output path from `$CHRONORANK_<TAG>_JSON` (default `BENCH_<TAG>.json`
/// in the cwd, so CI can redirect smoke runs under `target/` without
/// clobbering the committed full-scale baselines), write it, announce it.
fn write_bench_json(tag: &str, json: &str) {
    use std::io::Write as _;
    let json_path = std::env::var(format!("CHRONORANK_{tag}_JSON"))
        .unwrap_or_else(|_| format!("BENCH_{tag}.json"));
    let mut f =
        std::fs::File::create(&json_path).unwrap_or_else(|e| panic!("create {json_path}: {e}"));
    f.write_all(json.as_bytes()).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!("wrote {json_path}");
}

/// `paper-bench check-regression --pair BASELINE.json=CURRENT.json …`
///
/// Compares each smoke-run JSON against its committed baseline with
/// [`chronorank_bench::json::check_regression`] (same key shape, sane
/// numbers, throughput within a generous tolerance) and exits nonzero
/// naming every violation — the CI stage that keeps the committed
/// BENCH_*.json numbers honest.
fn check_regression_cli(args: &[String]) {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut tolerance = 10.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pair" => {
                i += 1;
                let Some((base, cur)) = args.get(i).and_then(|v| v.split_once('=')) else {
                    eprintln!("--pair wants BASELINE.json=CURRENT.json");
                    std::process::exit(2);
                };
                pairs.push((base.to_string(), cur.to_string()));
            }
            "--tolerance" => {
                i += 1;
                tolerance = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(t) if t >= 1.0 => t,
                    _ => {
                        eprintln!("--tolerance wants a factor >= 1");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown check-regression option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if pairs.is_empty() {
        eprintln!("check-regression needs at least one --pair BASELINE.json=CURRENT.json");
        std::process::exit(2);
    }
    let mut failed = false;
    for (base_path, cur_path) in &pairs {
        let load = |path: &str| -> chronorank_bench::json::Json {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("check-regression: cannot read {path}: {e}");
                std::process::exit(2);
            });
            chronorank_bench::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("check-regression: {path} is not valid JSON: {e}");
                std::process::exit(2);
            })
        };
        let problems =
            chronorank_bench::json::check_regression(&load(base_path), &load(cur_path), tolerance);
        if problems.is_empty() {
            println!(
                "check-regression OK: {cur_path} matches {base_path} (tolerance {tolerance}x)"
            );
        } else {
            failed = true;
            eprintln!("check-regression FAILED: {cur_path} vs {base_path}:");
            for p in &problems {
                eprintln!("  - {p}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn prepend<'a>(first: &'a str, rest: &[&'a str]) -> Vec<&'a str> {
    let mut v = vec![first];
    v.extend_from_slice(rest);
    v
}
