//! # chronorank-bench — the paper's evaluation harness
//!
//! Shared machinery for the `paper-bench` binary, which regenerates every
//! table and figure of the paper's Section 5 (see DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results):
//!
//! * dataset builders wrapping `chronorank-workloads` at the scaled
//!   defaults,
//! * one-line builders for every method (EXACT1/2/3, APPX1-B/2-B/1/2/2+),
//! * cold-cache query measurement (per-query `drop_caches` + IO counter
//!   reset, exactly how the paper's IO columns are produced),
//! * quality metrics against brute-force ground truth,
//! * fixed-width table printing plus CSV emission under `results/`.

pub mod json;

use chronorank_core::metrics;
use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, B2Construction, Exact1, Exact2, Exact3,
    IndexConfig, RankMethod, TemporalSet, TopK,
};
use chronorank_workloads::{
    DatasetGenerator, MemeConfig, MemeGenerator, QueryInterval, QueryWorkload, QueryWorkloadConfig,
    TempConfig, TempGenerator,
};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Default Temp-like dataset at harness scale (paper: m = 50,000 and
/// n_avg = 1,000 → N = 5·10⁷; scaled to keep the full suite in CI budget).
pub fn temp_dataset(m: usize, navg: usize, seed: u64) -> TemporalSet {
    TempGenerator::new(TempConfig { objects: m, avg_segments: navg, seed, dropout: 0.02 })
        .generate_set()
}

/// Default Meme-like dataset (paper: m ≈ 1.5M, n_avg = 67, N = 10⁸).
pub fn meme_dataset(m: usize, navg: usize, seed: u64) -> TemporalSet {
    MemeGenerator::new(MemeConfig { objects: m, avg_segments: navg, span: 10_000.0, seed })
        .generate_set()
}

/// The paper's query workload: `count` random intervals spanning
/// `span_frac` of the domain, top-`k` each.
pub fn queries(set: &TemporalSet, count: usize, span_frac: f64, k: usize) -> Vec<QueryInterval> {
    QueryWorkload::new(
        QueryWorkloadConfig { count, span_fraction: span_frac, k, seed: 7, ..Default::default() },
        set.t_min(),
        set.t_max(),
    )
    .generate()
}

/// A built method plus its build-time measurements.
pub struct Built {
    /// The method, behind the common interface.
    pub method: Box<dyn RankMethod>,
    /// Display name ("EXACT3", "APPX2+", …).
    pub name: String,
    /// Wall-clock build seconds.
    pub build_secs: f64,
    /// Index size in bytes.
    pub size_bytes: u64,
}

/// Build one of the three exact methods by name.
pub fn build_exact(which: &str, set: &TemporalSet) -> Built {
    build_exact_with(which, set, IndexConfig::default())
}

/// Build an exact method with explicit storage settings (used by the
/// block-size / pool ablations).
pub fn build_exact_with(which: &str, set: &TemporalSet, config: IndexConfig) -> Built {
    let t0 = Instant::now();
    let (method, name): (Box<dyn RankMethod>, &str) = match which {
        "EXACT1" => (Box::new(Exact1::build(set, config).expect("build")), "EXACT1"),
        "EXACT2" => (Box::new(Exact2::build(set, config).expect("build")), "EXACT2"),
        "EXACT3" => (Box::new(Exact3::build(set, config).expect("build")), "EXACT3"),
        other => panic!("unknown exact method {other}"),
    };
    let build_secs = t0.elapsed().as_secs_f64();
    Built { name: name.to_string(), build_secs, size_bytes: method.size_bytes(), method }
}

/// Build an approximate variant with the given breakpoint budget.
pub fn build_approx(variant: ApproxVariant, set: &TemporalSet, r: usize, kmax: usize) -> Built {
    let t0 = Instant::now();
    let idx = ApproxIndex::build(
        set,
        variant,
        ApproxConfig { r, kmax, eps: None, b2: B2Construction::Efficient, ..Default::default() },
    )
    .expect("build approx");
    let build_secs = t0.elapsed().as_secs_f64();
    Built {
        name: variant.name().to_string(),
        build_secs,
        size_bytes: idx.size_bytes(),
        method: Box::new(idx),
    }
}

/// Per-method query measurements averaged over a workload.
#[derive(Debug, Clone, Copy)]
pub struct QueryStats {
    /// Mean cold-cache block reads per query.
    pub avg_ios: f64,
    /// Mean wall-clock milliseconds per query.
    pub avg_ms: f64,
    /// Mean precision (= recall) vs ground truth, if computed.
    pub precision: f64,
    /// Mean approximation ratio vs ground truth, if computed.
    pub ratio: f64,
}

/// Brute-force ground-truth answers for a workload (shared by all methods).
pub fn ground_truth(set: &TemporalSet, qs: &[QueryInterval]) -> Vec<TopK> {
    qs.iter().map(|q| set.top_k_bruteforce(q.t1, q.t2, q.k)).collect()
}

/// Run the workload cold (paper methodology: every query starts with empty
/// buffer pools and a zeroed IO counter) and average.
pub fn measure_queries(
    built: &Built,
    set: &TemporalSet,
    qs: &[QueryInterval],
    truth: Option<&[TopK]>,
) -> QueryStats {
    let mut ios = 0u64;
    let mut secs = 0.0f64;
    let mut prec = 0.0f64;
    let mut ratio = 0.0f64;
    for (i, q) in qs.iter().enumerate() {
        built.method.drop_caches().expect("drop caches");
        built.method.reset_io();
        let t0 = Instant::now();
        let answer = built.method.top_k(q.t1, q.t2, q.k, AggKind::Sum).expect("query");
        secs += t0.elapsed().as_secs_f64();
        ios += built.method.io_stats().reads;
        if let Some(truth) = truth {
            prec += metrics::precision(&truth[i], &answer);
            ratio += metrics::approximation_ratio(set, &answer, q.t1, q.t2).mean;
        }
    }
    let n = qs.len().max(1) as f64;
    QueryStats {
        avg_ios: ios as f64 / n,
        avg_ms: secs * 1000.0 / n,
        precision: if truth.is_some() { prec / n } else { 1.0 },
        ratio: if truth.is_some() { ratio / n } else { 1.0 },
    }
}

/// A fixed-width result table that prints to stdout and saves as CSV.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        println!("\n== {}", self.title);
        let line: Vec<String> =
            self.header.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
        println!("{}", line.join("  "));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            println!("{}", line.join("  "));
        }
    }

    /// Write as CSV into `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format bytes in binary units for table cells.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_requested_scale() {
        let set = temp_dataset(50, 40, 1);
        assert_eq!(set.num_objects(), 50);
        let set = meme_dataset(60, 20, 1);
        assert_eq!(set.num_objects(), 60);
    }

    #[test]
    fn end_to_end_measurement_smoke() {
        let set = temp_dataset(40, 30, 2);
        let qs = queries(&set, 3, 0.2, 5);
        let truth = ground_truth(&set, &qs);
        let built = build_exact("EXACT3", &set);
        let stats = measure_queries(&built, &set, &qs, Some(&truth));
        assert!(stats.avg_ios > 0.0);
        assert!((stats.precision - 1.0).abs() < 1e-9, "exact method must be perfect");
        assert!((stats.ratio - 1.0).abs() < 1e-9);
        let built = build_approx(ApproxVariant::APPX2, &set, 12, 8);
        let stats = measure_queries(&built, &set, &qs, Some(&truth));
        assert!(stats.precision > 0.2);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let dir = std::env::temp_dir().join(format!("chronorank-bench-{}", std::process::id()));
        t.write_csv(&dir, "demo").unwrap();
        let s = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
        t.print();
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_bytes(2 << 30), "2.00GiB");
    }
}
