//! A minimal JSON reader/writer plus the bench-regression comparator.
//!
//! The workspace is dependency-free by policy (no serde), and the bench
//! JSONs it emits are small and simple — so this module carries its own
//! ~150-line recursive-descent parser, the matching [`encode`] writer
//! (property-tested against the parser by `tests/json_roundtrip.rs`), a
//! path flattener, and the comparison rules the `paper_bench
//! check-regression` CI gate applies:
//!
//! 1. **structure** — a smoke-run JSON must have exactly the committed
//!    baseline's key shape (arrays are compared by *element shape*, not
//!    length: quick runs sweep fewer points by design);
//! 2. **sanity** — every number finite; every `*hit_rate*` in `[0, 1]`;
//! 3. **ratio** — for throughput-like keys (`*qps*`, `*_per_sec`), the
//!    smoke run's best value must be within a generous factor (default
//!    10×) of the committed best — quick-scale runs are smaller, not
//!    order-of-magnitude slower, so a >10× collapse means a real
//!    regression (or a broken bench);
//! 4. **parallel monotonicity** — the serve bench's `parallel_speedup`
//!    series (worker pools over one shared snapshot, ascending W) must be
//!    monotone-nonworse within a ×[`PARALLEL_SLACK`] tolerance: each
//!    point must stay above `best-so-far / PARALLEL_SLACK`. A worker pool
//!    that stops scaling means shared-snapshot parallelism regressed back
//!    into serialization.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; bench values are all doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte '{}' at {}", other as char, self.at)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.at += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Serialize a [`Json`] back to text. Exact inverse of [`parse`] for
/// every finite document: objects keep insertion order, numbers print in
/// Rust's shortest round-trip decimal form, and strings escape quotes,
/// backslashes and all control characters. Non-finite numbers have no
/// JSON spelling and encode as `null` (the sanity gate rejects them from
/// bench files anyway).
pub fn encode(value: &Json) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) if n.is_finite() => write!(out, "{n}").expect("write to string"),
        Json::Num(_) => out.push_str("null"),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(v, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to string"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One flattened leaf: collapsed path (array indexes become `[]`) plus
/// the numeric value, if the leaf is a number.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    /// e.g. `results[].swap_pause_histogram_us.max_us`
    pub path: String,
    /// `Some` for numbers, `None` for strings/bools/nulls.
    pub num: Option<f64>,
}

/// Flatten to leaves with collapsed array indexes (see module docs).
pub fn flatten(value: &Json) -> Vec<Leaf> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Json, path: String, out: &mut Vec<Leaf>) {
    match value {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(v, sub, out);
            }
        }
        Json::Arr(items) => {
            for v in items {
                walk(v, format!("{path}[]"), out);
            }
        }
        Json::Num(n) => out.push(Leaf { path, num: Some(*n) }),
        _ => out.push(Leaf { path, num: None }),
    }
}

/// Compare a smoke-run bench JSON against its committed baseline. Returns
/// the list of violations (empty = gate passes). `tolerance` is the
/// allowed throughput collapse factor (the gate's "generous 10×").
pub fn check_regression(baseline: &Json, current: &Json, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    let base = flatten(baseline);
    let cur = flatten(current);

    // 1. Structure: identical collapsed key sets.
    let base_keys: BTreeSet<&str> = base.iter().map(|l| l.path.as_str()).collect();
    let cur_keys: BTreeSet<&str> = cur.iter().map(|l| l.path.as_str()).collect();
    for missing in base_keys.difference(&cur_keys) {
        problems.push(format!("missing key: {missing}"));
    }
    for extra in cur_keys.difference(&base_keys) {
        problems.push(format!("unexpected key: {extra}"));
    }

    // 2. Sanity over the smoke run's numbers.
    for leaf in &cur {
        let Some(n) = leaf.num else { continue };
        if !n.is_finite() {
            problems.push(format!("non-finite value at {}: {n}", leaf.path));
        }
        if leaf.path.contains("hit_rate") && !(0.0..=1.0).contains(&n) {
            problems.push(format!("{} out of [0,1]: {n}", leaf.path));
        }
    }

    // 3. Throughput ratio: best smoke value within `tolerance`× of the
    //    best committed value, per rate-like key.
    for key in base_keys.intersection(&cur_keys) {
        if !is_rate_key(key) {
            continue;
        }
        let best = |leaves: &[Leaf]| {
            leaves
                .iter()
                .filter(|l| l.path == *key)
                .filter_map(|l| l.num)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let (b, c) = (best(&base), best(&cur));
        if b.is_finite() && c.is_finite() && b > 0.0 && c < b / tolerance {
            let mut msg = String::new();
            write!(
                msg,
                "{key}: smoke best {c:.1} is over {tolerance:.0}x below committed best {b:.1}"
            )
            .expect("write to string");
            problems.push(msg);
        }
    }
    // 4. Parallel monotonicity: the shared-snapshot speedup series must
    //    not fall back toward serial as the pool grows.
    for key in cur_keys {
        if !key.ends_with("parallel_speedup.series[].io_bound_qps") {
            continue;
        }
        let series: Vec<f64> =
            cur.iter().filter(|l| l.path == *key).filter_map(|l| l.num).collect();
        let mut best_so_far = f64::NEG_INFINITY;
        for (i, &v) in series.iter().enumerate() {
            if best_so_far.is_finite() && v < best_so_far / PARALLEL_SLACK {
                problems.push(format!(
                    "{key}: point {i} ({v:.1}) fell more than {PARALLEL_SLACK}x below the \
                     best earlier point ({best_so_far:.1}) — the pool stopped scaling"
                ));
            }
            best_so_far = best_so_far.max(v);
        }
    }
    problems
}

/// Tolerance of the `parallel_speedup` monotone-nonworse gate: a point may
/// sit at worst this factor below the best earlier point (smoke runs are
/// noisy; a genuine fallback to serial throughput is far larger).
pub const PARALLEL_SLACK: f64 = 2.0;

/// True for keys the ratio gate applies to: throughputs.
fn is_rate_key(path: &str) -> bool {
    let tail = path.rsplit(['.', ']']).next().unwrap_or(path);
    tail.ends_with("qps") || tail.ends_with("_per_sec") || tail == "speedup_w4_over_w1_io_bound"
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "harness": "x", "quick": false,
        "scenario": {"m": 600, "note": "a \"quoted\" note"},
        "results": [
            {"workers": 1, "io_bound_qps": 100.5, "cache_hit_rate": 0.9},
            {"workers": 4, "io_bound_qps": 900.0, "cache_hit_rate": 0.91}
        ]
    }"#;

    #[test]
    fn parses_and_flattens_with_collapsed_arrays() {
        let v = parse(SAMPLE).unwrap();
        let leaves = flatten(&v);
        let paths: Vec<&str> = leaves.iter().map(|l| l.path.as_str()).collect();
        assert!(paths.contains(&"scenario.m"));
        // Both rows collapse onto one path.
        assert_eq!(paths.iter().filter(|p| **p == "results[].io_bound_qps").count(), 2);
        let m = leaves.iter().find(|l| l.path == "scenario.m").unwrap();
        assert_eq!(m.num, Some(600.0));
    }

    #[test]
    fn encode_is_the_inverse_of_parse() {
        let v = parse(SAMPLE).unwrap();
        let text = encode(&v);
        assert_eq!(parse(&text).unwrap(), v, "reparse of {text}");
        // Encoding is a fixed point after one round.
        assert_eq!(encode(&parse(&text).unwrap()), text);
    }

    #[test]
    fn encode_escapes_everything_the_parser_understands() {
        let v = Json::Obj(vec![
            ("quote\"back\\slash".into(), Json::Str("\n\t\r\u{8}\u{c}\u{1}\u{1f}".into())),
            ("unicode: é 雪 🛰".into(), Json::Str("plain / slash".into())),
        ]);
        let text = encode(&v);
        assert!(text.contains("\\u0001") && text.contains("\\u001f"), "{text}");
        assert!(!text.chars().any(|c| c.is_control()), "raw control char leaked: {text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn encode_large_integers_exactly() {
        let big = (1u64 << 53) as f64; // largest contiguously exact f64 integer
        let v = Json::Arr(vec![Json::Num(big), Json::Num(-big), Json::Num(0.1 + 0.2)]);
        let text = encode(&v);
        assert_eq!(text, "[9007199254740992,-9007199254740992,0.30000000000000004]");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        let v = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(encode(&v), "[null,null]");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn identical_files_pass() {
        let v = parse(SAMPLE).unwrap();
        assert!(check_regression(&v, &v, 10.0).is_empty());
    }

    #[test]
    fn fewer_sweep_points_still_pass_but_shape_changes_fail() {
        let base = parse(SAMPLE).unwrap();
        // A quick run with only one row: same element shape, fine.
        let quick = parse(
            r#"{"harness": "x", "quick": true,
                "scenario": {"m": 150, "note": "n"},
                "results": [{"workers": 1, "io_bound_qps": 95.0, "cache_hit_rate": 0.88}]}"#,
        )
        .unwrap();
        assert!(check_regression(&base, &quick, 10.0).is_empty());
        // Dropping a field from the row is a structural failure.
        let broken = parse(
            r#"{"harness": "x", "quick": true,
                "scenario": {"m": 150, "note": "n"},
                "results": [{"workers": 1, "cache_hit_rate": 0.88}]}"#,
        )
        .unwrap();
        let problems = check_regression(&base, &broken, 10.0);
        assert!(problems.iter().any(|p| p.contains("missing key")), "{problems:?}");
    }

    #[test]
    fn parallel_series_must_be_monotone_nonworse() {
        let good = parse(
            r#"{"parallel_speedup": {"series": [
                {"pool_workers": 1, "io_bound_qps": 100.0},
                {"pool_workers": 2, "io_bound_qps": 90.0},
                {"pool_workers": 4, "io_bound_qps": 250.0},
                {"pool_workers": 8, "io_bound_qps": 240.0}]}}"#,
        )
        .unwrap();
        assert!(check_regression(&good, &good, 10.0).is_empty());
        // A pool that collapses back toward serial past the slack fails.
        let bad = parse(
            r#"{"parallel_speedup": {"series": [
                {"pool_workers": 1, "io_bound_qps": 100.0},
                {"pool_workers": 2, "io_bound_qps": 200.0},
                {"pool_workers": 4, "io_bound_qps": 80.0}]}}"#,
        )
        .unwrap();
        let problems = check_regression(&bad, &bad, 10.0);
        assert!(problems.iter().any(|p| p.contains("stopped scaling")), "{problems:?}");
    }

    #[test]
    fn throughput_collapse_and_insane_rates_fail() {
        let base = parse(SAMPLE).unwrap();
        let slow = parse(
            r#"{"harness": "x", "quick": true,
                "scenario": {"m": 150, "note": "n"},
                "results": [{"workers": 1, "io_bound_qps": 5.0, "cache_hit_rate": 1.7}]}"#,
        )
        .unwrap();
        let problems = check_regression(&base, &slow, 10.0);
        assert!(problems.iter().any(|p| p.contains("io_bound_qps")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("out of [0,1]")), "{problems:?}");
        // The same numbers pass a looser tolerance (rate check only).
        let loose = check_regression(&base, &slow, 1000.0);
        assert!(loose.iter().all(|p| !p.contains("below committed best")), "{loose:?}");
    }
}
