//! Server-behaviour coverage: admission control, typed refusals, the
//! live write path over the wire, and clean shutdown. (Answer-level
//! agreement with the in-process engines lives in the workspace-level
//! `tests/net_agreement.rs`.)

use chronorank_core::{AppendRecord, TemporalSet};
use chronorank_curve::PiecewiseLinear;
use chronorank_live::LiveConfig;
use chronorank_net::{ErrCode, NetClient, NetConfig, NetError, NetServer};
use chronorank_serve::{ServeConfig, ServeQuery};

fn tiny_set(objects: usize) -> TemporalSet {
    let curves: Vec<_> = (0..objects)
        .map(|i| {
            PiecewiseLinear::from_points(&[
                (0.0, i as f64),
                (50.0, (objects - i) as f64),
                (100.0, i as f64 + 1.0),
            ])
            .unwrap()
        })
        .collect();
    TemporalSet::from_curves(curves).unwrap()
}

fn expect_remote(result: Result<impl std::fmt::Debug, NetError>, code: ErrCode) {
    match result {
        Err(NetError::Remote { code: got, .. }) => assert_eq!(got, code),
        other => panic!("expected typed {code:?} error, got {other:?}"),
    }
}

#[test]
fn ping_stats_and_query_roundtrip() {
    let server = NetServer::start_serve(
        tiny_set(12),
        ServeConfig { workers: 2, ..Default::default() },
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.ping(b"echo me").unwrap(), b"echo me");
    let answer = client.topk(ServeQuery::exact(10.0, 90.0, 4)).unwrap();
    assert_eq!(answer.topk.len(), 4);
    assert_eq!(answer.appends_applied, 0, "read-only backend never applies appends");
    let stats = client.stats().unwrap();
    assert_eq!(stats.live_backend, 0);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.queries, 1);
    assert!(stats.frames_in >= 3 && stats.connections == 1);
    server.shutdown();
}

#[test]
fn serve_backend_refuses_writes_with_typed_unsupported() {
    let server =
        NetServer::start_serve(tiny_set(8), ServeConfig::default(), NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let rec = AppendRecord { object: 0, t: 200.0, v: 1.0 };
    expect_remote(client.append_batch(&[rec]), ErrCode::Unsupported);
    expect_remote(client.checkpoint(), ErrCode::Unsupported);
    // The connection survives a typed refusal.
    assert_eq!(client.ping(b"still here").unwrap(), b"still here");
    server.shutdown();
}

#[test]
fn live_backend_appends_and_checkpoints_over_the_wire() {
    let server = NetServer::start_live(
        tiny_set(8),
        LiveConfig { workers: 2, ..Default::default() },
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let batch: Vec<AppendRecord> =
        (0..8).map(|i| AppendRecord { object: i, t: 150.0, v: 100.0 + i as f64 }).collect();
    let ok = client.append_batch(&batch).unwrap();
    assert_eq!(ok.accepted, 8);
    assert_eq!(ok.total_appends, 8);
    let answer = client.topk(ServeQuery::exact(120.0, 150.0, 3)).unwrap();
    assert_eq!(answer.appends_applied, 8, "the answer must report the applied appends");
    client.checkpoint().unwrap();
    // A rejected append (non-monotone time) is a typed engine error.
    expect_remote(
        client.append_batch(&[AppendRecord { object: 0, t: 10.0, v: 1.0 }]),
        ErrCode::Engine,
    );
    server.shutdown();
}

#[test]
fn admission_control_answers_busy_instead_of_queueing() {
    // max_in_flight = 0: every engine frame must bounce with BUSY while
    // the engine-free PING path keeps working.
    let server = NetServer::start_serve(
        tiny_set(8),
        ServeConfig::default(),
        NetConfig { max_in_flight: 0, ..Default::default() },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let result = client.topk(ServeQuery::exact(10.0, 90.0, 2));
    assert!(matches!(&result, Err(e) if e.is_busy()), "got {result:?}");
    assert_eq!(client.ping(b"ok").unwrap(), b"ok");
    let stats = client.stats();
    // STATS is an engine op too — equally refused at this limit.
    assert!(matches!(&stats, Err(e) if e.is_busy()), "got {stats:?}");
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_typed_refusal_not_busy() {
    let server = NetServer::start_serve(
        tiny_set(8),
        ServeConfig::default(),
        NetConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();
    let mut first = NetClient::connect(server.local_addr()).unwrap();
    assert_eq!(first.ping(b"a").unwrap(), b"a");
    // The second connection is told why it is being turned away — and the
    // client types it as a REFUSAL (whole connection, do not re-send),
    // never as the retryable per-request admission BUSY.
    let mut second = NetClient::connect(server.local_addr()).unwrap();
    let result = second.ping(b"b");
    match &result {
        Err(e) => {
            assert!(e.is_refusal(), "got {result:?}");
            assert!(!e.is_busy(), "a connection-cap refusal must not look retryable");
            assert!(e.to_string().contains("connection limit"), "got {e}");
        }
        Ok(_) => panic!("over-cap connection must be refused"),
    }
    server.shutdown();
}

#[test]
fn pipeline_distinguishes_admission_busy_from_connection_refusal() {
    let set = tiny_set(8);
    // (a) Admission pushback: zero in-flight budget. The pipeline retries
    // up to its cap, then surfaces the admission BUSY (is_busy, not a
    // refusal) — the connection itself stays healthy throughout.
    let server = NetServer::start_serve(
        set.clone(),
        ServeConfig::default(),
        NetConfig { max_in_flight: 0, ..Default::default() },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let qs = [ServeQuery::exact(10.0, 90.0, 2)];
    let result = client.pipeline_topk(&qs, 1);
    match &result {
        Err(e) => {
            assert!(e.is_busy(), "got {result:?}");
            assert!(!e.is_refusal());
        }
        Ok(_) => panic!("a zero-admission server cannot answer"),
    }
    assert_eq!(client.ping(b"alive").unwrap(), b"alive");
    server.shutdown();
    // (b) Connection-cap refusal: the pipeline aborts with a typed
    // refusal immediately — no retry storm against a closed socket.
    let server = NetServer::start_serve(
        set,
        ServeConfig::default(),
        NetConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();
    let _first = NetClient::connect(server.local_addr()).unwrap();
    let mut hold = NetClient::connect(server.local_addr()).unwrap();
    // `_first` holds the only slot, so `hold` is over the cap.
    let result = hold.pipeline_topk(&[ServeQuery::exact(10.0, 90.0, 2)], 4);
    match &result {
        Err(e) => assert!(e.is_refusal(), "got {result:?}"),
        Ok(_) => panic!("over-cap pipeline must be refused"),
    }
    server.shutdown();
}

#[test]
fn engine_thread_pool_answers_concurrent_pipelines_correctly() {
    // N engine workers over ONE shared ServeEngine: concurrent pipelined
    // clients must each get answers identical to a single-threaded oracle,
    // even though responses may complete out of submission order.
    let set = tiny_set(16);
    let server = NetServer::start_serve(
        set.clone(),
        ServeConfig { workers: 2, ..Default::default() },
        NetConfig { engine_threads: 4, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let queries: Vec<ServeQuery> =
        (0..24).map(|i| ServeQuery::exact(i as f64, 60.0 + i as f64, 3)).collect();
    let mut oracle = NetClient::connect(addr).unwrap();
    let want: Vec<_> =
        queries.iter().map(|q| oracle.topk(*q).unwrap().topk.entries().to_vec()).collect();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (queries, want) = (&queries, &want);
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let outcome = client.pipeline_topk(queries, 8).unwrap();
                for (i, (got, want)) in outcome.answers.iter().zip(want).enumerate() {
                    assert_eq!(got.topk.entries(), &want[..], "query {i}");
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn metrics_scrape_returns_valid_exposition_with_serve_families() {
    let server = NetServer::start_serve(
        tiny_set(12),
        ServeConfig { workers: 2, ..Default::default() },
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.topk(ServeQuery::exact(10.0, 90.0, 4)).unwrap();
    client.topk(ServeQuery::approx(10.0, 90.0, 4, 0.05)).unwrap();
    let text = client.metrics().unwrap();
    let families = chronorank_obs::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
    for family in [
        "chronorank_serve_route_latency_us",
        "chronorank_serve_route_total",
        "chronorank_serve_queries",
        "chronorank_serve_workers",
        "chronorank_net_frames_in",
        "chronorank_net_frame_decode_us",
        "chronorank_net_frame_encode_us",
    ] {
        assert!(families.contains(family), "missing family {family} in:\n{text}");
    }
    server.shutdown();
}

#[test]
fn metrics_scrape_covers_the_live_tier() {
    let server = NetServer::start_live(
        tiny_set(8),
        LiveConfig { workers: 2, ..Default::default() },
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let batch: Vec<AppendRecord> =
        (0..8).map(|i| AppendRecord { object: i, t: 150.0, v: 100.0 + i as f64 }).collect();
    client.append_batch(&batch).unwrap();
    client.checkpoint().unwrap();
    let text = client.metrics().unwrap();
    let families = chronorank_obs::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
    for family in [
        "chronorank_live_appends",
        "chronorank_live_batch_size",
        "chronorank_live_wal_fsync_us",
        "chronorank_live_checkpoint_us",
        "chronorank_live_recovery_us",
    ] {
        assert!(families.contains(family), "missing family {family} in:\n{text}");
    }
    // The gauges mirror the engine's own counters.
    assert!(text.contains("chronorank_live_appends 8"), "got:\n{text}");
    assert!(text.contains("chronorank_live_checkpoints 1"), "got:\n{text}");
    server.shutdown();
}

/// ISSUE 8 satellite: METRICS is a read-mostly snapshot of live atomics,
/// so concurrent scrapes from several clients during TOPK/APPEND traffic
/// must each return a *complete, self-consistent* exposition — every
/// scrape passes `validate_exposition` (which now also rejects
/// conflicting HELP/TYPE re-declarations), no torn text, no panics.
#[test]
fn concurrent_metrics_scrapes_stay_valid_under_traffic() {
    let server = NetServer::start_live(
        tiny_set(16),
        LiveConfig { workers: 2, ..Default::default() },
        NetConfig { engine_threads: 4, max_in_flight: 256, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        // Query traffic.
        for _ in 0..2 {
            s.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for i in 0..60 {
                    let k = 1 + i % 5;
                    client.topk(ServeQuery::exact(10.0, 90.0, k)).unwrap();
                }
            });
        }
        // Append traffic (live backend serializes writes internally).
        s.spawn(move || {
            let mut client = NetClient::connect(addr).unwrap();
            for i in 0..30u32 {
                let batch: Vec<AppendRecord> = (0..4)
                    .map(|j| AppendRecord {
                        object: j,
                        t: 150.0 + i as f64,
                        v: 10.0 + (i + j) as f64,
                    })
                    .collect();
                client.append_batch(&batch).unwrap();
            }
        });
        // Concurrent scrapers: every scrape must be a valid exposition
        // containing both the net and live families.
        for _ in 0..3 {
            s.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for _ in 0..20 {
                    let text = client.metrics().unwrap();
                    let families = chronorank_obs::validate_exposition(&text)
                        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
                    for family in ["chronorank_net_frames_in", "chronorank_live_appends"] {
                        assert!(families.contains(family), "missing {family} in:\n{text}");
                    }
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn malformed_bytes_get_a_typed_goodbye_then_close() {
    use std::io::{Read, Write};
    let server =
        NetServer::start_serve(tiny_set(8), ServeConfig::default(), NetConfig::default()).unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // Longer than one frame header, so the decoder must judge it (a
    // shorter blob would legitimately be "waiting for the rest").
    raw.write_all(b"GET / HTTP/1.1\r\nHost: nonsense\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap(); // server closes after its goodbye
    let frames = chronorank_net::Frame::decode_all(&buf).unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].opcode, chronorank_net::OpCode::Error);
    let body = chronorank_net::ErrorBody::decode(&frames[0].payload).unwrap();
    assert_eq!(body.code, ErrCode::BadRequest);
    server.shutdown();
}

#[test]
fn shutdown_is_clean_and_observable_from_the_client() {
    let server =
        NetServer::start_serve(tiny_set(8), ServeConfig::default(), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    assert_eq!(client.ping(b"x").unwrap(), b"x");
    server.shutdown(); // joins acceptor, connections, engine

    // The live connection was shut down; the next call must fail cleanly.
    let result = client.ping(b"y");
    assert!(result.is_err(), "got {result:?}");
    // And the port no longer accepts fresh protocol traffic (an outright
    // refused connect is equally clean).
    if let Ok(mut c) = NetClient::connect(addr) {
        assert!(c.ping(b"z").is_err());
    }
}

#[test]
fn backend_build_failure_surfaces_at_start() {
    let err = NetServer::start(NetConfig::default(), || Err("deliberate".to_string()))
        .err()
        .expect("start must fail");
    assert!(err.to_string().contains("deliberate"), "got {err}");
}
