//! Protocol robustness (ISSUE 4 satellite): the frame decoder must
//! survive arbitrary hostile bytes — truncated, corrupted, oversized —
//! and always answer with a *typed* [`FrameError`]: never a panic, never
//! a read past the input, never unbounded allocation from a lying length
//! field. Case counts honour `PROPTEST_CASES` like every property suite
//! in the workspace.

use chronorank_core::{AppendRecord, TopK};
use chronorank_net::frame::{
    crc32, decode_append_batch, decode_append_batch_traced, encode_append_batch,
    encode_append_batch_traced, HEADER_LEN, MAX_PAYLOAD,
};
use chronorank_net::{
    Decoder, ErrCode, ErrorBody, Frame, FrameError, OpCode, TopKRequest, TopKResponse, TraceContext,
};
use chronorank_serve::{Route, ServeQuery};
use proptest::prelude::*;

const OPS: [OpCode; 13] = [
    OpCode::Ping,
    OpCode::TopK,
    OpCode::AppendBatch,
    OpCode::Checkpoint,
    OpCode::Stats,
    OpCode::Trace,
    OpCode::Pong,
    OpCode::TopKOk,
    OpCode::AppendOk,
    OpCode::CheckpointOk,
    OpCode::StatsOk,
    OpCode::TraceOk,
    OpCode::Error,
];

fn arb_frame() -> impl Strategy<Value = Frame> {
    (0usize..OPS.len(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(op, id, payload)| Frame::new(OPS[op], id, payload))
}

proptest! {
    /// Well-formed frames always round-trip, regardless of content.
    #[test]
    fn valid_frames_roundtrip(frame in arb_frame()) {
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("valid frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// Truncating a valid frame anywhere yields `Truncated` with an
    /// honest byte count — never a panic, never an over-read.
    #[test]
    fn truncation_is_always_typed(frame in arb_frame(), cut in 0.0f64..1.0) {
        let bytes = frame.encode();
        let keep = (bytes.len() as f64 * cut) as usize; // strictly < len
        match Frame::decode(&bytes[..keep]) {
            Err(FrameError::Truncated { needed, have }) => {
                prop_assert_eq!(have, keep);
                prop_assert!(needed > keep);
                prop_assert!(needed <= bytes.len());
            }
            other => return Err(TestCaseError::fail(format!(
                "truncated to {keep}/{} bytes must be Truncated, got {other:?}",
                bytes.len()
            ))),
        }
    }

    /// Flipping any single byte of a valid frame either still decodes
    /// (the request id region has no redundancy by design) or fails with
    /// a typed error — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        frame in arb_frame(),
        at in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = frame.encode();
        let i = (bytes.len() as f64 * at) as usize % bytes.len();
        bytes[i] ^= flip;
        // A typed Err is exactly what robustness demands; id / opcode /
        // payload-with-matching-crc corruption can still parse, and then
        // everything returned must stay in bounds.
        if let Ok((f, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len() && f.payload.len() <= used);
        }
    }

    /// A length field pointing past [`MAX_PAYLOAD`] is rejected up front
    /// (no allocation-by-lie), and a large-but-legal length over missing
    /// bytes reports `Truncated` instead of reading off the end.
    #[test]
    fn oversized_lengths_are_rejected_before_any_read(
        id in any::<u64>(),
        declared in (MAX_PAYLOAD as u64 + 1..u32::MAX as u64),
    ) {
        let mut bytes = Frame::new(OpCode::Ping, id, vec![]).encode();
        bytes[12..16].copy_from_slice(&(declared as u32).to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { len: declared as u32, max: MAX_PAYLOAD })
        );
        // Legal length, absent payload: typed truncation, not an over-read.
        bytes[12..16].copy_from_slice(&MAX_PAYLOAD.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(FrameError::Truncated { needed, have }) => {
                prop_assert_eq!(needed, HEADER_LEN + MAX_PAYLOAD as usize);
                prop_assert_eq!(have, bytes.len());
            }
            other => return Err(TestCaseError::fail(format!("expected Truncated, got {other:?}"))),
        }
    }

    /// Pure byte soup: `decode_all` terminates with frames or one typed
    /// error, and whatever it parses stays within the input.
    #[test]
    fn arbitrary_bytes_never_panic(soup in proptest::collection::vec(any::<u8>(), 0..400)) {
        // A typed Err terminates the scan; a successful parse must
        // account for every input byte.
        if let Ok(frames) = Frame::decode_all(&soup) {
            let total: usize = frames.iter().map(|f| HEADER_LEN + f.payload.len()).sum();
            prop_assert_eq!(total, soup.len());
        }
    }

    /// The streaming decoder under adversarial chunking: valid frames
    /// interleaved with a corrupted one. Every frame before the
    /// corruption is recovered intact; the corruption itself surfaces as
    /// one typed error, after which the stream is dead.
    #[test]
    fn streaming_decoder_recovers_prefix_then_reports(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        chunk in 1usize..64,
        corrupt_payload in 0.0f64..1.0,
    ) {
        let mut bytes: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        // Corrupt one payload byte of the LAST frame (if it has one) so
        // its CRC check must fire after every earlier frame decoded.
        let last = frames.last().expect("non-empty");
        let expect_err = !last.payload.is_empty();
        if expect_err {
            let start = bytes.len() - last.payload.len();
            let i = start + (last.payload.len() as f64 * corrupt_payload) as usize % last.payload.len().max(1);
            bytes[i] ^= 0x55;
        }
        let mut decoder = Decoder::new();
        let mut got = Vec::new();
        let mut err = None;
        'outer: for piece in bytes.chunks(chunk) {
            decoder.feed(piece);
            loop {
                match decoder.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(e) => { err = Some(e); break 'outer; }
                }
            }
        }
        prop_assert_eq!(&got[..], &frames[..got.len()], "recovered prefix must be intact");
        if expect_err {
            prop_assert_eq!(got.len(), frames.len() - 1);
            prop_assert!(matches!(err, Some(FrameError::BadCrc { .. })));
        } else {
            prop_assert_eq!(got.len(), frames.len());
            prop_assert!(err.is_none());
        }
    }

    /// The CRC actually covers every payload byte: any single-bit payload
    /// flip (with the header left alone) is detected.
    #[test]
    fn crc_detects_any_payload_flip(
        frame in arb_frame().prop_filter("needs payload", |f| !f.payload.is_empty()),
        at in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = frame.encode();
        let i = HEADER_LEN + (frame.payload.len() as f64 * at) as usize % frame.payload.len();
        bytes[i] ^= 1 << bit;
        let want = crc32(&frame.payload);
        match Frame::decode(&bytes) {
            Err(FrameError::BadCrc { want: w, .. }) => prop_assert_eq!(w, want),
            other => return Err(TestCaseError::fail(format!("flip must be caught, got {other:?}"))),
        }
    }

    /// Encode side (ISSUE 6 satellite): every typed body whose fields fit
    /// their wire widths encodes, and decoding the bytes gives back the
    /// exact body — queries, answers (bit-identical scores), append
    /// batches and error bodies alike.
    #[test]
    fn encoded_bodies_roundtrip(
        t1 in -1.0e6f64..1.0e6,
        span in 1.0e-3f64..1.0e6,
        k in 0usize..=(1 << 20),
        tag in 0u8..3,
        eps in 1.0e-9f64..8.0,
        route_pick in any::<u8>(),
        eps_used in prop_oneof![Just(-1.0f64), 0.0f64..1.0],
        appends in any::<u64>(),
        entries in proptest::collection::vec((any::<u32>(), -1.0e6f64..1.0e6), 0..50),
        recs in proptest::collection::vec(
            (any::<u32>(), -1.0e6f64..1.0e6, -1.0e6f64..1.0e6),
            0..50,
        ),
        code in 1u8..=5,
        msg in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        // TOPK request, over all three tolerance tags.
        let q = match tag {
            0 => ServeQuery::exact(t1, t1 + span, k),
            1 => ServeQuery::approx(t1, t1 + span, k, eps),
            _ => ServeQuery::approx_tight(t1, t1 + span, k, eps),
        };
        let bytes = TopKRequest(q).encode().expect("in-range k encodes");
        prop_assert_eq!(TopKRequest::decode(&bytes).unwrap().0, q);

        // TOPK response: re-encoding the decoded body must give the same
        // bytes (scores cross as exact bits).
        let mut ranked = entries;
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let resp = TopKResponse {
            topk: TopK::from_ranked(ranked),
            route: Route::ALL[route_pick as usize % Route::ALL.len()],
            eps_used: if eps_used < 0.0 { None } else { Some(eps_used) },
            appends_applied: appends,
        };
        let bytes = resp.encode().expect("in-range entry count encodes");
        let back = TopKResponse::decode(&bytes).unwrap();
        prop_assert_eq!(back.encode().unwrap(), bytes);

        // Append batch.
        let recs: Vec<AppendRecord> =
            recs.into_iter().map(|(object, t, v)| AppendRecord { object, t, v }).collect();
        let bytes = encode_append_batch(&recs).expect("in-range record count encodes");
        prop_assert_eq!(decode_append_batch(&bytes).unwrap(), recs);

        // Error body (arbitrary printable-ASCII message).
        const CODES: [ErrCode; 5] = [
            ErrCode::Busy,
            ErrCode::Unsupported,
            ErrCode::Engine,
            ErrCode::BadRequest,
            ErrCode::Shutdown,
        ];
        let err = ErrorBody {
            code: CODES[code as usize - 1],
            message: msg.into_iter().map(|b| (b % 94 + 32) as char).collect(),
        };
        let bytes = err.encode().expect("in-range message length encodes");
        prop_assert_eq!(ErrorBody::decode(&bytes).unwrap(), err);
    }
}

proptest! {
    /// Trace-context tail (ISSUE 8 satellite): any query with any nonzero
    /// trace id round-trips through the traced encode/decode pair, the
    /// traced bytes are exactly legacy-bytes + 16-byte tail, and a
    /// context-free `encode_with(None)` stays bit-identical to the
    /// pre-extension encoding old peers expect.
    #[test]
    fn trace_context_roundtrips_and_preserves_legacy_bytes(
        t1 in -1.0e6f64..1.0e6,
        span in 1.0e-3f64..1.0e6,
        k in 0u32..=(1 << 20),
        trace_id in 1u64..=u64::MAX,
        parent_span in any::<u64>(),
    ) {
        let q = ServeQuery::exact(t1, t1 + span, k as usize);
        let ctx = TraceContext { trace_id, parent_span };

        let legacy = TopKRequest(q).encode().unwrap();
        let none = TopKRequest(q).encode_with(None).unwrap();
        prop_assert_eq!(&none, &legacy, "context-free encoding must not drift");

        let traced = TopKRequest(q).encode_with(Some(ctx)).unwrap();
        prop_assert_eq!(&traced[..legacy.len()], &legacy[..], "tail must be strictly additive");
        prop_assert_eq!(traced.len(), legacy.len() + TraceContext::WIRE_LEN);

        let (back, got) = TopKRequest::decode_traced(&traced).unwrap();
        prop_assert_eq!(back.0, q);
        prop_assert_eq!(got, Some(ctx));
        // And the untraced bytes report no context.
        prop_assert_eq!(TopKRequest::decode_traced(&legacy).unwrap().1, None);
        // A strict legacy decoder refuses — never misparses — traced bytes.
        prop_assert!(TopKRequest::decode(&traced).is_err());
    }

    /// Truncating a traced TOPK payload anywhere inside the tail (or one
    /// past it) is a typed `BadPayload` — the tail never panics and never
    /// leaks a half-parsed context. A zeroed trace id is likewise typed
    /// corruption.
    #[test]
    fn trace_context_truncation_and_corruption_are_typed(
        t1 in -1.0e6f64..1.0e6,
        span in 1.0e-3f64..1.0e6,
        k in 0u32..100_000,
        trace_id in 1u64..=u64::MAX,
        parent_span in any::<u64>(),
        cut in 0.0f64..1.0,
        extend in 1usize..32,
    ) {
        let q = ServeQuery::exact(t1, t1 + span, k as usize);
        let ctx = TraceContext { trace_id, parent_span };
        let traced = TopKRequest(q).encode_with(Some(ctx)).unwrap();
        let base = traced.len() - TraceContext::WIRE_LEN;

        // Every cut strictly inside the tail region (30..=44 bytes kept).
        let keep = base + 1 + (cut * (TraceContext::WIRE_LEN - 1) as f64) as usize;
        prop_assert!(matches!(
            TopKRequest::decode_traced(&traced[..keep]),
            Err(FrameError::BadPayload(_))
        ));

        // Oversized: extra bytes past the tail are refused, not ignored.
        let mut longer = traced.clone();
        longer.extend(std::iter::repeat_n(0xAB, extend));
        prop_assert!(matches!(
            TopKRequest::decode_traced(&longer),
            Err(FrameError::BadPayload(_))
        ));

        // Zeroed trace id: the absent-sentinel on the wire is corruption.
        let mut zeroed = traced;
        zeroed[base..base + 8].fill(0);
        prop_assert!(matches!(
            TopKRequest::decode_traced(&zeroed),
            Err(FrameError::BadPayload(_))
        ));
    }

    /// The append-batch tail obeys the same contract: strictly additive,
    /// unambiguous against the 20-byte record stride, typed refusal on a
    /// truncated tail, and legacy decoders reject traced bytes.
    #[test]
    fn append_batch_trace_tail_roundtrips(
        recs in proptest::collection::vec(
            (any::<u32>(), -1.0e6f64..1.0e6, -1.0e6f64..1.0e6),
            0..50,
        ),
        trace_id in 1u64..=u64::MAX,
        parent_span in any::<u64>(),
        cut in 1usize..TraceContext::WIRE_LEN,
    ) {
        let recs: Vec<AppendRecord> =
            recs.into_iter().map(|(object, t, v)| AppendRecord { object, t, v }).collect();
        let ctx = TraceContext { trace_id, parent_span };

        let legacy = encode_append_batch(&recs).unwrap();
        prop_assert_eq!(&encode_append_batch_traced(&recs, None).unwrap(), &legacy);

        let traced = encode_append_batch_traced(&recs, Some(ctx)).unwrap();
        prop_assert_eq!(&traced[..legacy.len()], &legacy[..]);
        prop_assert_eq!(traced.len(), legacy.len() + TraceContext::WIRE_LEN);

        let (back, got) = decode_append_batch_traced(&traced).unwrap();
        prop_assert_eq!(&back, &recs);
        prop_assert_eq!(got, Some(ctx));
        prop_assert_eq!(decode_append_batch_traced(&legacy).unwrap(), (recs, None));
        // The strict legacy decoder refuses traced bytes outright.
        prop_assert!(decode_append_batch(&traced).is_err());

        // Truncating inside the tail is typed, never a panic: the 16-byte
        // width can't be mistaken for records (16 is not a multiple of 20).
        let keep = legacy.len() + cut;
        prop_assert!(decode_append_batch_traced(&traced[..keep]).is_err());
    }
}

/// The regression itself: `k as u32` used to *wrap*, so `k = 2³² + 3`
/// crossed the wire as a perfectly valid-looking query for `k = 3` — the
/// client silently got the wrong answer. Now it is a typed refusal.
#[test]
#[cfg(target_pointer_width = "64")]
fn oversized_k_is_refused_not_wrapped() {
    let k = (1usize << 32) + 3;
    let err = TopKRequest(ServeQuery::exact(0.0, 1.0, k)).encode().unwrap_err();
    assert_eq!(
        err,
        FrameError::FieldOverflow { field: "k", value: k as u64, max: u32::MAX as u64 }
    );
    // And the boundary value itself still encodes.
    let ok = TopKRequest(ServeQuery::exact(0.0, 1.0, u32::MAX as usize)).encode();
    assert!(ok.is_ok(), "u32::MAX is the largest encodable k");
}
