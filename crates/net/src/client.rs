//! The blocking client: one TCP connection, synchronous calls, and a
//! closed-loop pipelining driver.
//!
//! Two API levels:
//!
//! * **synchronous** — [`NetClient::topk`], [`NetClient::append_batch`],
//!   [`NetClient::checkpoint`], [`NetClient::stats`], [`NetClient::ping`]:
//!   one request, one response, errors mapped to [`NetError`];
//! * **pipelined** — [`NetClient::send_topk`] / [`NetClient::recv`] let a
//!   caller keep many requests in flight on one connection, and
//!   [`NetClient::pipeline_topk`] packages the standard closed-loop
//!   window: at most `depth` outstanding requests, each response
//!   immediately refilled, per-request latencies recorded, and typed BUSY
//!   pushback retried transparently (counted in
//!   [`PipelineOutcome::busy_retries`], so callers can see overload
//!   instead of silently absorbing it).
//!
//! ## The two BUSYs
//!
//! The server pushes back with `ErrCode::Busy` in two distinct
//! situations, and the client keeps their accounting apart:
//!
//! * **admission** — the `max_in_flight` bound refused one *request*; the
//!   response echoes that request's id, the connection stays healthy, and
//!   retrying (what `pipeline_topk` does, counting
//!   [`PipelineOutcome::busy_retries`]) is safe;
//! * **connection cap** — the acceptor refused the whole *connection*
//!   with one goodbye frame carrying request id `0`, then closed it.
//!   Nothing sent on this connection was (or will be) executed; the
//!   client surfaces [`NetError::Refused`] instead of retrying, because
//!   re-sending on a closed connection can only produce IO errors.
//!
//! With several server engine threads, responses on one connection may
//! complete out of submission order; ids are matched explicitly, which is
//! also what makes BUSY-retry (a new id for the same query) unambiguous.

use crate::frame::{
    encode_append_batch, encode_append_batch_traced, AppendOk, Decoder, ErrCode, ErrorBody, Frame,
    FrameError, OpCode, StatsBody, TopKRequest, TopKResponse, TraceContext, MAX_PAYLOAD,
};
use chronorank_core::AppendRecord;
use chronorank_obs::{AttrValue, SpanSink, TraceId};
use chronorank_serve::ServeQuery;
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, or EOF mid-frame).
    Io(std::io::Error),
    /// The byte stream violated the frame protocol.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Remote {
        /// The wire error class.
        code: ErrCode,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong kind.
    Protocol(String),
    /// The server refused the whole connection (connection cap): one BUSY
    /// goodbye with request id 0, then close. Distinct from the per-request
    /// admission BUSY in [`NetError::Remote`] — nothing on this connection
    /// was executed, and retrying must reconnect, not re-send.
    Refused {
        /// The server's refusal message (names the cap).
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Remote { code, message } => write!(f, "server error ({code:?}): {message}"),
            NetError::Protocol(e) => write!(f, "protocol violation: {e}"),
            NetError::Refused { message } => write!(f, "connection refused: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// True when this is the server's typed per-request admission-control
    /// pushback (the request was not executed; re-sending on this same
    /// connection is safe). Connection-cap refusals are NOT busy — see
    /// [`NetError::is_refusal`].
    pub fn is_busy(&self) -> bool {
        matches!(self, NetError::Remote { code: ErrCode::Busy, .. })
    }

    /// True when the server refused the whole connection (connection
    /// cap). Recovery means reconnecting later, not re-sending.
    pub fn is_refusal(&self) -> bool {
        matches!(self, NetError::Refused { .. })
    }
}

/// One matched response, already decoded per opcode.
#[derive(Debug)]
pub enum Response {
    /// Answer to a TOPK request.
    TopK(TopKResponse),
    /// Answer to an APPEND_BATCH request.
    Append(AppendOk),
    /// Answer to a CHECKPOINT request.
    Checkpoint,
    /// Answer to a STATS request.
    Stats(StatsBody),
    /// Answer to a METRICS request: the text exposition of the server's
    /// whole metric registry.
    Metrics(String),
    /// Answer to a TRACE request: structured JSON carrying the server's
    /// SLO burn-rate status and its drained span trees.
    Trace(String),
    /// Answer to a PING (the echoed payload).
    Pong(Vec<u8>),
    /// A typed error frame for this request id.
    Error(ErrorBody),
}

/// Outcome of one [`NetClient::pipeline_topk`] run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// One answer per input query, input order.
    pub answers: Vec<TopKResponse>,
    /// Per-query wall latency (first submission to final answer — a
    /// BUSY-retried query keeps accumulating), input order.
    pub latencies: Vec<Duration>,
    /// How often the server's **admission control** (`max_in_flight`)
    /// pushed back with a per-request BUSY (each one re-sent under a
    /// fresh id). Connection-cap refusals never appear here — they abort
    /// the run with [`NetError::Refused`] instead, since the server
    /// closes the connection after refusing it.
    pub busy_retries: u64,
    /// Wall time for the whole run.
    pub elapsed: Duration,
}

/// A blocking connection to a [`crate::NetServer`].
pub struct NetClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    decoder: Decoder,
    next_id: u64,
    /// Where client-side spans land. Noop by default: an untraced client
    /// sends byte-identical pre-extension frames and pays nothing.
    sink: SpanSink,
}

impl NetClient {
    /// BUSY refusals tolerated per query in [`NetClient::pipeline_topk`]
    /// before the overload is surfaced as an error (with the capped
    /// linear backoff this is several seconds of sustained pushback).
    pub const MAX_BUSY_RETRIES: u32 = 100;

    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            reader: stream,
            writer,
            decoder: Decoder::new(),
            next_id: 1,
            sink: SpanSink::noop(),
        })
    }

    /// Enable client-side tracing: synchronous [`NetClient::topk`] and
    /// [`NetClient::append_batch`] calls originate a fresh trace id, open
    /// a client span in `sink`, and propagate the context to the server
    /// so its spans join the same tree. Pass [`SpanSink::noop`] to turn
    /// tracing back off (frames revert to the context-free encoding).
    pub fn set_span_sink(&mut self, sink: SpanSink) {
        self.sink = sink;
    }

    /// The sink client spans are emitted into (noop unless
    /// [`NetClient::set_span_sink`] was called).
    pub fn span_sink(&self) -> &SpanSink {
        &self.sink
    }

    // --- pipelining primitives -------------------------------------------

    /// Queue one TOPK request; returns its request id. Buffered — call
    /// [`NetClient::flush`] (or any `recv`) before expecting an answer.
    pub fn send_topk(&mut self, q: ServeQuery) -> Result<u64, NetError> {
        self.send_frame(OpCode::TopK, TopKRequest(q).encode()?)
    }

    /// Queue one APPEND_BATCH request; returns its request id.
    pub fn send_append_batch(&mut self, recs: &[AppendRecord]) -> Result<u64, NetError> {
        self.send_frame(OpCode::AppendBatch, encode_append_batch(recs)?)
    }

    /// Push all queued requests onto the wire.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Receive the next response frame: `(request id, decoded response)`.
    /// Flushes queued requests first, so a send/recv loop cannot deadlock
    /// on its own buffering.
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        self.flush()?;
        let frame = self.read_frame()?;
        let resp = match frame.opcode {
            OpCode::TopKOk => Response::TopK(TopKResponse::decode(&frame.payload)?),
            OpCode::AppendOk => Response::Append(AppendOk::decode(&frame.payload)?),
            OpCode::CheckpointOk => Response::Checkpoint,
            OpCode::StatsOk => Response::Stats(StatsBody::decode(&frame.payload)?),
            OpCode::MetricsOk => Response::Metrics(
                String::from_utf8(frame.payload)
                    .map_err(|_| NetError::Protocol("metrics payload is not utf-8".into()))?,
            ),
            OpCode::TraceOk => Response::Trace(
                String::from_utf8(frame.payload)
                    .map_err(|_| NetError::Protocol("trace payload is not utf-8".into()))?,
            ),
            OpCode::Pong => Response::Pong(frame.payload),
            OpCode::Error => Response::Error(ErrorBody::decode(&frame.payload)?),
            other => return Err(NetError::Protocol(format!("{other:?} is not a response opcode"))),
        };
        Ok((frame.request_id, resp))
    }

    // --- synchronous calls -----------------------------------------------

    /// One top-k query, synchronously. With a span sink set (see
    /// [`NetClient::set_span_sink`]) the call is traced end to end.
    pub fn topk(&mut self, q: ServeQuery) -> Result<TopKResponse, NetError> {
        if !self.sink.is_noop() {
            return self.topk_traced(q).map(|(resp, _)| resp);
        }
        let id = self.send_topk(q)?;
        match self.recv_for(id)? {
            Response::TopK(resp) => Ok(resp),
            other => Err(unexpected("TOPK_OK", &other)),
        }
    }

    /// One **traced** top-k query: originates a fresh [`TraceId`], opens
    /// a `client.topk` span covering the full round trip, and sends the
    /// trace context so the server's `server.request` span (and the
    /// engine + shard spans under it) join the same tree. Returns the
    /// trace id so the caller can correlate with a later
    /// [`NetClient::trace_dump`]. Works with a noop sink too — the local
    /// span is discarded but the context still propagates.
    pub fn topk_traced(&mut self, q: ServeQuery) -> Result<(TopKResponse, TraceId), NetError> {
        let trace = TraceId::next();
        let mut span = self.sink.root(trace, "client.topk");
        let ctx = TraceContext { trace_id: trace.0, parent_span: span.id().0 };
        let id = self.send_frame(OpCode::TopK, TopKRequest(q).encode_with(Some(ctx))?)?;
        let result = self.recv_for(id);
        span.attr("k", AttrValue::U64(q.k as u64));
        span.attr("ok", AttrValue::Bool(matches!(&result, Ok(Response::TopK(_)))));
        span.finish();
        match result? {
            Response::TopK(resp) => Ok((resp, trace)),
            other => Err(unexpected("TOPK_OK", &other)),
        }
    }

    /// One durable append batch, synchronously. With a span sink set the
    /// call is traced like [`NetClient::topk`].
    pub fn append_batch(&mut self, recs: &[AppendRecord]) -> Result<AppendOk, NetError> {
        if self.sink.is_noop() {
            let id = self.send_append_batch(recs)?;
            return match self.recv_for(id)? {
                Response::Append(ok) => Ok(ok),
                other => Err(unexpected("APPEND_OK", &other)),
            };
        }
        let trace = TraceId::next();
        let mut span = self.sink.root(trace, "client.append");
        let ctx = TraceContext { trace_id: trace.0, parent_span: span.id().0 };
        let id =
            self.send_frame(OpCode::AppendBatch, encode_append_batch_traced(recs, Some(ctx))?)?;
        let result = self.recv_for(id);
        span.attr("records", AttrValue::U64(recs.len() as u64));
        span.attr("ok", AttrValue::Bool(matches!(&result, Ok(Response::Append(_)))));
        span.finish();
        match result? {
            Response::Append(ok) => Ok(ok),
            other => Err(unexpected("APPEND_OK", &other)),
        }
    }

    /// Checkpoint the live backend (snapshot + WAL truncation).
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        let id = self.send_frame(OpCode::Checkpoint, Vec::new())?;
        match self.recv_for(id)? {
            Response::Checkpoint => Ok(()),
            other => Err(unexpected("CHECKPOINT_OK", &other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<StatsBody, NetError> {
        let id = self.send_frame(OpCode::Stats, Vec::new())?;
        match self.recv_for(id)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("STATS_OK", &other)),
        }
    }

    /// Scrape the server's metric registry as Prometheus-style text
    /// exposition (every tier: serve/live engine, wire counters,
    /// latency summaries).
    pub fn metrics(&mut self) -> Result<String, NetError> {
        let id = self.send_frame(OpCode::Metrics, Vec::new())?;
        match self.recv_for(id)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("METRICS_OK", &other)),
        }
    }

    /// Scrape the server's tracing/health plane: SLO burn-rate status
    /// per window plus every span the server has collected since the
    /// last dump (the server's sink is drained — spans are reported
    /// exactly once), as one structured JSON object.
    pub fn trace_dump(&mut self) -> Result<String, NetError> {
        let id = self.send_frame(OpCode::Trace, Vec::new())?;
        match self.recv_for(id)? {
            Response::Trace(text) => Ok(text),
            other => Err(unexpected("TRACE_OK", &other)),
        }
    }

    /// Liveness probe; the server echoes `payload`.
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let id = self.send_frame(OpCode::Ping, payload.to_vec())?;
        match self.recv_for(id)? {
            Response::Pong(echo) => Ok(echo),
            other => Err(unexpected("PONG", &other)),
        }
    }

    // --- the closed-loop pipelined driver --------------------------------

    /// Run `queries` closed-loop with at most `depth` requests in flight:
    /// fill the window, then answer-and-refill until done. BUSY pushback
    /// is retried (the same query, a fresh id) with a growing backoff —
    /// never a hot spin — and a query refused [`Self::MAX_BUSY_RETRIES`]
    /// times surfaces the BUSY as an error (a server that can admit
    /// nothing should look overloaded, not hang its clients).
    pub fn pipeline_topk(
        &mut self,
        queries: &[ServeQuery],
        depth: usize,
    ) -> Result<PipelineOutcome, NetError> {
        let depth = depth.max(1);
        let t0 = Instant::now();
        let mut answers: Vec<Option<TopKResponse>> = (0..queries.len()).map(|_| None).collect();
        let mut latencies = vec![Duration::ZERO; queries.len()];
        let mut started = vec![t0; queries.len()];
        let mut busy_count = vec![0u32; queries.len()];
        let mut in_flight: HashMap<u64, usize> = HashMap::new();
        let mut busy_retries = 0u64;
        let mut next = 0usize;
        let mut done = 0usize;
        while done < queries.len() {
            while in_flight.len() < depth && next < queries.len() {
                let id = self.send_topk(queries[next])?;
                started[next] = Instant::now();
                in_flight.insert(id, next);
                next += 1;
            }
            let (id, resp) = self.recv()?;
            if id == 0 {
                // Connection-scoped error: a BUSY here is the acceptor's
                // connection-cap goodbye (the socket is already closing) —
                // typed as a refusal so callers never mistake it for
                // retryable admission pushback.
                return Err(match resp {
                    Response::Error(e) if e.code == ErrCode::Busy => {
                        NetError::Refused { message: e.message }
                    }
                    Response::Error(e) => NetError::Remote { code: e.code, message: e.message },
                    _ => NetError::Protocol("non-error frame with request id 0".to_string()),
                });
            }
            let Some(i) = in_flight.remove(&id) else {
                return Err(NetError::Protocol(format!("response for unknown request id {id}")));
            };
            match resp {
                Response::TopK(r) => {
                    latencies[i] = started[i].elapsed();
                    answers[i] = Some(r);
                    done += 1;
                }
                Response::Error(e) if e.code == ErrCode::Busy => {
                    // Typed pushback: the query was not executed. Back off
                    // (linearly growing, capped), then re-send under a
                    // fresh id; its latency clock keeps running.
                    busy_count[i] += 1;
                    if busy_count[i] > Self::MAX_BUSY_RETRIES {
                        return Err(NetError::Remote { code: e.code, message: e.message });
                    }
                    busy_retries += 1;
                    std::thread::sleep(Duration::from_micros(
                        200 * u64::from(busy_count[i].min(50)),
                    ));
                    let id = self.send_topk(queries[i])?;
                    in_flight.insert(id, i);
                }
                Response::Error(e) => {
                    return Err(NetError::Remote { code: e.code, message: e.message })
                }
                other => return Err(unexpected("TOPK_OK", &other)),
            }
        }
        Ok(PipelineOutcome {
            answers: answers.into_iter().map(|a| a.expect("all answered")).collect(),
            latencies,
            busy_retries,
            elapsed: t0.elapsed(),
        })
    }

    // --- internals --------------------------------------------------------

    fn send_frame(&mut self, opcode: OpCode, payload: Vec<u8>) -> Result<u64, NetError> {
        // Refuse oversized payloads with a typed error *before* encoding:
        // pushing one onto the wire would cost the whole connection (the
        // server declares framing lost), not just this request. Callers
        // with bigger batches should chunk them.
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(NetError::Frame(FrameError::Oversized {
                len: payload.len().min(u32::MAX as usize) as u32,
                max: MAX_PAYLOAD,
            }));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&Frame::new(opcode, id, payload).encode())?;
        Ok(id)
    }

    /// Synchronous receive for one specific id (the only outstanding one).
    fn recv_for(&mut self, id: u64) -> Result<Response, NetError> {
        let (got, resp) = self.recv()?;
        if let Response::Error(e) = resp {
            // Request id 0 marks a connection-scoped error (refused
            // connection, lost framing) — surface it whatever we awaited.
            if got == 0 && e.code == ErrCode::Busy {
                return Err(NetError::Refused { message: e.message });
            }
            if got == id || got == 0 {
                return Err(NetError::Remote { code: e.code, message: e.message });
            }
            return Err(NetError::Protocol(format!("error frame for foreign id {got}")));
        }
        if got != id {
            return Err(NetError::Protocol(format!("expected response for id {id}, got {got}")));
        }
        Ok(resp)
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let n = self.reader.read(&mut scratch)?;
            if n == 0 {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    if self.decoder.pending() > 0 {
                        "connection closed mid-frame"
                    } else {
                        "connection closed"
                    },
                )));
            }
            self.decoder.feed(&scratch[..n]);
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    match got {
        Response::Error(e) => NetError::Remote { code: e.code, message: e.message.clone() },
        other => NetError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
