//! # chronorank-net — wire-protocol query/ingest serving
//!
//! Everything below this crate answers queries *in process*. This crate
//! is the network seam the ROADMAP's "heavy traffic" goal needs — the
//! same thin, well-defined protocol layer large survey databases put
//! between clients and the storage/index tiers so the serving tier can be
//! load-shed and scaled independently:
//!
//! * a **frame protocol** ([`frame`]) — length-prefixed binary frames
//!   with a versioned header, client request ids, and a CRC over every
//!   payload; ops `PING`, `TOPK`, `APPEND_BATCH`, `CHECKPOINT`, `STATS`,
//!   `METRICS` (the whole process metric registry as text exposition),
//!   and `TRACE` (SLO burn-rate status + drained span trees as JSON).
//!   `TOPK` and `APPEND_BATCH` requests may carry an optional 16-byte
//!   [`frame::TraceContext`] tail that joins the server's spans into the
//!   client's trace; context-free frames stay byte-identical to the
//!   pre-extension encoding. Scores cross the wire as exact `f64` bits,
//!   so a network answer is **bit-identical** to the in-process answer
//!   it came from;
//! * a **server** ([`NetServer`]) — a dependency-free `std::net` TCP
//!   server fronting a [`chronorank_serve::ServeEngine`] (read path) or a
//!   [`chronorank_live::IngestEngine`] (read + durable write path), with
//!   an acceptor, per-connection buffered IO threads, a pool of
//!   `engine_threads` workers over **one shared backend** (the engines
//!   are `Send + Sync`; live-backend writes serialize behind a write
//!   lock), explicit admission control — at `max_in_flight` outstanding
//!   frames the server answers a typed `BUSY` error instead of queueing
//!   unboundedly — and a clean-shutdown path that joins every thread;
//! * a **client** ([`NetClient`]) — blocking, with request pipelining
//!   (many requests in flight on one connection), batched appends, and a
//!   closed-loop driver that records per-request latencies and retries
//!   typed `BUSY` pushback.
//!
//! Every `TOPK` response also reports the planner's **route**, the
//! **achieved ε** of that route (restated against the live mass on a live
//! backend), and the number of **appends applied** when the answer was
//! computed — so a client can assert the freshness and error class of
//! what it was served, not just the ranking.
//!
//! ## Example
//!
//! ```
//! use chronorank_core::TemporalSet;
//! use chronorank_curve::PiecewiseLinear;
//! use chronorank_net::{NetClient, NetConfig, NetServer};
//! use chronorank_serve::{ServeConfig, ServeQuery};
//!
//! let curves: Vec<_> = (0..16)
//!     .map(|i| {
//!         PiecewiseLinear::from_points(&[(0.0, i as f64), (50.0, (16 - i) as f64)]).unwrap()
//!     })
//!     .collect();
//! let set = TemporalSet::from_curves(curves).unwrap();
//! let server = NetServer::start_serve(
//!     set,
//!     ServeConfig { workers: 2, ..Default::default() },
//!     NetConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let answer = client.topk(ServeQuery::exact(10.0, 40.0, 3)).unwrap();
//! assert_eq!(answer.topk.len(), 3);
//! assert!(answer.route.is_exact());
//! server.shutdown();
//! ```

pub mod frame;

mod client;
mod server;

pub use client::{NetClient, NetError, PipelineOutcome, Response};
pub use frame::{
    AppendOk, Decoder, ErrCode, ErrorBody, Frame, FrameError, OpCode, StatsBody, TopKRequest,
    TopKResponse, TraceContext, MAX_PAYLOAD, PROTOCOL_VERSION,
};
pub use server::{Backend, NetConfig, NetServer, ServerError};
