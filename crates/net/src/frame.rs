//! The wire format: length-prefixed, CRC'd binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//!      0     2  magic            0x43 0x52 ("CR")
//!      2     1  version          PROTOCOL_VERSION (1)
//!      3     1  opcode           see [`OpCode`]
//!      4     8  request id       u64 LE, echoed verbatim in the response
//!     12     4  payload length   u32 LE, at most [`MAX_PAYLOAD`]
//!     16     4  payload CRC-32   IEEE 802.3, over the payload bytes only
//!     20     …  payload          opcode-specific, fixed-width LE fields
//! ```
//!
//! The decoder is defensive by construction: it validates magic, version,
//! opcode, length bound and CRC **before** surfacing a frame, returns a
//! typed [`FrameError`] for every malformed input (it never panics), and
//! never reads past the bytes it was handed — a declared-but-absent
//! payload is [`FrameError::Truncated`], not an out-of-bounds access.
//! The encoders hold the symmetric line: a host-side value too wide for
//! its fixed wire field (a `k` or a count past `u32::MAX`) is a typed
//! [`FrameError::FieldOverflow`], never a silent `as u32` truncation
//! that would put a *different, valid-looking* request on the wire.
//! Scores and timestamps cross the wire as `f64::to_bits` so answers are
//! **bit-identical** end to end (`tests/net_agreement.rs` holds the server
//! to that).

use chronorank_core::{AppendRecord, TopK};
use chronorank_serve::{Route, ServeQuery};

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame magic ("CR").
pub const MAGIC: [u8; 2] = *b"CR";

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 20;

/// Hard upper bound on one frame's payload. Anything larger is rejected
/// as [`FrameError::Oversized`] before any allocation happens, so a
/// corrupt or hostile length field cannot balloon server memory.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Payload checksum: the workspace's shared CRC-32 (IEEE 802.3) from the
/// storage layer — one implementation guards both the WAL and the wire.
pub fn crc32(data: &[u8]) -> u32 {
    chronorank_storage::crc32(0, data)
}

/// Every operation the protocol knows, requests and responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Liveness probe; the payload is echoed back in [`OpCode::Pong`].
    Ping = 0x01,
    /// One top-k query ([`TopKRequest`] payload).
    TopK = 0x02,
    /// One batch of right-edge appends (live backend only).
    AppendBatch = 0x03,
    /// Snapshot + WAL truncation (live backend only).
    Checkpoint = 0x04,
    /// Server counters snapshot ([`StatsBody`] payload in the response).
    Stats = 0x05,
    /// Telemetry scrape: the whole process metric registry as text
    /// exposition (empty request payload).
    Metrics = 0x06,
    /// Tracing/health scrape: drains the server's span sink and reports
    /// SLO burn-rate status as structured JSON (empty request payload).
    Trace = 0x07,
    /// Response to [`OpCode::Ping`].
    Pong = 0x81,
    /// Successful top-k answer ([`TopKResponse`] payload).
    TopKOk = 0x82,
    /// Successful append batch ([`AppendOk`] payload).
    AppendOk = 0x83,
    /// Successful checkpoint (empty payload).
    CheckpointOk = 0x84,
    /// Stats snapshot ([`StatsBody`] payload).
    StatsOk = 0x85,
    /// Metrics scrape answer: the payload is the Prometheus-style text
    /// exposition, raw UTF-8 (`chronorank_obs::validate_exposition`
    /// checks its shape client-side).
    MetricsOk = 0x86,
    /// Trace scrape answer: the payload is a JSON object with the
    /// server's SLO status and drained span trees, raw UTF-8.
    TraceOk = 0x87,
    /// Typed failure ([`ErrorBody`] payload).
    Error = 0xEE,
}

impl OpCode {
    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => OpCode::Ping,
            0x02 => OpCode::TopK,
            0x03 => OpCode::AppendBatch,
            0x04 => OpCode::Checkpoint,
            0x05 => OpCode::Stats,
            0x06 => OpCode::Metrics,
            0x07 => OpCode::Trace,
            0x81 => OpCode::Pong,
            0x82 => OpCode::TopKOk,
            0x83 => OpCode::AppendOk,
            0x84 => OpCode::CheckpointOk,
            0x85 => OpCode::StatsOk,
            0x86 => OpCode::MetricsOk,
            0x87 => OpCode::TraceOk,
            0xEE => OpCode::Error,
            _ => return None,
        })
    }
}

/// Typed decode failures. Every way a byte stream can be malformed maps
/// to exactly one variant; the decoder never panics and never over-reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The input ends before the declared frame does. `needed` is the
    /// total frame length implied so far — a streaming reader waits for
    /// more bytes, a closed connection treats this as corruption.
    Truncated {
        /// Total bytes the frame needs (header + payload).
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    UnknownOp(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: u32,
        /// The bound it violates.
        max: u32,
    },
    /// Payload CRC mismatch (torn or corrupted frame).
    BadCrc {
        /// CRC declared in the header.
        want: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
    /// The frame parsed but its payload does not decode for its opcode.
    BadPayload(&'static str),
    /// An encode-side value does not fit its fixed-width wire field.
    /// Casting it anyway would *silently truncate* — e.g. `k = 2³² + 3`
    /// used to cross the wire as `k = 3` — so the encoders refuse instead.
    FieldOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The value that does not fit.
        value: u64,
        /// Largest value the wire field can carry.
        max: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownOp(o) => write!(f, "unknown opcode {o:#04x}"),
            FrameError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::BadCrc { want, got } => {
                write!(f, "payload crc mismatch: header says {want:#010x}, computed {got:#010x}")
            }
            FrameError::BadPayload(what) => write!(f, "undecodable payload: {what}"),
            FrameError::FieldOverflow { field, value, max } => {
                write!(f, "{field} = {value} does not fit its wire field (max {max})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One parsed frame: opcode, request id, raw payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame asks for / answers.
    pub opcode: OpCode,
    /// Client-chosen id echoed back by the server, so pipelined responses
    /// can be matched to their requests.
    pub request_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(opcode: OpCode, request_id: u64, payload: Vec<u8>) -> Self {
        Self { opcode, request_id, payload }
    }

    /// Serialize header + payload into wire bytes.
    ///
    /// Panics when the payload exceeds [`MAX_PAYLOAD`] — encoding such a
    /// frame anyway would truncate the length field and desynchronize the
    /// stream for every frame after it, which is strictly worse than
    /// failing loudly. [`crate::NetClient`] guards its sends with a typed
    /// error before ever reaching this, and server responses are bounded
    /// by construction (`k ≤ 2^20` caps TOPK bodies well under the limit).
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.payload.len() <= MAX_PAYLOAD as usize, "frame payload exceeds MAX_PAYLOAD");
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.opcode as u8);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode one frame from the front of `buf`. Returns the frame and
    /// the number of bytes it consumed. Validates everything (magic,
    /// version, opcode, length bound, CRC) and reads only within `buf`.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated { needed: HEADER_LEN, have: buf.len() });
        }
        if buf[..2] != MAGIC {
            return Err(FrameError::BadMagic([buf[0], buf[1]]));
        }
        if buf[2] != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(buf[2]));
        }
        let opcode = OpCode::from_u8(buf[3]).ok_or(FrameError::UnknownOp(buf[3]))?;
        let request_id = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized { len, max: MAX_PAYLOAD });
        }
        let want = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(FrameError::Truncated { needed: total, have: buf.len() });
        }
        let payload = &buf[HEADER_LEN..total];
        let got = crc32(payload);
        if got != want {
            return Err(FrameError::BadCrc { want, got });
        }
        Ok((Frame { opcode, request_id, payload: payload.to_vec() }, total))
    }

    /// Decode every frame in `buf`, failing on the first malformed one.
    /// Trailing partial data is [`FrameError::Truncated`]. This is the
    /// closed-input view (what a connection sees at EOF); the streaming
    /// [`Decoder`] treats `Truncated` as "wait for more bytes" instead.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<Frame>, FrameError> {
        let mut frames = Vec::new();
        while !buf.is_empty() {
            let (frame, used) = Frame::decode(buf)?;
            frames.push(frame);
            buf = &buf[used..];
        }
        Ok(frames)
    }
}

/// Incremental frame extraction over an arbitrary chunking of the byte
/// stream (sockets deliver whatever they please). Feed bytes in, take
/// complete frames out; [`FrameError::Truncated`] is handled internally
/// as "not yet", every other error is fatal for the stream.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    consumed: usize,
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Drop the already-consumed prefix before growing.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete frame, `Ok(None)` when more bytes are
    /// needed, `Err` when the stream is corrupt (unrecoverable: framing
    /// is lost, the connection must close).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match Frame::decode(&self.buf[self.consumed..]) {
            Ok((frame, used)) => {
                self.consumed += used;
                Ok(Some(frame))
            }
            Err(FrameError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

// ---------------------------------------------------------------------------
// Payload bodies
// ---------------------------------------------------------------------------

fn take<const N: usize>(buf: &[u8], at: usize, what: &'static str) -> Result<[u8; N], FrameError> {
    buf.get(at..at + N).and_then(|s| s.try_into().ok()).ok_or(FrameError::BadPayload(what))
}

fn f64_at(buf: &[u8], at: usize, what: &'static str) -> Result<f64, FrameError> {
    Ok(f64::from_bits(u64::from_le_bytes(take::<8>(buf, at, what)?)))
}

/// Fit a host-side count into a u32 wire field, or say exactly why not.
fn fit_u32(field: &'static str, value: usize) -> Result<u32, FrameError> {
    u32::try_from(value).map_err(|_| FrameError::FieldOverflow {
        field,
        value: value as u64,
        max: u32::MAX as u64,
    })
}

/// Optional trace-context extension carried at the **tail** of TOPK and
/// APPEND_BATCH request payloads: 16 fixed bytes (`trace_id` u64 LE,
/// `parent_span` u64 LE).
///
/// The extension is strictly additive. A context-free request encodes
/// **bit-identically** to the pre-extension wire format (the robustness
/// proptests hold that line), and an old server that checks payload
/// length exactly rejects — never misparses — a traced request. The
/// tail position is unambiguous for both ops: a TOPK payload is 29 or
/// 29+16 bytes, and an append batch's record section is a multiple of
/// `AppendRecord::ENCODED_LEN` (20), which 16 is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The end-to-end trace this request belongs to (never 0 on the wire;
    /// 0 is the "absent" sentinel).
    pub trace_id: u64,
    /// The client-side span that issued the request; `0` means the
    /// client traced nothing locally and the server span becomes a root.
    pub parent_span: u64,
}

impl TraceContext {
    /// Wire width of the extension tail.
    pub const WIRE_LEN: usize = 16;

    /// Serialize as the 16-byte tail.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    /// Parse a 16-byte tail. A zero trace id is rejected — no conforming
    /// encoder produces one, so it marks corruption, not a trace.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() != Self::WIRE_LEN {
            return Err(FrameError::BadPayload("trace context must be 16 bytes"));
        }
        let trace_id = u64::from_le_bytes(take::<8>(buf, 0, "trace id")?);
        let parent_span = u64::from_le_bytes(take::<8>(buf, 8, "parent span")?);
        if trace_id == 0 {
            return Err(FrameError::BadPayload("trace context with zero trace id"));
        }
        Ok(Self { trace_id, parent_span })
    }
}

/// [`OpCode::TopK`] request payload: the full [`ServeQuery`] in 29 fixed
/// bytes (`t1`, `t2` as f64 bits; `k` u32; tolerance tag; `eps` f64 bits),
/// optionally followed by a 16-byte [`TraceContext`] tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKRequest(pub ServeQuery);

impl TopKRequest {
    const LEN: usize = 29;

    /// Serialize. Refuses (typed) a `k` that does not fit the u32 wire
    /// field — `k as u32` would wrap and silently query for the wrong `k`.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        self.encode_with(None)
    }

    /// Serialize, optionally appending a [`TraceContext`] tail. With
    /// `None` the output is byte-identical to [`TopKRequest::encode`].
    pub fn encode_with(&self, ctx: Option<TraceContext>) -> Result<Vec<u8>, FrameError> {
        let q = self.0;
        let mut out = Vec::with_capacity(Self::LEN + ctx.map_or(0, |_| TraceContext::WIRE_LEN));
        out.extend_from_slice(&q.t1.to_bits().to_le_bytes());
        out.extend_from_slice(&q.t2.to_bits().to_le_bytes());
        out.extend_from_slice(&fit_u32("k", q.k)?.to_le_bytes());
        let (tag, eps) = match q.tolerance {
            None => (0u8, 0.0),
            Some(t) if !t.tight_ranks => (1, t.eps),
            Some(t) => (2, t.eps),
        };
        out.push(tag);
        out.extend_from_slice(&eps.to_bits().to_le_bytes());
        if let Some(ctx) = ctx {
            out.extend_from_slice(&ctx.encode());
        }
        Ok(out)
    }

    /// Parse and validate: finite interval with `t1 < t2`, finite
    /// non-negative `eps`, bounded `k`. The server trusts a decoded query
    /// enough to hand it to the engine, so garbage is rejected here.
    /// Rejects payloads carrying a trace-context tail — use
    /// [`TopKRequest::decode_traced`] to accept both shapes.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() != Self::LEN {
            return Err(FrameError::BadPayload("topk request must be 29 bytes"));
        }
        Ok(Self::decode_traced(buf)?.0)
    }

    /// Parse either payload shape: 29 bytes (no context) or 29 + 16
    /// bytes (context tail). Anything else — a truncated or padded tail
    /// included — is a typed [`FrameError::BadPayload`].
    pub fn decode_traced(buf: &[u8]) -> Result<(Self, Option<TraceContext>), FrameError> {
        let ctx = match buf.len() {
            Self::LEN => None,
            n if n == Self::LEN + TraceContext::WIRE_LEN => {
                Some(TraceContext::decode(&buf[Self::LEN..])?)
            }
            _ => {
                return Err(FrameError::BadPayload(
                    "topk request must be 29 bytes, or 45 with a trace context",
                ))
            }
        };
        let t1 = f64_at(buf, 0, "t1")?;
        let t2 = f64_at(buf, 8, "t2")?;
        let k = u32::from_le_bytes(take::<4>(buf, 16, "k")?) as usize;
        let tag = buf[20];
        let eps = f64_at(buf, 21, "eps")?;
        if !t1.is_finite() || !t2.is_finite() || t1 >= t2 {
            return Err(FrameError::BadPayload("interval must be finite with t1 < t2"));
        }
        if k > (1 << 20) {
            return Err(FrameError::BadPayload("k exceeds the 2^20 bound"));
        }
        let q = match tag {
            0 => ServeQuery::exact(t1, t2, k),
            1 | 2 => {
                if !eps.is_finite() || eps < 0.0 {
                    return Err(FrameError::BadPayload("eps must be finite and non-negative"));
                }
                if tag == 1 {
                    ServeQuery::approx(t1, t2, k, eps)
                } else {
                    ServeQuery::approx_tight(t1, t2, k, eps)
                }
            }
            _ => return Err(FrameError::BadPayload("unknown tolerance tag")),
        };
        Ok((Self(q), ctx))
    }
}

/// [`OpCode::TopKOk`] payload: the answer plus the freshness facts a
/// client needs to assert what it was served — the route the planner
/// actually took, the achieved ε of that route (`None` for exact routes),
/// and how many appends the backend had applied when it answered.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResponse {
    /// The merged answer (scores cross the wire as exact bits).
    pub topk: TopK,
    /// The route the planner chose for this query.
    pub route: Route,
    /// Achieved ε of the serving index on that route, restated against
    /// the live mass on a live backend; `None` on exact routes.
    pub eps_used: Option<f64>,
    /// Appends the backend had durably applied when it answered (always 0
    /// on a read-only serve backend).
    pub appends_applied: u64,
}

impl TopKResponse {
    /// Serialize. Refuses (typed) an entry count that does not fit the
    /// u32 wire field, rather than truncating it against the payload.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let entries = self.topk.entries();
        let count = fit_u32("entry count", entries.len())?;
        let mut out = Vec::with_capacity(21 + 12 * entries.len());
        out.push(self.route.idx() as u8);
        out.extend_from_slice(&self.eps_used.unwrap_or(-1.0).to_bits().to_le_bytes());
        out.extend_from_slice(&self.appends_applied.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        for &(id, score) in entries {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&score.to_bits().to_le_bytes());
        }
        Ok(out)
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 21 {
            return Err(FrameError::BadPayload("topk response shorter than its fixed head"));
        }
        let route = *Route::ALL
            .get(buf[0] as usize)
            .ok_or(FrameError::BadPayload("route byte out of range"))?;
        let eps = f64_at(buf, 1, "eps_used")?;
        let eps_used = if eps < 0.0 { None } else { Some(eps) };
        let appends_applied = u64::from_le_bytes(take::<8>(buf, 9, "appends_applied")?);
        let count = u32::from_le_bytes(take::<4>(buf, 17, "entry count")?) as usize;
        if buf.len() != 21 + 12 * count {
            return Err(FrameError::BadPayload("entry count disagrees with payload length"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 21 + 12 * i;
            let id = u32::from_le_bytes(take::<4>(buf, at, "entry id")?);
            entries.push((id, f64_at(buf, at + 4, "entry score")?));
        }
        Ok(Self { topk: TopK::from_ranked(entries), route, eps_used, appends_applied })
    }
}

/// Encode an [`OpCode::AppendBatch`] request payload. Refuses (typed) a
/// record count that does not fit the u32 wire field — truncating it
/// would make the count disagree with the payload and mis-split records.
pub fn encode_append_batch(recs: &[AppendRecord]) -> Result<Vec<u8>, FrameError> {
    encode_append_batch_traced(recs, None)
}

/// Encode an [`OpCode::AppendBatch`] request payload, optionally with a
/// [`TraceContext`] tail after the records. With `None` the output is
/// byte-identical to [`encode_append_batch`].
pub fn encode_append_batch_traced(
    recs: &[AppendRecord],
    ctx: Option<TraceContext>,
) -> Result<Vec<u8>, FrameError> {
    let count = fit_u32("append count", recs.len())?;
    let tail = ctx.map_or(0, |_| TraceContext::WIRE_LEN);
    let mut out = Vec::with_capacity(4 + AppendRecord::ENCODED_LEN * recs.len() + tail);
    out.extend_from_slice(&count.to_le_bytes());
    for rec in recs {
        out.extend_from_slice(&rec.encode());
    }
    if let Some(ctx) = ctx {
        out.extend_from_slice(&ctx.encode());
    }
    Ok(out)
}

/// Decode an [`OpCode::AppendBatch`] request payload. Rejects payloads
/// carrying a trace-context tail — use [`decode_append_batch_traced`]
/// to accept both shapes.
pub fn decode_append_batch(buf: &[u8]) -> Result<Vec<AppendRecord>, FrameError> {
    match decode_append_batch_traced(buf)? {
        (recs, None) => Ok(recs),
        (_, Some(_)) => Err(FrameError::BadPayload("append count disagrees with payload length")),
    }
}

/// Decode an [`OpCode::AppendBatch`] request payload in either shape:
/// `4 + 20·count` bytes (no context) or the same plus a 16-byte
/// [`TraceContext`] tail. The tail length is not a multiple of a record,
/// so the two shapes can never be confused.
pub fn decode_append_batch_traced(
    buf: &[u8],
) -> Result<(Vec<AppendRecord>, Option<TraceContext>), FrameError> {
    let count = u32::from_le_bytes(take::<4>(buf, 0, "append count")?) as usize;
    // Checked arithmetic: on a 32-bit usize a hostile count could wrap
    // `4 + LEN * count` into agreeing with the buffer length.
    let need = count
        .checked_mul(AppendRecord::ENCODED_LEN)
        .and_then(|n| n.checked_add(4))
        .ok_or(FrameError::BadPayload("append count overflows"))?;
    let ctx = if buf.len() == need {
        None
    } else if need.checked_add(TraceContext::WIRE_LEN) == Some(buf.len()) {
        Some(TraceContext::decode(&buf[need..])?)
    } else {
        return Err(FrameError::BadPayload("append count disagrees with payload length"));
    };
    let recs = buf[4..need]
        .chunks_exact(AppendRecord::ENCODED_LEN)
        .map(|chunk| {
            AppendRecord::decode(chunk).ok_or(FrameError::BadPayload("undecodable append record"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((recs, ctx))
}

/// [`OpCode::AppendOk`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOk {
    /// Records this batch added.
    pub accepted: u64,
    /// Backend-lifetime total of applied appends after this batch.
    pub total_appends: u64,
}

impl AppendOk {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.accepted.to_le_bytes());
        out.extend_from_slice(&self.total_appends.to_le_bytes());
        out
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() != 16 {
            return Err(FrameError::BadPayload("append-ok must be 16 bytes"));
        }
        Ok(Self {
            accepted: u64::from_le_bytes(take::<8>(buf, 0, "accepted")?),
            total_appends: u64::from_le_bytes(take::<8>(buf, 8, "total_appends")?),
        })
    }
}

/// [`OpCode::StatsOk`] payload: the server's counters, fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsBody {
    /// 0 = read-only serve backend, 1 = live ingest backend.
    pub live_backend: u8,
    /// Engine worker (shard) count.
    pub workers: u32,
    /// Queries the backend has answered (lifetime).
    pub queries: u64,
    /// Appends the backend has applied (lifetime).
    pub appends: u64,
    /// Frames the server has accepted for execution.
    pub frames_in: u64,
    /// Response frames the server has produced.
    pub frames_out: u64,
    /// BUSY refusals issued: frames bounced by admission control plus
    /// connections turned away at the connection cap.
    pub busy_rejections: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Start of the served data's time domain (what a remote client needs
    /// to form meaningful query intervals).
    pub t_min: f64,
    /// End of the served data's time domain (grows with live appends).
    pub t_max: f64,
}

impl StatsBody {
    const LEN: usize = 69;

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::LEN);
        out.push(self.live_backend);
        out.extend_from_slice(&self.workers.to_le_bytes());
        for v in [
            self.queries,
            self.appends,
            self.frames_in,
            self.frames_out,
            self.busy_rejections,
            self.connections,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.t_min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.t_max.to_bits().to_le_bytes());
        out
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() != Self::LEN {
            return Err(FrameError::BadPayload("stats body must be 69 bytes"));
        }
        let at = |i: usize| -> Result<u64, FrameError> {
            Ok(u64::from_le_bytes(take::<8>(buf, 5 + 8 * i, "stats counter")?))
        };
        Ok(Self {
            live_backend: buf[0],
            workers: u32::from_le_bytes(take::<4>(buf, 1, "workers")?),
            queries: at(0)?,
            appends: at(1)?,
            frames_in: at(2)?,
            frames_out: at(3)?,
            busy_rejections: at(4)?,
            connections: at(5)?,
            t_min: f64_at(buf, 53, "t_min")?,
            t_max: f64_at(buf, 61, "t_max")?,
        })
    }
}

/// Error classes a server can answer with (the wire-level `errno`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// Admission control refused the frame: too many in flight. The
    /// request was **not** executed; retrying later is safe.
    Busy = 1,
    /// The backend cannot perform this op (e.g. APPEND_BATCH against a
    /// read-only serve backend).
    Unsupported = 2,
    /// The engine executed and failed (message carries the engine error).
    Engine = 3,
    /// The frame or its payload was malformed.
    BadRequest = 4,
    /// The server is shutting down.
    Shutdown = 5,
}

impl ErrCode {
    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrCode::Busy,
            2 => ErrCode::Unsupported,
            3 => ErrCode::Engine,
            4 => ErrCode::BadRequest,
            5 => ErrCode::Shutdown,
            _ => return None,
        })
    }
}

/// [`OpCode::Error`] payload: a typed code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// What class of failure this is.
    pub code: ErrCode,
    /// Diagnostic detail.
    pub message: String,
}

impl ErrorBody {
    /// Serialize. Refuses (typed) a message that does not fit the u32
    /// length field instead of truncating the length against the bytes.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let msg = self.message.as_bytes();
        let len = fit_u32("message length", msg.len())?;
        let mut out = Vec::with_capacity(5 + msg.len());
        out.push(self.code as u8);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(msg);
        Ok(out)
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 5 {
            return Err(FrameError::BadPayload("error body shorter than its fixed head"));
        }
        let code = ErrCode::from_u8(buf[0]).ok_or(FrameError::BadPayload("unknown error code"))?;
        let len = u32::from_le_bytes(take::<4>(buf, 1, "message length")?) as usize;
        if buf.len() != 5 + len {
            return Err(FrameError::BadPayload("message length disagrees with payload"));
        }
        let message = std::str::from_utf8(&buf[5..])
            .map_err(|_| FrameError::BadPayload("message is not utf-8"))?
            .to_string();
        Ok(Self { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronorank_serve::Tolerance;

    #[test]
    fn frame_roundtrip_all_opcodes() {
        for (i, op) in
            [OpCode::Ping, OpCode::TopK, OpCode::Stats, OpCode::Error].into_iter().enumerate()
        {
            let frame = Frame::new(op, 1000 + i as u64, vec![i as u8; 3 * i]);
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn decode_rejects_each_header_corruption() {
        let bytes = Frame::new(OpCode::Ping, 7, b"hello".to_vec()).encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Frame::decode(&bad), Err(FrameError::BadMagic(_))));
        let mut bad = bytes.clone();
        bad[2] = 9;
        assert_eq!(Frame::decode(&bad), Err(FrameError::BadVersion(9)));
        let mut bad = bytes.clone();
        bad[3] = 0x7F;
        assert_eq!(Frame::decode(&bad), Err(FrameError::UnknownOp(0x7F)));
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(Frame::decode(&bad), Err(FrameError::Oversized { .. })));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(matches!(Frame::decode(&bad), Err(FrameError::BadCrc { .. })));
        assert!(matches!(
            Frame::decode(&bytes[..bytes.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn streaming_decoder_handles_byte_at_a_time_delivery() {
        let frames = [
            Frame::new(
                OpCode::TopK,
                1,
                TopKRequest(ServeQuery::exact(0.0, 1.0, 5)).encode().unwrap(),
            ),
            Frame::new(OpCode::Ping, 2, Vec::new()),
        ];
        let bytes: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut decoder = Decoder::new();
        let mut out = Vec::new();
        for b in bytes {
            decoder.feed(&[b]);
            while let Some(f) = decoder.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn topk_request_roundtrips_and_validates() {
        for q in [
            ServeQuery::exact(-3.5, 10.25, 7),
            ServeQuery::approx(0.0, 100.0, 3, 0.05),
            ServeQuery::approx_tight(1.0, 2.0, 1, 0.2),
        ] {
            let back = TopKRequest::decode(&TopKRequest(q).encode().unwrap()).unwrap();
            assert_eq!(back.0, q);
        }
        let bad = TopKRequest(ServeQuery::exact(5.0, 4.0, 2)).encode().unwrap();
        assert!(TopKRequest::decode(&bad).is_err(), "t1 >= t2 must be rejected");
        let bad = TopKRequest(ServeQuery {
            t1: 0.0,
            t2: 1.0,
            k: 2,
            tolerance: Some(Tolerance { eps: f64::NAN, tight_ranks: false }),
        })
        .encode()
        .unwrap();
        assert!(TopKRequest::decode(&bad).is_err(), "NaN eps must be rejected");
    }

    #[test]
    fn topk_response_is_bit_exact() {
        let resp = TopKResponse {
            topk: TopK::from_ranked(vec![(4, 1.0 + f64::EPSILON), (2, -0.0), (9, -3.25)]),
            route: Route::Appx2Plus,
            eps_used: Some(0.017),
            appends_applied: 99,
        };
        let back = TopKResponse::decode(&resp.encode().unwrap()).unwrap();
        assert_eq!(back.route, Route::Appx2Plus);
        assert_eq!(back.eps_used, Some(0.017));
        assert_eq!(back.appends_applied, 99);
        for (a, b) in resp.topk.entries().iter().zip(back.topk.entries()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn trace_context_roundtrips_and_is_tail_unambiguous() {
        let ctx = TraceContext { trace_id: 0xdead_beef_cafe_f00d, parent_span: 42 };
        assert_eq!(TraceContext::decode(&ctx.encode()).unwrap(), ctx);
        // TOPK both shapes.
        let q = ServeQuery::approx(0.0, 10.0, 4, 0.1);
        let plain = TopKRequest(q).encode().unwrap();
        let traced = TopKRequest(q).encode_with(Some(ctx)).unwrap();
        assert_eq!(plain.len(), 29);
        assert_eq!(traced.len(), 45);
        assert_eq!(&traced[..29], &plain[..], "context is strictly a tail");
        assert_eq!(TopKRequest::decode_traced(&plain).unwrap(), (TopKRequest(q), None));
        assert_eq!(TopKRequest::decode_traced(&traced).unwrap(), (TopKRequest(q), Some(ctx)));
        // Context-free encoding is bit-identical through both paths.
        assert_eq!(TopKRequest(q).encode_with(None).unwrap(), plain);
        // Append batch both shapes.
        let recs = vec![AppendRecord { object: 1, t: 2.0, v: 3.0 }];
        let plain = encode_append_batch(&recs).unwrap();
        let traced = encode_append_batch_traced(&recs, Some(ctx)).unwrap();
        assert_eq!(&traced[..plain.len()], &plain[..]);
        assert_eq!(decode_append_batch_traced(&plain).unwrap(), (recs.clone(), None));
        assert_eq!(decode_append_batch_traced(&traced).unwrap(), (recs, Some(ctx)));
    }

    #[test]
    fn trace_context_corruption_is_typed() {
        let ctx = TraceContext { trace_id: 7, parent_span: 9 };
        let traced = TopKRequest(ServeQuery::exact(0.0, 1.0, 2)).encode_with(Some(ctx)).unwrap();
        // Truncated tail (30..44 bytes): typed BadPayload, never a panic.
        for cut in 30..45 {
            assert!(
                matches!(
                    TopKRequest::decode_traced(&traced[..cut]),
                    Err(FrameError::BadPayload(_))
                ),
                "cut={cut}"
            );
        }
        // Oversized: extra byte after the tail.
        let mut fat = traced.clone();
        fat.push(0);
        assert!(matches!(TopKRequest::decode_traced(&fat), Err(FrameError::BadPayload(_))));
        // Zero trace id marks corruption.
        let mut zeroed = traced.clone();
        zeroed[29..37].fill(0);
        assert!(matches!(TopKRequest::decode_traced(&zeroed), Err(FrameError::BadPayload(_))));
        // The strict decoders reject traced payloads outright.
        assert!(TopKRequest::decode(&traced).is_err());
        let batch = encode_append_batch_traced(&[], Some(ctx)).unwrap();
        assert!(decode_append_batch(&batch).is_err());
    }

    #[test]
    fn append_batch_and_small_bodies_roundtrip() {
        let recs = vec![
            AppendRecord { object: 3, t: 10.5, v: -2.25 },
            AppendRecord { object: 0, t: 11.0, v: 0.0 },
        ];
        assert_eq!(decode_append_batch(&encode_append_batch(&recs).unwrap()).unwrap(), recs);
        let ok = AppendOk { accepted: 2, total_appends: 77 };
        assert_eq!(AppendOk::decode(&ok.encode()).unwrap(), ok);
        let stats = StatsBody { live_backend: 1, workers: 4, queries: 10, ..Default::default() };
        assert_eq!(StatsBody::decode(&stats.encode()).unwrap(), stats);
        let err = ErrorBody { code: ErrCode::Busy, message: "too many in flight".into() };
        assert_eq!(ErrorBody::decode(&err.encode().unwrap()).unwrap(), err);
    }
}
